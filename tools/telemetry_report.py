#!/usr/bin/env python3
"""Fold churnet NDJSON telemetry trace(s) into a phase-breakdown report.

Traces come from `churnet_sweep --telemetry <file>` or
`churnet_repro --telemetry <file>` (schema v1; see src/telemetry/
trace_sink.hpp and docs/observability.md). A multi-process campaign
(`--workers N --worker-traces <prefix>`) writes one trace per worker
process; pass them all and the report folds them into one campaign view.
Default mode prints:

  * a per-phase table (total seconds, share of measured time, span count)
    from the sweep_end aggregate (falling back to summing job events when
    no sweep_end is present, e.g. a trace cut short);
  * the counters (churn events, deltas, messages, snapshot bytes, ...);
  * a per-worker job/wall breakdown when jobs carry "worker" tags;
  * per-cell wall-clock hotspots (slowest cells first, --top N).

--check validates each trace instead: every line parses as a JSON
object, carries a known "ev" with that event's required fields, the
trace starts with trace_begin (schema 1), span_begin/span_end names
balance, and worker-id tagging is consistent (job events carry exactly
the worker id declared by trace_begin — no id when the trace is not a
worker trace). Exit 1 with a line-numbered message on the first
violation — this is the CI schema gate for telemetry artifacts.

Usage:
  telemetry_report.py trace.ndjson            # phase breakdown
  telemetry_report.py w0.ndjson w1.ndjson     # fold worker traces
  telemetry_report.py --check trace.ndjson    # schema validation (CI)
  telemetry_report.py --top 5 trace.ndjson
"""

import argparse
import json
import sys

# Required fields per event kind (schema v1). Extra fields are allowed:
# consumers must ignore unknown keys so the schema can grow additively.
REQUIRED_FIELDS = {
    "trace_begin": {"schema", "tool", "ts_ms"},
    "span_begin": {"name", "t_s"},
    "span_end": {"name", "t_s", "wall_s"},
    "sweep_begin": {"label", "cells", "reps", "jobs", "threads", "t_s",
                    "spec"},
    "job": {"cell", "replication", "seed", "t_s", "wall_s", "phases",
            "counters"},
    "heartbeat": {"t_s", "jobs_done", "jobs_total", "eta_s",
                  "threads_busy"},
    "sweep_end": {"label", "jobs", "wall_s", "t_s", "phases", "counters"},
    "trace_end": {"t_s"},
}


def parse_trace(path):
    """Yields (line_number, event_dict); raises ValueError on bad lines."""
    with open(path) as f:
        for number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {number}: not valid JSON ({error})")
            if not isinstance(event, dict):
                raise ValueError(f"line {number}: not a JSON object")
            yield number, event


def check(path):
    """Schema validation; returns an error string or None when valid."""
    first = True
    open_spans = []
    saw_end = False
    worker = None  # trace_begin's worker id; None = not a worker trace
    for number, event in parse_trace(path):
        kind = event.get("ev")
        if kind not in REQUIRED_FIELDS:
            return f"line {number}: unknown event kind {kind!r}"
        if first:
            if kind != "trace_begin":
                return (f"line {number}: trace must start with trace_begin, "
                        f"got {kind!r}")
            if event.get("schema") != 1:
                return (f"line {number}: unsupported schema "
                        f"{event.get('schema')!r} (expected 1)")
            worker = event.get("worker")
            if worker is not None and (not isinstance(worker, int)
                                       or worker < 0):
                return (f"line {number}: trace_begin worker must be a "
                        f"non-negative integer, got {worker!r}")
            first = False
        missing = REQUIRED_FIELDS[kind] - set(event)
        if missing:
            return (f"line {number}: {kind} missing field(s) "
                    f"{sorted(missing)}")
        if kind == "span_begin":
            open_spans.append(event["name"])
        elif kind == "span_end":
            if event["name"] not in open_spans:
                return (f"line {number}: span_end {event['name']!r} "
                        f"without a matching span_begin")
            open_spans.remove(event["name"])
        elif kind == "job":
            for section in ("phases", "counters"):
                if not isinstance(event[section], dict):
                    return (f"line {number}: job {section} must be an "
                            f"object")
            # Worker-id tagging: a worker trace tags every job with its
            # own id; a coordinator/solo trace tags none.
            if event.get("worker") != worker:
                return (f"line {number}: job worker tag "
                        f"{event.get('worker')!r} does not match "
                        f"trace_begin worker {worker!r}")
        elif kind == "trace_end":
            saw_end = True
    if first:
        return "empty trace (no events)"
    if open_spans:
        return f"unclosed span(s) at end of trace: {open_spans}"
    if not saw_end:
        return "trace has no trace_end (run cut short?)"
    return None


def fold(path):
    """Returns (phases, counters, jobs, meta) folded from the trace.

    phases: {name: {"s": float, "calls": int}}; counters: {name: int};
    jobs: list of job events; meta: tool/threads/wall info for the header.
    """
    phases = {}
    counters = {}
    jobs = []
    meta = {}
    saw_aggregate = False
    for _, event in parse_trace(path):
        kind = event.get("ev")
        if kind == "trace_begin":
            meta["tool"] = event.get("tool", "?")
        elif kind == "sweep_begin":
            meta["threads"] = event.get("threads")
            meta["jobs"] = event.get("jobs")
        elif kind == "job":
            jobs.append(event)
        elif kind == "sweep_end":
            # The authoritative aggregate; replaces (not adds to) any
            # previous sweep's fold so multi-sweep traces sum below.
            saw_aggregate = True
            for name, entry in event.get("phases", {}).items():
                slot = phases.setdefault(name, {"s": 0.0, "calls": 0})
                slot["s"] += float(entry.get("s", 0.0))
                slot["calls"] += int(entry.get("calls", 0))
            for name, value in event.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
        elif kind == "trace_end":
            meta["wall_s"] = event.get("t_s")
    if not saw_aggregate:
        # Trace cut short: fall back to summing the per-job slices.
        for event in jobs:
            for name, entry in event.get("phases", {}).items():
                slot = phases.setdefault(name, {"s": 0.0, "calls": 0})
                slot["s"] += float(entry.get("s", 0.0))
                slot["calls"] += int(entry.get("calls", 0))
            for name, value in event.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
    return phases, counters, jobs, meta


def cell_identity(event):
    """Human label for a job's cell from its identity fields."""
    parts = []
    for key in ("scenario", "churn", "protocol"):
        value = event.get(key)
        if value and value != "none":
            parts.append(str(value))
    for key in ("n", "d"):
        if key in event:
            parts.append(f"{key}={event[key]}")
    return " ".join(parts) if parts else f"cell {event.get('cell', '?')}"


def merge_folds(paths):
    """Folds several traces (e.g. one per worker) into one campaign view.

    Phase seconds, counters and job lists sum across files; the header
    meta keeps the first tool seen and the longest wall clock (workers
    run concurrently, so summing walls would double-count).
    """
    phases = {}
    counters = {}
    jobs = []
    meta = {}
    for path in paths:
        file_phases, file_counters, file_jobs, file_meta = fold(path)
        for name, slot in file_phases.items():
            merged = phases.setdefault(name, {"s": 0.0, "calls": 0})
            merged["s"] += slot["s"]
            merged["calls"] += slot["calls"]
        for name, value in file_counters.items():
            counters[name] = counters.get(name, 0) + value
        jobs.extend(file_jobs)
        if "tool" not in meta and "tool" in file_meta:
            meta["tool"] = file_meta["tool"]
        wall = file_meta.get("wall_s")
        if wall is not None:
            meta["wall_s"] = max(meta.get("wall_s", 0.0), wall)
    return phases, counters, jobs, meta


def report(paths, top):
    phases, counters, jobs, meta = merge_folds(paths)
    tool = meta.get("tool", "?")
    wall = meta.get("wall_s")
    label = paths[0] if len(paths) == 1 else f"{len(paths)} traces folded"
    print(f"trace: {label} (tool: {tool}"
          + (f", wall {wall:.2f}s" if wall is not None else "") + ")")

    measured = sum(slot["s"] for slot in phases.values())
    print("\nphase breakdown (CPU seconds across all workers):")
    print(f"  {'phase':<14} {'seconds':>10} {'share':>7} {'spans':>10}")
    for name, slot in sorted(phases.items(), key=lambda kv: -kv[1]["s"]):
        share = slot["s"] / measured if measured > 0 else 0.0
        print(f"  {name:<14} {slot['s']:>10.3f} {share:>6.1%} "
              f"{slot['calls']:>10}")
    print(f"  {'total measured':<14} {measured:>10.3f}")

    if counters:
        print("\ncounters:")
        for name, value in sorted(counters.items()):
            print(f"  {name:<16} {value:>16,}")

    tagged = [event for event in jobs if "worker" in event]
    if tagged:
        print("\nper-worker breakdown:")
        workers = {}
        for event in tagged:
            slot = workers.setdefault(event["worker"],
                                      {"wall_s": 0.0, "jobs": 0})
            slot["wall_s"] += float(event.get("wall_s", 0.0))
            slot["jobs"] += 1
        for worker, slot in sorted(workers.items()):
            print(f"  worker {worker:<3} {slot['jobs']:>6} job(s) "
                  f"{slot['wall_s']:>10.3f}s")

    if jobs and top > 0:
        # Fold job wall time per cell, then show the slowest cells.
        cells = {}
        for event in jobs:
            key = cell_identity(event)
            slot = cells.setdefault(key, {"wall_s": 0.0, "jobs": 0})
            slot["wall_s"] += float(event.get("wall_s", 0.0))
            slot["jobs"] += 1
        print(f"\nslowest cells (by summed job wall clock, top {top}):")
        ranked = sorted(cells.items(), key=lambda kv: -kv[1]["wall_s"])
        for key, slot in ranked[:top]:
            print(f"  {slot['wall_s']:>9.3f}s  {slot['jobs']:>4} job(s)  "
                  f"{key}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("traces", nargs="+",
                        help="NDJSON telemetry trace file(s); several "
                             "(e.g. per-worker traces) fold into one "
                             "report")
    parser.add_argument("--check", action="store_true",
                        help="validate each trace against schema v1 and "
                             "exit (the CI artifact gate)")
    parser.add_argument("--top", type=int, default=10,
                        help="cells to list in the hotspot table "
                             "(default 10; 0 disables)")
    args = parser.parse_args()
    current = args.traces[0]
    try:
        if args.check:
            for current in args.traces:
                error = check(current)
                if error is not None:
                    print(f"{current}: INVALID: {error}")
                    return 1
                print(f"{current}: valid schema-v1 telemetry trace")
            return 0
        return report(args.traces, args.top)
    except (OSError, ValueError) as error:
        print(f"{current}: {error}")
        return 1


if __name__ == "__main__":
    sys.exit(main())
