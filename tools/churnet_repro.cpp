// churnet_repro: one command per paper table/figure.
//
// Every headline measurement of "Expansion and Flooding in Dynamic Random
// Networks with Node Churn" (ICDCS 2021) is a declarative sweep + observer
// set registered here by name. Running a target regenerates its dataset as
// tidy long-format CSV (one row per observation) plus a JSON summary and a
// manifest (seed, git sha, cell count, resolved spec) under --out, so a
// figure is always `churnet_repro --only <target>` away from its data.
//
//   ./churnet_repro --list                 # every target, with its paper ref
//   ./churnet_repro                        # reproduce everything (slow!)
//   ./churnet_repro --only table1,spectral-gap --threads 8
//   ./churnet_repro --quick --only spectral-gap   # pinned-seed smoke subset
//   ./churnet_repro --workers 4 --checkpoint ckpt/   # forked workers +
//   ./churnet_repro --workers 4 --checkpoint ckpt/ --resume  # crash-resume
//
// --quick swaps each target for its pinned small-scale variant: the same
// grid shape at toy sizes, bit-identical for a fixed seed at any --threads
// (CI diffs one quick target against a checked-in golden CSV and cmp's a
// 1-thread run against an 8-thread run).
//
// Determinism: a target's CSV is a pure function of (target, seed,
// scale). Cell c replication r of a target runs under derive_seed(seed, c,
// r) exactly as churnet_sweep would; observers and protocols draw from
// streams derived per replication, never from the network's RNG
// (DESIGN.md, decisions 8-12).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "churnet/churnet.hpp"
#include "common/sinks.hpp"

namespace {

using namespace churnet;

/// One paper table/figure: a named, declaratively specified sweep.
struct ReproTarget {
  std::string name;        // CLI name ("table1")
  std::string paper_ref;   // what it reproduces ("Table 1")
  std::string description;
  std::string runtime;     // expected full-scale runtime note
  SweepSpec full;
  SweepSpec quick;
};

SweepSpec base_spec(std::vector<std::string> scenarios,
                    std::vector<std::uint32_t> n,
                    std::vector<std::uint32_t> d,
                    std::vector<std::string> metrics, std::string observers,
                    std::uint64_t reps, bool incremental = false) {
  SweepSpec spec;
  spec.scenarios = std::move(scenarios);
  spec.n_values = std::move(n);
  spec.d_values = std::move(d);
  spec.metrics = std::move(metrics);
  spec.observers = std::move(observers);
  spec.replications = reps;
  // Observer-heavy targets run their observers delta-fed; sweep trials
  // observe exactly once, where the incremental path is bit-identical to
  // the from-scratch one, so the CSVs (and the quick goldens) are
  // unchanged — it is purely a runtime improvement.
  spec.incremental_observers = incremental;
  return spec;
}

/// The registry: every paper table/figure this binary reproduces. The
/// quick variants are pinned (sizes, reps and seeds all fixed) — they are
/// the determinism smoke surface, not statistically meaningful runs.
std::vector<ReproTarget> make_targets() {
  std::vector<ReproTarget> targets;

  // -- Table 1: the paper's summary matrix at a reference configuration.
  targets.push_back(ReproTarget{
      "table1", "Table 1",
      "all four dynamic models at a reference n across the d regimes the "
      "claims quantify over: expansion probe, spectral gap, isolated "
      "census, flooding completion/coverage per cell",
      "~30 min full scale",
      base_spec({"SDG", "SDGR", "PDG", "PDGR"}, {8000}, {2, 12, 21, 35},
                {"alive", "completion_step", "final_fraction",
                 "peak_informed"},
                "expansion(8)+spectral+isolated", 5),
      base_spec({"SDG", "SDGR", "PDG", "PDGR"}, {500}, {2, 8},
                {"alive", "completion_step", "final_fraction",
                 "peak_informed"},
                "expansion(8)+spectral+isolated", 2)});

  // -- Flooding time vs n (Theorems 3.16 / 4.20): completion is O(log n)
  // with regeneration.
  targets.push_back(ReproTarget{
      "flooding-time-vs-n", "Thms 3.16 / 4.20 (flooding-time figure)",
      "completion step of flooding on the regenerating models as n grows "
      "(the O(log n) claim); flood_steps/final_fraction for the tail",
      "~20 min full scale",
      base_spec({"SDGR", "PDGR"}, {1000, 2000, 4000, 8000, 16000}, {21, 35},
                {"alive", "completion_step", "flood_steps", "final_fraction"},
                "", 8),
      base_spec({"SDGR", "PDGR"}, {300, 600}, {8},
                {"alive", "completion_step", "flood_steps", "final_fraction"},
                "", 2)});

  // -- Coverage vs d (Theorems 3.8 / 4.13): without regeneration flooding
  // still informs most nodes, with coverage -> 1 as d grows.
  targets.push_back(ReproTarget{
      "coverage-vs-d", "Thms 3.8 / 4.13 (coverage figure)",
      "terminal flooding coverage on the non-regenerating models as a "
      "function of d, with the coverage-curve observer (step to 50%, "
      "area under the curve)",
      "~15 min full scale",
      base_spec({"SDG", "PDG"}, {8000}, {2, 4, 8, 12, 16, 20},
                {"alive", "final_fraction", "peak_informed", "flood_steps"},
                "coverage(0.5)", 8),
      base_spec({"SDG", "PDG"}, {500}, {2, 8},
                {"alive", "final_fraction", "peak_informed", "flood_steps"},
                "coverage(0.5)", 2)});

  // -- Isolated-node regimes (Lemmas 3.5 / 4.10 and their absence under
  // regeneration), with the static baselines as contrast columns.
  targets.push_back(ReproTarget{
      "isolated-nodes", "Lemmas 3.5 / 4.10 (isolated-node regimes)",
      "isolated census and degree histogram for SDG/SDGR/PDG/PDGR and the "
      "static baselines across small d — the e^{-2d} isolation regimes "
      "and their disappearance under regeneration",
      "~5 min full scale (delta-fed censuses, no dense snapshot)",
      base_spec({"SDG", "SDGR", "PDG", "PDGR", "static-dout", "erdos-renyi"},
                {20000}, {1, 2, 3, 4, 6, 8}, {"alive"},
                "isolated+degrees", 5, /*incremental=*/true),
      base_spec({"SDG", "SDGR", "PDG", "PDGR", "static-dout", "erdos-renyi"},
                {400}, {1, 2}, {"alive"}, "isolated+degrees", 2,
                /*incremental=*/true)});

  // -- Large-set expansion without regeneration (Lemmas 3.6 / 4.11).
  targets.push_back(ReproTarget{
      "expansion-large-sets", "Lemmas 3.6 / 4.11 (large-set expansion)",
      "vertex-expansion probe on the non-regenerating models across the "
      "lemmas' d range (the windowed check lives in "
      "bench_expansion_large_sets; this dataset probes the full range)",
      "~40 min full scale",
      base_spec({"SDG", "PDG"}, {20000}, {12, 16, 20, 24},
                {"alive", "isolated"}, "expansion(8)", 3),
      base_spec({"SDG", "PDG"}, {400}, {12}, {"alive", "isolated"},
                "expansion(8)", 2)});

  // -- Expansion under regeneration (Theorems 3.15 / 4.16).
  targets.push_back(ReproTarget{
      "expansion-regen", "Thms 3.15 / 4.16 (0.1-expander figure)",
      "vertex-expansion probe plus spectral gap on the regenerating "
      "models across d — where 0.1-expansion actually kicks in",
      "~40 min full scale (delta-fed observers, shared snapshot)",
      base_spec({"SDGR", "PDGR"}, {20000}, {3, 6, 10, 14, 21, 35},
                {"alive"}, "expansion(8)+spectral", 3,
                /*incremental=*/true),
      base_spec({"SDGR", "PDGR"}, {400}, {8}, {"alive"},
                "expansion(8)+spectral", 2, /*incremental=*/true)});

  // -- Resilience under adversarial and correlated churn (beyond the
  // paper's oblivious model; ROADMAP item 2): how expansion, spectral gap,
  // isolation and flooding coverage degrade as the adversary budget grows,
  // and under correlated mass failures / flash crowds.
  targets.push_back(ReproTarget{
      "resilience", "beyond-paper: adversarial/correlated churn",
      "degradation of expansion, spectral gap, isolated census and "
      "flooding coverage versus adversary budget (maxdeg/mindeg/cutset/"
      "eclipse at budgets 0.25/0.5/1) and under massfail/flashcrowd "
      "bursts, with the oblivious models as the budget-0 baseline",
      "~45 min full scale",
      base_spec({"SDGR", "SDGR+maxdeg(0.25)", "SDGR+maxdeg(0.5)",
                 "SDGR+maxdeg(1)", "SDGR+mindeg(0.5)", "SDGR+cutset(0.5)",
                 "SDGR+eclipse(0.5)", "PDGR", "PDGR+maxdeg(0.25)",
                 "PDGR+maxdeg(0.5)", "PDGR+maxdeg(1)", "PDGR+mindeg(0.5)",
                 "PDGR+cutset(0.5)", "PDGR+cutset(1)", "PDGR+eclipse(0.5)",
                 "PDGR+eclipse(1)", "PDG", "PDG+maxdeg(0.5)",
                 "PDG+mindeg(0.5)", "PDGR+massfail(0.1,1)",
                 "PDGR+massfail(0.3,1)", "PDGR+flashcrowd(0.25,1)",
                 "PDG+massfail(0.1,1)"},
                {8000}, {8, 21},
                {"alive", "isolated", "completion_step", "final_fraction",
                 "peak_informed"},
                "expansion(8)+spectral+isolated", 3),
      base_spec({"SDGR", "SDGR+maxdeg(1)", "SDGR+eclipse(0.5)", "PDGR",
                 "PDGR+maxdeg(1)", "PDGR+cutset(0.5)",
                 "PDGR+massfail(0.2,1)", "PDGR+flashcrowd(0.25,1)"},
                {300}, {8},
                {"alive", "isolated", "completion_step", "final_fraction"},
                "expansion(4)+spectral+isolated", 2)});

  // -- Spectral gap per model (the Table-1 supplement): zero gap for the
  // isolating models, baseline-comparable gap under regeneration.
  targets.push_back(ReproTarget{
      "spectral-gap", "Table 1 supplement (spectral gap per model)",
      "lazy-walk spectral gap and isolated census for every scenario and "
      "the static baselines",
      "~12 min full scale (delta-fed census, shared snapshot)",
      base_spec({"SDG", "SDGR", "PDG", "PDGR", "static-dout", "erdos-renyi"},
                {10000}, {2, 8, 21}, {"alive"}, "spectral+isolated", 3,
                /*incremental=*/true),
      base_spec({"SDG", "SDGR", "PDG", "PDGR", "static-dout", "erdos-renyi"},
                {400}, {2, 8}, {"alive"}, "spectral+isolated", 2,
                /*incremental=*/true)});

  return targets;
}

/// Best-effort `git rev-parse HEAD` for the manifest; "unknown" when git
/// or the repository is unavailable (the data is still reproducible from
/// the recorded seed + spec).
std::string git_sha() {
  FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128] = {0};
  std::string sha;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
  pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

void write_manifest(std::ostream& os, const ReproTarget& target,
                    const SweepSpec& spec, const SweepResult& result,
                    bool quick, const std::string& sha,
                    double target_wall_seconds,
                    const std::string& trace_path) {
  const PrecisionGuard precision(os);
  os << "{\"target\":";
  write_json_string(os, target.name);
  os << ",\"paper\":";
  write_json_string(os, target.paper_ref);
  os << ",\"description\":";
  write_json_string(os, target.description);
  os << ",\"scale\":\"" << (quick ? "quick" : "full") << '"'
     << ",\"git_sha\":";
  write_json_string(os, sha);
  os << ",\"seed\":" << spec.base_seed
     << ",\"cells\":" << result.cells().size()
     << ",\"replications\":" << spec.replications
     << ",\"threads\":" << result.threads_used()
     << ",\"wall_seconds\":" << result.wall_seconds()
     << ",\"target_wall_seconds\":" << target_wall_seconds
     << ",\"telemetry_trace\":";
  if (trace_path.empty()) {
    os << "null";
  } else {
    write_json_string(os, trace_path);
  }
  os << ",\"scenarios\":[";
  for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
    if (i > 0) os << ',';
    write_json_string(os, spec.scenarios[i]);
  }
  os << "],\"n\":[";
  for (std::size_t i = 0; i < spec.n_values.size(); ++i) {
    os << (i > 0 ? "," : "") << spec.n_values[i];
  }
  os << "],\"d\":[";
  for (std::size_t i = 0; i < spec.d_values.size(); ++i) {
    os << (i > 0 ? "," : "") << spec.d_values[i];
  }
  os << "],\"observers\":";
  write_json_string(os, spec.observers);
  os << ",\"metrics\":[";
  for (std::size_t i = 0; i < result.metrics().size(); ++i) {
    if (i > 0) os << ',';
    write_json_string(os, result.metrics()[i]);
  }
  os << "]}\n";
}

std::ofstream open_or_die(const std::filesystem::path& path,
                          const char* what) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s file '%s'\n", what,
                 path.string().c_str());
    std::exit(1);
  }
  return file;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "churnet_repro: regenerate the paper's table/figure datasets — each "
      "target is a declarative sweep + observer set emitting tidy CSV/JSON "
      "plus a manifest (seed, git sha, cell count) under --out");
  cli.add_string("only", "",
                 "comma-separated target names (default: every target; see "
                 "--list)");
  cli.add_string("out", "results", "output directory (created if missing)");
  cli.add_int("seed", 12345, "base seed (recorded in every manifest)");
  cli.add_int("threads", 1,
              "worker threads (0 = all cores); never changes the data");
  cli.add_int("workers", 0,
              "worker *processes* per target (coordinator/worker mode, "
              ">= 2); 0/1 = in-process --threads pool; never changes the "
              "data");
  cli.add_string("checkpoint", "",
                 "journal each target's completed jobs under "
                 "<dir>/<target>/ so a killed run can --resume with "
                 "byte-identical datasets");
  cli.add_flag("resume",
               "resume targets from --checkpoint's journals: completed "
               "jobs are restored, only missing ones run");
  cli.add_flag("quick",
               "pinned small-scale variants (seconds, bit-identical at any "
               "--threads; the CI smoke surface)");
  cli.add_string("telemetry", "",
                 "stream an NDJSON telemetry trace here (one trace for the "
                 "whole run, one span per target; never changes the data)");
  cli.add_flag("progress",
               "print heartbeat progress lines ([jobs/total] eta) to "
               "stderr while targets run");
  cli.add_flag("list", "list every target with its paper reference and exit");
  cli.add_flag("list-specs",
               "print every spec catalog (scenarios, churn, protocols, "
               "observers, metrics) and exit");
  cli.add_flag("quiet", "suppress the per-target summary tables");
  if (!cli.parse(argc, argv)) return 0;

  const std::vector<ReproTarget> targets = make_targets();

  if (cli.get_flag("list-specs")) {
    print_spec_catalogs(std::cout);
    return 0;
  }
  if (cli.get_flag("list")) {
    std::printf("paper reproduction targets (CSV/JSON + manifest per "
                "target):\n");
    for (const ReproTarget& target : targets) {
      std::printf("  %-22s %s\n", target.name.c_str(),
                  target.paper_ref.c_str());
      std::printf("  %-22s %s (%s)\n", "", target.description.c_str(),
                  target.runtime.c_str());
    }
    std::printf("run all, or --only <name>[,<name>...]; --quick for the "
                "pinned smoke variants\n");
    return 0;
  }

  // Resolve the target selection; unknown names are an error listing the
  // known targets (proper exit code, CLI semantics).
  std::vector<const ReproTarget*> selected;
  const std::string only = cli.get_string("only");
  if (only.empty()) {
    for (const ReproTarget& target : targets) selected.push_back(&target);
  } else {
    for (const std::string& name : split_spec_list(only)) {
      const ReproTarget* found = nullptr;
      for (const ReproTarget& target : targets) {
        if (target.name == name) {
          found = &target;
          break;
        }
      }
      if (found == nullptr) {
        std::fprintf(stderr, "unknown target '%s'; known targets:\n",
                     name.c_str());
        for (const ReproTarget& target : targets) {
          std::fprintf(stderr, "  %s\n", target.name.c_str());
        }
        return 1;
      }
      selected.push_back(found);
    }
  }

  const bool quick = cli.get_flag("quick");
  const bool quiet = cli.get_flag("quiet");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  const auto workers = static_cast<unsigned>(cli.get_int("workers"));
  const std::filesystem::path checkpoint_dir(cli.get_string("checkpoint"));
  const bool resume = cli.get_flag("resume");
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint <dir>\n");
    return 1;
  }
  const std::filesystem::path out_dir(cli.get_string("out"));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create output directory '%s': %s\n",
                 out_dir.string().c_str(), ec.message().c_str());
    return 1;
  }
  const std::string sha = git_sha();

  // Telemetry: one trace for the whole run, one span per target. The sink
  // reads clocks only — every CSV/JSON/manifest byte below is identical
  // with or without it, at any --threads.
  const std::string telemetry_path = cli.get_string("telemetry");
  const bool progress = cli.get_flag("progress");
  std::ofstream trace_file;
  if (!telemetry_path.empty()) {
    trace_file.open(telemetry_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open telemetry file '%s'\n",
                   telemetry_path.c_str());
      return 1;
    }
  }
  std::optional<telemetry::ScopedTraceSink> scoped_sink;
  if (trace_file.is_open() || progress) {
    telemetry::TraceSink::Options options;
    options.out = trace_file.is_open() ? &trace_file : nullptr;
    options.progress = progress;
    options.tool = "churnet_repro";
    scoped_sink.emplace(options);
  }

  for (const ReproTarget* target : selected) {
    SweepSpec spec = quick ? target->quick : target->full;
    spec.base_seed = seed;
    if (!quiet) {
      std::printf("==> %s (%s): %zu cells x %llu replications\n",
                  target->name.c_str(), target->paper_ref.c_str(),
                  spec.cell_count(),
                  static_cast<unsigned long long>(spec.replications));
    }
    const auto target_start = std::chrono::steady_clock::now();
    if (scoped_sink.has_value()) {
      scoped_sink->sink().span_begin(target->name);
    }
    // Each target journals into its own checkpoint subdirectory so a
    // multi-target run can be killed and resumed per target; the service
    // path is byte-identical to plain SweepRunner(spec).run(threads).
    SweepServiceOptions service;
    service.threads = threads;
    service.workers = workers;
    if (!checkpoint_dir.empty()) {
      service.checkpoint_dir = (checkpoint_dir / target->name).string();
    }
    service.resume = resume;
    service.tool = "churnet_repro";
    SweepServiceReport report;
    std::optional<SweepResult> result;
    try {
      result.emplace(SweepService(spec, service)
                         .run(ScenarioRegistry::extended(), &report));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", target->name.c_str(), error.what());
      return 1;
    }
    if (!quiet && report.jobs_resumed > 0) {
      std::printf("    checkpoint: %llu job(s) resumed, %llu run this "
                  "session\n",
                  static_cast<unsigned long long>(report.jobs_resumed),
                  static_cast<unsigned long long>(report.jobs_run));
    }

    const std::filesystem::path csv_path = out_dir / (target->name + ".csv");
    const std::filesystem::path json_path =
        out_dir / (target->name + ".json");
    const std::filesystem::path manifest_path =
        out_dir / (target->name + ".manifest.json");
    {
      std::ofstream csv = open_or_die(csv_path, "CSV");
      result->write_csv(csv);
    }
    {
      std::ofstream json = open_or_die(json_path, "JSON");
      result->write_json(json);
    }
    if (scoped_sink.has_value()) {
      scoped_sink->sink().span_end(target->name);
    }
    const double target_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      target_start)
            .count();
    {
      std::ofstream manifest = open_or_die(manifest_path, "manifest");
      write_manifest(manifest, *target, spec, *result, quick, sha,
                     target_wall, telemetry_path);
    }
    if (!quiet) {
      result->to_table().print(std::cout);
      std::printf("    wrote %s + .json + .manifest.json (%.2fs on %u "
                  "%s)\n\n",
                  csv_path.string().c_str(), result->wall_seconds(),
                  report.workers_used,
                  workers >= 2 ? "worker process(es)" : "thread(s)");
    }
  }
  return 0;
}
