#!/usr/bin/env python3
"""Diff a BENCH_core.json produced by bench_perf_suite against the golden.

Compares everything EXCEPT the machine-dependent "perf" objects (rates and
wall seconds): the "config" and "deterministic" subtrees are seed-pinned and
must be identical on every machine, so any difference is silent behavior
drift — a changed RNG consumption pattern, a reordered event, a modified
sample — and fails CI.

Perf rates ("*_per_sec" fields inside "perf" objects) are additionally
compared WARN-ONLY: a rate more than --perf-tolerance (default 0.5, i.e.
50%) below the golden's prints a warning so large regressions are visible
in the CI log, but never changes the exit code — the golden's rates come
from whatever machine last regenerated it, so they are a coarse floor,
not a contract.

--perf-fail FRAC upgrades the perf comparison into a tolerance-band gate:
a rate more than FRAC below the golden's fails the run (exit 1). FRAC
should be generous (CI uses 0.9, i.e. a 10x slowdown) — it catches
catastrophic regressions (accidental O(n^2), a debug build slipping into
the suite) while staying insensitive to machine variance. Rates inside
the band still print the --perf-tolerance warnings. Without --perf-fail
the behavior is unchanged: perf drift never affects the exit code.

Usage: diff_bench_golden.py [--perf-tolerance FRAC] [--perf-fail FRAC]
                            <golden> <candidate>
Exit code 0 when the deterministic content matches (and, with
--perf-fail, every rate is inside the band), 1 otherwise.
"""

import argparse
import json
import sys


def strip_perf(node):
    """Recursively removes every "perf" object from a parsed JSON tree."""
    if isinstance(node, dict):
        return {k: strip_perf(v) for k, v in node.items() if k != "perf"}
    if isinstance(node, list):
        return [strip_perf(v) for v in node]
    return node


def flatten(node, prefix=""):
    """Flattens a JSON tree into sorted (path, value) pairs for reporting."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from flatten(node[key], f"{prefix}/{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten(value, f"{prefix}[{i}]")
    else:
        yield prefix, node


def perf_rates(node, prefix="", inside_perf=False):
    """Yields (path, rate) for every numeric "*_per_sec" field inside a
    "perf" object."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from perf_rates(node[key], f"{prefix}/{key}",
                                  inside_perf or key == "perf")
    elif (inside_perf and prefix.rsplit("/", 1)[-1].endswith("_per_sec")
          and isinstance(node, (int, float))):
        yield prefix, float(node)


def check_perf_drift(golden, candidate, tolerance, fail_band):
    """Prints perf-rate comparisons; returns the count of FAILING rates
    (always 0 when fail_band is None — warnings never fail)."""
    golden_rates = dict(perf_rates(golden))
    candidate_rates = dict(perf_rates(candidate))
    warnings = 0
    failures = 0
    for path in sorted(set(golden_rates) & set(candidate_rates)):
        expected = golden_rates[path]
        actual = candidate_rates[path]
        if expected <= 0.0:
            continue
        drift = actual / expected - 1.0
        if fail_band is not None and drift < -fail_band:
            print(f"PERF FAILURE: {path} is {-drift:.0%} below golden "
                  f"({actual:.4g} vs {expected:.4g} per sec, fail band "
                  f"{fail_band:.0%})")
            failures += 1
        elif drift < -tolerance:
            print(f"PERF WARNING (non-fatal): {path} is {-drift:.0%} below "
                  f"golden ({actual:.4g} vs {expected:.4g} per sec, "
                  f"tolerance {tolerance:.0%})")
            warnings += 1
    if warnings == 0 and failures == 0:
        gate = (f"fail band {fail_band:.0%}" if fail_band is not None
                else "warn-only")
        print(f"perf rates within {tolerance:.0%} of golden "
              f"({len(golden_rates)} rate(s) checked, {gate})")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("golden")
    parser.add_argument("candidate")
    parser.add_argument("--perf-tolerance", type=float, default=0.5,
                        help="warn when a perf rate falls more than this "
                             "fraction below the golden's (default 0.5)")
    parser.add_argument("--perf-fail", type=float, default=None,
                        metavar="FRAC",
                        help="fail (exit 1) when a perf rate falls more "
                             "than this fraction below the golden's; "
                             "default: never fail on perf")
    args = parser.parse_args()
    with open(args.golden) as f:
        golden_full = json.load(f)
    with open(args.candidate) as f:
        candidate_full = json.load(f)
    golden = strip_perf(golden_full)
    candidate = strip_perf(candidate_full)

    golden_flat = dict(flatten(golden))
    candidate_flat = dict(flatten(candidate))
    drift = []
    for path in sorted(set(golden_flat) | set(candidate_flat)):
        expected = golden_flat.get(path, "<missing>")
        actual = candidate_flat.get(path, "<missing>")
        if expected != actual:
            drift.append((path, expected, actual))

    # Perf comparison first: report before the verdict so the warning is
    # adjacent to the numbers in CI logs either way. Only --perf-fail band
    # violations affect the exit code.
    perf_failures = check_perf_drift(golden_full, candidate_full,
                                     args.perf_tolerance, args.perf_fail)

    if drift:
        print(f"BEHAVIOR DRIFT: {len(drift)} deterministic field(s) differ "
              f"from {args.golden}:")
        for path, expected, actual in drift:
            print(f"  {path}: golden={expected!r} candidate={actual!r}")
        print("\nIf the change is intentional (new RNG draws, new workload "
              "shape), regenerate the golden:\n"
              "  ./build/bench_perf_suite --quick --out "
              "bench/golden/BENCH_core.golden.json")
        return 1
    print(f"deterministic fields match golden "
          f"({len(golden_flat)} fields compared)")
    return 1 if perf_failures else 0


if __name__ == "__main__":
    sys.exit(main())
