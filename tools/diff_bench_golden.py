#!/usr/bin/env python3
"""Diff a BENCH_core.json produced by bench_perf_suite against the golden.

Compares everything EXCEPT the machine-dependent "perf" objects (rates and
wall seconds): the "config" and "deterministic" subtrees are seed-pinned and
must be identical on every machine, so any difference is silent behavior
drift — a changed RNG consumption pattern, a reordered event, a modified
sample — and fails CI.

Usage: diff_bench_golden.py <golden.json> <candidate.json>
Exit code 0 when the deterministic content matches, 1 otherwise.
"""

import json
import sys


def strip_perf(node):
    """Recursively removes every "perf" object from a parsed JSON tree."""
    if isinstance(node, dict):
        return {k: strip_perf(v) for k, v in node.items() if k != "perf"}
    if isinstance(node, list):
        return [strip_perf(v) for v in node]
    return node


def flatten(node, prefix=""):
    """Flattens a JSON tree into sorted (path, value) pairs for reporting."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from flatten(node[key], f"{prefix}/{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten(value, f"{prefix}[{i}]")
    else:
        yield prefix, node


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        golden = strip_perf(json.load(f))
    with open(sys.argv[2]) as f:
        candidate = strip_perf(json.load(f))

    golden_flat = dict(flatten(golden))
    candidate_flat = dict(flatten(candidate))
    drift = []
    for path in sorted(set(golden_flat) | set(candidate_flat)):
        expected = golden_flat.get(path, "<missing>")
        actual = candidate_flat.get(path, "<missing>")
        if expected != actual:
            drift.append((path, expected, actual))

    if drift:
        print(f"BEHAVIOR DRIFT: {len(drift)} deterministic field(s) differ "
              f"from {sys.argv[1]}:")
        for path, expected, actual in drift:
            print(f"  {path}: golden={expected!r} candidate={actual!r}")
        print("\nIf the change is intentional (new RNG draws, new workload "
              "shape), regenerate the golden:\n"
              "  ./build/bench_perf_suite --quick --out "
              "bench/golden/BENCH_core.golden.json")
        return 1
    print(f"deterministic fields match golden "
          f"({len(golden_flat)} fields compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
