#!/usr/bin/env python3
"""Diff a BENCH_core.json produced by bench_perf_suite against the golden.

Compares everything EXCEPT the machine-dependent "perf" objects (rates and
wall seconds): the "config" and "deterministic" subtrees are seed-pinned and
must be identical on every machine, so any difference is silent behavior
drift — a changed RNG consumption pattern, a reordered event, a modified
sample — and fails CI.

Perf rates ("*_per_sec" fields inside "perf" objects) are additionally
compared WARN-ONLY: a rate more than --perf-tolerance (default 0.5, i.e.
50%) below the golden's prints a warning so large regressions are visible
in the CI log, but never changes the exit code — the golden's rates come
from whatever machine last regenerated it, so they are a coarse floor,
not a contract.

Usage: diff_bench_golden.py [--perf-tolerance FRAC] <golden> <candidate>
Exit code 0 when the deterministic content matches, 1 otherwise (perf
drift never affects the exit code).
"""

import argparse
import json
import sys


def strip_perf(node):
    """Recursively removes every "perf" object from a parsed JSON tree."""
    if isinstance(node, dict):
        return {k: strip_perf(v) for k, v in node.items() if k != "perf"}
    if isinstance(node, list):
        return [strip_perf(v) for v in node]
    return node


def flatten(node, prefix=""):
    """Flattens a JSON tree into sorted (path, value) pairs for reporting."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from flatten(node[key], f"{prefix}/{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten(value, f"{prefix}[{i}]")
    else:
        yield prefix, node


def perf_rates(node, prefix="", inside_perf=False):
    """Yields (path, rate) for every numeric "*_per_sec" field inside a
    "perf" object."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from perf_rates(node[key], f"{prefix}/{key}",
                                  inside_perf or key == "perf")
    elif (inside_perf and prefix.rsplit("/", 1)[-1].endswith("_per_sec")
          and isinstance(node, (int, float))):
        yield prefix, float(node)


def warn_perf_drift(golden, candidate, tolerance):
    """Prints warn-only perf-rate comparisons; returns the warning count."""
    golden_rates = dict(perf_rates(golden))
    candidate_rates = dict(perf_rates(candidate))
    warnings = 0
    for path in sorted(set(golden_rates) & set(candidate_rates)):
        expected = golden_rates[path]
        actual = candidate_rates[path]
        if expected <= 0.0:
            continue
        drift = actual / expected - 1.0
        if drift < -tolerance:
            print(f"PERF WARNING (non-fatal): {path} is {-drift:.0%} below "
                  f"golden ({actual:.4g} vs {expected:.4g} per sec, "
                  f"tolerance {tolerance:.0%})")
            warnings += 1
    if warnings == 0:
        print(f"perf rates within {tolerance:.0%} of golden "
              f"({len(golden_rates)} rate(s) checked, warn-only)")
    return warnings


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("golden")
    parser.add_argument("candidate")
    parser.add_argument("--perf-tolerance", type=float, default=0.5,
                        help="warn when a perf rate falls more than this "
                             "fraction below the golden's (default 0.5)")
    args = parser.parse_args()
    with open(args.golden) as f:
        golden_full = json.load(f)
    with open(args.candidate) as f:
        candidate_full = json.load(f)
    golden = strip_perf(golden_full)
    candidate = strip_perf(candidate_full)

    golden_flat = dict(flatten(golden))
    candidate_flat = dict(flatten(candidate))
    drift = []
    for path in sorted(set(golden_flat) | set(candidate_flat)):
        expected = golden_flat.get(path, "<missing>")
        actual = candidate_flat.get(path, "<missing>")
        if expected != actual:
            drift.append((path, expected, actual))

    # Perf comparison is informational only: report before the verdict so
    # the warning is adjacent to the numbers in CI logs either way.
    warn_perf_drift(golden_full, candidate_full, args.perf_tolerance)

    if drift:
        print(f"BEHAVIOR DRIFT: {len(drift)} deterministic field(s) differ "
              f"from {args.golden}:")
        for path, expected, actual in drift:
            print(f"  {path}: golden={expected!r} candidate={actual!r}")
        print("\nIf the change is intentional (new RNG draws, new workload "
              "shape), regenerate the golden:\n"
              "  ./build/bench_perf_suite --quick --out "
              "bench/golden/BENCH_core.golden.json")
        return 1
    print(f"deterministic fields match golden "
          f"({len(golden_flat)} fields compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
