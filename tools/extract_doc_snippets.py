#!/usr/bin/env python3
"""Extracts fenced ```cpp blocks from a markdown file into numbered .cpp
files so the docs CI job can compile them against the library — documented
example code that stops compiling fails the build instead of rotting.

Usage: extract_doc_snippets.py <doc.md> <out-dir>

Every ```cpp block is written as <out-dir>/snippet_NN.cpp. Blocks fenced as
```cpp no-compile are skipped (for deliberate fragments). Prints one path
per extracted snippet.
"""

import os
import re
import sys


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <doc.md> <out-dir>", file=sys.stderr)
        return 2
    doc, out_dir = argv[1], argv[2]
    os.makedirs(out_dir, exist_ok=True)

    with open(doc, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    snippets = []
    current = None   # list of lines inside a compiled block
    skipping = False  # inside a no-compile block
    for line in lines:
        stripped = line.strip()
        if current is None and not skipping:
            match = re.match(r"^```cpp\s*(.*)$", stripped)
            if match:
                skipping = match.group(1) == "no-compile"
                current = None if skipping else []
            continue
        if stripped == "```":
            if current is not None:
                snippets.append("\n".join(current) + "\n")
            current, skipping = None, False
            continue
        if current is not None:
            current.append(line)

    if not snippets:
        print(f"no ```cpp snippets found in {doc}", file=sys.stderr)
        return 1
    for index, snippet in enumerate(snippets):
        path = os.path.join(out_dir, f"snippet_{index:02d}.cpp")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"// extracted from {doc} (snippet {index})\n")
            handle.write(snippet)
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
