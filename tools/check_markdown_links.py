#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Walks the given markdown files/directories and verifies every inline link
`[text](target)`:

  * relative file targets must exist (resolved against the linking file's
    directory), and a `#fragment` on a markdown target must match a heading
    anchor in that file (GitHub slug rules: lowercase, punctuation dropped,
    spaces -> dashes);
  * bare `#fragment` targets must match a heading in the linking file;
  * http(s)/mailto targets are only checked for well-formedness (no
    network access in CI).

Exits non-zero listing every broken link. Fenced code blocks are skipped,
so `[i]`-style array indexing in snippets is not misread as a link.
"""

import functools
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_fenced_blocks(lines):
    kept, in_fence = [], False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        kept.append(line if not in_fence else "")
    return kept


def github_slug(heading):
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def heading_anchors(path):
    anchors = {}
    with open(path, encoding="utf-8") as handle:
        lines = strip_fenced_blocks(handle.read().splitlines())
    for line in lines:
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # Duplicate headings get -1, -2, ... suffixes on GitHub.
        count = anchors.get(slug, 0)
        anchors[slug] = count + 1
        if count:
            anchors[f"{slug}-{count}"] = 1
    return set(anchors)


def check_file(path, errors):
    directory = os.path.dirname(path) or "."
    with open(path, encoding="utf-8") as handle:
        lines = strip_fenced_blocks(handle.read().splitlines())
    for lineno, line in enumerate(lines, 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            where = f"{path}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if github_slug(target[1:]) not in heading_anchors(path):
                    errors.append(f"{where}: no heading for anchor "
                                  f"'{target}'")
                continue
            file_part, _, fragment = target.partition("#")
            resolved = os.path.normpath(os.path.join(directory, file_part))
            if not os.path.exists(resolved):
                errors.append(f"{where}: missing file '{target}'")
                continue
            if fragment and resolved.endswith(".md"):
                if github_slug(fragment) not in heading_anchors(resolved):
                    errors.append(f"{where}: '{file_part}' has no heading "
                                  f"for anchor '#{fragment}'")


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} <file-or-dir>...", file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                files.extend(os.path.join(root, name) for name in names
                             if name.endswith(".md"))
        else:
            files.append(arg)
    errors = []
    for path in sorted(files):
        check_file(path, errors)
    for error in errors:
        print(f"BROKEN LINK: {error}", file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
