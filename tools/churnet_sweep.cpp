// churnet_sweep: config-driven parameter sweeps over the scenario space.
//
// Runs a declarative grid — scenario list (any registry name, including
// "PDGR+pareto(2.5)+push(3)" churn/protocol composites) × protocol list
// (optional dissemination axis) × n list × d list — with replicated,
// seed-decorrelated trials fanned across the engine's thread pool, and
// emits a tidy long-format CSV and/or a JSON summary (message-complexity
// columns included). The output is bit-identical at every --threads value.
//
//   # inline grid (comma-separated lists)
//   ./churnet_sweep --scenarios PDGR,PDGR+pareto(2.5) --n 500,1000 --d 4,8 \
//                   --protocols "flood,push(3),push(3)+lossy(0.9)" \
//                   --reps 8 --threads 8 --csv sweep.csv
//
//   # JSON config file (same keys as the SweepSpec schema)
//   ./churnet_sweep --config sweep.json --json summary.json
//
//   # sweep service: 4 worker processes, checkpointed + streaming results;
//   # kill it at any point and --resume finishes the campaign with final
//   # CSV/JSON byte-identical to an uninterrupted single-process run
//   ./churnet_sweep --config sweep.json --workers 4 --checkpoint ckpt/ \
//                   --resume --results rows.ndjson --csv sweep.csv
//
// Inline flags override the config file's values key by key.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "churnet/churnet.hpp"

namespace {

using namespace churnet;

std::vector<std::uint32_t> split_u32_list(const std::string& text,
                                          const char* flag) {
  std::vector<std::uint32_t> values;
  for (const std::string& part : split_spec_list(text)) {
    char* end = nullptr;
    const long long value = std::strtoll(part.c_str(), &end, 10);
    if (end != part.c_str() + part.size() || value < 1) {
      std::fprintf(stderr, "--%s: bad entry '%s' (need integers >= 1)\n",
                   flag, part.c_str());
      std::exit(1);
    }
    values.push_back(static_cast<std::uint32_t>(value));
  }
  return values;
}

/// Writes through a sink member to `path` ("-" = stdout).
template <typename Writer>
void write_sink(const std::string& path, const char* what, bool quiet,
                const Writer& writer) {
  if (path == "-") {
    writer(std::cout);
    return;
  }
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s file '%s'\n", what, path.c_str());
    std::exit(1);
  }
  writer(file);
  if (!quiet) std::printf("wrote %s to %s\n", what, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "churnet_sweep: run a scenario x n x d grid with replicated trials "
      "and emit long-format CSV / JSON results");
  cli.add_string("config", "", "JSON sweep spec file (SweepSpec schema)");
  cli.add_string("scenarios", "",
                 "comma-separated scenario names; '+spec' attaches a churn "
                 "regime (e.g. PDGR+pareto(2.5))");
  cli.add_string("n", "", "comma-separated network sizes");
  cli.add_string("d", "", "comma-separated request counts");
  cli.add_string("protocols", "",
                 "comma-separated dissemination protocols (see "
                 "--list-protocols); empty = each scenario's own");
  cli.add_string("metrics", "",
                 "comma-separated metrics (see --list-metrics)");
  cli.add_string("observers", "",
                 "metric-observer set attached to every cell, e.g. "
                 "'expansion(8)+spectral+isolated' (see --list-observers)");
  cli.add_flag("incremental-observers",
               "run the observer set delta-fed (wall-clock knob; output is "
               "byte-identical to the from-scratch path)");
  cli.add_int("reps", 0, "replications per cell (0 = config/default)");
  cli.add_int("seed", 0, "base seed (0 = config/default)");
  cli.add_int("max-in-degree", 0, "bounded-degree cap (0 = unbounded)");
  cli.add_int("threads", 1, "worker threads (0 = all cores)");
  cli.add_int("workers", 0,
              "worker *processes* (coordinator/worker mode, >= 2); 0/1 = "
              "in-process --threads pool; output is byte-identical either "
              "way");
  cli.add_int("intra-threads", 0,
              "intra-trial worker threads per job (0 = config/default); "
              "output is byte-identical at every value");
  cli.add_string("csv", "", "write long-format CSV here ('-' = stdout)");
  cli.add_string("json", "", "write JSON summary here ('-' = stdout)");
  cli.add_string("telemetry", "",
                 "stream an NDJSON telemetry trace here (phase timers, "
                 "counters, heartbeats; results stay byte-identical)");
  cli.add_string("results", "",
                 "stream NDJSON result rows here as jobs finish (schema "
                 "v1 sweep_header/row/sweep_footer; final CSV/JSON stay "
                 "byte-identical)");
  cli.add_string("checkpoint", "",
                 "journal completed jobs under this directory "
                 "(journal.ndjson, fsync'd per batch) so a killed run can "
                 "--resume with byte-identical final output");
  cli.add_flag("resume",
               "resume from --checkpoint's journal: completed jobs are "
               "restored, only missing ones run");
  cli.add_int("batch", 0,
              "jobs per work-stealing handout and journal fsync "
              "(0 = auto); a SIGKILL loses at most one batch");
  cli.add_int("kill-after", 0,
              "test hook: sync the journal and raise SIGKILL after this "
              "many jobs complete (exercises crash/resume)");
  cli.add_string("worker-traces", "",
                 "per-worker telemetry trace file prefix: worker k writes "
                 "<prefix><k>.ndjson tagged \"worker\":k");
  cli.add_flag("progress",
               "print heartbeat progress lines ([jobs/total] eta) to "
               "stderr while the sweep runs");
  cli.add_flag("list-metrics", "print the metric catalog and exit");
  cli.add_flag("list-scenarios", "print the extended registry and exit");
  cli.add_flag("list-protocols", "print the protocol catalog and exit");
  cli.add_flag("list-observers", "print the observer catalog and exit");
  cli.add_flag("list-churn", "print the churn-regime catalog and exit");
  cli.add_flag("list-specs",
               "print every spec catalog (scenarios, churn, protocols, "
               "observers, metrics) and exit");
  cli.add_flag("quiet", "suppress the stdout summary table");
  if (!cli.parse(argc, argv)) return 0;

  // Every listing goes through the shared spec-catalog helper
  // (engine/spec_catalog.hpp), so churnet_sweep, churnet_repro and the
  // error paths below always cite the same catalogs.
  if (cli.get_flag("list-specs")) {
    print_spec_catalogs(std::cout);
    return 0;
  }
  if (cli.get_flag("list-metrics")) {
    print_metric_catalog(std::cout);
    return 0;
  }
  if (cli.get_flag("list-scenarios")) {
    print_scenario_catalog(std::cout, ScenarioRegistry::extended());
    return 0;
  }
  if (cli.get_flag("list-protocols")) {
    print_protocol_catalog(std::cout);
    return 0;
  }
  if (cli.get_flag("list-observers")) {
    print_observer_catalog(std::cout);
    return 0;
  }
  if (cli.get_flag("list-churn")) {
    print_churn_catalog(std::cout);
    return 0;
  }

  SweepSpec spec;
  const std::string config_path = cli.get_string("config");
  if (!config_path.empty()) {
    std::ifstream file(config_path);
    if (!file) {
      std::fprintf(stderr, "cannot read config file '%s'\n",
                   config_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    std::string error;
    const std::optional<SweepSpec> loaded =
        SweepSpec::from_json_text(text.str(), &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s: %s\n", config_path.c_str(), error.c_str());
      return 1;
    }
    spec = *loaded;
  }

  // Inline flags override config values key by key.
  if (!cli.get_string("scenarios").empty()) {
    spec.scenarios = split_spec_list(cli.get_string("scenarios"));
  }
  if (!cli.get_string("n").empty()) {
    spec.n_values = split_u32_list(cli.get_string("n"), "n");
  }
  if (!cli.get_string("d").empty()) {
    spec.d_values = split_u32_list(cli.get_string("d"), "d");
  }
  if (!cli.get_string("protocols").empty()) {
    spec.protocols = split_spec_list(cli.get_string("protocols"));
  }
  if (!cli.get_string("metrics").empty()) {
    spec.metrics = split_spec_list(cli.get_string("metrics"));
  }
  if (!cli.get_string("observers").empty()) {
    spec.observers = cli.get_string("observers");
  }
  if (cli.get_flag("incremental-observers")) {
    spec.incremental_observers = true;
  }
  if (cli.get_int("reps") > 0) {
    spec.replications = static_cast<std::uint64_t>(cli.get_int("reps"));
  }
  if (cli.get_int("seed") > 0) {
    spec.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  }
  if (cli.get_int("max-in-degree") > 0) {
    spec.max_in_degree =
        static_cast<std::uint32_t>(cli.get_int("max-in-degree"));
  }
  if (cli.get_int("intra-threads") > 0) {
    spec.intra_threads =
        static_cast<std::uint32_t>(cli.get_int("intra-threads"));
  }

  if (spec.scenarios.empty()) {
    std::fprintf(stderr,
                 "no grid: pass --config <file> or --scenarios/--n/--d "
                 "(see --help)\n");
    return 1;
  }
  if (const std::optional<std::string> reason = spec.validate()) {
    std::fprintf(stderr, "invalid sweep spec: %s\n", reason->c_str());
    std::cerr << '\n';
    print_spec_catalogs(std::cerr);
    return 1;
  }

  const unsigned threads = static_cast<unsigned>(cli.get_int("threads"));
  if (!cli.get_flag("quiet")) {
    std::printf("sweep: %zu scenario(s) x %zu protocol(s) x %zu n x %zu d "
                "= %zu cells, %llu replication(s) each\n",
                spec.scenarios.size(),
                std::max<std::size_t>(spec.protocols.size(), 1),
                spec.n_values.size(), spec.d_values.size(),
                spec.cell_count(),
                static_cast<unsigned long long>(spec.replications));
  }

  // Telemetry: optional NDJSON trace and/or stderr heartbeat. The sink is
  // off-path by construction (no RNG, clocks only) — CSV/JSON results are
  // byte-identical with or without it, at any thread count.
  const std::string telemetry_path = cli.get_string("telemetry");
  const bool progress = cli.get_flag("progress");
  std::ofstream trace_file;
  if (!telemetry_path.empty()) {
    trace_file.open(telemetry_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open telemetry file '%s'\n",
                   telemetry_path.c_str());
      return 1;
    }
  }
  std::optional<telemetry::ScopedTraceSink> scoped_sink;
  if (trace_file.is_open() || progress) {
    telemetry::TraceSink::Options options;
    options.out = trace_file.is_open() ? &trace_file : nullptr;
    options.progress = progress;
    options.tool = "churnet_sweep";
    scoped_sink.emplace(options);
  }

  // Everything routes through the sweep service: with no service flags it
  // is exactly the in-process pool (byte-identical to SweepRunner::run),
  // and --workers/--checkpoint/--resume/--results compose on top without
  // changing a byte of the CSV/JSON output.
  SweepServiceOptions service;
  service.threads = threads;
  service.workers = static_cast<unsigned>(cli.get_int("workers"));
  service.checkpoint_dir = cli.get_string("checkpoint");
  service.resume = cli.get_flag("resume");
  service.batch = static_cast<std::uint64_t>(cli.get_int("batch"));
  service.kill_after =
      static_cast<std::uint64_t>(cli.get_int("kill-after"));
  service.worker_trace_prefix = cli.get_string("worker-traces");
  service.tool = "churnet_sweep";
  if (service.resume && service.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint <dir>\n");
    return 1;
  }
  std::ofstream results_file;
  const std::string results_path = cli.get_string("results");
  if (!results_path.empty()) {
    results_file.open(results_path);
    if (!results_file) {
      std::fprintf(stderr, "cannot open results file '%s'\n",
                   results_path.c_str());
      return 1;
    }
    service.results = &results_file;
  }

  SweepServiceReport report;
  std::optional<SweepResult> result;
  try {
    result.emplace(SweepService(spec, service)
                       .run(ScenarioRegistry::extended(), &report));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  scoped_sink.reset();  // flush trace_end before reporting

  if (!cli.get_flag("quiet")) {
    result->to_table().print(std::cout);
    std::printf("\n%zu cells x %llu replications on %u %s in %.2fs\n",
                result->cells().size(),
                static_cast<unsigned long long>(spec.replications),
                report.workers_used,
                service.workers >= 2 ? "worker process(es)" : "thread(s)",
                result->wall_seconds());
    if (report.jobs_resumed > 0) {
      std::printf("checkpoint: %llu job(s) resumed, %llu run this "
                  "session\n",
                  static_cast<unsigned long long>(report.jobs_resumed),
                  static_cast<unsigned long long>(report.jobs_run));
    }
  }

  const bool quiet = cli.get_flag("quiet");
  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    write_sink(csv_path, "CSV", quiet,
               [&result](std::ostream& os) { result->write_csv(os); });
  }
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    write_sink(json_path, "JSON", quiet,
               [&result](std::ostream& os) { result->write_json(os); });
  }
  return 0;
}
