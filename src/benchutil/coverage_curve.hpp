// Shared per-round informed-coverage observer for flood/protocol traces.
//
// Every bench that plots an S-curve needs the same three steps: turn a
// trace's per-step (|I_t|, |N_t|) series into coverage fractions, pad the
// ragged tail to a fixed metric length so the TrialRunner can treat each
// round as a metric column, and take the per-round median across
// replications. This was duplicated between the flood-driver callers and
// bench_flooding_curve; it lives here once now, and works unchanged for
// dissemination-protocol traces (ProtocolResult::trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flooding/flood_driver.hpp"

namespace churnet {

/// Records fixed-length per-round coverage curves suitable for use as
/// TrialRunner metric vectors ("frac_step_0" ... "frac_step_<steps>").
class CoverageCurveRecorder {
 public:
  /// Observes rounds 0..steps (inclusive): steps+1 metric columns.
  explicit CoverageCurveRecorder(std::uint64_t steps);

  std::uint64_t steps() const { return steps_; }

  /// The per-round metric names, one per observed round.
  const std::vector<std::string>& metric_names() const { return names_; }

  /// The trace's per-round coverage fractions |I_t| / |N_t|, padded with
  /// the final value to exactly steps()+1 entries (early stops hold their
  /// last coverage). Requires a trace recorded with record_series.
  std::vector<double> curve_of(const FloodTrace& trace) const;

  /// Per-round median across replications; ragged inputs are padded with
  /// their own final value, so early completions keep counting.
  static std::vector<double> median_curve(
      const std::vector<std::vector<double>>& curves);

 private:
  std::uint64_t steps_;
  std::vector<std::string> names_;
};

/// The raw (unpadded) coverage fractions of a trace, one per recorded
/// step.
std::vector<double> coverage_fractions(const FloodTrace& trace);

}  // namespace churnet
