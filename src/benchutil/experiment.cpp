#include "benchutil/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/assertx.hpp"
#include "common/sinks.hpp"

namespace churnet {
namespace {

/// The process-wide result log behind --csv/--json (see the header).
struct ResultLog {
  std::mutex mutex;
  std::string csv_path;
  std::string json_path;
  bool atexit_registered = false;
  struct Entry {
    std::string label;
    TrialResult result;
  };
  std::vector<Entry> entries;

  static ResultLog& instance() {
    static ResultLog log;
    return log;
  }

  bool armed() const { return !csv_path.empty() || !json_path.empty(); }
};

void write_result_csv(std::ostream& os,
                      const std::vector<ResultLog::Entry>& entries) {
  const PrecisionGuard precision(os);
  os << "label,stream,replication,seed,metric,value\n";
  for (const ResultLog::Entry& entry : entries) {
    const TrialResult& result = entry.result;
    const TrialRunnerOptions& options = result.options();
    const std::string label_field = csv_field(entry.label);
    for (std::size_t r = 0; r < result.samples().size(); ++r) {
      const std::uint64_t seed =
          derive_seed(options.base_seed, options.stream, r);
      for (std::size_t m = 0; m < result.metrics().size(); ++m) {
        os << label_field << ',' << options.stream << ',' << r << ','
           << seed << ',' << csv_field(result.metrics()[m]) << ',';
        const double value = result.samples()[r][m];
        if (!std::isnan(value)) os << value;
        os << '\n';
      }
    }
  }
}

void write_result_json(std::ostream& os,
                       const std::vector<ResultLog::Entry>& entries) {
  os << "{\"results\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"label\":";
    write_json_string(os, entries[i].label);
    os << ",\"trial\":";
    entries[i].result.write_json(os);
    os << '}';
  }
  os << "]}";
}

}  // namespace

void add_standard_options(Cli& cli) {
  cli.add_int("seed", 12345, "base seed for all replications");
  cli.add_double("reps-factor", 1.0, "multiplier on replication counts");
  cli.add_flag("quick", "half-scale run (sizes and replications)");
  cli.add_flag("full", "4x-scale run (sizes and replications)");
  cli.add_int("threads", 1,
              "worker threads for replication loops (0 = all cores)");
  cli.add_string("csv", "",
                 "persist per-replication results as long-format CSV here");
  cli.add_string("json", "", "persist result summaries as JSON here");
}

BenchScale scale_from_cli(const Cli& cli) {
  configure_result_output(cli);
  BenchScale scale;
  if (cli.get_flag("quick")) {
    scale.size_factor = 0.5;
    scale.rep_factor = 0.5;
  } else if (cli.get_flag("full")) {
    scale.size_factor = 4.0;
    scale.rep_factor = 4.0;
  }
  scale.rep_factor *= cli.get_double("reps-factor");
  return scale;
}

void configure_result_output(const Cli& cli) {
  ResultLog& log = ResultLog::instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  log.csv_path = cli.get_string("csv");
  log.json_path = cli.get_string("json");
  if (log.armed() && !log.atexit_registered) {
    std::atexit(flush_result_output);
    log.atexit_registered = true;
  }
}

void record_trial(const std::string& label, const TrialResult& result) {
  ResultLog& log = ResultLog::instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  if (!log.armed()) return;
  log.entries.push_back(ResultLog::Entry{label, result});
}

void flush_result_output() {
  ResultLog& log = ResultLog::instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  if (!log.csv_path.empty()) {
    std::ofstream file(log.csv_path);
    if (file) {
      write_result_csv(file, log.entries);
    } else {
      std::fprintf(stderr, "cannot open --csv file '%s'\n",
                   log.csv_path.c_str());
    }
  }
  if (!log.json_path.empty()) {
    std::ofstream file(log.json_path);
    if (file) {
      write_result_json(file, log.entries);
    } else {
      std::fprintf(stderr, "cannot open --json file '%s'\n",
                   log.json_path.c_str());
    }
  }
}

std::uint64_t seed_from_cli(const Cli& cli) {
  return static_cast<std::uint64_t>(cli.get_int("seed"));
}

unsigned threads_from_cli(const Cli& cli) {
  return static_cast<unsigned>(cli.get_int("threads"));
}

std::uint64_t scaled(std::uint64_t base, double factor,
                     std::uint64_t minimum) {
  const double value = static_cast<double>(base) * factor;
  return std::max<std::uint64_t>(minimum,
                                 static_cast<std::uint64_t>(std::llround(value)));
}

void print_experiment_header(const std::string& experiment_id,
                             const std::string& paper_claim) {
  std::printf("== %s ==\n", experiment_id.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

OnlineStats run_replications(
    std::uint64_t replications,
    const std::function<double(std::uint64_t)>& body) {
  CHURNET_EXPECTS(replications > 0);
  OnlineStats stats;
  for (std::uint64_t rep = 0; rep < replications; ++rep) {
    stats.add(body(rep));
  }
  return stats;
}

OnlineStats run_replications_parallel(
    std::uint64_t replications, unsigned threads, std::uint64_t base_seed,
    std::uint64_t stream,
    const std::function<double(std::uint64_t, std::uint64_t)>& body) {
  TrialRunnerOptions options;
  options.replications = replications;
  options.threads = threads;
  options.base_seed = base_seed;
  options.stream = stream;
  const TrialResult result = TrialRunner(options).run(
      "value",
      [&body](const TrialContext& ctx) {
        return body(ctx.replication, ctx.seed);
      });
  record_trial("stream-" + std::to_string(stream), result);
  return result.stats("value");
}

std::string verdict(bool pass) { return pass ? "PASS" : "FAIL"; }

}  // namespace churnet
