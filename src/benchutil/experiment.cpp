#include "benchutil/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assertx.hpp"

namespace churnet {

void add_standard_options(Cli& cli) {
  cli.add_int("seed", 12345, "base seed for all replications");
  cli.add_double("reps-factor", 1.0, "multiplier on replication counts");
  cli.add_flag("quick", "half-scale run (sizes and replications)");
  cli.add_flag("full", "4x-scale run (sizes and replications)");
  cli.add_int("threads", 1,
              "worker threads for replication loops (0 = all cores)");
}

BenchScale scale_from_cli(const Cli& cli) {
  BenchScale scale;
  if (cli.get_flag("quick")) {
    scale.size_factor = 0.5;
    scale.rep_factor = 0.5;
  } else if (cli.get_flag("full")) {
    scale.size_factor = 4.0;
    scale.rep_factor = 4.0;
  }
  scale.rep_factor *= cli.get_double("reps-factor");
  return scale;
}

std::uint64_t seed_from_cli(const Cli& cli) {
  return static_cast<std::uint64_t>(cli.get_int("seed"));
}

unsigned threads_from_cli(const Cli& cli) {
  return static_cast<unsigned>(cli.get_int("threads"));
}

std::uint64_t scaled(std::uint64_t base, double factor,
                     std::uint64_t minimum) {
  const double value = static_cast<double>(base) * factor;
  return std::max<std::uint64_t>(minimum,
                                 static_cast<std::uint64_t>(std::llround(value)));
}

void print_experiment_header(const std::string& experiment_id,
                             const std::string& paper_claim) {
  std::printf("== %s ==\n", experiment_id.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

OnlineStats run_replications(
    std::uint64_t replications,
    const std::function<double(std::uint64_t)>& body) {
  CHURNET_EXPECTS(replications > 0);
  OnlineStats stats;
  for (std::uint64_t rep = 0; rep < replications; ++rep) {
    stats.add(body(rep));
  }
  return stats;
}

OnlineStats run_replications_parallel(
    std::uint64_t replications, unsigned threads, std::uint64_t base_seed,
    std::uint64_t stream,
    const std::function<double(std::uint64_t, std::uint64_t)>& body) {
  TrialRunnerOptions options;
  options.replications = replications;
  options.threads = threads;
  options.base_seed = base_seed;
  options.stream = stream;
  const TrialResult result = TrialRunner(options).run(
      "value",
      [&body](const TrialContext& ctx) {
        return body(ctx.replication, ctx.seed);
      });
  return result.stats("value");
}

std::string verdict(bool pass) { return pass ? "PASS" : "FAIL"; }

}  // namespace churnet
