// Shared experiment-harness helpers for the bench binaries: seed derivation,
// replication loops, scale switches and uniform headers, so every bench
// prints paper-expected vs measured columns the same way.
//
// Replication loops delegate to the engine (engine/trial_runner.hpp): every
// replication seed is derive_seed(base, stream, replication), and
// run_replications_parallel fans the loop across a thread pool with
// thread-count-independent results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"  // derive_seed lives with the RNG machinery
#include "common/stats.hpp"
#include "engine/trial_runner.hpp"

namespace churnet {

/// Standard experiment scale: benches multiply their default n / replication
/// counts by these factors.
struct BenchScale {
  double size_factor = 1.0;
  double rep_factor = 1.0;
};

/// Adds the standard options (--seed, --reps-factor, --quick, --full,
/// --threads) to a CLI. Benches call this once before parse().
void add_standard_options(Cli& cli);

/// Reads the standard options; --quick halves sizes and reps, --full
/// quadruples them.
BenchScale scale_from_cli(const Cli& cli);

/// Base seed from --seed.
std::uint64_t seed_from_cli(const Cli& cli);

/// Worker threads from --threads (0 = all hardware threads).
unsigned threads_from_cli(const Cli& cli);

/// Scales a default count by a factor with a floor of `minimum`.
std::uint64_t scaled(std::uint64_t base, double factor,
                     std::uint64_t minimum = 1);

/// Prints the uniform experiment banner: id, paper claim, and a rule.
void print_experiment_header(const std::string& experiment_id,
                             const std::string& paper_claim);

/// Runs `replications` calls of `body(replication_index)` and returns the
/// accumulated statistics of its return values.
OnlineStats run_replications(std::uint64_t replications,
                             const std::function<double(std::uint64_t)>& body);

/// Parallel replication loop over the engine's TrialRunner: replication r
/// runs on some pool thread with seed derive_seed(base_seed, stream, r),
/// and the returned statistics are identical for every thread count. The
/// body must derive ALL of its randomness from the provided seed.
OnlineStats run_replications_parallel(
    std::uint64_t replications, unsigned threads, std::uint64_t base_seed,
    std::uint64_t stream,
    const std::function<double(std::uint64_t replication, std::uint64_t seed)>&
        body);

/// "PASS"/"FAIL" with a measured-vs-expected note, for verdict columns.
std::string verdict(bool pass);

}  // namespace churnet
