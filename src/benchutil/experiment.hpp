// Shared experiment-harness helpers for the bench binaries: seed derivation,
// replication loops, scale switches and uniform headers, so every bench
// prints paper-expected vs measured columns the same way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/cli.hpp"
#include "common/stats.hpp"

namespace churnet {

/// Derives a per-replication seed from a base seed and stream/replication
/// indices, decorrelated through splitmix-style mixing.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                          std::uint64_t replication);

/// Standard experiment scale: benches multiply their default n / replication
/// counts by these factors.
struct BenchScale {
  double size_factor = 1.0;
  double rep_factor = 1.0;
};

/// Adds the standard options (--seed, --reps-factor, --quick, --full) to a
/// CLI. Benches call this once before parse().
void add_standard_options(Cli& cli);

/// Reads the standard options; --quick halves sizes and reps, --full
/// quadruples them.
BenchScale scale_from_cli(const Cli& cli);

/// Base seed from --seed.
std::uint64_t seed_from_cli(const Cli& cli);

/// Scales a default count by a factor with a floor of `minimum`.
std::uint64_t scaled(std::uint64_t base, double factor,
                     std::uint64_t minimum = 1);

/// Prints the uniform experiment banner: id, paper claim, and a rule.
void print_experiment_header(const std::string& experiment_id,
                             const std::string& paper_claim);

/// Runs `replications` calls of `body(replication_index)` and returns the
/// accumulated statistics of its return values.
OnlineStats run_replications(std::uint64_t replications,
                             const std::function<double(std::uint64_t)>& body);

/// "PASS"/"FAIL" with a measured-vs-expected note, for verdict columns.
std::string verdict(bool pass);

}  // namespace churnet
