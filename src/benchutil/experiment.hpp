// Shared experiment-harness helpers for the bench binaries: seed derivation,
// replication loops, scale switches and uniform headers, so every bench
// prints paper-expected vs measured columns the same way.
//
// Replication loops delegate to the engine (engine/trial_runner.hpp): every
// replication seed is derive_seed(base, stream, replication), and
// run_replications_parallel fans the loop across a thread pool with
// thread-count-independent results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"  // derive_seed lives with the RNG machinery
#include "common/stats.hpp"
#include "engine/trial_runner.hpp"

namespace churnet {

/// Standard experiment scale: benches multiply their default n / replication
/// counts by these factors.
struct BenchScale {
  double size_factor = 1.0;
  double rep_factor = 1.0;
};

/// Adds the standard options (--seed, --reps-factor, --quick, --full,
/// --threads, --csv, --json) to a CLI. Benches call this once before
/// parse().
void add_standard_options(Cli& cli);

/// Reads the standard options; --quick halves sizes and reps, --full
/// quadruples them. Also configures the result log from --csv/--json
/// (see configure_result_output), so every bench that uses the standard
/// options persists its TrialRunner results without further code.
BenchScale scale_from_cli(const Cli& cli);

/// Base seed from --seed.
std::uint64_t seed_from_cli(const Cli& cli);

/// Worker threads from --threads (0 = all hardware threads).
unsigned threads_from_cli(const Cli& cli);

/// Scales a default count by a factor with a floor of `minimum`.
std::uint64_t scaled(std::uint64_t base, double factor,
                     std::uint64_t minimum = 1);

/// Prints the uniform experiment banner: id, paper claim, and a rule.
void print_experiment_header(const std::string& experiment_id,
                             const std::string& paper_claim);

/// Runs `replications` calls of `body(replication_index)` and returns the
/// accumulated statistics of its return values.
OnlineStats run_replications(std::uint64_t replications,
                             const std::function<double(std::uint64_t)>& body);

/// Parallel replication loop over the engine's TrialRunner: replication r
/// runs on some pool thread with seed derive_seed(base_seed, stream, r),
/// and the returned statistics are identical for every thread count. The
/// body must derive ALL of its randomness from the provided seed.
OnlineStats run_replications_parallel(
    std::uint64_t replications, unsigned threads, std::uint64_t base_seed,
    std::uint64_t stream,
    const std::function<double(std::uint64_t replication, std::uint64_t seed)>&
        body);

/// "PASS"/"FAIL" with a measured-vs-expected note, for verdict columns.
std::string verdict(bool pass);

// ---- persisted results (--csv / --json) ------------------------------------
//
// A process-wide labeled log of TrialResults. When --csv/--json paths are
// configured (scale_from_cli does it from the standard options), every
// run_replications_parallel call records its TrialResult automatically,
// benches driving TrialRunner directly add theirs via record_trial(), and
// the log is written on flush_result_output() — also registered atexit, so
// existing benches persist results with zero code changes:
//
//   ./bench_flooding_time --csv results.csv --json results.json
//
// The CSV is tidy long format (label,stream,replication,seed,metric,value,
// one row per observation); the JSON is an array of labeled TrialRunner
// JSON sink objects.

/// Reads --csv/--json from the CLI and arms the log (no-op when both are
/// empty). Safe to call once per process, before any trials run.
void configure_result_output(const Cli& cli);

/// Records a labeled TrialResult into the log (no-op when no output is
/// configured). Thread-safe.
void record_trial(const std::string& label, const TrialResult& result);

/// Writes the accumulated log to the configured paths (whole-file rewrite;
/// idempotent). Runs automatically at process exit.
void flush_result_output();

}  // namespace churnet
