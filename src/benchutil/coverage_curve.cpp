#include "benchutil/coverage_curve.hpp"

#include <algorithm>

#include "common/assertx.hpp"
#include "common/stats.hpp"

namespace churnet {

CoverageCurveRecorder::CoverageCurveRecorder(std::uint64_t steps)
    : steps_(steps) {
  names_.reserve(steps + 1);
  for (std::uint64_t t = 0; t <= steps; ++t) {
    names_.push_back("frac_step_" + std::to_string(t));
  }
}

std::vector<double> CoverageCurveRecorder::curve_of(
    const FloodTrace& trace) const {
  std::vector<double> curve = coverage_fractions(trace);
  CHURNET_EXPECTS(!curve.empty());  // needs FloodOptions::record_series
  curve.resize(steps_ + 1, curve.back());  // pad early stops
  return curve;
}

std::vector<double> CoverageCurveRecorder::median_curve(
    const std::vector<std::vector<double>>& curves) {
  std::size_t longest = 0;
  for (const auto& curve : curves) longest = std::max(longest, curve.size());
  std::vector<double> result;
  result.reserve(longest);
  std::vector<double> column;
  for (std::size_t t = 0; t < longest; ++t) {
    column.clear();
    for (const auto& curve : curves) {
      if (curve.empty()) continue;
      column.push_back(t < curve.size() ? curve[t] : curve.back());
    }
    result.push_back(median(column));
  }
  return result;
}

std::vector<double> coverage_fractions(const FloodTrace& trace) {
  std::vector<double> result;
  result.reserve(trace.informed_per_step.size());
  for (std::size_t t = 0; t < trace.informed_per_step.size(); ++t) {
    const double alive = static_cast<double>(trace.alive_per_step[t]);
    result.push_back(alive == 0.0 ? 0.0
                                  : static_cast<double>(
                                        trace.informed_per_step[t]) /
                                        alive);
  }
  return result;
}

}  // namespace churnet
