// Bitcoin-like unstructured P2P overlay under Poisson churn.
//
// The paper motivates the PDGR model as an idealization of how networks
// like Bitcoin maintain a random sparse topology (Sections 1.1, 2, 5): each
// full node keeps a target out-degree, a bounded in-degree, and a large
// locally stored address list seeded by DNS seeds and refreshed by gossip,
// from which it redials whenever it loses a neighbor. This module
// implements that mechanism concretely so examples and benches can compare
// the engineered overlay against the idealized PDGR (which dials uniformly
// from the *full* live node set):
//
//   * birth: bootstrap the address table from `seed_sample` live nodes
//     ("DNS seeds"), then dial up to `target_out` peers from the table;
//   * death: every surviving node that lost an out-peer redials from its
//     own table (stale entries fail and are evicted; dials also fail when
//     the callee's in-degree is at `max_in`);
//   * on every successful dial the two peers exchange `gossip_sample`
//     addresses (plus each other's), keeping tables fresh.
//
// The overlay exposes the same informal interface as PoissonNetwork
// (set_hooks / graph / step / peek_next_event_time / now), so the async
// flooding driver runs on it unchanged — "block propagation".
#pragma once

#include <cstdint>
#include <vector>

#include "churn/poisson_churn.hpp"
#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/edge_policy.hpp"
#include "p2p/address_table.hpp"

namespace churnet {

struct P2pConfig {
  double lambda = 1.0;           // node arrival rate
  double mu = 1e-3;              // per-node departure rate
  std::uint32_t target_out = 8;  // Bitcoin Core's default outbound target
  std::uint32_t max_in = 64;     // bounded inbound slots
  /// Bounded address book. Sized so gossip turns the table over roughly
  /// once per expected lifetime, keeping the stale fraction moderate.
  std::uint32_t table_capacity = 128;
  std::uint32_t seed_sample = 16;    // DNS-seed addresses at bootstrap
  std::uint32_t gossip_sample = 8;   // addresses exchanged per connection
  std::uint32_t dial_attempts = 8;   // tries per wanted connection
  std::uint64_t seed = 1;

  /// Paper parameterization: lambda = 1, mu = 1/n.
  static P2pConfig with_n(std::uint32_t n, std::uint64_t seed);
};

class P2pNetwork {
 public:
  explicit P2pNetwork(P2pConfig config);

  struct EventReport {
    ChurnEvent::Kind kind = ChurnEvent::Kind::kBirth;
    double time = 0.0;
    NodeId node;
  };

  /// Executes the next churn event plus the overlay maintenance it triggers.
  EventReport step();

  void run_events(std::uint64_t events);
  void run_until(double time);
  void warm_up(double multiple = 10.0);

  /// Absolute time of the next churn event without executing it.
  double peek_next_event_time();

  Snapshot snapshot() const { return Snapshot::capture(graph_, now_); }
  const DynamicGraph& graph() const { return graph_; }
  double now() const { return now_; }
  const P2pConfig& config() const { return config_; }
  Rng& rng() { return rng_; }
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

  /// Attaches a caller-owned change feed to the underlying graph so every
  /// churn mutation records a GraphDelta (graph/change_feed.hpp);
  /// nullptr detaches.
  void attach_change_feed(ChangeFeed* feed) {
    graph_.attach_change_feed(feed);
  }

  // ---- overlay health metrics -----------------------------------------

  /// Dials that failed (stale address or full callee) since construction.
  std::uint64_t failed_dials() const { return failed_dials_; }
  std::uint64_t successful_dials() const { return successful_dials_; }
  /// Out-slots currently dangling network-wide (unfillable wants).
  std::uint64_t dangling_out_slots() const;
  /// Fraction of address-table entries pointing at dead peers, averaged
  /// over alive nodes (staleness of the distributed address database).
  double mean_table_staleness() const;
  const AddressTable& table_of(NodeId node) const;

 private:
  EventReport apply(const ChurnEvent& event);
  void bootstrap(NodeId newborn);
  /// Tries to fill one out-slot of `owner` from its address table.
  bool dial_from_table(NodeId owner, std::uint32_t slot_index);
  /// Retries every dangling out-slot of `owner` (connection maintenance).
  void fill_dangling(NodeId owner);
  void gossip_exchange(NodeId a, NodeId b);
  AddressTable& table_ref(NodeId node);

  P2pConfig config_;
  PoissonChurn churn_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
  double now_ = 0.0;
  bool pending_valid_ = false;
  ChurnEvent pending_{};
  std::vector<AddressTable> tables_;  // indexed by slot, reset at birth
  RemovalScratch removal_scratch_;  // reused across events; zero-alloc deaths
  mutable std::vector<NodeId> alive_scratch_;  // for full-population scans
  std::uint64_t failed_dials_ = 0;
  std::uint64_t successful_dials_ = 0;
};

}  // namespace churnet
