// Per-peer address book, modelled after Bitcoin Core's address manager in
// spirit (paper Section 1.1): a bounded list of known peer addresses,
// seeded at bootstrap and refreshed through gossip, from which replacement
// neighbors are sampled. Entries can go stale (the peer may have left);
// staleness is only discovered when a dial fails.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/node_id.hpp"

namespace churnet {

class AddressTable {
 public:
  /// `capacity` bounds the number of stored addresses.
  explicit AddressTable(std::uint32_t capacity = 256);

  /// Inserts an address; deduplicates; when full, overwrites a uniformly
  /// random entry (cheap approximation of bucket eviction).
  void insert(NodeId address, Rng& rng);

  /// Removes an address if present (used when a dial reveals staleness).
  void erase(NodeId address);

  /// Uniform random entry; invalid id if the table is empty.
  NodeId sample(Rng& rng) const;

  /// Up to `count` distinct random entries (for gossip advertisement).
  std::vector<NodeId> sample_many(std::uint32_t count, Rng& rng) const;

  bool contains(NodeId address) const;

  /// Read-only view of all stored addresses (order is unspecified).
  std::span<const NodeId> entries() const { return entries_; }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  std::uint32_t capacity() const { return capacity_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::uint32_t capacity_;
  std::vector<NodeId> entries_;
};

}  // namespace churnet
