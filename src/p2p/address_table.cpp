#include "p2p/address_table.hpp"

#include <algorithm>

#include "common/assertx.hpp"

namespace churnet {

AddressTable::AddressTable(std::uint32_t capacity) : capacity_(capacity) {
  CHURNET_EXPECTS(capacity >= 1);
  entries_.reserve(capacity);
}

void AddressTable::insert(NodeId address, Rng& rng) {
  CHURNET_EXPECTS(address.valid());
  if (contains(address)) return;
  if (entries_.size() < capacity_) {
    entries_.push_back(address);
    return;
  }
  entries_[static_cast<std::size_t>(rng.below(entries_.size()))] = address;
}

void AddressTable::erase(NodeId address) {
  const auto it = std::find(entries_.begin(), entries_.end(), address);
  if (it == entries_.end()) return;
  *it = entries_.back();
  entries_.pop_back();
}

NodeId AddressTable::sample(Rng& rng) const {
  if (entries_.empty()) return kInvalidNode;
  return entries_[static_cast<std::size_t>(rng.below(entries_.size()))];
}

std::vector<NodeId> AddressTable::sample_many(std::uint32_t count,
                                              Rng& rng) const {
  const auto want = std::min<std::uint64_t>(count, entries_.size());
  std::vector<NodeId> out;
  out.reserve(want);
  for (const std::uint64_t i : rng.sample_distinct(entries_.size(), want)) {
    out.push_back(entries_[static_cast<std::size_t>(i)]);
  }
  return out;
}

bool AddressTable::contains(NodeId address) const {
  return std::find(entries_.begin(), entries_.end(), address) !=
         entries_.end();
}

}  // namespace churnet
