#include "p2p/p2p_network.hpp"

#include <algorithm>

#include "common/assertx.hpp"
#include "models/wiring.hpp"

namespace churnet {

P2pConfig P2pConfig::with_n(std::uint32_t n, std::uint64_t seed) {
  CHURNET_EXPECTS(n >= 1);
  P2pConfig config;
  config.lambda = 1.0;
  config.mu = 1.0 / static_cast<double>(n);
  config.seed = seed;
  return config;
}

P2pNetwork::P2pNetwork(P2pConfig config)
    : config_(config),
      churn_(config.lambda, config.mu, Rng(config.seed).next_u64()),
      rng_(config.seed + 0x6C8E9CF570932BD5ULL) {
  CHURNET_EXPECTS(config.target_out >= 1);
  CHURNET_EXPECTS(config.max_in >= 1);
  graph_.reserve(stationary_reserve_hint(config.lambda, config.mu),
                 config.target_out);
}

P2pNetwork::EventReport P2pNetwork::step() {
  ChurnEvent event;
  if (pending_valid_) {
    event = pending_;
    pending_valid_ = false;
  } else {
    event = churn_.next(graph_.alive_count());
  }
  return apply(event);
}

P2pNetwork::EventReport P2pNetwork::apply(const ChurnEvent& event) {
  now_ = event.time;
  EventReport report;
  report.kind = event.kind;
  report.time = event.time;

  if (event.kind == ChurnEvent::Kind::kBirth) {
    const NodeId born = graph_.add_node(config_.target_out, event.time);
    if (tables_.size() <= born.slot) tables_.resize(born.slot + 1);
    tables_[born.slot] = AddressTable(config_.table_capacity);
    bootstrap(born);
    if (hooks_.on_birth) hooks_.on_birth(born, event.time);
    report.node = born;
    return report;
  }

  CHURNET_ASSERT(graph_.alive_count() > 0);
  const NodeId victim = graph_.random_alive(rng_);
  if (hooks_.on_death) hooks_.on_death(victim, event.time);
  graph_.remove_node(victim, removal_scratch_);
  // Survivors notice the lost connection, redial from their tables, and
  // take the opportunity to retry any other dangling slots (a cheap stand-in
  // for Bitcoin Core's periodic connection maintenance).
  for (const OutSlotRef& orphan : removal_scratch_.orphans) {
    table_ref(orphan.owner).erase(victim);
    dial_from_table(orphan.owner, orphan.index);
    fill_dangling(orphan.owner);
  }
  report.node = victim;
  return report;
}

void P2pNetwork::fill_dangling(NodeId owner) {
  for (std::uint32_t i = 0; i < graph_.out_slot_count(owner); ++i) {
    if (graph_.out_target(owner, i).valid()) continue;
    if (!dial_from_table(owner, i)) break;  // table exhausted; stop trying
  }
}

void P2pNetwork::bootstrap(NodeId newborn) {
  // DNS seeds: a uniform sample of currently live nodes. This is the one
  // centralized ingredient, mirroring real bootstrap (paper Section 1.1).
  AddressTable& table = tables_[newborn.slot];
  const std::uint64_t peers = graph_.alive_count() - 1;  // excluding self
  const auto want = std::min<std::uint64_t>(config_.seed_sample, peers);
  for (std::uint64_t i = 0; i < want; ++i) {
    const NodeId seed_peer = graph_.random_alive_other(rng_, newborn);
    if (seed_peer.valid()) table.insert(seed_peer, rng_);
  }
  for (std::uint32_t slot_index = 0; slot_index < config_.target_out;
       ++slot_index) {
    dial_from_table(newborn, slot_index);
  }
}

bool P2pNetwork::dial_from_table(NodeId owner, std::uint32_t slot_index) {
  AddressTable& table = table_ref(owner);
  for (std::uint32_t attempt = 0; attempt < config_.dial_attempts;
       ++attempt) {
    const NodeId candidate = table.sample(rng_);
    if (!candidate.valid()) return false;  // empty table, give up
    if (candidate == owner) {
      table.erase(candidate);
      continue;
    }
    if (!graph_.is_alive(candidate)) {
      // Stale address discovered: evict and count the failed dial.
      table.erase(candidate);
      ++failed_dials_;
      continue;
    }
    if (graph_.in_degree(candidate) >= config_.max_in) {
      ++failed_dials_;
      continue;  // callee full; keep the address, it is still live
    }
    // Refuse duplicate connections to the same peer.
    bool duplicate = false;
    for (std::uint32_t i = 0; i < graph_.out_slot_count(owner); ++i) {
      if (graph_.out_target(owner, i) == candidate) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    graph_.set_out_edge(owner, slot_index, candidate);
    ++successful_dials_;
    gossip_exchange(owner, candidate);
    if (hooks_.on_edge_created) {
      hooks_.on_edge_created(owner, slot_index, candidate,
                             /*regenerated=*/false, now_);
    }
    return true;
  }
  return false;
}

void P2pNetwork::gossip_exchange(NodeId a, NodeId b) {
  AddressTable& table_a = table_ref(a);
  AddressTable& table_b = table_ref(b);
  // Each side advertises a random sample of its table plus its current
  // out-neighbors; the latter are alive by construction, which keeps the
  // distributed address database from going stale (Bitcoin nodes likewise
  // relay the addresses of peers they are actually connected to).
  auto advertise = [&](NodeId advertiser, NodeId receiver,
                       AddressTable& from, AddressTable& to) {
    to.insert(advertiser, rng_);
    for (const NodeId address : from.sample_many(config_.gossip_sample, rng_)) {
      if (address != receiver) to.insert(address, rng_);
    }
    for (std::uint32_t i = 0; i < graph_.out_slot_count(advertiser); ++i) {
      const NodeId neighbor = graph_.out_target(advertiser, i);
      if (neighbor.valid() && neighbor != receiver) {
        to.insert(neighbor, rng_);
      }
    }
  };
  advertise(b, a, table_b, table_a);
  advertise(a, b, table_a, table_b);
}

AddressTable& P2pNetwork::table_ref(NodeId node) {
  CHURNET_EXPECTS(graph_.is_alive(node));
  CHURNET_ASSERT(node.slot < tables_.size());
  return tables_[node.slot];
}

const AddressTable& P2pNetwork::table_of(NodeId node) const {
  CHURNET_EXPECTS(graph_.is_alive(node));
  CHURNET_ASSERT(node.slot < tables_.size());
  return tables_[node.slot];
}

void P2pNetwork::run_events(std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i) step();
}

void P2pNetwork::run_until(double time) {
  CHURNET_EXPECTS(time >= now_);
  for (;;) {
    if (!pending_valid_) {
      pending_ = churn_.next(graph_.alive_count());
      pending_valid_ = true;
    }
    if (pending_.time > time) break;
    pending_valid_ = false;
    apply(pending_);
  }
  now_ = time;
}

void P2pNetwork::warm_up(double multiple) {
  CHURNET_EXPECTS(multiple > 0.0);
  run_until(now_ + multiple / config_.mu);
}

double P2pNetwork::peek_next_event_time() {
  if (!pending_valid_) {
    pending_ = churn_.next(graph_.alive_count());
    pending_valid_ = true;
  }
  return pending_.time;
}

std::uint64_t P2pNetwork::dangling_out_slots() const {
  // Every node owns exactly target_out out-slots and edge_count() is the
  // number of non-dangling ones, so no population scan is needed.
  return static_cast<std::uint64_t>(config_.target_out) *
             graph_.alive_count() -
         graph_.edge_count();
}

double P2pNetwork::mean_table_staleness() const {
  double sum = 0.0;
  std::uint64_t counted = 0;
  alive_scratch_.clear();
  graph_.append_alive_nodes(alive_scratch_);
  for (const NodeId node : alive_scratch_) {
    const AddressTable& table = tables_[node.slot];
    if (table.empty()) continue;
    std::uint32_t stale = 0;
    for (const NodeId address : table.entries()) {
      if (!graph_.is_alive(address)) ++stale;
    }
    sum += static_cast<double>(stale) / static_cast<double>(table.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace churnet
