#include "engine/scenario.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/assertx.hpp"
#include "common/specgram.hpp"
#include "models/poisson_network.hpp"
#include "models/static_network.hpp"
#include "models/streaming_network.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

ChurnSpec default_churn(ModelKind model) {
  ChurnSpec spec;
  spec.kind = model == ModelKind::kStreaming ? ChurnSpec::Kind::kStream
                                             : ChurnSpec::Kind::kJumpChain;
  return spec;
}

[[noreturn]] void abort_scenario(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

/// Aborts unless `spec` can drive `model` (the registry's CLI semantics).
void require_compatible(const std::string& name, ModelKind model,
                        const ChurnSpec& spec) {
  switch (model) {
    case ModelKind::kStreaming:
      if (spec.kind != ChurnSpec::Kind::kStream && !spec.adversarial()) {
        abort_scenario("scenario '" + name + "': streaming models take only "
                       "the 'stream' schedule or an adversarial spec "
                       "(maxdeg/mindeg/cutset/eclipse) (got '" +
                       spec.canonical() +
                       "'); continuous regimes run on Poisson-family bases "
                       "(PDG/PDGR)");
      }
      return;
    case ModelKind::kPoisson:
      if (!spec.continuous()) {
        abort_scenario("scenario '" + name + "': Poisson-family models need "
                       "a continuous churn spec (got '" + spec.canonical() +
                       "')");
      }
      return;
    case ModelKind::kStaticDOut:
    case ModelKind::kErdosRenyi:
      abort_scenario("scenario '" + name +
                     "': static baselines take no churn spec");
  }
  CHURNET_ASSERT(false);
}

}  // namespace

Scenario::Scenario(std::string name, ModelKind model, EdgePolicy policy,
                   std::string description)
    : Scenario(std::move(name), model, policy, default_churn(model),
               std::move(description)) {}

Scenario::Scenario(std::string name, ModelKind model, EdgePolicy policy,
                   ChurnSpec churn, std::string description)
    : name_(std::move(name)),
      model_(model),
      policy_(policy),
      churn_(churn),
      description_(std::move(description)) {}

bool Scenario::has_churn() const {
  return model_ == ModelKind::kStreaming || model_ == ModelKind::kPoisson;
}

Scenario Scenario::with_churn(const ChurnSpec& churn) const {
  require_compatible(name_, model_, churn);
  Scenario result(name_ + "+" + churn.canonical(), model_, policy_, churn,
                  description_ + ", churn " + churn.canonical());
  result.protocol_ = protocol_;
  return result;
}

Scenario Scenario::with_protocol(const ProtocolSpec& protocol) const {
  Scenario result = *this;
  result.protocol_ = protocol;
  if (protocol == ProtocolSpec{}) return result;  // default flood: no suffix
  result.name_ = name_ + "+" + protocol.canonical();
  result.description_ = description_ + ", protocol " + protocol.canonical();
  return result;
}

ChurnSpec Scenario::effective_churn(const ScenarioParams& params) const {
  if (params.churn.empty()) {
    // Validate the scenario's own spec too: a Scenario constructed
    // directly with an incompatible (model, spec) pair must abort at
    // build time, not silently run the wrong churn under a wrong name.
    require_compatible(name_, model_, churn_);
    return churn_;
  }
  std::string error;
  const std::optional<ChurnSpec> spec = ChurnSpec::parse(params.churn, &error);
  if (!spec.has_value()) {
    abort_scenario("scenario '" + name_ + "': " + error);
  }
  require_compatible(name_, model_, *spec);
  return *spec;
}

AnyNetwork Scenario::make(const ScenarioParams& params) const {
  switch (model_) {
    case ModelKind::kStreaming: {
      StreamingConfig config;
      config.n = params.n;
      config.d = params.d;
      config.policy = policy_;
      config.seed = params.seed;
      config.max_in_degree = params.max_in_degree;
      config.intra_threads = params.intra_threads;
      config.churn = effective_churn(params);  // stream or adversarial
      return AnyNetwork(StreamingNetwork(config));
    }
    case ModelKind::kPoisson: {
      PoissonConfig config =
          PoissonConfig::with_n(params.n, params.d, policy_, params.seed);
      config.max_in_degree = params.max_in_degree;
      config.churn = effective_churn(params);
      return AnyNetwork(PoissonNetwork(std::move(config)));
    }
    case ModelKind::kStaticDOut: {
      if (!params.churn.empty()) {
        abort_scenario("scenario '" + name_ +
                       "': static baselines take no churn spec");
      }
      StaticConfig config;
      config.n = params.n;
      config.d = params.d;
      config.topology = StaticConfig::Topology::kDOut;
      config.seed = params.seed;
      return AnyNetwork(StaticNetwork(config));
    }
    case ModelKind::kErdosRenyi: {
      if (!params.churn.empty()) {
        abort_scenario("scenario '" + name_ +
                       "': static baselines take no churn spec");
      }
      StaticConfig config;
      config.n = params.n;
      config.d = params.d;  // p defaults to 2d/n inside StaticNetwork
      config.topology = StaticConfig::Topology::kErdosRenyi;
      config.seed = params.seed;
      return AnyNetwork(StaticNetwork(config));
    }
  }
  CHURNET_ASSERT(false);
  return AnyNetwork();
}

AnyNetwork Scenario::make_warmed(const ScenarioParams& params) const {
  const telemetry::PhaseTimer span(telemetry::Phase::kGenesis);
  AnyNetwork net = make(params);
  net.warm_up();
  return net;
}

const ScenarioRegistry& ScenarioRegistry::paper() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    r.add(Scenario("SDG", ModelKind::kStreaming, EdgePolicy::kNone,
                   "streaming dynamic graph, no regeneration (Def. 3.4)"));
    r.add(Scenario("SDGR", ModelKind::kStreaming, EdgePolicy::kRegenerate,
                   "streaming dynamic graph with regeneration (Def. 3.13)"));
    r.add(Scenario("PDG", ModelKind::kPoisson, EdgePolicy::kNone,
                   "Poisson dynamic graph, no regeneration (Def. 4.9)"));
    r.add(Scenario("PDGR", ModelKind::kPoisson, EdgePolicy::kRegenerate,
                   "Poisson dynamic graph with regeneration (Def. 4.14)"));
    r.add(Scenario("static-dout", ModelKind::kStaticDOut, EdgePolicy::kNone,
                   "static d-out random graph baseline (Lemma B.1)"));
    r.add(Scenario("erdos-renyi", ModelKind::kErdosRenyi, EdgePolicy::kNone,
                   "Erdos-Renyi G(n, 2d/n) baseline (mean-degree matched)"));
    return r;
  }();
  return registry;
}

const ScenarioRegistry& ScenarioRegistry::extended() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r = paper();
    const Scenario& pdg = paper().at("PDG");
    const Scenario& pdgr = paper().at("PDGR");
    const auto spec = [](std::string_view text) {
      const std::optional<ChurnSpec> parsed = ChurnSpec::parse(text);
      CHURNET_ASSERT(parsed.has_value());
      return *parsed;
    };
    // The headline extended regimes: heavy-tailed session lengths (the
    // empirical P2P shape), bursty mass departures, and drifting size.
    r.add(pdgr.with_churn(spec("pareto(2.5)")));
    r.add(pdgr.with_churn(spec("weibull(0.7)")));
    r.add(pdgr.with_churn(spec("bursty(4,0.5)")));
    r.add(pdgr.with_churn(spec("drift(2)")));
    r.add(pdgr.with_churn(spec("drift(0.5)")));
    r.add(pdg.with_churn(spec("pareto(2.5)")));
    // Headline adversarial / correlated regimes (the resilience target
    // sweeps these axes; any budget or burst shape remains reachable
    // through composite names).
    const Scenario& sdgr = paper().at("SDGR");
    r.add(sdgr.with_churn(spec("maxdeg(0.5)")));
    r.add(pdgr.with_churn(spec("maxdeg(0.5)")));
    r.add(pdgr.with_churn(spec("eclipse(0.5)")));
    r.add(pdgr.with_churn(spec("massfail(0.1,1)")));
    return r;
  }();
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  for (Scenario& existing : scenarios_) {
    if (iequals(existing.name(), scenario.name())) {
      existing = std::move(scenario);
      return;
    }
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Scenario& scenario : scenarios_) {
    if (iequals(scenario.name(), name)) return &scenario;
  }
  return nullptr;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  const Scenario* scenario = find(name);
  if (scenario != nullptr) return *scenario;
  std::fprintf(stderr, "unknown scenario '%.*s'; known scenarios:",
               static_cast<int>(name.size()), name.data());
  for (const Scenario& known : scenarios_) {
    std::fprintf(stderr, " %s", known.name().c_str());
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

Scenario ScenarioRegistry::resolve(std::string_view name) const {
  // Registered names win outright, so pre-registered composites (and any
  // user scenario that happens to contain '+') stay addressable.
  if (const Scenario* registered = find(name)) return *registered;
  const std::vector<std::string_view> segments = split_spec_segments(name);
  if (segments.size() == 1) return at(name);  // aborts: unknown
  const auto die = [&name](const std::string& reason) {
    abort_scenario("scenario '" + std::string(name) + "': " + reason);
  };
  Scenario current = at(segments[0]);
  // Each suffix segment is dispatched by its call name: churn regimes go
  // through ChurnSpec, protocol terms accumulate into one ProtocolSpec
  // ("flood+lossy(0.9)" arrives as two segments of the same spec).
  bool have_churn = false;
  std::string protocol_text;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const std::string head = spec_call_name(segments[i]);
    if (ChurnSpec::is_known_name(head)) {
      if (have_churn) die("more than one churn spec");
      std::string error;
      const std::optional<ChurnSpec> spec =
          ChurnSpec::parse(segments[i], &error);
      if (!spec.has_value()) die(error);
      current = current.with_churn(*spec);
      have_churn = true;
    } else if (ProtocolSpec::is_known_name(head)) {
      if (!protocol_text.empty()) protocol_text += '+';
      protocol_text += std::string(segments[i]);
    } else {
      // Keep both families' diagnostics: the churn error names the known
      // regimes, and the protocol catalog is listed alongside.
      std::string error;
      ChurnSpec::parse(segments[i], &error);
      die(error + "; known protocols: " + ProtocolSpec::known_names());
    }
  }
  if (!protocol_text.empty()) {
    std::string error;
    const std::optional<ProtocolSpec> spec =
        ProtocolSpec::parse(protocol_text, &error);
    if (!spec.has_value()) die(error);
    current = current.with_protocol(*spec);
  }
  return current;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) result.push_back(scenario.name());
  return result;
}

}  // namespace churnet
