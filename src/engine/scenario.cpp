#include "engine/scenario.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/assertx.hpp"
#include "models/poisson_network.hpp"
#include "models/static_network.hpp"
#include "models/streaming_network.hpp"

namespace churnet {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Scenario::Scenario(std::string name, ModelKind model, EdgePolicy policy,
                   std::string description)
    : name_(std::move(name)),
      model_(model),
      policy_(policy),
      description_(std::move(description)) {}

bool Scenario::has_churn() const {
  return model_ == ModelKind::kStreaming || model_ == ModelKind::kPoisson;
}

AnyNetwork Scenario::make(const ScenarioParams& params) const {
  switch (model_) {
    case ModelKind::kStreaming: {
      StreamingConfig config;
      config.n = params.n;
      config.d = params.d;
      config.policy = policy_;
      config.seed = params.seed;
      config.max_in_degree = params.max_in_degree;
      return AnyNetwork(StreamingNetwork(config));
    }
    case ModelKind::kPoisson: {
      PoissonConfig config =
          PoissonConfig::with_n(params.n, params.d, policy_, params.seed);
      config.max_in_degree = params.max_in_degree;
      return AnyNetwork(PoissonNetwork(config));
    }
    case ModelKind::kStaticDOut: {
      StaticConfig config;
      config.n = params.n;
      config.d = params.d;
      config.topology = StaticConfig::Topology::kDOut;
      config.seed = params.seed;
      return AnyNetwork(StaticNetwork(config));
    }
    case ModelKind::kErdosRenyi: {
      StaticConfig config;
      config.n = params.n;
      config.d = params.d;  // p defaults to 2d/n inside StaticNetwork
      config.topology = StaticConfig::Topology::kErdosRenyi;
      config.seed = params.seed;
      return AnyNetwork(StaticNetwork(config));
    }
  }
  CHURNET_ASSERT(false);
  return AnyNetwork();
}

AnyNetwork Scenario::make_warmed(const ScenarioParams& params) const {
  AnyNetwork net = make(params);
  net.warm_up();
  return net;
}

const ScenarioRegistry& ScenarioRegistry::paper() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    r.add(Scenario("SDG", ModelKind::kStreaming, EdgePolicy::kNone,
                   "streaming dynamic graph, no regeneration (Def. 3.4)"));
    r.add(Scenario("SDGR", ModelKind::kStreaming, EdgePolicy::kRegenerate,
                   "streaming dynamic graph with regeneration (Def. 3.13)"));
    r.add(Scenario("PDG", ModelKind::kPoisson, EdgePolicy::kNone,
                   "Poisson dynamic graph, no regeneration (Def. 4.9)"));
    r.add(Scenario("PDGR", ModelKind::kPoisson, EdgePolicy::kRegenerate,
                   "Poisson dynamic graph with regeneration (Def. 4.14)"));
    r.add(Scenario("static-dout", ModelKind::kStaticDOut, EdgePolicy::kNone,
                   "static d-out random graph baseline (Lemma B.1)"));
    r.add(Scenario("erdos-renyi", ModelKind::kErdosRenyi, EdgePolicy::kNone,
                   "Erdos-Renyi G(n, 2d/n) baseline (mean-degree matched)"));
    return r;
  }();
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  for (Scenario& existing : scenarios_) {
    if (iequals(existing.name(), scenario.name())) {
      existing = std::move(scenario);
      return;
    }
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Scenario& scenario : scenarios_) {
    if (iequals(scenario.name(), name)) return &scenario;
  }
  return nullptr;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  const Scenario* scenario = find(name);
  if (scenario != nullptr) return *scenario;
  std::fprintf(stderr, "unknown scenario '%.*s'; known scenarios:",
               static_cast<int>(name.size()), name.data());
  for (const Scenario& known : scenarios_) {
    std::fprintf(stderr, " %s", known.name().c_str());
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) result.push_back(scenario.name());
  return result;
}

}  // namespace churnet
