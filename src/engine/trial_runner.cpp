#include "engine/trial_runner.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "common/assertx.hpp"
#include "common/rng.hpp"
#include "common/sinks.hpp"
#include "telemetry/trace_sink.hpp"

namespace churnet {
namespace {

unsigned resolve_threads(unsigned requested, std::uint64_t replications) {
  unsigned threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (static_cast<std::uint64_t>(threads) > replications) {
    threads = static_cast<unsigned>(replications);
  }
  return threads == 0 ? 1u : threads;
}

}  // namespace

TrialResult::TrialResult(TrialRunnerOptions options,
                         std::vector<std::string> metrics,
                         std::vector<std::vector<double>> samples,
                         double wall_seconds, unsigned threads_used)
    : options_(options),
      metrics_(std::move(metrics)),
      samples_(std::move(samples)),
      wall_seconds_(wall_seconds),
      threads_used_(threads_used) {
  stats_.resize(metrics_.size());
  // Fold in replication order: aggregation is independent of the thread
  // interleaving that produced the samples.
  for (const std::vector<double>& row : samples_) {
    CHURNET_ASSERT(row.size() == metrics_.size());
    for (std::size_t m = 0; m < row.size(); ++m) {
      if (!std::isnan(row[m])) stats_[m].add(row[m]);
    }
  }
}

const OnlineStats& TrialResult::stats(std::string_view metric) const {
  for (std::size_t m = 0; m < metrics_.size(); ++m) {
    if (metrics_[m] == metric) return stats_[m];
  }
  CHURNET_EXPECTS(false && "unknown metric");
  return stats_.front();
}

Table TrialResult::to_table() const {
  Table table({"metric", "count", "mean", "stderr", "min", "max"});
  for (std::size_t m = 0; m < metrics_.size(); ++m) {
    const OnlineStats& s = stats_[m];
    table.add_row({metrics_[m],
                   fmt_int(static_cast<std::int64_t>(s.count())),
                   s.count() > 0 ? fmt_fixed(s.mean(), 4) : "-",
                   s.count() > 1 ? fmt_fixed(s.stderr_mean(), 4) : "-",
                   s.count() > 0 ? fmt_fixed(s.min(), 4) : "-",
                   s.count() > 0 ? fmt_fixed(s.max(), 4) : "-"});
  }
  return table;
}

void TrialResult::write_csv(std::ostream& os) const {
  const PrecisionGuard precision(os);
  os << "replication,seed";
  for (const std::string& metric : metrics_) os << ',' << csv_field(metric);
  os << '\n';
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    os << r << ','
       << derive_seed(options_.base_seed, options_.stream, r);
    for (const double value : samples_[r]) {
      os << ',';
      if (!std::isnan(value)) os << value;
    }
    os << '\n';
  }
}

void TrialResult::write_json(std::ostream& os) const {
  const PrecisionGuard precision(os);
  os << "{\"replications\":" << samples_.size()
     << ",\"threads\":" << threads_used_
     << ",\"base_seed\":" << options_.base_seed
     << ",\"stream\":" << options_.stream
     << ",\"wall_seconds\":" << wall_seconds_ << ",\"metrics\":{";
  for (std::size_t m = 0; m < metrics_.size(); ++m) {
    if (m > 0) os << ',';
    const OnlineStats& s = stats_[m];
    write_json_string(os, metrics_[m]);
    os << ":{\"count\":" << s.count() << ",\"mean\":";
    write_json_number(os, s.count() > 0 ? s.mean() : std::nan(""));
    os << ",\"stddev\":";
    write_json_number(os, s.count() > 1 ? s.stddev() : std::nan(""));
    os << ",\"min\":";
    write_json_number(os, s.count() > 0 ? s.min() : std::nan(""));
    os << ",\"max\":";
    write_json_number(os, s.count() > 0 ? s.max() : std::nan(""));
    os << '}';
  }
  os << "},\"samples\":[";
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    if (r > 0) os << ',';
    os << '[';
    for (std::size_t m = 0; m < samples_[r].size(); ++m) {
      if (m > 0) os << ',';
      write_json_number(os, samples_[r][m]);
    }
    os << ']';
  }
  os << "]}";
}

TrialRunner::TrialRunner(TrialRunnerOptions options) : options_(options) {
  CHURNET_EXPECTS(options_.replications > 0);
}

TrialResult TrialRunner::run(std::vector<std::string> metrics,
                             const Body& body) const {
  CHURNET_EXPECTS(!metrics.empty());
  const std::uint64_t replications = options_.replications;
  const unsigned threads = resolve_threads(options_.threads, replications);

  std::vector<std::vector<double>> samples(replications);
  std::atomic<std::uint64_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::uint64_t rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= replications) return;
      TrialContext ctx;
      ctx.replication = rep;
      ctx.seed = derive_seed(options_.base_seed, options_.stream, rep);
      // Pool progress for the installed trace sink (if any): feeds the
      // heartbeat's jobs-done / threads-busy gauges. Never touches the job
      // body's inputs, so results are identical with or without a sink.
      telemetry::TraceSink* const sink = telemetry::TraceSink::global();
      if (sink != nullptr) sink->job_started();
      try {
        std::vector<double> row = body(ctx);
        CHURNET_ASSERT(row.size() == metrics.size());
        samples[rep] = std::move(row);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(replications, std::memory_order_relaxed);  // drain
        return;
      }
      if (sink != nullptr) sink->job_finished();
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (threads == 1) {
    worker();  // inline: no pool overhead for the serial case
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  const auto stop = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);

  const double wall =
      std::chrono::duration<double>(stop - start).count();
  return TrialResult(options_, std::move(metrics), std::move(samples), wall,
                     threads);
}

TrialResult TrialRunner::run(const std::string& metric,
                             const ScalarBody& body) const {
  return run(std::vector<std::string>{metric},
             [&body](const TrialContext& ctx) {
               return std::vector<double>{body(ctx)};
             });
}

}  // namespace churnet
