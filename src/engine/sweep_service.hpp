// Sweep campaigns as a service: streaming results, checkpoint/resume and
// multi-process work-stealing — all byte-identical to a plain
// single-process SweepRunner::run (DESIGN.md decision 17).
//
// SweepService executes a SweepPlan's jobs under one of two modes:
//
//   * In-process (workers <= 1): a thread pool over the pending job set,
//     the same shape as TrialRunner's pool — an atomic work-stealing
//     index, first-error capture, fold after join.
//   * Multi-process (workers >= 2): the coordinator forks N worker
//     processes *after* plan construction (the plan is shared read-only
//     via copy-on-write). Each worker owns a command pipe (job batches
//     in) and a result pipe (sample rows out, raw IEEE-754 bits — no
//     text round-trip). The coordinator polls result pipes and hands a
//     new batch to whichever worker drains first, so the queue is
//     self-balancing; a worker that exits early is detected as EOF with
//     jobs outstanding and fails the run.
//
// Either way every completed row lands in the same three sinks: the
// in-memory sample matrix (folded by job index into the SweepResult),
// the optional checkpoint journal (engine/sweep_journal.hpp, fsync'd
// once per batch) and the optional streaming result sink
// (engine/result_stream.hpp). Rows are pure functions of (base_seed,
// cell, replication) and the fold reads them by index, so thread count,
// worker count, batch size, completion order and kill/resume cycles all
// produce byte-identical CSV/JSON — the contract the kill-resume and
// 1-vs-4-worker tests and the release-smoke CI cmp's pin.
//
// Telemetry: the coordinator drives the installed TraceSink's
// sweep/heartbeat lifecycle (resumed-aware: ETA from remaining jobs).
// Forked workers never write the parent's trace; with
// worker_trace_prefix set, worker k streams its own trace to
// "<prefix><k>.ndjson" tagged "worker":k, and tools/telemetry_report.py
// folds the per-worker files back into one report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "engine/sweep_runner.hpp"

namespace churnet {

struct SweepServiceOptions {
  /// In-process pool width when workers <= 1 (0 = all cores).
  unsigned threads = 1;
  /// >= 2 forks that many worker processes (coordinator/worker mode);
  /// 0 or 1 = in-process.
  unsigned workers = 0;
  /// Checkpoint directory (journal.ndjson inside); empty = no journal.
  std::string checkpoint_dir;
  /// Load an existing journal in checkpoint_dir and run only the missing
  /// jobs. Safe when no journal exists yet (starts fresh).
  bool resume = false;
  /// Streaming NDJSON results sink; nullptr = none. Not owned.
  std::ostream* results = nullptr;
  /// Jobs per work-stealing handout and per journal fsync. 0 = auto
  /// (pending / (8 * width), clamped to [1, 64]). A SIGKILL loses at
  /// most this many in-flight jobs.
  std::uint64_t batch = 0;
  /// Test hook for the kill-resume torture tests: after this many jobs
  /// have been journaled by this run, sync the journal and raise(SIGKILL)
  /// — a deterministic mid-campaign crash. 0 = off.
  std::uint64_t kill_after = 0;
  /// Worker k writes its own telemetry trace to "<prefix><k>.ndjson"
  /// (schema v1, tagged "worker":k). Empty = workers trace nothing.
  std::string worker_trace_prefix;
  /// Recorded in stream headers and worker traces.
  std::string tool = "churnet_sweep";
};

/// What the run did (for heartbeat-style summaries in the CLIs).
struct SweepServiceReport {
  std::uint64_t jobs_total = 0;
  std::uint64_t jobs_resumed = 0;  // restored from the journal
  std::uint64_t jobs_run = 0;      // executed by this run
  unsigned workers_used = 1;       // threads (in-process) or processes
};

class SweepService {
 public:
  /// Aborts (CLI semantics) when the spec fails validate(); throws
  /// std::runtime_error at run() time for environment failures (journal
  /// corruption, plan/checkpoint mismatch, a dead worker).
  SweepService(SweepSpec spec, SweepServiceOptions options);

  const SweepSpec& spec() const { return spec_; }
  const SweepServiceOptions& options() const { return options_; }

  /// Runs the campaign (resuming from the checkpoint when asked) and
  /// folds the full sample matrix into a SweepResult byte-identical to
  /// SweepRunner::run's at any width.
  SweepResult run(const ScenarioRegistry& registry =
                      ScenarioRegistry::extended(),
                  SweepServiceReport* report = nullptr) const;

 private:
  SweepSpec spec_;
  SweepServiceOptions options_;
};

}  // namespace churnet
