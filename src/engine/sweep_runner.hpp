// Grid sweeps over the scenario space: a declarative layer on top of
// TrialRunner.
//
// A SweepSpec names a grid — scenario list (any resolve()-able name,
// including "PDGR+pareto(2.5)+push(3)" composites) × protocol list
// (dissemination protocols; optional axis) × n list × d list — plus the
// metrics to measure and the replication budget. SweepRunner expands the
// grid into cells, fans every (cell, replication) job across the engine's
// one thread pool, and collects a SweepResult: per-cell statistics, the
// full sample matrix, a tidy long-format CSV (one row per observation:
// scenario, churn, protocol, n, d, replication, seed, metric, value) and
// a JSON summary. Dissemination metrics (completion, coverage, message
// complexity) run the cell's protocol through the generic driver; flood
// cells reproduce the plain flood driver bit for bit.
//
// A sweep can additionally attach a metric-observer set (observe/,
// DESIGN.md §6): SweepSpec::observers names it ("expansion(8)+spectral"),
// and each observer's metric columns are appended after the sweep's own
// metrics in every cell, sink row and aggregate. Observer randomness is
// routed through streams derived from the replication seed but disjoint
// from the network's and the protocol's, so attaching snapshot or
// dissemination observers never changes any previously measured value.
// The one documented exception: a round observer (demography(w))
// requests an observation window, which advances the network by w churn
// steps before anything is measured — the window is part of the cell's
// definition, so every metric then describes the post-window instant.
//
// Seeding and determinism follow the engine's invariants (DESIGN.md,
// decision 8): the replication seed of cell c is derive_seed(base_seed, c,
// replication) — each cell is its own stream, so no two cells in any sweep
// share randomness — and samples are folded in job order after the pool
// joins, so every statistic and both sinks are bit-identical at any thread
// count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "engine/scenario.hpp"
#include "engine/trial_runner.hpp"
#include "observe/observer_spec.hpp"

namespace churnet {

class JsonValue;

/// One metric the sweep can measure per replication. All metrics are
/// evaluated on a freshly built, warmed network; dissemination metrics run
/// one pass of the cell's protocol (default: flood) under the model's own
/// semantics — flood cells reproduce the plain flood driver bit for bit.
enum class SweepMetric : std::uint8_t {
  kAlive,                 // |N| after warm-up
  kMeanDegree,            // snapshot mean degree
  kMaxDegree,             // snapshot max degree
  kIsolated,              // snapshot isolated-node count
  kLargestComponentFrac,  // largest component / alive
  kCompletionStep,        // completion step (NaN if not completed)
  kFinalFraction,         // informed/alive when the run stopped
  kPeakInformed,          // max |I_t| over the run
  kFloodSteps,            // steps the run executed
  kMessages,              // total messages (rumor transmissions + probes)
  kUsefulDeliveries,      // deliveries informing a new node
  kDuplicateDeliveries,   // deliveries wasted on informed nodes
  kLostMessages,          // transmissions dropped by the lossy link
};

/// Declarative sweep grid. Build programmatically or load from JSON:
///
///   {
///     "scenarios": ["PDGR", "PDGR+pareto(2.5)"],
///     "n": [500, 1000],
///     "d": [4, 8],
///     "protocols": ["flood", "push(3)+lossy(0.9)"],  // optional axis
///     "metrics": ["alive", "completion_step"],   // optional
///     "observers": "expansion(8)+isolated",      // optional
///     "incremental_observers": false,             // optional
///     "replications": 8,                          // optional
///     "seed": 12345,                              // optional
///     "max_in_degree": 0,                         // optional
///     "intra_threads": 1                          // optional
///   }
struct SweepSpec {
  std::vector<std::string> scenarios;
  std::vector<std::uint32_t> n_values;
  std::vector<std::uint32_t> d_values;
  /// Dissemination-protocol axis (protocols/protocol_spec.hpp grammar).
  /// Empty = one implicit cell per scenario running the scenario's own
  /// protocol (flood unless the name carried a "+push(3)"-style suffix);
  /// non-empty entries override it.
  std::vector<std::string> protocols;
  std::vector<std::string> metrics = default_metrics();
  /// Metric-observer set attached to every cell
  /// (observe/observer_spec.hpp grammar); its metric columns are appended
  /// after `metrics`. Empty = no observers.
  std::string observers;
  /// Run the observer set delta-fed (DESIGN.md §6, decision 15): a
  /// ChangeFeed is attached for the observation window and observers
  /// measure from running state instead of a fresh snapshot. Purely a
  /// wall-clock knob for single-observation trials — every sweep cell
  /// observes once per replication, and the first observation of an
  /// incremental trial is bit-identical to the from-scratch one, so the
  /// CSV/JSON output is byte-identical either way (the release-smoke CI
  /// job cmp's them).
  bool incremental_observers = false;
  std::uint64_t replications = 8;
  std::uint64_t base_seed = 12345;
  std::uint32_t max_in_degree = 0;
  /// Intra-trial worker threads per job (0 = one per hardware thread):
  /// streaming genesis bulk wiring plus the sharded flood/gossip boundary
  /// scans. Every value produces byte-identical CSV/JSON output — this is
  /// purely a wall-clock knob, orthogonal to the across-trial pool.
  std::uint32_t intra_threads = 1;

  std::size_t cell_count() const {
    return scenarios.size() * std::max<std::size_t>(protocols.size(), 1) *
           n_values.size() * d_values.size();
  }

  /// The metric catalog ("alive", "mean_degree", ..., "flood_steps").
  static std::vector<std::string> known_metrics();
  /// alive, mean_degree, isolated, completion_step, final_fraction.
  static std::vector<std::string> default_metrics();

  /// Loads a spec from parsed JSON / raw text. Unknown keys, wrong types,
  /// empty lists and unknown metrics are errors (reason via `error`).
  static std::optional<SweepSpec> from_json(const JsonValue& json,
                                            std::string* error = nullptr);
  static std::optional<SweepSpec> from_json_text(std::string_view text,
                                                 std::string* error = nullptr);

  /// Structural validation (non-empty grid, known metrics, replications
  /// >= 1); scenario names are resolved later by run(). Returns an error
  /// reason, or nullopt when valid.
  std::optional<std::string> validate() const;
};

/// One grid cell's identity in results and sinks.
struct SweepCellKey {
  std::string scenario;  // resolved name ("PDGR+pareto(2.50)")
  std::string churn;     // canonical churn spec; "none" for baselines
  std::string protocol;  // canonical protocol spec ("flood", "push(3)")
  std::uint32_t n = 0;
  std::uint32_t d = 0;
};

class SweepResult;

/// A fully resolved sweep: scenario x protocol x n x d cells, the combined
/// metric column list (spec metrics + observer columns), and the per-job
/// body. Jobs are numbered job = cell * replications + replication, and
/// run_job(job) is a pure function of (spec.base_seed, cell, replication)
/// — the plan is what every execution mode shares (the in-process
/// SweepRunner::run pool, the sweep service's streaming/checkpointed runs
/// and its forked worker processes), so rows computed anywhere, in any
/// completion order, fold into identical results.
class SweepPlan {
 public:
  /// Resolves every scenario/protocol/observer once (aborts with the known
  /// catalogs on typos, CLI semantics — like SweepRunner's constructor).
  SweepPlan(SweepSpec spec, const ScenarioRegistry& registry);

  const SweepSpec& spec() const { return spec_; }
  const std::vector<SweepCellKey>& keys() const { return keys_; }
  /// All metric columns: spec metrics, then observer metrics.
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }
  std::uint64_t replications() const { return spec_.replications; }
  std::uint64_t job_count() const {
    return keys_.size() * spec_.replications;
  }
  std::uint64_t job_cell(std::uint64_t job) const {
    return job / spec_.replications;
  }
  std::uint64_t job_replication(std::uint64_t job) const {
    return job % spec_.replications;
  }
  /// derive_seed(base_seed, cell, replication) — the job's only seed.
  std::uint64_t job_seed(std::uint64_t job) const;

  /// Spec provenance as a raw JSON object fragment (the telemetry
  /// sweep_begin "spec" field and the result stream / journal headers).
  const std::string& spec_json() const { return spec_json_; }
  /// FNV-1a over the spec provenance, metric columns and cell keys: two
  /// plans with equal fingerprints run the same jobs with the same seeds,
  /// so a checkpoint journal records it and refuses to resume anything
  /// else (engine/sweep_journal.hpp).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Runs one job (build, warm, observe, disseminate, measure) and returns
  /// its sample row, one value per metric_names() entry. Emits a job event
  /// to the installed telemetry sink, if any. Thread-safe; also safe in a
  /// forked worker process.
  std::vector<double> run_job(std::uint64_t job) const;

  /// Folds flat job-order samples (samples[job], NaN-padded for metrics
  /// a replication did not observe) into a SweepResult. The fold reads
  /// rows by index, so it is independent of the completion order that
  /// produced them.
  SweepResult fold(const std::vector<std::vector<double>>& flat_samples,
                   double wall_seconds, unsigned threads_used) const;

 private:
  struct Cell {
    std::size_t scenario;  // index into scenarios_
    ProtocolSpec protocol;
    std::uint32_t n = 0;
    std::uint32_t d = 0;
  };

  SweepSpec spec_;
  std::vector<Scenario> scenarios_;
  std::vector<Cell> cells_;
  std::vector<SweepCellKey> keys_;
  std::vector<SweepMetric> metric_ids_;
  bool needs_snapshot_ = false;
  bool needs_flood_ = false;
  ObserverSpec observer_spec_;
  std::string observer_key_;
  bool has_observers_ = false;
  std::vector<std::string> metric_names_;
  std::string spec_json_;
  std::uint64_t fingerprint_ = 0;
};

/// Everything a sweep produced: per-cell aggregates + the sample matrix.
class SweepResult {
 public:
  /// `metric_names` is the full column list: the spec's metrics followed
  /// by the attached observers' metric columns (equal to spec.metrics when
  /// no observers are attached).
  SweepResult(SweepSpec spec, std::vector<std::string> metric_names,
              std::vector<SweepCellKey> cells,
              std::vector<std::vector<std::vector<double>>> samples,
              double wall_seconds, unsigned threads_used);

  const SweepSpec& spec() const { return spec_; }
  const std::vector<SweepCellKey>& cells() const { return cells_; }
  /// All metric columns: spec metrics, then observer metrics.
  const std::vector<std::string>& metrics() const { return metric_names_; }
  /// samples()[c][r][m]: metric m of replication r in cell c (NaN =
  /// missing observation).
  const std::vector<std::vector<std::vector<double>>>& samples() const {
    return samples_;
  }
  /// Aggregate over non-NaN samples (cell-major, metric-minor).
  const OnlineStats& stats(std::size_t cell, std::size_t metric) const;
  double wall_seconds() const { return wall_seconds_; }
  unsigned threads_used() const { return threads_used_; }

  /// One cell's samples repackaged as a TrialResult whose seeding options
  /// (base_seed, stream = cell index) reproduce the sweep's actual
  /// derive_seed routing — e.g. for benchutil's --csv/--json result log.
  /// The wall-clock is the whole sweep's (cells share one pool).
  TrialResult cell_trial(std::size_t cell) const;

  /// One row per cell: scenario | churn | protocol | n | d | <means>.
  Table to_table() const;

  /// Tidy long format, one row per observation:
  /// scenario,churn,protocol,n,d,replication,seed,metric,value
  void write_csv(std::ostream& os) const;

  /// Machine-readable summary + samples as one JSON object.
  void write_json(std::ostream& os) const;

 private:
  SweepSpec spec_;
  std::vector<std::string> metric_names_;
  std::vector<SweepCellKey> cells_;
  std::vector<std::vector<std::vector<double>>> samples_;
  std::vector<std::vector<OnlineStats>> stats_;  // [cell][metric]
  double wall_seconds_ = 0.0;
  unsigned threads_used_ = 1;
};

/// Expands a SweepSpec and runs it on the engine's thread pool.
class SweepRunner {
 public:
  /// Aborts (CLI semantics) when the spec fails validate().
  explicit SweepRunner(SweepSpec spec);

  const SweepSpec& spec() const { return spec_; }

  /// Runs the whole grid with `threads` workers (0 = all cores). Scenario
  /// names resolve against `registry`; unknown names abort with the known
  /// list. Results are identical for every thread count.
  SweepResult run(unsigned threads = 1,
                  const ScenarioRegistry& registry =
                      ScenarioRegistry::extended()) const;

 private:
  SweepSpec spec_;
};

}  // namespace churnet
