// Parallel replication engine (DESIGN.md, decision 8).
//
// A TrialRunner fans independent replications of a trial body across a
// std::thread pool. Three invariants make it safe to use for paper-grade
// statistics:
//
//   * Seeding: replication r runs with derive_seed(base_seed, stream, r) —
//     the base seed is never reused across replications, and distinct
//     streams (one per experiment/configuration) are decorrelated by
//     construction, so parallel trials never share randomness.
//   * Determinism: results are collected per replication index and folded
//     in index order after the pool joins, so every statistic (and the CSV
//     / JSON output) is bit-identical regardless of thread count.
//   * Missing observations: a body may return NaN for a metric (e.g.
//     "completion time" of a run that did not complete); NaN samples are
//     kept in the per-replication output but excluded from the aggregate
//     stats, whose count() then reports how many replications observed the
//     metric.
//
// The trial body must be thread-safe with respect to shared state it
// captures (the intended pattern: build everything from ctx.seed inside
// the body; see thread_local FloodScratch reuse in the bench binaries).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace churnet {

struct TrialRunnerOptions {
  std::uint64_t replications = 8;
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Thread count
  /// never changes results, only wall-clock.
  unsigned threads = 1;
  std::uint64_t base_seed = 12345;
  /// derive_seed stream index; give each experiment/configuration its own
  /// stream so sweeps never share replication seeds.
  std::uint64_t stream = 0;
};

/// What a trial body receives for one replication.
struct TrialContext {
  std::uint64_t replication = 0;
  /// derive_seed(base_seed, stream, replication): the only seed the body
  /// should use.
  std::uint64_t seed = 0;
};

/// Aggregated outcome of a TrialRunner run: per-metric statistics plus the
/// full per-replication sample matrix.
class TrialResult {
 public:
  TrialResult(TrialRunnerOptions options, std::vector<std::string> metrics,
              std::vector<std::vector<double>> samples, double wall_seconds,
              unsigned threads_used);

  const std::vector<std::string>& metrics() const { return metrics_; }
  /// Aggregate over non-NaN samples of `metric` (replication order).
  const OnlineStats& stats(std::string_view metric) const;
  /// samples()[r][m]: metric m of replication r (may be NaN = missing).
  const std::vector<std::vector<double>>& samples() const { return samples_; }
  std::uint64_t replications() const { return samples_.size(); }
  double wall_seconds() const { return wall_seconds_; }
  unsigned threads_used() const { return threads_used_; }
  const TrialRunnerOptions& options() const { return options_; }

  /// metric | count | mean | stderr | min | max summary table.
  Table to_table() const;

  /// One CSV row per replication: replication, seed, then each metric.
  void write_csv(std::ostream& os) const;

  /// Machine-readable summary + samples as a single JSON object.
  void write_json(std::ostream& os) const;

 private:
  TrialRunnerOptions options_;
  std::vector<std::string> metrics_;
  std::vector<std::vector<double>> samples_;
  std::vector<OnlineStats> stats_;
  double wall_seconds_ = 0.0;
  unsigned threads_used_ = 1;
};

class TrialRunner {
 public:
  using Body = std::function<std::vector<double>(const TrialContext&)>;
  using ScalarBody = std::function<double(const TrialContext&)>;

  explicit TrialRunner(TrialRunnerOptions options = {});

  const TrialRunnerOptions& options() const { return options_; }

  /// Runs `body` once per replication across the pool. The body must
  /// return exactly one value per declared metric.
  TrialResult run(std::vector<std::string> metrics, const Body& body) const;

  /// Single-metric convenience wrapper.
  TrialResult run(const std::string& metric, const ScalarBody& body) const;

 private:
  TrialRunnerOptions options_;
};

}  // namespace churnet
