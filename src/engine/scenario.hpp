// Scenario registry: every (model × edge-policy × churn parameterization)
// the experiments run, addressable by name at runtime.
//
// A Scenario is a named factory producing an AnyNetwork from uniform
// ScenarioParams, so bench binaries and examples select models by string
// ("SDGR", "PDG", "static-dout", ...) instead of hard-coding a type per
// binary. The built-in registry covers the paper's four dynamic models
//
//   SDG   streaming,  no regeneration   (Definition 3.4)
//   SDGR  streaming,  regeneration      (Definition 3.13)
//   PDG   Poisson,    no regeneration   (Definition 4.9)
//   PDGR  Poisson,    regeneration      (Definition 4.14)
//
// plus the two static baselines (static d-out, Lemma B.1; Erdős–Rényi with
// matching mean degree). Every scenario carries a churn spec
// (churn/churn_spec.hpp): the paper models keep their exact processes
// ("stream", "poisson"), and composite names like "PDGR+pareto(2.5)" attach
// any continuous regime to a Poisson-family base — resolve() parses them on
// the fly, and ScenarioRegistry::extended() pre-registers the headline
// regimes. Custom registries can add more scenarios (e.g. bounded-degree
// variants via ScenarioParams::max_in_degree).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "churn/churn_spec.hpp"
#include "models/edge_policy.hpp"
#include "models/network.hpp"
#include "protocols/protocol_spec.hpp"

namespace churnet {

/// Uniform parameterization across scenarios. Model-specific mapping:
/// streaming uses n as both size and lifetime; Poisson-family regimes use
/// the paper's lambda = 1, mu = 1/n (mean lifetime n, stationary size n);
/// the baselines sample one static topology of ~n mean-degree-matched
/// nodes.
struct ScenarioParams {
  std::uint32_t n = 1000;
  std::uint32_t d = 8;
  std::uint64_t seed = 1;
  /// Bounded-degree extension cap; 0 = the paper's unbounded models.
  /// Ignored by the static baselines.
  std::uint32_t max_in_degree = 0;
  /// Intra-trial worker threads for the streaming genesis bulk wiring
  /// (0 = one per hardware thread). Byte-identical results at every value;
  /// purely a wall-clock knob. Ignored by the other models.
  std::uint32_t intra_threads = 1;
  /// Optional churn-spec override ("pareto(2.5)", ...); empty keeps the
  /// scenario's own spec. Malformed or model-incompatible specs abort with
  /// the reason (CLI semantics, like ScenarioRegistry::at).
  std::string churn;
};

/// Which simulator a scenario instantiates.
enum class ModelKind : std::uint8_t {
  kStreaming,
  kPoisson,
  kStaticDOut,
  kErdosRenyi,
};

/// A named, constructible model configuration.
class Scenario {
 public:
  /// Default churn: "stream" for streaming models, "poisson" for
  /// Poisson-family models (the paper's processes).
  Scenario(std::string name, ModelKind model, EdgePolicy policy,
           std::string description);
  Scenario(std::string name, ModelKind model, EdgePolicy policy,
           ChurnSpec churn, std::string description);

  const std::string& name() const { return name_; }
  ModelKind model() const { return model_; }
  EdgePolicy policy() const { return policy_; }
  const ChurnSpec& churn() const { return churn_; }
  /// The dissemination protocol the engine runs on this scenario's
  /// networks (default: flood, the paper's process). Any protocol runs on
  /// any model — the dissemination driver adapts to the model's semantics.
  const ProtocolSpec& protocol() const { return protocol_; }
  const std::string& description() const { return description_; }
  /// True for the dynamic models (false for the static baselines).
  bool has_churn() const;

  /// A copy of this scenario running under `churn` instead (name gains a
  /// "+spec" suffix). Aborts with the reason when the spec cannot drive
  /// this model (streaming models take "stream" or an adversarial spec;
  /// Poisson-family models take any continuous regime, adversarial and
  /// burst included; baselines take none).
  Scenario with_churn(const ChurnSpec& churn) const;

  /// A copy of this scenario measured under `protocol` instead (name gains
  /// a "+spec" suffix when the spec is not the default flood).
  Scenario with_protocol(const ProtocolSpec& protocol) const;

  /// Builds a fresh, seeded, NOT-warmed-up network.
  AnyNetwork make(const ScenarioParams& params) const;

  /// Builds and warms up (streaming: 2n rounds; Poisson-family: 10
  /// expected lifetimes; baselines: born stationary).
  AnyNetwork make_warmed(const ScenarioParams& params) const;

 private:
  /// The spec this build uses: params.churn (parsed; aborts on errors) or
  /// the scenario's own. Validates model compatibility.
  ChurnSpec effective_churn(const ScenarioParams& params) const;

  std::string name_;
  ModelKind model_;
  EdgePolicy policy_;
  ChurnSpec churn_;
  ProtocolSpec protocol_;
  std::string description_;
};

/// Name-addressable collection of scenarios.
class ScenarioRegistry {
 public:
  /// The built-in registry: SDG, SDGR, PDG, PDGR, static-dout, erdos-renyi.
  static const ScenarioRegistry& paper();

  /// paper() plus the pre-registered extended churn regimes
  /// (PDGR+pareto/weibull/bursty/drift and a PDG heavy-tail variant).
  static const ScenarioRegistry& extended();

  ScenarioRegistry() = default;

  /// Registers a scenario; names are unique (re-adding replaces).
  void add(Scenario scenario);

  /// Case-insensitive lookup; nullptr when absent.
  const Scenario* find(std::string_view name) const;

  /// Lookup that aborts with the known names when absent (for CLI paths).
  const Scenario& at(std::string_view name) const;

  /// Like at(), but also accepts composite "BASE+spec(+spec...)" names:
  /// the base is looked up and each '+'-separated suffix is parsed as a
  /// ChurnSpec ("PDGR+pareto(2.5)") or a ProtocolSpec segment
  /// ("PDGR+push(3)", "PDGR+pareto(2.5)+flood+lossy(0.9)"), dispatched by
  /// segment name. The combined scenario is returned by value. Aborts with
  /// the reason on unknown bases, malformed or unknown specs (listing the
  /// known churn regimes and protocol names), or incompatible model/spec
  /// pairs.
  Scenario resolve(std::string_view name) const;

  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  std::vector<std::string> names() const;

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace churnet
