// Scenario registry: every (model × edge-policy × churn parameterization)
// the experiments run, addressable by name at runtime.
//
// A Scenario is a named factory producing an AnyNetwork from uniform
// ScenarioParams, so bench binaries and examples select models by string
// ("SDGR", "PDG", "static-dout", ...) instead of hard-coding a type per
// binary. The built-in registry covers the paper's four dynamic models
//
//   SDG   streaming,  no regeneration   (Definition 3.4)
//   SDGR  streaming,  regeneration      (Definition 3.13)
//   PDG   Poisson,    no regeneration   (Definition 4.9)
//   PDGR  Poisson,    regeneration      (Definition 4.14)
//
// plus the two static baselines (static d-out, Lemma B.1; Erdős–Rényi with
// matching mean degree). Custom registries can add more scenarios (e.g.
// bounded-degree variants via ScenarioParams::max_in_degree).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "models/edge_policy.hpp"
#include "models/network.hpp"

namespace churnet {

/// Uniform parameterization across scenarios. Model-specific mapping:
/// streaming uses n as both size and lifetime; Poisson uses the paper's
/// lambda = 1, mu = 1/n; the baselines sample one static topology of ~n
/// mean-degree-matched nodes.
struct ScenarioParams {
  std::uint32_t n = 1000;
  std::uint32_t d = 8;
  std::uint64_t seed = 1;
  /// Bounded-degree extension cap; 0 = the paper's unbounded models.
  /// Ignored by the static baselines.
  std::uint32_t max_in_degree = 0;
};

/// Which simulator a scenario instantiates.
enum class ModelKind : std::uint8_t {
  kStreaming,
  kPoisson,
  kStaticDOut,
  kErdosRenyi,
};

/// A named, constructible model configuration.
class Scenario {
 public:
  Scenario(std::string name, ModelKind model, EdgePolicy policy,
           std::string description);

  const std::string& name() const { return name_; }
  ModelKind model() const { return model_; }
  EdgePolicy policy() const { return policy_; }
  const std::string& description() const { return description_; }
  /// True for the four paper models (false for the static baselines).
  bool has_churn() const;

  /// Builds a fresh, seeded, NOT-warmed-up network.
  AnyNetwork make(const ScenarioParams& params) const;

  /// Builds and warms up (streaming: 2n rounds; Poisson: 10 expected
  /// lifetimes; baselines: born stationary).
  AnyNetwork make_warmed(const ScenarioParams& params) const;

 private:
  std::string name_;
  ModelKind model_;
  EdgePolicy policy_;
  std::string description_;
};

/// Name-addressable collection of scenarios.
class ScenarioRegistry {
 public:
  /// The built-in registry: SDG, SDGR, PDG, PDGR, static-dout, erdos-renyi.
  static const ScenarioRegistry& paper();

  ScenarioRegistry() = default;

  /// Registers a scenario; names are unique (re-adding replaces).
  void add(Scenario scenario);

  /// Case-insensitive lookup; nullptr when absent.
  const Scenario* find(std::string_view name) const;

  /// Lookup that aborts with the known names when absent (for CLI paths).
  const Scenario& at(std::string_view name) const;

  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  std::vector<std::string> names() const;

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace churnet
