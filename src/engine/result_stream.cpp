#include "engine/result_stream.hpp"

#include <ostream>
#include <sstream>

#include "common/sinks.hpp"

namespace churnet {
namespace {

void append_hex_u64(std::ostream& os, std::uint64_t value) {
  constexpr char kHex[] = "0123456789abcdef";
  os << "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    os << kHex[(value >> shift) & 0xF];
  }
}

}  // namespace

ResultStream::ResultStream(std::ostream& out, const SweepPlan& plan)
    : out_(out), plan_(plan) {}

void ResultStream::begin(std::uint64_t resumed_jobs, unsigned workers,
                         std::string_view tool) {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << "{\"ev\":\"sweep_header\",\"schema\":1,\"tool\":";
  write_json_string(out_, tool);
  out_ << ",\"fingerprint\":\"";
  append_hex_u64(out_, plan_.fingerprint());
  out_ << "\",\"cells\":" << plan_.keys().size()
       << ",\"replications\":" << plan_.replications()
       << ",\"jobs\":" << plan_.job_count() << ",\"resumed\":" << resumed_jobs
       << ",\"workers\":" << workers << ",\"metrics\":[";
  const std::vector<std::string>& metrics = plan_.metric_names();
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    if (m > 0) out_ << ',';
    write_json_string(out_, metrics[m]);
  }
  out_ << "],\"spec\":" << plan_.spec_json() << "}\n";
  out_.flush();
}

void ResultStream::row(std::uint64_t job, const std::vector<double>& values,
                       bool resumed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const PrecisionGuard precision(out_);
  const std::uint64_t cell = plan_.job_cell(job);
  const SweepCellKey& key = plan_.keys()[cell];
  out_ << "{\"ev\":\"row\",\"job\":" << job << ",\"cell\":" << cell
       << ",\"replication\":" << plan_.job_replication(job)
       << ",\"seed\":" << plan_.job_seed(job)
       << ",\"resumed\":" << (resumed ? "true" : "false")
       << ",\"scenario\":";
  write_json_string(out_, key.scenario);
  out_ << ",\"churn\":";
  write_json_string(out_, key.churn);
  out_ << ",\"protocol\":";
  write_json_string(out_, key.protocol);
  out_ << ",\"n\":" << key.n << ",\"d\":" << key.d << ",\"values\":[";
  for (std::size_t m = 0; m < values.size(); ++m) {
    if (m > 0) out_ << ',';
    write_json_number(out_, values[m]);
  }
  out_ << "]}\n";
  out_.flush();
}

void ResultStream::end(std::uint64_t jobs_done) {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << "{\"ev\":\"sweep_footer\",\"jobs_done\":" << jobs_done << "}\n";
  out_.flush();
}

}  // namespace churnet
