#include "engine/sweep_runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/assertx.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/sinks.hpp"
#include "engine/trial_runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/change_feed.hpp"
#include "observe/observer_spec.hpp"
#include "protocols/protocol_spec.hpp"
#include "telemetry/trace_sink.hpp"

namespace churnet {
namespace {

struct MetricInfo {
  const char* name;
  SweepMetric id;
  bool needs_snapshot;
  bool needs_flood;
};

constexpr MetricInfo kCatalog[] = {
    {"alive", SweepMetric::kAlive, false, false},
    {"mean_degree", SweepMetric::kMeanDegree, true, false},
    {"max_degree", SweepMetric::kMaxDegree, true, false},
    {"isolated", SweepMetric::kIsolated, true, false},
    {"largest_component_frac", SweepMetric::kLargestComponentFrac, true,
     false},
    {"completion_step", SweepMetric::kCompletionStep, false, true},
    {"final_fraction", SweepMetric::kFinalFraction, false, true},
    {"peak_informed", SweepMetric::kPeakInformed, false, true},
    {"flood_steps", SweepMetric::kFloodSteps, false, true},
    {"messages", SweepMetric::kMessages, false, true},
    {"useful_deliveries", SweepMetric::kUsefulDeliveries, false, true},
    {"duplicate_deliveries", SweepMetric::kDuplicateDeliveries, false, true},
    {"lost_messages", SweepMetric::kLostMessages, false, true},
};

const MetricInfo* find_metric(std::string_view name) {
  for (const MetricInfo& info : kCatalog) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

/// Accepts only exact integers in [lo, hi]; fractional, out-of-range and
/// non-numeric values are config errors, never silent truncation (a
/// static_cast from an out-of-range double is undefined behavior).
bool read_integer(const JsonValue& value, const char* key, double lo,
                  double hi, double* out, std::string* error) {
  const bool ok = value.is_number() && value.as_number() >= lo &&
                  value.as_number() <= hi &&
                  std::floor(value.as_number()) == value.as_number();
  if (!ok) {
    if (error != nullptr) {
      *error = std::string(key) + " must be an integer in [" +
               std::to_string(static_cast<long long>(lo)) + ", " +
               std::to_string(static_cast<unsigned long long>(hi)) + "]";
    }
    return false;
  }
  *out = value.as_number();
  return true;
}

bool read_u32_list(const JsonValue& value, const char* key,
                   std::vector<std::uint32_t>* out, std::string* error) {
  if (!value.is_array()) {
    if (error != nullptr) *error = std::string(key) + " must be an array";
    return false;
  }
  out->clear();
  for (const JsonValue& item : value.items()) {
    double number = 0.0;
    if (!read_integer(item, key, 1.0,
                      static_cast<double>(
                          std::numeric_limits<std::uint32_t>::max()),
                      &number, error)) {
      return false;
    }
    out->push_back(static_cast<std::uint32_t>(number));
  }
  return true;
}

bool read_string_list(const JsonValue& value, const char* key,
                      std::vector<std::string>* out, std::string* error) {
  if (!value.is_array()) {
    if (error != nullptr) *error = std::string(key) + " must be an array";
    return false;
  }
  out->clear();
  for (const JsonValue& item : value.items()) {
    if (!item.is_string()) {
      if (error != nullptr) {
        *error = std::string(key) + " entries must be strings";
      }
      return false;
    }
    out->push_back(item.as_string());
  }
  return true;
}

/// Spec provenance for the sweep_begin trace event.
std::string sweep_spec_json(const SweepSpec& spec) {
  std::ostringstream os;
  const auto write_string_array = [&os](const char* key,
                                        const std::vector<std::string>& xs) {
    write_json_string(os, key);
    os << ":[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) os << ',';
      write_json_string(os, xs[i]);
    }
    os << ']';
  };
  const auto write_u32_array = [&os](const char* key,
                                     const std::vector<std::uint32_t>& xs) {
    write_json_string(os, key);
    os << ":[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) os << ',';
      os << xs[i];
    }
    os << ']';
  };
  os << '{';
  write_string_array("scenarios", spec.scenarios);
  os << ',';
  write_u32_array("n", spec.n_values);
  os << ',';
  write_u32_array("d", spec.d_values);
  os << ',';
  write_string_array("protocols", spec.protocols);
  os << ",\"observers\":";
  write_json_string(os, spec.observers);
  os << ",\"incremental_observers\":"
     << (spec.incremental_observers ? "true" : "false")
     << ",\"replications\":" << spec.replications
     << ",\"seed\":" << spec.base_seed
     << ",\"max_in_degree\":" << spec.max_in_degree
     << ",\"intra_threads\":" << spec.intra_threads << '}';
  return os.str();
}

}  // namespace

std::vector<std::string> SweepSpec::known_metrics() {
  std::vector<std::string> names;
  for (const MetricInfo& info : kCatalog) names.emplace_back(info.name);
  return names;
}

std::vector<std::string> SweepSpec::default_metrics() {
  return {"alive", "mean_degree", "isolated", "completion_step",
          "final_fraction", "messages"};
}

std::optional<SweepSpec> SweepSpec::from_json(const JsonValue& json,
                                              std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) *error = "sweep spec must be a JSON object";
    return std::nullopt;
  }
  SweepSpec spec;
  for (const JsonValue::Member& member : json.members()) {
    const std::string& key = member.first;
    const JsonValue& value = member.second;
    if (key == "scenarios") {
      if (!read_string_list(value, "scenarios", &spec.scenarios, error)) {
        return std::nullopt;
      }
    } else if (key == "n") {
      if (!read_u32_list(value, "n", &spec.n_values, error)) {
        return std::nullopt;
      }
    } else if (key == "d") {
      if (!read_u32_list(value, "d", &spec.d_values, error)) {
        return std::nullopt;
      }
    } else if (key == "protocols") {
      if (!read_string_list(value, "protocols", &spec.protocols, error)) {
        return std::nullopt;
      }
    } else if (key == "metrics") {
      if (!read_string_list(value, "metrics", &spec.metrics, error)) {
        return std::nullopt;
      }
    } else if (key == "observers") {
      if (!value.is_string()) {
        if (error != nullptr) {
          *error = "observers must be a spec string "
                   "(\"expansion(8)+isolated\")";
        }
        return std::nullopt;
      }
      spec.observers = value.as_string();
    } else if (key == "incremental_observers") {
      if (!value.is_bool()) {
        if (error != nullptr) {
          *error = "incremental_observers must be a boolean";
        }
        return std::nullopt;
      }
      spec.incremental_observers = value.as_bool();
    } else if (key == "replications") {
      double number = 0.0;
      if (!read_integer(value, "replications", 1.0, 1e15, &number, error)) {
        return std::nullopt;
      }
      spec.replications = static_cast<std::uint64_t>(number);
    } else if (key == "seed") {
      // Doubles hold integers exactly up to 2^53; larger seeds belong in
      // the CLI flag, not a JSON config.
      double number = 0.0;
      if (!read_integer(value, "seed", 0.0, 9007199254740992.0, &number,
                        error)) {
        return std::nullopt;
      }
      spec.base_seed = static_cast<std::uint64_t>(number);
    } else if (key == "max_in_degree") {
      double number = 0.0;
      if (!read_integer(value, "max_in_degree", 0.0,
                        static_cast<double>(
                            std::numeric_limits<std::uint32_t>::max()),
                        &number, error)) {
        return std::nullopt;
      }
      spec.max_in_degree = static_cast<std::uint32_t>(number);
    } else if (key == "intra_threads") {
      double number = 0.0;
      if (!read_integer(value, "intra_threads", 0.0,
                        static_cast<double>(
                            std::numeric_limits<std::uint32_t>::max()),
                        &number, error)) {
        return std::nullopt;
      }
      spec.intra_threads = static_cast<std::uint32_t>(number);
    } else {
      if (error != nullptr) {
        *error = "unknown sweep key '" + key +
                 "'; known: scenarios, n, d, protocols, metrics, observers, "
                 "incremental_observers, replications, seed, max_in_degree, "
                 "intra_threads";
      }
      return std::nullopt;
    }
  }
  if (const std::optional<std::string> reason = spec.validate()) {
    if (error != nullptr) *error = *reason;
    return std::nullopt;
  }
  return spec;
}

std::optional<SweepSpec> SweepSpec::from_json_text(std::string_view text,
                                                   std::string* error) {
  const std::optional<JsonValue> json = JsonValue::parse(text, error);
  if (!json.has_value()) return std::nullopt;
  return from_json(*json, error);
}

std::optional<std::string> SweepSpec::validate() const {
  if (scenarios.empty()) return "sweep needs at least one scenario";
  if (n_values.empty()) return "sweep needs at least one n";
  if (d_values.empty()) return "sweep needs at least one d";
  if (metrics.empty()) return "sweep needs at least one metric";
  if (replications == 0) return "replications must be >= 1";
  for (const std::string& protocol : protocols) {
    std::string error;
    if (!ProtocolSpec::parse(protocol, &error).has_value()) return error;
  }
  {
    std::string error;
    if (!ObserverSpec::parse(observers, &error).has_value()) return error;
  }
  for (const std::string& metric : metrics) {
    if (find_metric(metric) == nullptr) {
      std::string known;
      for (const MetricInfo& info : kCatalog) {
        known += known.empty() ? info.name : std::string(", ") + info.name;
      }
      return "unknown metric '" + metric + "'; known: " + known;
    }
  }
  return std::nullopt;
}

SweepResult::SweepResult(
    SweepSpec spec, std::vector<std::string> metric_names,
    std::vector<SweepCellKey> cells,
    std::vector<std::vector<std::vector<double>>> samples,
    double wall_seconds, unsigned threads_used)
    : spec_(std::move(spec)),
      metric_names_(std::move(metric_names)),
      cells_(std::move(cells)),
      samples_(std::move(samples)),
      wall_seconds_(wall_seconds),
      threads_used_(threads_used) {
  CHURNET_ASSERT(samples_.size() == cells_.size());
  stats_.resize(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    stats_[c].resize(metric_names_.size());
    for (const std::vector<double>& row : samples_[c]) {
      CHURNET_ASSERT(row.size() == metric_names_.size());
      for (std::size_t m = 0; m < row.size(); ++m) {
        if (!std::isnan(row[m])) stats_[c][m].add(row[m]);
      }
    }
  }
}

const OnlineStats& SweepResult::stats(std::size_t cell,
                                      std::size_t metric) const {
  CHURNET_EXPECTS(cell < stats_.size());
  CHURNET_EXPECTS(metric < stats_[cell].size());
  return stats_[cell][metric];
}

TrialResult SweepResult::cell_trial(std::size_t cell) const {
  CHURNET_EXPECTS(cell < cells_.size());
  TrialRunnerOptions options;
  options.replications = spec_.replications;
  options.threads = threads_used_;
  options.base_seed = spec_.base_seed;
  options.stream = cell;
  return TrialResult(options, metric_names_, samples_[cell], wall_seconds_,
                     threads_used_);
}

Table SweepResult::to_table() const {
  std::vector<std::string> header{"scenario", "churn", "protocol", "n", "d"};
  for (const std::string& metric : metric_names_) header.push_back(metric);
  Table table(header);
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const SweepCellKey& cell = cells_[c];
    std::vector<std::string> row{
        cell.scenario, cell.churn, cell.protocol,
        fmt_int(static_cast<std::int64_t>(cell.n)),
        fmt_int(static_cast<std::int64_t>(cell.d))};
    for (std::size_t m = 0; m < metric_names_.size(); ++m) {
      const OnlineStats& s = stats_[c][m];
      row.push_back(s.count() > 0 ? fmt_fixed(s.mean(), 3) : "-");
    }
    table.add_row(row);
  }
  return table;
}

void SweepResult::write_csv(std::ostream& os) const {
  const PrecisionGuard precision(os);
  os << "scenario,churn,protocol,n,d,replication,seed,metric,value\n";
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const SweepCellKey& cell = cells_[c];
    // Scenario/churn names can contain commas ("bursty(4,0.5)"): RFC-4180
    // quoting keeps every row at exactly 9 columns.
    const std::string scenario_field = csv_field(cell.scenario);
    const std::string churn_field = csv_field(cell.churn);
    const std::string protocol_field = csv_field(cell.protocol);
    for (std::size_t r = 0; r < samples_[c].size(); ++r) {
      const std::uint64_t seed = derive_seed(spec_.base_seed, c, r);
      for (std::size_t m = 0; m < metric_names_.size(); ++m) {
        os << scenario_field << ',' << churn_field << ',' << protocol_field
           << ',' << cell.n << ',' << cell.d << ',' << r << ',' << seed
           << ',' << csv_field(metric_names_[m]) << ',';
        const double value = samples_[c][r][m];
        if (!std::isnan(value)) os << value;
        os << '\n';
      }
    }
  }
}

void SweepResult::write_json(std::ostream& os) const {
  // Deliberately no wall-clock or thread-count fields: the JSON sink, like
  // the CSV, is a pure function of (spec, samples), so runs at any thread
  // or worker count — and resumed runs — emit identical bytes (the sweep
  // service's determinism contract, docs/sweep-service.md).
  const PrecisionGuard precision(os);
  os << "{\"replications\":" << spec_.replications
     << ",\"base_seed\":" << spec_.base_seed << ",\"cells\":[";
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (c > 0) os << ',';
    const SweepCellKey& cell = cells_[c];
    os << "{\"scenario\":";
    write_json_string(os, cell.scenario);
    os << ",\"churn\":";
    write_json_string(os, cell.churn);
    os << ",\"protocol\":";
    write_json_string(os, cell.protocol);
    os << ",\"n\":" << cell.n << ",\"d\":" << cell.d << ",\"metrics\":{";
    for (std::size_t m = 0; m < metric_names_.size(); ++m) {
      if (m > 0) os << ',';
      const OnlineStats& s = stats_[c][m];
      write_json_string(os, metric_names_[m]);
      os << ":{\"count\":" << s.count() << ",\"mean\":";
      write_json_number(os, s.count() > 0 ? s.mean() : std::nan(""));
      os << ",\"stddev\":";
      write_json_number(os, s.count() > 1 ? s.stddev() : std::nan(""));
      os << ",\"min\":";
      write_json_number(os, s.count() > 0 ? s.min() : std::nan(""));
      os << ",\"max\":";
      write_json_number(os, s.count() > 0 ? s.max() : std::nan(""));
      os << '}';
    }
    os << "},\"samples\":[";
    for (std::size_t r = 0; r < samples_[c].size(); ++r) {
      if (r > 0) os << ',';
      os << '[';
      for (std::size_t m = 0; m < samples_[c][r].size(); ++m) {
        if (m > 0) os << ',';
        write_json_number(os, samples_[c][r][m]);
      }
      os << ']';
    }
    os << "]}";
  }
  os << "]}";
}

namespace {

/// FNV-1a over `bytes`, continuing from `h` (seed with kFnvOffset).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_mix(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

SweepPlan::SweepPlan(SweepSpec spec, const ScenarioRegistry& registry)
    : spec_(std::move(spec)) {
  if (const std::optional<std::string> reason = spec_.validate()) {
    std::fprintf(stderr, "invalid sweep spec: %s\n", reason->c_str());
    std::abort();
  }
  // Resolve every scenario once (aborts with the known names on typos),
  // then expand the grid scenario-major, protocol axis next: an empty
  // protocol list means one cell per scenario under the scenario's own
  // protocol; explicit entries override it.
  scenarios_.reserve(spec_.scenarios.size());
  for (const std::string& name : spec_.scenarios) {
    scenarios_.push_back(registry.resolve(name));
  }
  std::vector<std::optional<ProtocolSpec>> protocol_axis;
  if (spec_.protocols.empty()) {
    protocol_axis.push_back(std::nullopt);  // the scenario's own protocol
  } else {
    for (const std::string& text : spec_.protocols) {
      std::string error;
      const std::optional<ProtocolSpec> parsed =
          ProtocolSpec::parse(text, &error);
      if (!parsed.has_value()) {  // validate() already checked; belt and
        std::fprintf(stderr, "%s\n", error.c_str());  // braces for direct
        std::abort();                                 // callers
      }
      protocol_axis.push_back(parsed);
    }
  }
  cells_.reserve(spec_.cell_count());
  keys_.reserve(spec_.cell_count());
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    const Scenario& scenario = scenarios_[s];
    for (const std::optional<ProtocolSpec>& axis : protocol_axis) {
      const ProtocolSpec protocol = axis.value_or(scenario.protocol());
      for (const std::uint32_t n : spec_.n_values) {
        for (const std::uint32_t d : spec_.d_values) {
          cells_.push_back(Cell{s, protocol, n, d});
          keys_.push_back(SweepCellKey{
              scenario.name(),
              scenario.has_churn() ? scenario.churn().canonical() : "none",
              protocol.canonical(), n, d});
        }
      }
    }
  }

  metric_ids_.reserve(spec_.metrics.size());
  for (const std::string& name : spec_.metrics) {
    const MetricInfo* info = find_metric(name);
    CHURNET_ASSERT(info != nullptr);  // validate() already checked
    metric_ids_.push_back(info->id);
    needs_snapshot_ |= info->needs_snapshot;
    needs_flood_ |= info->needs_flood;
  }

  // The attached observer set: parsed once here; instantiated per worker
  // (thread_local, like protocol instances) and fully reset per trial, so
  // observer values stay pure functions of the replication seed. Its
  // metric columns follow the spec's own metrics in every row.
  observer_spec_ = [this] {
    std::string error;
    const std::optional<ObserverSpec> parsed =
        ObserverSpec::parse(spec_.observers, &error);
    if (!parsed.has_value()) {  // validate() already checked; belt and
      std::fprintf(stderr, "%s\n", error.c_str());  // braces for direct
      std::abort();                                 // callers
    }
    return *parsed;
  }();
  observer_key_ = observer_spec_.canonical();
  has_observers_ = !observer_spec_.empty();
  metric_names_ = spec_.metrics;
  for (std::string& name :
       make_observer_set(observer_spec_).metric_names()) {
    metric_names_.push_back(std::move(name));
  }

  spec_json_ = sweep_spec_json(spec_);

  // The fingerprint covers everything that determines job identity: the
  // spec provenance (grid, seeds, observers, knobs), the resolved metric
  // columns and cell keys, and the job count. Fields are separated by a
  // 0x1f byte so ("ab","c") never collides with ("a","bc").
  std::uint64_t h = fnv1a_mix(kFnvOffset, spec_json_);
  for (const std::string& name : metric_names_) {
    h = fnv1a_mix(h, "\x1f");
    h = fnv1a_mix(h, name);
  }
  for (const SweepCellKey& key : keys_) {
    h = fnv1a_mix(h, "\x1f");
    h = fnv1a_mix(h, key.scenario);
    h = fnv1a_mix(h, "\x1f");
    h = fnv1a_mix(h, key.churn);
    h = fnv1a_mix(h, "\x1f");
    h = fnv1a_mix(h, key.protocol);
    h = fnv1a_mix(h, "\x1f");
    h = fnv1a_mix(h, std::to_string(key.n));
    h = fnv1a_mix(h, "\x1f");
    h = fnv1a_mix(h, std::to_string(key.d));
  }
  h = fnv1a_mix(h, "\x1f");
  h = fnv1a_mix(h, std::to_string(job_count()));
  fingerprint_ = h;
}

std::uint64_t SweepPlan::job_seed(std::uint64_t job) const {
  return derive_seed(spec_.base_seed, job_cell(job), job_replication(job));
}

std::vector<double> SweepPlan::run_job(std::uint64_t job) const {
  const std::uint64_t cell_index = job_cell(job);
  const std::uint64_t replication = job_replication(job);
  const Cell& cell = cells_[cell_index];
  const bool has_observers = has_observers_;
  const bool incremental = spec_.incremental_observers && has_observers;
  const std::uint32_t intra_threads = spec_.intra_threads;

  // Telemetry slice for this job: thread-local snapshot-diff around
  // the body (reads the steady clock only — no RNG, no effect on any
  // computed value). Emitted to the installed sink, if any, at the
  // bottom of the function.
  telemetry::TraceSink* const sink = telemetry::TraceSink::global();
  const telemetry::TrialRecorder recorder;
  const auto job_start = std::chrono::steady_clock::now();

  ScenarioParams params;
  params.n = cell.n;
  params.d = cell.d;
  params.seed = derive_seed(spec_.base_seed, cell_index, replication);
  params.max_in_degree = spec_.max_in_degree;
  params.intra_threads = intra_threads;
  AnyNetwork net = scenarios_[cell.scenario].make_warmed(params);

  // Observer instances live per worker like protocol instances;
  // begin_trial resets them under a stream (params.seed, 2, ·)
  // disjoint from the network's own seed and the protocol stream
  // (params.seed, 1, 0). An observation window, when requested,
  // advances the network BEFORE any metric is measured — the window
  // is part of the cell's definition, identical at every thread
  // count.
  thread_local ObserverSet observers;
  thread_local std::string observers_key;
  if (has_observers) {
    if (observers.empty() || observers_key != observer_key_) {
      observers = make_observer_set(observer_spec_);
      observers_key = observer_key_;
    }
    const std::uint64_t trial_seed = derive_seed(params.seed, 2, 0);
    if (incremental) {
      // Delta-fed mode: the per-worker feed is attached for the
      // window only (dissemination churn is not observed) and
      // retains capacity across jobs — zero-allocation steady state.
      thread_local ChangeFeed feed;
      net.attach_change_feed(&feed);
      observers.begin_incremental_trial(trial_seed, net.graph(),
                                        net.now());
      const std::uint32_t window = observers.observation_rounds();
      {
        // One span over the whole window (never per step: two clock
        // reads per churn round would blow the <3% overhead budget).
        // on_deltas' own delta_fold span nests inside.
        const telemetry::PhaseTimer churn_span(
            telemetry::Phase::kChurn);
        for (std::uint32_t r = 0; r < window; ++r) {
          feed.clear();
          net.step();
          observers.on_round(net.graph(), net.now());
          observers.on_deltas(net.graph(), feed.deltas(), net.now());
        }
      }
      net.attach_change_feed(nullptr);
    } else {
      observers.begin_trial(trial_seed);
      const std::uint32_t window = observers.observation_rounds();
      {
        const telemetry::PhaseTimer churn_span(
            telemetry::Phase::kChurn);
        for (std::uint32_t r = 0; r < window; ++r) {
          net.step();
          observers.on_round(net.graph(), net.now());
        }
      }
    }
  }

  const double alive =
      static_cast<double>(net.graph().alive_count());
  DegreeStats degrees;
  Components components;
  // The observer set's one shared snapshot (built only when some
  // observer needs the dense form) doubles as the engine metrics'
  // snapshot; a local capture covers the no-observer /
  // delta-fed-only cases. Capture itself is RNG-free, so this
  // restructuring changes no measured value.
  const Snapshot* snap =
      has_observers ? observers.observe(net.graph(), net.now())
                    : nullptr;
  Snapshot local;
  if (needs_snapshot_ && snap == nullptr) {
    local = net.snapshot();
    snap = &local;
  }
  if (needs_snapshot_) {
    degrees = degree_stats(*snap);
    components = connected_components(*snap);
  }
  FloodTrace trace;
  ProtocolStats proto_stats;
  if (needs_flood_ ||
      (has_observers && observers.wants_dissemination())) {
    // The cell's protocol through the generic dissemination driver;
    // its RNG stream is derived from the replication seed, so the
    // job stays a pure function of (base_seed, cell, replication).
    // Protocol instances are reusable across runs (begin_run resets
    // everything), so each worker keeps one per canonical spec —
    // jobs are cell-contiguous, making rebuilds rare.
    thread_local ProtocolScratch scratch;
    thread_local std::unique_ptr<DisseminationProtocol> protocol;
    thread_local std::string protocol_key;
    const std::string& key = keys_[cell_index].protocol;
    if (protocol == nullptr || protocol_key != key) {
      protocol = make_protocol(cell.protocol);
      protocol_key = key;
    }
    ProtocolOptions options = protocol_options(
        cell.protocol, derive_seed(params.seed, 1, 0));
    options.flood.intra_threads = intra_threads;
    ProtocolResult run = net.disseminate(*protocol, options, scratch);
    if (has_observers) {
      observers.on_dissemination(run.trace, &run.stats);
    }
    trace = std::move(run.trace);
    proto_stats = run.stats;
  }

  std::vector<double> values;
  values.reserve(metric_ids_.size());
  for (const SweepMetric id : metric_ids_) {
    switch (id) {
      case SweepMetric::kAlive:
        values.push_back(alive);
        break;
      case SweepMetric::kMeanDegree:
        values.push_back(degrees.mean);
        break;
      case SweepMetric::kMaxDegree:
        values.push_back(static_cast<double>(degrees.max));
        break;
      case SweepMetric::kIsolated:
        values.push_back(static_cast<double>(degrees.isolated));
        break;
      case SweepMetric::kLargestComponentFrac:
        values.push_back(
            alive > 0.0
                ? static_cast<double>(components.largest_size) / alive
                : std::nan(""));
        break;
      case SweepMetric::kCompletionStep:
        values.push_back(trace.completed
                             ? static_cast<double>(
                                   trace.completion_step)
                             : std::nan(""));
        break;
      case SweepMetric::kFinalFraction:
        values.push_back(trace.final_fraction);
        break;
      case SweepMetric::kPeakInformed:
        values.push_back(static_cast<double>(trace.peak_informed));
        break;
      case SweepMetric::kFloodSteps:
        values.push_back(static_cast<double>(trace.steps));
        break;
      case SweepMetric::kMessages:
        values.push_back(
            static_cast<double>(proto_stats.total_messages()));
        break;
      case SweepMetric::kUsefulDeliveries:
        values.push_back(
            static_cast<double>(proto_stats.useful_deliveries));
        break;
      case SweepMetric::kDuplicateDeliveries:
        values.push_back(
            static_cast<double>(proto_stats.duplicate_deliveries));
        break;
      case SweepMetric::kLostMessages:
        values.push_back(
            static_cast<double>(proto_stats.lost_messages));
        break;
    }
  }
  if (has_observers) observers.append_values(values);
  if (sink != nullptr) {
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            job_start)
                            .count();
    const SweepCellKey& key = keys_[cell_index];
    std::ostringstream identity;
    identity << "\"scenario\":";
    write_json_string(identity, key.scenario);
    identity << ",\"churn\":";
    write_json_string(identity, key.churn);
    identity << ",\"protocol\":";
    write_json_string(identity, key.protocol);
    identity << ",\"n\":" << key.n << ",\"d\":" << key.d;
    sink->job(cell_index, replication, params.seed, wall,
              recorder.finish(), identity.str());
  }
  return values;
}

SweepResult SweepPlan::fold(
    const std::vector<std::vector<double>>& flat_samples,
    double wall_seconds, unsigned threads_used) const {
  CHURNET_ASSERT(flat_samples.size() == job_count());
  // Regroup the flat job samples per cell (row j belongs to cell j / reps,
  // replication j % reps — reading by index, so the regrouping is
  // independent of the order rows were computed in).
  const std::uint64_t reps = spec_.replications;
  std::vector<std::vector<std::vector<double>>> samples(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    samples[c].assign(
        flat_samples.begin() + static_cast<std::ptrdiff_t>(c * reps),
        flat_samples.begin() + static_cast<std::ptrdiff_t>((c + 1) * reps));
  }
  return SweepResult(spec_, metric_names_, keys_, std::move(samples),
                     wall_seconds, threads_used);
}

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {
  if (const std::optional<std::string> reason = spec_.validate()) {
    std::fprintf(stderr, "invalid sweep spec: %s\n", reason->c_str());
    std::abort();
  }
}

SweepResult SweepRunner::run(unsigned threads,
                             const ScenarioRegistry& registry) const {
  const SweepPlan plan(spec_, registry);

  // Flatten to (cell, replication) jobs on the engine's pool. Job seeds
  // are derive_seed(base, cell, rep) — ctx.seed (stream 0) is ignored so
  // every cell is its own seed stream, stable under grid reshapes.
  TrialRunnerOptions options;
  options.replications = plan.job_count();
  options.threads = threads;
  options.base_seed = spec_.base_seed;
  options.stream = 0;

  telemetry::TraceSink* const sweep_sink = telemetry::TraceSink::global();
  if (sweep_sink != nullptr) {
    sweep_sink->sweep_begin("sweep", plan.keys().size(),
                            plan.replications(), plan.job_count(), threads,
                            plan.spec_json());
  }
  const TrialResult flat = TrialRunner(options).run(
      plan.metric_names(), [&plan](const TrialContext& ctx) {
        return plan.run_job(ctx.replication);
      });

  if (sweep_sink != nullptr) {
    sweep_sink->sweep_end("sweep", flat.wall_seconds());
  }
  return plan.fold(flat.samples(), flat.wall_seconds(),
                   flat.threads_used());
}

}  // namespace churnet
