// Checkpoint journal for sweep campaigns: crash-safe, bit-exact resume.
//
// A SweepJournal is an append-only NDJSON file (<dir>/journal.ndjson)
// recording every completed (cell, replication) job of one sweep plan.
// Because job seeds are re-derivable (derive_seed(base_seed, cell, rep),
// DESIGN.md decision 8), the journal only needs to record *which* jobs
// finished and their sample values — a resumed run rebuilds the identical
// plan, replays the journaled rows into the sample matrix and runs only
// the missing jobs, producing final CSV/JSON byte-identical to an
// uninterrupted run.
//
// File format (one JSON object per line):
//
//   journal_begin {"ev","schema","fingerprint","jobs","metrics"}
//   done          {"ev","job","seed","v":["0x3ff0...", ...]}
//
// Values are IEEE-754 bit patterns as hex strings, not JSON numbers: the
// repo's JSON reader parses numbers as doubles with 53-bit integer
// precision and decimal round-trips invite formatting drift, while bit
// patterns restore the exact double a crashed run computed — the resume
// contract is *byte*-identical output, so nothing less is acceptable.
// Seeds are hex strings for the same reason (u64 > 2^53); they are
// provenance only and re-derived, never parsed back into the run.
//
// Durability: records are written with O_APPEND and made durable by
// sync() (fsync), which the sweep service calls once per job batch — a
// SIGKILL loses at most the in-flight batch. A crash can truncate only
// the final line (single sequential writer), so load() tolerates exactly
// that: an unparseable or incomplete *last* line is dropped; damage
// anywhere else, a fingerprint mismatch, or a metric-count mismatch is a
// hard std::runtime_error — resuming a different plan against a journal
// would silently mix incompatible samples.
//
// A resumed run appends to the same file, so journals survive repeated
// kill/resume cycles; duplicate records for a job keep the last one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace churnet {

class SweepJournal {
 public:
  /// Opens (creating the directory and file as needed) the journal for
  /// `plan` under `dir`. With `resume` false the journal must be fresh —
  /// an existing non-empty journal is a runtime_error (pass --resume or
  /// choose a new directory; silently overwriting a checkpoint would
  /// destroy it). With `resume` true an existing journal is loaded and
  /// validated against the plan; a missing one starts fresh, so --resume
  /// is safe to pass unconditionally. Throws std::runtime_error on IO
  /// errors, corruption or plan mismatch.
  SweepJournal(const std::string& dir, const SweepPlan& plan, bool resume);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Rows restored from a previous run, sorted by job index (duplicates
  /// collapsed, last record wins). Each value vector has exactly one
  /// entry per plan metric column.
  const std::vector<std::pair<std::uint64_t, std::vector<double>>>&
  completed() const {
    return completed_;
  }

  /// Appends one done record (buffered by the OS; not yet durable).
  void append(std::uint64_t job, std::uint64_t seed,
              const std::vector<double>& values);

  /// Durability barrier: fsync everything appended so far.
  void sync();

  /// Records appended by *this* run (not counting restored ones).
  std::uint64_t appended() const { return appended_; }

  static std::string journal_path(const std::string& dir);

 private:
  void load(const std::string& text, const SweepPlan& plan);
  void write_line(const std::string& line);

  int fd_ = -1;
  std::uint64_t appended_ = 0;
  std::vector<std::pair<std::uint64_t, std::vector<double>>> completed_;
};

}  // namespace churnet
