// The one shared spec-catalog listing: every CLI's --list-* flag and
// unknown-spec error path prints the churn / protocol / observer / metric
// catalogs through these helpers instead of hand-rolling its own block, so
// the catalogs cannot drift between tools (churnet_sweep, churnet_repro)
// or between a listing flag and the error message that cites it.
#pragma once

#include <iosfwd>

namespace churnet {

class ScenarioRegistry;

/// "  spelling  description" rows for every churn regime, followed by the
/// composite-spec usage line ("BASE+spec", where spec may also be a
/// protocol segment).
void print_churn_catalog(std::ostream& os);

/// Protocol catalog rows plus the composition usage line
/// ("push(3)+lossy(0.9)+sources(2)").
void print_protocol_catalog(std::ostream& os);

/// Observer catalog rows plus the composition usage line
/// ("expansion(8)+spectral+isolated").
void print_observer_catalog(std::ostream& os);

/// The sweep metric catalog, with the default set on the header line.
void print_metric_catalog(std::ostream& os);

/// The scenario registry, one "  name  description" row per scenario.
void print_scenario_catalog(std::ostream& os,
                            const ScenarioRegistry& registry);

/// All of the above, section-headed — the full catalog a CLI prints from
/// --list-specs or an unknown-spec error path.
void print_spec_catalogs(std::ostream& os);

}  // namespace churnet
