#include "engine/spec_catalog.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "churn/churn_spec.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "observe/observer_spec.hpp"
#include "protocols/protocol_spec.hpp"

namespace churnet {
namespace {

void print_rows(std::ostream& os,
                const std::vector<std::pair<std::string, std::string>>& rows) {
  std::size_t width = 0;
  for (const auto& [spelling, description] : rows) {
    width = std::max(width, spelling.size());
  }
  for (const auto& [spelling, description] : rows) {
    os << "  " << spelling << std::string(width - spelling.size() + 2, ' ')
       << description << '\n';
  }
}

}  // namespace

void print_churn_catalog(std::ostream& os) {
  os << "churn regimes (churn axis of a composite scenario name):\n";
  print_rows(os, ChurnSpec::catalog());
  os << "  attach to a scenario as BASE+spec, e.g. PDGR+pareto(2.5); "
        "protocol segments may follow (PDGR+pareto(2.5)+push(3))\n";
}

void print_protocol_catalog(std::ostream& os) {
  os << "dissemination protocols (protocol axis):\n";
  print_rows(os, ProtocolSpec::catalog());
  os << "  compose as base+modifier(s), e.g. push(3)+lossy(0.9)+sources(2)\n";
}

void print_observer_catalog(std::ostream& os) {
  os << "metric observers (observation axis):\n";
  print_rows(os, ObserverSpec::catalog());
  os << "  compose with '+', e.g. expansion(8)+spectral+isolated; each "
        "observer appends its metric columns to every cell\n";
}

void print_metric_catalog(std::ostream& os) {
  os << "sweep metrics (default: ";
  bool first = true;
  for (const std::string& name : SweepSpec::default_metrics()) {
    os << (first ? "" : ",") << name;
    first = false;
  }
  os << "):\n";
  for (const std::string& name : SweepSpec::known_metrics()) {
    os << "  " << name << '\n';
  }
}

void print_scenario_catalog(std::ostream& os,
                            const ScenarioRegistry& registry) {
  os << "scenarios:\n";
  std::vector<std::pair<std::string, std::string>> rows;
  for (const Scenario& scenario : registry.scenarios()) {
    rows.emplace_back(scenario.name(), scenario.description());
  }
  print_rows(os, rows);
  os << "  plus any BASE+spec composite (see the churn and protocol "
        "catalogs)\n";
}

void print_spec_catalogs(std::ostream& os) {
  print_scenario_catalog(os, ScenarioRegistry::extended());
  os << '\n';
  print_churn_catalog(os);
  os << '\n';
  print_protocol_catalog(os);
  os << '\n';
  print_observer_catalog(os);
  os << '\n';
  print_metric_catalog(os);
}

}  // namespace churnet
