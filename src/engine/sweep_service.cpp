#include "engine/sweep_service.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assertx.hpp"
#include "engine/result_stream.hpp"
#include "engine/sweep_journal.hpp"
#include "telemetry/trace_sink.hpp"

namespace churnet {
namespace {

using CompleteFn = std::function<void(std::uint64_t, std::vector<double>&&)>;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("sweep service: " + what);
}

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

/// Reads exactly `size` bytes; false on clean EOF before the first byte.
/// EOF mid-record and hard errors throw — a torn frame means the peer
/// died.
bool read_full(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<unsigned char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, bytes + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("pipe read failed");
    }
    if (n == 0) {
      if (got == 0) return false;
      fail("pipe closed mid-frame (peer died)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_full(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, bytes + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) fail("worker process died (broken pipe)");
      fail_errno("pipe write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Forked worker body: receive job-id batches on cmd_fd, run them through
/// the shared (copy-on-write) plan and stream raw result frames
/// {u64 job; u64 count; double values[count]} back on res_fd — binary bits,
/// no text round-trip, so the coordinator folds the exact doubles this
/// process computed. Exits on EOF / zero-count shutdown.
[[noreturn]] void worker_main(const SweepPlan& plan, unsigned worker_id,
                              int cmd_fd, int res_fd,
                              const std::string& trace_prefix,
                              const std::string& tool) {
  // The parent's trace sink (and its stream) must never see writes from
  // this process: uninstall the inherited global before anything runs.
  telemetry::set_enabled(false);
  telemetry::TraceSink::install(nullptr);
  int exit_code = 0;
  try {
    std::ofstream trace;
    std::optional<telemetry::ScopedTraceSink> scoped;
    if (!trace_prefix.empty()) {
      const std::string path =
          trace_prefix + std::to_string(worker_id) + ".ndjson";
      trace.open(path);
      if (!trace.is_open()) fail("cannot open worker trace '" + path + "'");
      telemetry::TraceSink::Options options;
      options.out = &trace;
      options.tool = tool;
      options.worker = static_cast<int>(worker_id);
      scoped.emplace(std::move(options));
    }
    std::vector<std::uint64_t> jobs;
    for (;;) {
      std::uint64_t count = 0;
      if (!read_full(cmd_fd, &count, sizeof count) || count == 0) break;
      jobs.resize(count);
      if (!read_full(cmd_fd, jobs.data(),
                     count * sizeof(std::uint64_t))) {
        break;
      }
      for (const std::uint64_t job : jobs) {
        const std::vector<double> values = plan.run_job(job);
        const std::uint64_t header[2] = {
            job, static_cast<std::uint64_t>(values.size())};
        write_full(res_fd, header, sizeof header);
        write_full(res_fd, values.data(), values.size() * sizeof(double));
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep worker %u: %s\n", worker_id, error.what());
    exit_code = 1;
  }
  // _Exit: this is a fork of the coordinator — running its atexit
  // handlers or flushing its inherited stdio buffers here would corrupt
  // the parent's output.
  std::_Exit(exit_code);
}

/// Restores the previous SIGPIPE disposition on scope exit. A worker
/// dying between handouts turns the next command write into EPIPE (a
/// clean runtime_error) instead of killing the coordinator.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &previous_, nullptr); }

  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  struct sigaction previous_ {};
};

struct WorkerProc {
  pid_t pid = -1;
  int cmd_fd = -1;  // coordinator -> worker: {u64 count; u64 jobs[count]}
  int res_fd = -1;  // worker -> coordinator: result frames
  std::vector<unsigned char> buffer;  // partial-frame reassembly
  std::uint64_t outstanding = 0;      // jobs handed out, results pending
  bool open = true;                   // res_fd not yet at EOF
};

/// In-process execution: TrialRunner's pool shape (atomic work-stealing
/// index, first-error capture, join, rethrow) over an explicit pending
/// subset. `complete` runs under one mutex, serializing the journal,
/// stream and sample-matrix updates.
void run_pool(const SweepPlan& plan,
              const std::vector<std::uint64_t>& pending, unsigned threads,
              const CompleteFn& complete) {
  telemetry::TraceSink* const sink = telemetry::TraceSink::global();
  threads = static_cast<unsigned>(std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(threads, pending.size())));
  std::atomic<std::uint64_t> next{0};
  std::mutex mutex;
  std::exception_ptr first_error;
  const auto work = [&] {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= pending.size()) return;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (first_error != nullptr) return;
      }
      if (sink != nullptr) sink->job_started();
      try {
        std::vector<double> values = plan.run_job(pending[i]);
        const std::lock_guard<std::mutex> lock(mutex);
        complete(pending[i], std::move(values));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        return;
      }
    }
  };
  if (threads == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// Coordinator/worker execution. Work-stealing by construction: each
/// worker gets one batch; whoever returns its last result first gets the
/// next batch, so fast workers drain the queue while slow ones finish.
void run_workers(const SweepPlan& plan,
                 const std::vector<std::uint64_t>& pending,
                 unsigned workers, std::uint64_t batch,
                 const SweepServiceOptions& options,
                 const CompleteFn& complete) {
  telemetry::TraceSink* const sink = telemetry::TraceSink::global();
  const std::size_t metric_count = plan.metric_names().size();
  const ScopedSigpipeIgnore sigpipe_guard;
  std::vector<WorkerProc> procs(workers);
  std::size_t cursor = 0;  // next pending index to hand out

  const auto cleanup = [&procs]() noexcept {
    // Closing the command pipes is the shutdown signal; then reap.
    for (WorkerProc& w : procs) {
      if (w.cmd_fd >= 0) ::close(w.cmd_fd);
      w.cmd_fd = -1;
    }
    for (WorkerProc& w : procs) {
      if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
      if (w.res_fd >= 0) ::close(w.res_fd);
      w.res_fd = -1;
    }
  };

  try {
    // Fork after flushing: a child must not inherit (and later replay)
    // buffered parent output.
    std::fflush(nullptr);
    for (unsigned k = 0; k < workers; ++k) {
      int cmd[2];
      int res[2];
      if (::pipe(cmd) != 0 || ::pipe(res) != 0) fail_errno("pipe");
      const pid_t pid = ::fork();
      if (pid < 0) fail_errno("fork");
      if (pid == 0) {
        ::close(cmd[1]);
        ::close(res[0]);
        for (unsigned j = 0; j < k; ++j) {
          ::close(procs[j].cmd_fd);
          ::close(procs[j].res_fd);
        }
        worker_main(plan, k, cmd[0], res[1], options.worker_trace_prefix,
                    options.tool);
      }
      ::close(cmd[0]);
      ::close(res[1]);
      procs[k].pid = pid;
      procs[k].cmd_fd = cmd[1];
      procs[k].res_fd = res[0];
    }

    const auto handout = [&](WorkerProc& w) {
      const std::uint64_t count = std::min<std::uint64_t>(
          batch, static_cast<std::uint64_t>(pending.size() - cursor));
      if (count == 0) return;
      std::vector<std::uint64_t> frame(count + 1);
      frame[0] = count;
      std::copy(pending.begin() + static_cast<std::ptrdiff_t>(cursor),
                pending.begin() + static_cast<std::ptrdiff_t>(cursor + count),
                frame.begin() + 1);
      cursor += count;
      w.outstanding = count;
      if (sink != nullptr) {
        for (std::uint64_t i = 0; i < count; ++i) sink->job_started();
      }
      write_full(w.cmd_fd, frame.data(),
                 frame.size() * sizeof(std::uint64_t));
    };
    for (WorkerProc& w : procs) handout(w);

    std::uint64_t received = 0;
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;
    unsigned char chunk[1 << 16];
    while (received < pending.size()) {
      fds.clear();
      owners.clear();
      for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].open && procs[i].outstanding > 0) {
          fds.push_back(pollfd{procs[i].res_fd, POLLIN, 0});
          owners.push_back(i);
        }
      }
      if (fds.empty()) fail("all workers idle with jobs remaining");
      int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        fail_errno("poll failed");
      }
      for (std::size_t f = 0; f < fds.size(); ++f) {
        if (fds[f].revents == 0) continue;
        WorkerProc& w = procs[owners[f]];
        const ssize_t n = ::read(w.res_fd, chunk, sizeof chunk);
        if (n < 0) {
          if (errno == EINTR) continue;
          fail_errno("pipe read failed");
        }
        if (n == 0) {
          if (w.outstanding > 0) {
            fail("worker " + std::to_string(owners[f]) +
                 " died with " + std::to_string(w.outstanding) +
                 " job(s) outstanding");
          }
          w.open = false;
          continue;
        }
        w.buffer.insert(w.buffer.end(), chunk, chunk + n);
        // Drain every complete frame: {u64 job; u64 count; doubles}.
        std::size_t offset = 0;
        while (w.buffer.size() - offset >= 2 * sizeof(std::uint64_t)) {
          std::uint64_t header[2];
          std::memcpy(header, w.buffer.data() + offset, sizeof header);
          if (header[1] != metric_count) {
            fail("worker result frame with wrong metric count");
          }
          const std::size_t need =
              sizeof header + header[1] * sizeof(double);
          if (w.buffer.size() - offset < need) break;
          std::vector<double> values(header[1]);
          std::memcpy(values.data(), w.buffer.data() + offset + sizeof header,
                      header[1] * sizeof(double));
          offset += need;
          CHURNET_ASSERT(w.outstanding > 0);
          --w.outstanding;
          ++received;
          complete(header[0], std::move(values));
        }
        w.buffer.erase(w.buffer.begin(),
                       w.buffer.begin() + static_cast<std::ptrdiff_t>(offset));
        if (w.outstanding == 0) handout(w);
      }
    }

    for (WorkerProc& w : procs) {
      ::close(w.cmd_fd);  // EOF = shutdown
      w.cmd_fd = -1;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
      int status = 0;
      if (::waitpid(procs[i].pid, &status, 0) < 0) fail_errno("waitpid");
      procs[i].pid = -1;
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        fail("worker " + std::to_string(i) + " exited abnormally");
      }
      ::close(procs[i].res_fd);
      procs[i].res_fd = -1;
    }
  } catch (...) {
    cleanup();
    throw;
  }
}

}  // namespace

SweepService::SweepService(SweepSpec spec, SweepServiceOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  if (const std::optional<std::string> reason = spec_.validate()) {
    std::fprintf(stderr, "invalid sweep spec: %s\n", reason->c_str());
    std::abort();
  }
}

SweepResult SweepService::run(const ScenarioRegistry& registry,
                              SweepServiceReport* report) const {
  const SweepPlan plan(spec_, registry);
  const std::uint64_t jobs = plan.job_count();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::vector<double>> flat(jobs);
  std::vector<char> have(jobs, 0);
  std::optional<SweepJournal> journal;
  std::uint64_t resumed = 0;
  if (!options_.checkpoint_dir.empty()) {
    journal.emplace(options_.checkpoint_dir, plan, options_.resume);
    for (const auto& [job, values] : journal->completed()) {
      flat[job] = values;
      have[job] = 1;
      ++resumed;
    }
  }
  std::vector<std::uint64_t> pending;
  pending.reserve(jobs - resumed);
  for (std::uint64_t j = 0; j < jobs; ++j) {
    if (!have[j]) pending.push_back(j);
  }

  const bool forked = options_.workers >= 2 && !pending.empty();
  const unsigned threads =
      options_.threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : options_.threads;
  const unsigned width = forked ? options_.workers : std::max(1u, threads);

  std::uint64_t batch = options_.batch;
  if (batch == 0) {
    // Auto: ~8 handouts per execution slot keeps the steal queue busy
    // while bounding both fsync frequency and SIGKILL loss.
    batch = pending.size() / (8ull * width);
    batch = std::clamp<std::uint64_t>(batch, 1, 64);
  }

  std::optional<ResultStream> stream;
  if (options_.results != nullptr) {
    stream.emplace(*options_.results, plan);
    stream->begin(resumed, width, options_.tool);
    // Re-emit journaled rows (job order, flagged resumed) so the stream
    // covers the whole campaign even after a kill/resume cycle.
    for (std::uint64_t j = 0; j < jobs; ++j) {
      if (have[j]) stream->row(j, flat[j], true);
    }
  }

  telemetry::TraceSink* const sink = telemetry::TraceSink::global();
  if (sink != nullptr) {
    sink->sweep_begin("sweep", plan.keys().size(), plan.replications(),
                      jobs, width, plan.spec_json(), resumed);
  }

  std::uint64_t appended = 0;
  const CompleteFn complete = [&](std::uint64_t job,
                                  std::vector<double>&& values) {
    CHURNET_ASSERT(values.size() == plan.metric_names().size());
    flat[job] = std::move(values);
    have[job] = 1;
    if (journal.has_value()) {
      journal->append(job, plan.job_seed(job), flat[job]);
    }
    if (stream.has_value()) stream->row(job, flat[job], false);
    ++appended;
    if (journal.has_value() && appended % batch == 0) journal->sync();
    if (sink != nullptr) sink->job_finished();
    if (options_.kill_after != 0 && appended >= options_.kill_after) {
      // Deterministic mid-campaign crash for the kill-resume tests: make
      // everything appended durable, then die without any cleanup.
      if (journal.has_value()) journal->sync();
      std::raise(SIGKILL);
    }
  };

  if (!pending.empty()) {
    if (forked) {
      run_workers(plan, pending, options_.workers, batch, options_,
                  complete);
    } else {
      run_pool(plan, pending, threads, complete);
    }
    if (journal.has_value()) journal->sync();
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (sink != nullptr) sink->sweep_end("sweep", wall);
  if (stream.has_value()) stream->end(jobs);
  if (report != nullptr) {
    report->jobs_total = jobs;
    report->jobs_resumed = resumed;
    report->jobs_run = appended;
    report->workers_used = width;
  }
  return plan.fold(flat, wall, width);
}

}  // namespace churnet
