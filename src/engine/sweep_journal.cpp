#include "engine/sweep_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace churnet {
namespace {

std::string hex_u64(std::uint64_t value) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(value >> shift) & 0xF]);
  }
  return out;
}

bool parse_hex_u64(std::string_view text, std::uint64_t* out) {
  if (text.size() < 3 || text.size() > 18 || text[0] != '0' ||
      text[1] != 'x') {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text.substr(2)) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

std::string hex_double(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return hex_u64(bits);
}

bool parse_hex_double(std::string_view text, double* out) {
  std::uint64_t bits = 0;
  if (!parse_hex_u64(text, &bits)) return false;
  std::memcpy(out, &bits, sizeof bits);
  return true;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("sweep journal: " + what);
}

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

/// Exact non-negative integer (job indices, counts) out of a JSON number.
bool read_index(const JsonValue* value, std::uint64_t limit,
                std::uint64_t* out) {
  if (value == nullptr || !value->is_number()) return false;
  const double number = value->as_number();
  if (!(number >= 0.0) || std::floor(number) != number ||
      number >= static_cast<double>(limit)) {
    return false;
  }
  *out = static_cast<std::uint64_t>(number);
  return true;
}

}  // namespace

std::string SweepJournal::journal_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "journal.ndjson").string();
}

SweepJournal::SweepJournal(const std::string& dir, const SweepPlan& plan,
                           bool resume) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) fail("cannot create checkpoint directory '" + dir + "'");
  const std::string path = journal_path(dir);

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  if (!text.empty() && !resume) {
    fail("'" + path +
         "' already holds a checkpoint; pass --resume to continue it or "
         "point --checkpoint at a fresh directory");
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) fail_errno("cannot open '" + path + "'");

  // A crash can tear only the final write: everything after the last
  // newline is the torn tail of an unsynced record. Drop it (ftruncate)
  // so this run appends to a clean line boundary, then parse the rest —
  // which must all be intact.
  const std::size_t keep = text.find('\n') == std::string::npos
                               ? 0
                               : text.rfind('\n') + 1;
  if (keep != text.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0) {
      fail_errno("cannot drop torn record in '" + path + "'");
    }
    text.resize(keep);
  }
  if (text.empty()) {
    // Fresh journal (first run, or the header itself was torn before the
    // first sync — nothing durable was lost either way).
    std::ostringstream header;
    header << "{\"ev\":\"journal_begin\",\"schema\":1,\"fingerprint\":\""
           << hex_u64(plan.fingerprint()) << "\",\"jobs\":"
           << plan.job_count() << ",\"metrics\":"
           << plan.metric_names().size() << "}\n";
    write_line(header.str());
    sync();
    return;
  }
  load(text, plan);
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::load(const std::string& text, const SweepPlan& plan) {
  const std::size_t metric_count = plan.metric_names().size();
  std::map<std::uint64_t, std::vector<double>> rows;
  bool saw_header = false;
  std::size_t begin = 0;
  std::size_t line_number = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    const std::string_view line(text.data() + begin, end - begin);
    begin = end + 1;
    ++line_number;
    std::string error;
    const std::optional<JsonValue> json = JsonValue::parse(line, &error);
    if (!json.has_value() || !json->is_object()) {
      fail("corrupt record at line " + std::to_string(line_number) + ": " +
           (json.has_value() ? "not an object" : error));
    }
    const JsonValue* ev = json->find("ev");
    if (ev == nullptr || !ev->is_string()) {
      fail("record without \"ev\" at line " + std::to_string(line_number));
    }
    if (!saw_header) {
      if (ev->as_string() != "journal_begin") {
        fail("first line is not journal_begin");
      }
      const JsonValue* schema = json->find("schema");
      if (schema == nullptr || !schema->is_number() ||
          schema->as_number() != 1.0) {
        fail("unsupported journal schema");
      }
      const JsonValue* fingerprint = json->find("fingerprint");
      if (fingerprint == nullptr || !fingerprint->is_string() ||
          fingerprint->as_string() != hex_u64(plan.fingerprint())) {
        fail("plan fingerprint mismatch — this checkpoint belongs to a "
             "different sweep (grid, seed, metrics, observers or knobs "
             "changed)");
      }
      std::uint64_t jobs = 0;
      std::uint64_t metrics = 0;
      if (!read_index(json->find("jobs"), plan.job_count() + 1, &jobs) ||
          jobs != plan.job_count() ||
          !read_index(json->find("metrics"), metric_count + 1, &metrics) ||
          metrics != metric_count) {
        fail("plan shape mismatch in journal_begin");
      }
      saw_header = true;
      continue;
    }
    if (ev->as_string() != "done") {
      fail("unknown event at line " + std::to_string(line_number));
    }
    std::uint64_t job = 0;
    if (!read_index(json->find("job"), plan.job_count(), &job)) {
      fail("bad job index at line " + std::to_string(line_number));
    }
    const JsonValue* values = json->find("v");
    if (values == nullptr || !values->is_array() ||
        values->items().size() != metric_count) {
      fail("bad value row at line " + std::to_string(line_number));
    }
    std::vector<double> row;
    row.reserve(metric_count);
    for (const JsonValue& item : values->items()) {
      double value = 0.0;
      if (!item.is_string() || !parse_hex_double(item.as_string(), &value)) {
        fail("bad value bits at line " + std::to_string(line_number));
      }
      row.push_back(value);
    }
    rows[job] = std::move(row);  // duplicate records: last one wins
  }
  if (!saw_header) fail("journal has no header");
  completed_.assign(std::make_move_iterator(rows.begin()),
                    std::make_move_iterator(rows.end()));
}

void SweepJournal::append(std::uint64_t job, std::uint64_t seed,
                          const std::vector<double>& values) {
  std::string line = "{\"ev\":\"done\",\"job\":" + std::to_string(job) +
                     ",\"seed\":\"" + hex_u64(seed) + "\",\"v\":[";
  for (std::size_t m = 0; m < values.size(); ++m) {
    if (m > 0) line.push_back(',');
    line.push_back('"');
    line += hex_double(values[m]);
    line.push_back('"');
  }
  line += "]}\n";
  write_line(line);
  ++appended_;
}

void SweepJournal::write_line(const std::string& line) {
  const char* data = line.data();
  std::size_t remaining = line.size();
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd_, data, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail_errno("write failed");
    }
    data += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
}

void SweepJournal::sync() {
  if (::fsync(fd_) != 0) fail_errno("fsync failed");
}

}  // namespace churnet
