// Streaming *results* sink for long sweep campaigns (schema version 1).
//
// Where the telemetry trace (telemetry/trace_sink.hpp) streams
// diagnostics — phase timings, heartbeats, wall-clock — a ResultStream
// streams the science: one self-describing NDJSON line per completed
// (cell, replication) job, emitted the moment the job finishes, so a
// multi-hour campaign can be tailed, archived or fed into analysis while
// it runs instead of only after the final fold. Every row carries its
// full identity (job index, cell key, replication, derived seed) plus the
// sample values, and the header pins the plan fingerprint, so a stream is
// interpretable on its own and attributable to exactly one sweep plan.
//
// Event vocabulary:
//
//   sweep_header {"ev","schema","tool","fingerprint","cells",
//                 "replications","jobs","resumed","workers",
//                 "metrics":[...], "spec":{...}}          first line
//   row          {"ev","job","cell","replication","seed","resumed",
//                 "scenario","churn","protocol","n","d","values":[...]}
//   sweep_footer {"ev","jobs_done"}                      last line
//
// Ordering and determinism: rows appear in completion order, which varies
// with thread/worker count and scheduling — by design; streaming is the
// point. The deterministic surfaces (CSV/JSON/table) are produced by
// SweepPlan::fold, which reads rows by job index and is therefore
// independent of the order this stream observed them in. Values are
// written with round-trip precision (max_digits10), NaN/inf as null.
//
// Threading: row() serializes on one mutex and flushes per line (rows are
// per job, never per churn step — off the hot path by construction).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "engine/sweep_runner.hpp"

namespace churnet {

class ResultStream {
 public:
  /// `out` and `plan` must outlive the stream.
  ResultStream(std::ostream& out, const SweepPlan& plan);

  /// Writes the sweep_header line. `resumed_jobs` is how many rows were
  /// restored from a checkpoint journal (they are re-emitted as rows with
  /// "resumed":true so the stream always covers the whole campaign);
  /// `workers` is the execution width (threads in-process, processes in
  /// worker mode).
  void begin(std::uint64_t resumed_jobs, unsigned workers,
             std::string_view tool);

  /// One completed job row; thread-safe, any completion order.
  void row(std::uint64_t job, const std::vector<double>& values,
           bool resumed);

  /// Writes the sweep_footer line.
  void end(std::uint64_t jobs_done);

 private:
  std::ostream& out_;
  const SweepPlan& plan_;
  std::mutex mutex_;
};

}  // namespace churnet
