// The dissemination-protocol abstraction: what spreads a rumor over a
// dynamic network, generalized from full flooding the same way ChurnProcess
// generalized churn (DESIGN.md, "Protocol layer").
//
// The generic driver (protocols/dissemination.hpp) owns the step loop —
// advance the network one semantic step, track deaths and fresh edges,
// commit surviving deliveries, test completion — exactly as the flood
// driver does. What differs between protocols is *which messages are
// offered each step*: a DisseminationProtocol's propose() emits this
// step's (sender, receiver) transmission attempts through a StepView, and
// the driver does the rest. Full flooding re-expressed this way is proven
// bit-identical to flooding/flood_driver.hpp
// (tests/test_protocol_equivalence.cpp).
//
// Message accounting: every send() is one rumor-bearing transmission
// attempt (messages_sent). A lossy link may drop it (lost_messages); a
// delivery that survives churn either informs a new node
// (useful_deliveries) or is wasted on an already-informed one
// (duplicate_deliveries). Protocols that probe without carrying the rumor
// (PULL contacting an uninformed neighbor) count those probes as
// overhead_messages. Under the flood fast path (receiver-deduplicated
// streaming semantics, lossless), duplicate boundary messages are
// suppressed at propose time and accounted directly as
// duplicate_deliveries — the informed sets are unchanged, only the
// per-message survival check is elided (see dissemination.hpp).
//
// Protocols never touch the network's RNG: all protocol randomness (gossip
// fanout choices, loss coins) comes from a protocol-owned Rng reseeded per
// run, so the network realization under a fixed seed is identical no
// matter which protocol runs on it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assertx.hpp"
#include "common/rng.hpp"
#include "flooding/flood_driver.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/node_id.hpp"

namespace churnet {

/// Per-run message-complexity accounting. Plain counters bumped by the
/// driver and StepView::send; reset by the driver at begin_run.
struct ProtocolStats {
  /// Rumor-bearing transmission attempts (including ones later lost or
  /// dropped by endpoint churn).
  std::uint64_t messages_sent = 0;
  /// Rumor-free probes (e.g. PULL requests answered by uninformed nodes).
  std::uint64_t overhead_messages = 0;
  /// Transmissions dropped by the lossy-link coin.
  std::uint64_t lost_messages = 0;
  /// Deliveries that informed a previously uninformed node.
  std::uint64_t useful_deliveries = 0;
  /// Deliveries wasted on an already-informed node.
  std::uint64_t duplicate_deliveries = 0;
  /// Steps the run executed (== trace.steps).
  std::uint64_t rounds = 0;
  /// Completion per the model's semantics (== trace.completed).
  bool completed = false;
  /// informed/alive when the run stopped (== trace.final_fraction).
  double final_coverage = 0.0;

  /// Messages that arrived at a live endpoint.
  std::uint64_t deliveries() const {
    return useful_deliveries + duplicate_deliveries;
  }
  /// Every message on the wire: rumor transmissions plus probes.
  std::uint64_t total_messages() const {
    return messages_sent + overhead_messages;
  }
  /// Transmissions voided by endpoint death within the step.
  std::uint64_t dropped_by_churn() const {
    return messages_sent - lost_messages - deliveries();
  }
};

/// Driver-level knobs for one dissemination run; mirrors (and embeds)
/// FloodOptions so flood-path semantics carry over unchanged.
struct ProtocolOptions {
  FloodOptions flood;
  /// Seed of the protocol-owned RNG (gossip choices, loss coins). The
  /// flood protocol consumes none, preserving flood-driver bit-identity.
  std::uint64_t seed = 0;
  /// Number of initially informed nodes. The first source follows the
  /// model's own convention (newborn / uniform); extras are uniform alive
  /// nodes drawn from the protocol RNG, capped at the alive count.
  std::uint32_t sources = 1;
};

/// Reusable per-run state: the flood driver's bitset-backed scratch plus
/// the protocol layer's buffers. Zero allocation after the first trial of
/// a replication loop, like FloodScratch itself.
struct ProtocolScratch {
  FloodScratch flood;
  /// Every node informed this run, in inform order (never shrunk on death;
  /// consumers filter by liveness). PUSH-style protocols iterate it.
  std::vector<NodeId> informed;
  /// Reusable alive-node buffer for PULL-style full scans.
  std::vector<NodeId> alive;
  /// Sharded-propose buffers (frontier-driven protocols with
  /// intra_threads > 1): per-chunk (sender, receiver) outputs, merged in
  /// chunk order so the send() sequence matches the sequential scan, and
  /// per-worker neighbor staging.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> shard_pairs;
  std::vector<std::vector<NodeId>> shard_neighbors;
};

/// Outcome of one dissemination run: the flood-compatible trace plus the
/// message accounting.
struct ProtocolResult {
  FloodTrace trace;
  ProtocolStats stats;
};

/// What a protocol sees while proposing one step's messages: the graph as
/// of the previous step, membership queries, the frontier/created-edge
/// incremental state, and the send() sink with loss + dedup applied.
class StepView {
 public:
  StepView(const DynamicGraph& graph, ProtocolScratch& scratch,
           ProtocolStats& stats, bool dedup_receivers, double delivery_q,
           Rng* loss_rng, std::uint64_t step, unsigned intra_threads = 1)
      : graph_(graph),
        scratch_(scratch),
        stats_(stats),
        dedup_(dedup_receivers),
        delivery_q_(delivery_q),
        loss_rng_(loss_rng),
        step_(step),
        intra_threads_(intra_threads) {}

  const DynamicGraph& graph() const { return graph_; }
  /// 1-based index of the step being proposed.
  std::uint64_t step() const { return step_; }
  bool is_informed(NodeId node) const { return scratch_.flood.is_informed(node); }
  std::uint64_t informed_count() const {
    return scratch_.flood.informed_count();
  }

  /// Nodes newly informed at the previous step (the flood frontier).
  const std::vector<NodeId>& frontier() const { return scratch_.flood.frontier; }
  /// Edges created during the previous step's churn interval.
  const std::vector<CreatedEdge>& created() const {
    return scratch_.flood.created;
  }
  /// Every node informed this run in inform order; entries may be dead or
  /// stale (slot reused) — filter with graph().is_alive().
  const std::vector<NodeId>& informed() const { return scratch_.informed; }

  /// Reusable buffers (cleared by the caller before use).
  std::vector<NodeId>& neighbor_buffer() { return scratch_.flood.neighbors; }
  std::vector<NodeId>& alive_buffer() { return scratch_.alive; }

  /// Intra-trial worker budget for sharded proposes (>= 1). Protocols
  /// whose scan is read-only over the frontier may shard it into
  /// fixed-size chunks (shard buffers below) and replay send() in chunk
  /// order — output is then byte-identical at every thread count.
  /// RNG-sequential protocols (PUSH/PULL) must ignore this.
  unsigned intra_threads() const { return intra_threads_; }
  std::vector<std::vector<std::pair<NodeId, NodeId>>>& shard_pair_buffers() {
    return scratch_.shard_pairs;
  }
  std::vector<std::vector<NodeId>>& shard_neighbor_buffers() {
    return scratch_.shard_neighbors;
  }

  /// Offers one rumor transmission sender -> receiver. Applies the lossy
  /// coin and (on the lossless flood fast path) receiver deduplication.
  /// Returns true iff a delivery candidate was recorded — exactly then the
  /// candidate index protocols see in on_informed advances by one.
  bool send(NodeId sender, NodeId receiver) {
    ++stats_.messages_sent;
    if (delivery_q_ < 1.0 && !loss_rng_->bernoulli(delivery_q_)) {
      ++stats_.lost_messages;
      return false;
    }
    if (dedup_) {
      if (!scratch_.flood.mark_candidate(receiver)) {
        // The receiver already has a surviving candidate this step: the
        // extra boundary message is wasted by construction.
        ++stats_.duplicate_deliveries;
        return false;
      }
    }
    scratch_.flood.candidates.emplace_back(sender, receiver);
    return true;
  }

  /// Counts a rumor-free probe (PULL request to an uninformed neighbor).
  void count_overhead(std::uint64_t probes = 1) {
    stats_.overhead_messages += probes;
  }

 private:
  const DynamicGraph& graph_;
  ProtocolScratch& scratch_;
  ProtocolStats& stats_;
  bool dedup_;
  double delivery_q_;
  Rng* loss_rng_;
  std::uint64_t step_;
  unsigned intra_threads_;
};

/// A dissemination protocol: proposes each step's transmission attempts
/// and tracks whatever per-node state it needs (hop counts, ...). One
/// instance runs one trial at a time; begin_run reseeds and resets it, so
/// instances are reusable across replications (zero steady-state
/// allocation, like FloodScratch).
class DisseminationProtocol {
 public:
  /// on_informed candidate index for nodes informed without a message
  /// (the sources).
  static constexpr std::size_t kNoCandidate = ~std::size_t{0};

  virtual ~DisseminationProtocol() = default;

  /// Canonical name, matching ProtocolSpec::canonical() of the spec that
  /// built it ("flood", "push(3)", "flood+lossy(0.90)", ...).
  virtual std::string name() const = 0;

  /// Resets per-run state and reseeds the protocol RNG. `slot_bound` is
  /// the graph's slot_upper_bound() for slot-indexed per-node state.
  virtual void begin_run(std::uint64_t seed, std::uint32_t slot_bound) {
    (void)slot_bound;
    rng_ = Rng(seed);
  }

  /// Emits this step's transmission attempts via view.send(). The view
  /// exposes G_{t-1} (the graph before this step's churn) and I_{t-1}.
  virtual void propose(StepView& view) = 0;

  /// Notification that `node` became informed — by candidate
  /// `candidate_index` of this step (an index into the propose-order
  /// candidate list, aligned with send() calls that returned true), or as
  /// a source (sender invalid, kNoCandidate).
  virtual void on_informed(NodeId node, NodeId sender,
                           std::size_t candidate_index) {
    (void)node;
    (void)sender;
    (void)candidate_index;
  }

  /// Notification that `node` died (per-node protocol state for its slot
  /// must be dropped: the slot can be recycled within the same run).
  virtual void on_death(NodeId node) { (void)node; }

  /// True when propose() only ever emits from the frontier/created-edge
  /// incremental state (flood, TTL flood): on a churn-free network an
  /// empty frontier is then a fixed point and the driver stops early.
  virtual bool frontier_driven() const { return false; }

  /// True when receiver deduplication preserves the protocol's semantics
  /// (flooding: any one boundary message suffices). The driver enables the
  /// dedup fast path only under receiver-survival semantics AND a lossless
  /// link; gossip protocols return false so every duplicate is accounted.
  virtual bool dedup_receivers() const { return false; }

  /// Per-message delivery probability; 1.0 = lossless. Overridden by the
  /// lossy-link wrapper.
  virtual double delivery_probability() const { return 1.0; }

  /// The protocol-owned RNG stream (also used by the driver for extra
  /// sources and by StepView for loss coins).
  Rng& rng() { return rng_; }

 protected:
  Rng rng_{0};
};

}  // namespace churnet
