#include "protocols/gossip.hpp"

#include <algorithm>

#include "common/epoch.hpp"
#include "common/intra.hpp"
#include "common/table.hpp"

namespace churnet {
namespace {

/// Frontier chunk size for the sharded boundary scan below. Fixed — never
/// a function of the thread count — so per-chunk outputs and the
/// chunk-order replay are identical at every intra_threads value.
constexpr std::size_t kProposeChunk = 4096;

/// The flood boundary scan shared by FloodProtocol and TtlFloodProtocol:
/// frontier nodes (filtered by `forwards`) offer to every uninformed
/// neighbor, then edges created during the previous interval with exactly
/// one informed (and forwarding) endpoint offer across. This is verbatim
/// the candidate generation of flood_dynamic — the equivalence tests pin
/// it bit-for-bit. `send(u, v)` performs the actual emission, so TTL can
/// attach hop payloads to recorded candidates.
///
/// With view.intra_threads() > 1 and a large frontier, the frontier scan
/// shards into fixed-size chunks: workers collect (sender, receiver)
/// pairs read-only (liveness, forwards, membership), then send() replays
/// them serially in chunk order — the exact sequential emission order, so
/// stats, candidate indices and loss coins are byte-identical at every
/// thread count. The created-edge pass stays serial (the list is short).
template <typename Forwards, typename Send>
void propose_boundary(StepView& view, const Forwards& forwards,
                      const Send& send) {
  const DynamicGraph& graph = view.graph();
  const std::vector<NodeId>& frontier = view.frontier();
  const std::size_t chunk_count =
      (frontier.size() + kProposeChunk - 1) / kProposeChunk;
  if (view.intra_threads() <= 1 || chunk_count < 2) {
    std::vector<NodeId>& neighbors = view.neighbor_buffer();
    for (const NodeId u : frontier) {
      if (!graph.is_alive(u)) continue;  // died in a previous interval
      if (!forwards(u)) continue;
      neighbors.clear();
      graph.append_neighbors(u, neighbors);
      for (const NodeId v : neighbors) {
        if (!view.is_informed(v)) send(u, v);
      }
    }
  } else {
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(view.intra_threads(), chunk_count));
    auto& chunks = view.shard_pair_buffers();
    if (chunks.size() < chunk_count) chunks.resize(chunk_count);
    auto& neighbor_bufs = view.shard_neighbor_buffers();
    if (neighbor_bufs.size() < workers) neighbor_bufs.resize(workers);
    for_each_chunk(
        view.intra_threads(), chunk_count,
        [&](std::size_t c, unsigned worker) {
          auto& out = chunks[c];
          out.clear();
          std::vector<NodeId>& neighbors = neighbor_bufs[worker];
          const std::size_t begin = c * kProposeChunk;
          const std::size_t end =
              std::min(frontier.size(), begin + kProposeChunk);
          for (std::size_t i = begin; i < end; ++i) {
            const NodeId u = frontier[i];
            if (!graph.is_alive(u)) continue;
            if (!forwards(u)) continue;
            neighbors.clear();
            graph.append_neighbors(u, neighbors);
            for (const NodeId v : neighbors) {
              if (!view.is_informed(v)) out.emplace_back(u, v);
            }
          }
        });
    for (std::size_t c = 0; c < chunk_count; ++c) {
      for (const auto& [u, v] : chunks[c]) send(u, v);
    }
  }
  for (const CreatedEdge& edge : view.created()) {
    // An edge created in the previous interval counts from now on,
    // provided it still exists (both endpoints alive).
    if (!graph.is_alive(edge.owner) || !graph.is_alive(edge.target)) {
      continue;
    }
    const bool owner_informed = view.is_informed(edge.owner);
    const bool target_informed = view.is_informed(edge.target);
    if (owner_informed && !target_informed && forwards(edge.owner)) {
      send(edge.owner, edge.target);
    } else if (target_informed && !owner_informed && forwards(edge.target)) {
      send(edge.target, edge.owner);
    }
  }
}

}  // namespace

// ---- FloodProtocol ---------------------------------------------------------

void FloodProtocol::propose(StepView& view) {
  propose_boundary(
      view, [](NodeId) { return true; },
      [&view](NodeId u, NodeId v) { view.send(u, v); });
}

// ---- TtlFloodProtocol ------------------------------------------------------

std::string TtlFloodProtocol::name() const {
  return "ttl(" + fmt_int(static_cast<std::int64_t>(ttl_)) + ")";
}

void TtlFloodProtocol::begin_run(std::uint64_t seed,
                                 std::uint32_t slot_bound) {
  DisseminationProtocol::begin_run(seed, slot_bound);
  bump_epoch(epoch_);  // aborts on wrap: stale stamps would alias as informed
  if (slot_bound > stamp_.size()) {
    stamp_.resize(slot_bound, 0);
    hop_.resize(slot_bound, 0);
  }
  pending_hops_.clear();
}

void TtlFloodProtocol::propose(StepView& view) {
  pending_hops_.clear();
  propose_boundary(
      view, [this](NodeId u) { return forwards(u); },
      [this, &view](NodeId u, NodeId v) {
        // Record the receiver's hop only for candidates the view actually
        // kept, so pending_hops_ stays aligned with candidate indices.
        if (view.send(u, v)) pending_hops_.push_back(hop_[u.slot] + 1);
      });
}

void TtlFloodProtocol::on_informed(NodeId node, NodeId sender,
                                   std::size_t candidate_index) {
  if (node.slot >= stamp_.size()) {
    const std::size_t size = std::max<std::size_t>(
        node.slot + 1, stamp_.size() + stamp_.size() / 2);
    stamp_.resize(size, 0);
    hop_.resize(size, 0);
  }
  stamp_[node.slot] = epoch_;
  if (!sender.valid() || candidate_index == kNoCandidate) {
    hop_[node.slot] = 0;  // source
    return;
  }
  CHURNET_ASSERT(candidate_index < pending_hops_.size());
  hop_[node.slot] = pending_hops_[candidate_index];
}

void TtlFloodProtocol::on_death(NodeId node) {
  if (node.slot < stamp_.size()) stamp_[node.slot] = 0;
}

std::uint32_t TtlFloodProtocol::hop_of(NodeId node) const {
  return node.slot < stamp_.size() && stamp_[node.slot] == epoch_
             ? hop_[node.slot]
             : 0;
}

// ---- PushProtocol ----------------------------------------------------------

std::string PushProtocol::name() const {
  return "push(" + fmt_int(static_cast<std::int64_t>(fanout_)) + ")";
}

void PushProtocol::propose(StepView& view) {
  const DynamicGraph& graph = view.graph();
  std::vector<NodeId>& neighbors = view.neighbor_buffer();
  for (const NodeId u : view.informed()) {
    // The inform-order list keeps dead and stale-slot entries; liveness
    // filters them (a recycled slot's new occupant has its own entry).
    if (!graph.is_alive(u)) continue;
    neighbors.clear();
    graph.append_neighbors(u, neighbors);
    if (neighbors.empty()) continue;
    for (std::uint32_t k = 0; k < fanout_; ++k) {
      const NodeId v = neighbors[static_cast<std::size_t>(
          rng_.below(neighbors.size()))];
      view.send(u, v);  // oblivious: duplicates are the protocol's waste
    }
  }
}

// ---- PullProtocol ----------------------------------------------------------

std::string PullProtocol::name() const {
  return "pull(" + fmt_int(static_cast<std::int64_t>(fanout_)) + ")";
}

void PullProtocol::propose(StepView& view) {
  const DynamicGraph& graph = view.graph();
  std::vector<NodeId>& neighbors = view.neighbor_buffer();
  std::vector<NodeId>& alive = view.alive_buffer();
  alive.clear();
  graph.append_alive_nodes(alive);
  for (const NodeId v : alive) {
    if (view.is_informed(v)) continue;
    neighbors.clear();
    graph.append_neighbors(v, neighbors);
    if (neighbors.empty()) continue;
    for (std::uint32_t k = 0; k < fanout_; ++k) {
      const NodeId u = neighbors[static_cast<std::size_t>(
          rng_.below(neighbors.size()))];
      if (view.is_informed(u)) {
        view.send(u, v);  // the informed neighbor answers the pull
      } else {
        view.count_overhead();  // probe answered empty
      }
    }
  }
}

// ---- PushPullProtocol ------------------------------------------------------

std::string PushPullProtocol::name() const {
  return "push-pull(" + fmt_int(static_cast<std::int64_t>(fanout_)) + ")";
}

void PushPullProtocol::propose(StepView& view) {
  const DynamicGraph& graph = view.graph();
  std::vector<NodeId>& neighbors = view.neighbor_buffer();
  std::vector<NodeId>& alive = view.alive_buffer();
  alive.clear();
  graph.append_alive_nodes(alive);
  for (const NodeId v : alive) {
    neighbors.clear();
    graph.append_neighbors(v, neighbors);
    if (neighbors.empty()) continue;
    const bool caller_informed = view.is_informed(v);
    for (std::uint32_t k = 0; k < fanout_; ++k) {
      const NodeId u = neighbors[static_cast<std::size_t>(
          rng_.below(neighbors.size()))];
      if (caller_informed) {
        view.send(v, u);  // push
      } else if (view.is_informed(u)) {
        view.send(u, v);  // pull answered
      } else {
        view.count_overhead();  // neither side has the rumor
      }
    }
  }
}

// ---- LossyProtocol ---------------------------------------------------------

LossyProtocol::LossyProtocol(std::unique_ptr<DisseminationProtocol> inner,
                             double q)
    : inner_(std::move(inner)), q_(q) {
  CHURNET_EXPECTS(inner_ != nullptr);
  CHURNET_EXPECTS(q_ >= 0.0 && q_ <= 1.0);
}

std::string LossyProtocol::name() const {
  return inner_->name() + "+lossy(" + fmt_fixed(q_, 2) + ")";
}

void LossyProtocol::begin_run(std::uint64_t seed, std::uint32_t slot_bound) {
  // Two decorrelated streams from one run seed: the wrapper's loss coins
  // and the inner protocol's own choices.
  DisseminationProtocol::begin_run(derive_seed(seed, 0, 0), slot_bound);
  inner_->begin_run(derive_seed(seed, 1, 0), slot_bound);
}

}  // namespace churnet
