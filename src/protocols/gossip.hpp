// Concrete dissemination protocols (protocols/protocol.hpp):
//
//   FloodProtocol      full flooding — the paper's process re-expressed
//                      through the protocol layer; bit-identical to
//                      flooding/flood_driver.hpp (the degenerate case)
//   TtlFloodProtocol   hop-bounded flooding: a node informed at hop h
//                      forwards only while h < ttl (ttl -> inf == flood)
//   PushProtocol       PUSH gossip: every informed node sends to `fanout`
//                      uniform random neighbors (with replacement) per step
//   PullProtocol       PULL gossip: every uninformed node probes `fanout`
//                      uniform random neighbors; informed ones answer with
//                      the rumor, uninformed probes count as overhead
//   PushPullProtocol   classic PUSH-PULL: every node contacts `fanout`
//                      random neighbors — informed callers push, informed
//                      callees answer pulls
//   LossyProtocol      wrapper composing a per-message delivery
//                      probability q with any inner protocol
//
// All protocol randomness comes from the protocol-owned RNG; flooding and
// TTL flooding consume none, so the frontier fast paths stay exact. Gossip
// sampling iterates deterministically ordered node lists (the run's inform
// order for PUSH, the graph's alive order for PULL/PUSH-PULL), keeping
// every run reproducible from (network seed, protocol seed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "protocols/protocol.hpp"

namespace churnet {

/// Full flooding: every informed node offers the rumor over every incident
/// edge, incrementally via the frontier + created-edge state.
class FloodProtocol : public DisseminationProtocol {
 public:
  std::string name() const override { return "flood"; }
  void propose(StepView& view) override;
  bool frontier_driven() const override { return true; }
  bool dedup_receivers() const override { return true; }
};

/// Hop-bounded flooding: the source is at hop 0, a delivery from a hop-h
/// sender lands at hop h+1, and nodes at hop >= ttl stop forwarding.
/// ttl == 0 never spreads beyond the sources.
class TtlFloodProtocol : public DisseminationProtocol {
 public:
  explicit TtlFloodProtocol(std::uint32_t ttl) : ttl_(ttl) {}

  std::string name() const override;
  void begin_run(std::uint64_t seed, std::uint32_t slot_bound) override;
  void propose(StepView& view) override;
  void on_informed(NodeId node, NodeId sender,
                   std::size_t candidate_index) override;
  void on_death(NodeId node) override;
  bool frontier_driven() const override { return true; }
  bool dedup_receivers() const override { return true; }

  std::uint32_t ttl() const { return ttl_; }
  /// Hop at which `node` was informed this run; only valid while informed.
  std::uint32_t hop_of(NodeId node) const;

 private:
  bool forwards(NodeId node) const {
    return node.slot < stamp_.size() && stamp_[node.slot] == epoch_ &&
           hop_[node.slot] < ttl_;
  }

  std::uint32_t ttl_;
  // Epoch-stamped slot-indexed hop map (the FloodScratch pattern): resets
  // are an epoch bump, replication loops allocate nothing after warm-up.
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint32_t> hop_;
  std::uint64_t epoch_ = 0;
  // Hop payload per recorded candidate of the current step, aligned with
  // the driver's candidate indices.
  std::vector<std::uint32_t> pending_hops_;
};

/// PUSH gossip with fanout k: each step, every informed node samples k
/// neighbors uniformly with replacement and sends to each (oblivious to
/// the receiver's state — duplicates are the protocol's waste).
class PushProtocol : public DisseminationProtocol {
 public:
  explicit PushProtocol(std::uint32_t fanout) : fanout_(fanout) {}

  std::string name() const override;
  void propose(StepView& view) override;
  std::uint32_t fanout() const { return fanout_; }

 private:
  std::uint32_t fanout_;
};

/// PULL gossip with fanout k: each step, every uninformed alive node
/// probes k uniform random neighbors; an informed neighbor answers with
/// the rumor, an uninformed one costs an overhead probe.
class PullProtocol : public DisseminationProtocol {
 public:
  explicit PullProtocol(std::uint32_t fanout) : fanout_(fanout) {}

  std::string name() const override;
  void propose(StepView& view) override;
  std::uint32_t fanout() const { return fanout_; }

 private:
  std::uint32_t fanout_;
};

/// PUSH-PULL with fanout k: every alive node contacts k uniform random
/// neighbors; informed callers push the rumor, informed callees answer the
/// pull, and uninformed-uninformed contacts cost overhead probes.
class PushPullProtocol : public DisseminationProtocol {
 public:
  explicit PushPullProtocol(std::uint32_t fanout) : fanout_(fanout) {}

  std::string name() const override;
  void propose(StepView& view) override;
  std::uint32_t fanout() const { return fanout_; }

 private:
  std::uint32_t fanout_;
};

/// Lossy-link wrapper: every transmission of the inner protocol is
/// delivered independently with probability q (the loss coin comes from
/// this wrapper's RNG; the inner protocol keeps its own stream). Composes
/// with any protocol; q == 1 is bit-identical to the bare inner protocol.
class LossyProtocol : public DisseminationProtocol {
 public:
  LossyProtocol(std::unique_ptr<DisseminationProtocol> inner, double q);

  std::string name() const override;
  void begin_run(std::uint64_t seed, std::uint32_t slot_bound) override;
  void propose(StepView& view) override { inner_->propose(view); }
  void on_informed(NodeId node, NodeId sender,
                   std::size_t candidate_index) override {
    inner_->on_informed(node, sender, candidate_index);
  }
  void on_death(NodeId node) override { inner_->on_death(node); }
  bool frontier_driven() const override { return inner_->frontier_driven(); }
  bool dedup_receivers() const override { return inner_->dedup_receivers(); }
  double delivery_probability() const override { return q_; }

  const DisseminationProtocol& inner() const { return *inner_; }

 private:
  std::unique_ptr<DisseminationProtocol> inner_;
  double q_;
};

}  // namespace churnet
