#include "protocols/protocol_spec.hpp"

#include <cmath>

#include "common/assertx.hpp"
#include "common/specgram.hpp"
#include "common/table.hpp"

namespace churnet {
namespace {

constexpr const char* kBaseNames[] = {"flood", "push", "pull", "push-pull",
                                      "pushpull", "ttl"};
constexpr const char* kModifierNames[] = {"lossy", "sources"};

bool fail(std::string* error, std::string message) {
  return spec_fail(error, std::move(message));
}

/// Reads a positive integer argument (fanout, ttl, sources); rejects
/// fractional and out-of-range values with the parameter's name.
bool read_count(double value, const char* what, std::uint32_t minimum,
                std::uint32_t* out, std::string* error) {
  if (std::floor(value) != value || value < minimum || value > 1e9) {
    fail(error, std::string(what) + " must be an integer >= " +
                    std::to_string(minimum) + " (got " + fmt_fixed(value, 3) +
                    ")");
    return false;
  }
  *out = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

std::string ProtocolSpec::canonical() const {
  std::string text;
  switch (kind) {
    case Kind::kFlood:
      text = "flood";
      break;
    case Kind::kPush:
      text = "push(" + fmt_int(static_cast<std::int64_t>(fanout)) + ")";
      break;
    case Kind::kPull:
      text = "pull(" + fmt_int(static_cast<std::int64_t>(fanout)) + ")";
      break;
    case Kind::kPushPull:
      text = "push-pull(" + fmt_int(static_cast<std::int64_t>(fanout)) + ")";
      break;
    case Kind::kTtl:
      text = "ttl(" + fmt_int(static_cast<std::int64_t>(ttl)) + ")";
      break;
  }
  if (lossy()) text += "+lossy(" + fmt_fixed(loss_q, 2) + ")";
  if (sources > 1) {
    text += "+sources(" + fmt_int(static_cast<std::int64_t>(sources)) + ")";
  }
  return text;
}

std::optional<ProtocolSpec> ProtocolSpec::parse(std::string_view text,
                                                std::string* error) {
  const std::vector<std::string_view> segments = split_spec_segments(text);
  ProtocolSpec spec;
  bool have_loss = false;
  bool have_sources = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    SpecCall call;
    if (!split_spec_call(segments[i], "protocol spec", &call, error)) {
      return std::nullopt;
    }
    const auto arity = [&](std::size_t max_args) {
      if (call.args.size() <= max_args) return true;
      fail(error, "protocol spec '" + std::string(trim_spec(segments[i])) +
                      "': at most " + std::to_string(max_args) +
                      " argument(s) allowed");
      return false;
    };
    if (call.name == "lossy") {
      if (i == 0) {
        fail(error,
             "protocol spec '" + std::string(trim_spec(text)) +
                 "': lossy(q) is a modifier; start with a base protocol "
                 "(flood, push(k), pull(k), push-pull(k), ttl(h))");
        return std::nullopt;
      }
      if (!arity(1)) return std::nullopt;
      if (have_loss) {
        fail(error, "protocol spec '" + std::string(trim_spec(text)) +
                        "': lossy(q) given twice");
        return std::nullopt;
      }
      if (call.args.empty()) {
        fail(error, "lossy(q) needs a delivery probability");
        return std::nullopt;
      }
      spec.loss_q = call.args[0];
      if (!(spec.loss_q > 0.0) || spec.loss_q > 1.0) {
        fail(error, "lossy delivery probability must be in (0, 1] (got " +
                        fmt_fixed(spec.loss_q, 3) + ")");
        return std::nullopt;
      }
      have_loss = true;
      continue;
    }
    if (call.name == "sources") {
      if (i == 0) {
        fail(error,
             "protocol spec '" + std::string(trim_spec(text)) +
                 "': sources(s) is a modifier; start with a base protocol "
                 "(flood, push(k), pull(k), push-pull(k), ttl(h))");
        return std::nullopt;
      }
      if (!arity(1)) return std::nullopt;
      if (have_sources) {
        fail(error, "protocol spec '" + std::string(trim_spec(text)) +
                        "': sources(s) given twice");
        return std::nullopt;
      }
      if (call.args.empty()) {
        fail(error, "sources(s) needs a source count");
        return std::nullopt;
      }
      if (!read_count(call.args[0], "source count", 1, &spec.sources, error)) {
        return std::nullopt;
      }
      have_sources = true;
      continue;
    }
    if (i > 0) {
      fail(error, "protocol spec '" + std::string(trim_spec(text)) +
                      "': only the lossy(q) and sources(s) modifiers may "
                      "follow the base protocol (got '" + call.name + "')");
      return std::nullopt;
    }
    if (call.name == "flood") {
      if (!arity(0)) return std::nullopt;
      spec.kind = Kind::kFlood;
    } else if (call.name == "push") {
      if (!arity(1)) return std::nullopt;
      spec.kind = Kind::kPush;
      if (!call.args.empty() &&
          !read_count(call.args[0], "push fanout", 1, &spec.fanout, error)) {
        return std::nullopt;
      }
    } else if (call.name == "pull") {
      if (!arity(1)) return std::nullopt;
      spec.kind = Kind::kPull;
      if (!call.args.empty() &&
          !read_count(call.args[0], "pull fanout", 1, &spec.fanout, error)) {
        return std::nullopt;
      }
    } else if (call.name == "push-pull" || call.name == "pushpull") {
      if (!arity(1)) return std::nullopt;
      spec.kind = Kind::kPushPull;
      if (!call.args.empty() &&
          !read_count(call.args[0], "push-pull fanout", 1, &spec.fanout,
                      error)) {
        return std::nullopt;
      }
    } else if (call.name == "ttl") {
      if (!arity(1)) return std::nullopt;
      spec.kind = Kind::kTtl;
      if (call.args.empty()) {
        fail(error,
             "ttl(h) needs a hop bound (an unbounded TTL is just flood)");
        return std::nullopt;
      }
      if (!read_count(call.args[0], "ttl hop bound", 0, &spec.ttl, error)) {
        return std::nullopt;
      }
    } else {
      fail(error, "unknown protocol '" + call.name +
                      "'; known: " + known_names());
      return std::nullopt;
    }
  }
  return spec;
}

bool ProtocolSpec::is_known_name(std::string_view name) {
  const std::string lowered = lowercase_spec(name);
  for (const char* known : kBaseNames) {
    if (lowered == known) return true;
  }
  for (const char* known : kModifierNames) {
    if (lowered == known) return true;
  }
  return false;
}

std::string ProtocolSpec::known_names() {
  return "flood, push(k), pull(k), push-pull(k), ttl(h), and the "
         "+lossy(q), +sources(s) modifiers";
}

std::vector<std::pair<std::string, std::string>> ProtocolSpec::catalog() {
  return {
      {"flood", "full flooding (the paper's process; default)"},
      {"push(k)", "PUSH gossip: informed nodes send to k random neighbors "
                  "per step (default k=1)"},
      {"pull(k)", "PULL gossip: uninformed nodes probe k random neighbors "
                  "per step (default k=1)"},
      {"push-pull(k)", "PUSH-PULL: every node contacts k random neighbors; "
                       "informed ends exchange the rumor (default k=1)"},
      {"ttl(h)", "hop-bounded flooding: forwarding stops h hops from the "
                 "source"},
      {"+lossy(q)", "modifier: each message is delivered independently "
                    "with probability q in (0, 1]"},
      {"+sources(s)", "modifier: start from s initially informed nodes"},
  };
}

std::unique_ptr<DisseminationProtocol> make_protocol(
    const ProtocolSpec& spec) {
  std::unique_ptr<DisseminationProtocol> base;
  switch (spec.kind) {
    case ProtocolSpec::Kind::kFlood:
      base = std::make_unique<FloodProtocol>();
      break;
    case ProtocolSpec::Kind::kPush:
      base = std::make_unique<PushProtocol>(spec.fanout);
      break;
    case ProtocolSpec::Kind::kPull:
      base = std::make_unique<PullProtocol>(spec.fanout);
      break;
    case ProtocolSpec::Kind::kPushPull:
      base = std::make_unique<PushPullProtocol>(spec.fanout);
      break;
    case ProtocolSpec::Kind::kTtl:
      base = std::make_unique<TtlFloodProtocol>(spec.ttl);
      break;
  }
  CHURNET_ASSERT(base != nullptr);
  if (spec.lossy()) {
    base = std::make_unique<LossyProtocol>(std::move(base), spec.loss_q);
  }
  return base;
}

ProtocolOptions protocol_options(const ProtocolSpec& spec,
                                 std::uint64_t seed) {
  ProtocolOptions options;
  options.seed = seed;
  options.sources = spec.sources;
  return options;
}

}  // namespace churnet
