// Textual dissemination-protocol specs: the grammar scenarios and sweeps
// use to name a protocol, and the factory that instantiates one —
// mirroring churn/churn_spec.hpp for the protocol axis.
//
// Grammar (case-insensitive, optional whitespace):
//
//   spec     := base ('+' modifier)*
//   base     := "flood" | "push" ['(' k ')'] | "pull" ['(' k ')']
//               | "push-pull" ['(' k ')'] | "ttl" '(' h ')'
//   modifier := "lossy" '(' q ')' | "sources" '(' s ')'
//
//   flood           full flooding (the paper's process; the degenerate
//                   protocol, bit-identical to the flood driver)
//   push(k)         PUSH gossip, fanout k >= 1 (default 1)
//   pull(k)         PULL gossip, fanout k >= 1 (default 1)
//   push-pull(k)    PUSH-PULL gossip, fanout k >= 1 (default 1)
//   ttl(h)          hop-bounded flooding, h >= 0 hops (no default: a TTL
//                   without a bound is just flood)
//   +lossy(q)       per-message delivery probability q in (0, 1]
//   +sources(s)     s >= 1 initially informed nodes
//
// "pushpull" is accepted as an alias of "push-pull". Malformed specs are
// rejected with a one-line reason (unknown name listing the known
// protocols, wrong arity, out-of-range q / fanout / ttl), surfaced
// verbatim by the scenario registry and the sweep config loader.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "protocols/gossip.hpp"
#include "protocols/protocol.hpp"

namespace churnet {

struct ProtocolSpec {
  enum class Kind : std::uint8_t {
    kFlood,
    kPush,
    kPull,
    kPushPull,
    kTtl,
  };

  Kind kind = Kind::kFlood;
  /// Gossip fanout k (push/pull/push-pull); ignored by flood and ttl.
  std::uint32_t fanout = 1;
  /// Hop bound for ttl; ignored otherwise.
  std::uint32_t ttl = 0;
  /// Per-message delivery probability; 1.0 = lossless (no wrapper).
  double loss_q = 1.0;
  /// Initially informed nodes (driver-level; see ProtocolOptions).
  std::uint32_t sources = 1;

  bool lossy() const { return loss_q < 1.0; }

  /// The spec in canonical text form ("push(3)", "flood+lossy(0.90)",
  /// "ttl(4)+sources(2)", ...); matches the instantiated protocol's
  /// name() plus the "+sources(s)" suffix when s > 1.
  std::string canonical() const;

  /// Parses `text`; on failure returns nullopt and, when `error` is
  /// non-null, stores a one-line reason (unknown names list the catalog).
  static std::optional<ProtocolSpec> parse(std::string_view text,
                                           std::string* error = nullptr);

  /// True when `name` ("push" — the call name alone, no arguments) names a
  /// base protocol or a modifier of this grammar; used to dispatch
  /// composite-scenario segments between the churn and protocol families.
  static bool is_known_name(std::string_view name);

  /// One-line summary of the grammar's names ("flood, push(k), ...") for
  /// diagnostics and --list-protocols.
  static std::string known_names();

  /// The protocol catalog as (spelling, description) rows.
  static std::vector<std::pair<std::string, std::string>> catalog();

  friend bool operator==(const ProtocolSpec&, const ProtocolSpec&) = default;
};

/// Instantiates the protocol a spec names (wrapping in LossyProtocol when
/// loss_q < 1). The spec's `sources` field is a driver option — callers
/// forward it into ProtocolOptions::sources (see protocol_options()).
std::unique_ptr<DisseminationProtocol> make_protocol(const ProtocolSpec& spec);

/// ProtocolOptions pre-filled from a spec (sources) and a run seed, with
/// flood-compatible defaults.
ProtocolOptions protocol_options(const ProtocolSpec& spec,
                                 std::uint64_t seed);

}  // namespace churnet
