// Generic dissemination driver: flood_dynamic's step loop with the
// per-step message generation delegated to a DisseminationProtocol.
//
// The loop structure is byte-for-byte the flood driver's (DESIGN.md,
// decision 6): candidates are proposed from G_{t-1} and I_{t-1}, one
// semantic step of churn runs (Net::flood_semantics picks the survival
// rule, completion predicate and advance primitive), deaths un-inform
// their nodes, and surviving candidates are committed in propose order.
// With FloodProtocol plugged in, the informed sets and event sequence are
// bit-identical to flood_dynamic on every model — the refactor is proven,
// not assumed (tests/test_protocol_equivalence.cpp). Gossip protocols
// reuse the identical churn bookkeeping, so PUSH/PULL on a churning
// network get the paper's exact survival semantics for free.
//
// On top of the flood loop the driver adds: multi-source starts (extras
// drawn from the protocol RNG, never the network's), message-complexity
// accounting (ProtocolStats), and protocol callbacks (on_informed for
// hop/state tracking, on_death for slot recycling).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/assertx.hpp"
#include "models/edge_policy.hpp"
#include "protocols/protocol.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {

namespace detail_protocol {

/// True when some uninformed alive node has an informed neighbor — i.e.
/// the informed set can still grow on a churn-free network. O(V+E); only
/// consulted on zero-progress rounds to guarantee termination when
/// randomized gossip has saturated its reachable component.
inline bool informed_boundary_exists(const DynamicGraph& graph,
                                     ProtocolScratch& scratch) {
  const FloodScratch& fs = scratch.flood;
  scratch.alive.clear();
  graph.append_alive_nodes(scratch.alive);
  for (const NodeId v : scratch.alive) {
    if (fs.is_informed(v)) continue;
    scratch.flood.neighbors.clear();
    graph.append_neighbors(v, scratch.flood.neighbors);
    for (const NodeId u : scratch.flood.neighbors) {
      if (fs.is_informed(u)) return true;
    }
  }
  return false;
}

}  // namespace detail_protocol

/// Runs one dissemination process on `net` under its declared flood
/// semantics. The network should be warmed up; all allocations are reused
/// across calls through `scratch`, and the protocol is reset via
/// begin_run, so one (protocol, scratch) pair serves a whole replication
/// loop without steady-state allocation.
template <typename Net>
ProtocolResult disseminate_dynamic(Net& net, DisseminationProtocol& protocol,
                                   const ProtocolOptions& options,
                                   ProtocolScratch& scratch) {
  using Semantics = typename Net::flood_semantics;
  const telemetry::PhaseTimer phase_span(telemetry::Phase::kDissemination);
  ProtocolResult result;
  FloodTrace& trace = result.trace;
  ProtocolStats& stats = result.stats;
  FloodScratch& fs = scratch.flood;
  fs.begin_trial(net.graph().slot_upper_bound());
  scratch.informed.clear();
  protocol.begin_run(options.seed, net.graph().slot_upper_bound());

  const double delivery_q =
      std::clamp(protocol.delivery_probability(), 0.0, 1.0);
  // The receiver-dedup fast path is only sound when one surviving boundary
  // message is as good as many: receiver-only survival and a lossless link.
  const bool dedup = !Semantics::kPairCandidates &&
                     protocol.dedup_receivers() && delivery_q >= 1.0;

  NodeId source = kInvalidNode;
  NetworkHooks hooks;
  hooks.on_birth = [&source](NodeId node, double) {
    if (!source.valid()) source = node;
  };
  hooks.on_edge_created = [&fs](NodeId owner, std::uint32_t, NodeId target,
                                bool, double) {
    fs.created.push_back({owner, target});
  };
  hooks.on_death = [&fs](NodeId node, double) { fs.note_death(node); };
  net.set_hooks(std::move(hooks));

  if constexpr (Semantics::kSourceIsNewborn) {
    // The paper's convention: flooding starts from the node joining at t0.
    while (!source.valid()) net.step();
  } else {
    CHURNET_EXPECTS(net.graph().alive_count() > 0);
    source = net.graph().random_alive(net.rng());
  }
  // The sources' own birth edges are covered by the frontier.
  fs.created.clear();
  fs.clear_deaths();
  fs.mark_informed(source);
  fs.frontier.push_back(source);
  scratch.informed.push_back(source);
  protocol.on_informed(source, kInvalidNode,
                       DisseminationProtocol::kNoCandidate);

  // Extra sources: uniform alive nodes from the protocol RNG (the network
  // realization stays identical to a single-source run under the same
  // network seed). Capped at the alive count; the loop guard guarantees an
  // uninformed alive node exists, so the rejection sampling terminates.
  const std::uint64_t want_sources =
      std::min<std::uint64_t>(options.sources, net.graph().alive_count());
  while (fs.informed_count() < std::max<std::uint64_t>(want_sources, 1)) {
    const NodeId extra = net.graph().random_alive(protocol.rng());
    if (fs.mark_informed(extra)) {
      fs.frontier.push_back(extra);
      scratch.informed.push_back(extra);
      protocol.on_informed(extra, kInvalidNode,
                           DisseminationProtocol::kNoCandidate);
    }
  }

  trace.peak_informed = fs.informed_count();
  detail_flood::record_step(trace, options.flood, fs.informed_count(),
                            net.graph().alive_count());

  const unsigned intra = effective_intra_threads(options.flood.intra_threads);
  for (std::uint64_t step = 1; step <= options.flood.max_steps; ++step) {
    // Serial point: workers of a sharded propose may not trigger a resize.
    fs.ensure_slots(net.graph().slot_upper_bound());
    fs.begin_step();  // clears last step's candidate marks + pair list
    StepView view(net.graph(), scratch, stats, dedup, delivery_q,
                  &protocol.rng(), step, intra);
    protocol.propose(view);
    fs.created.clear();
    fs.clear_deaths();

    // One semantic step of churn; hooks record deaths and new edges.
    Semantics::advance(net);

    for (const NodeId dead : fs.deaths()) {
      fs.unmark_informed(dead);
      protocol.on_death(dead);
    }

    // Commit surviving deliveries in propose order.
    fs.frontier.clear();
    for (std::size_t i = 0; i < fs.candidates.size(); ++i) {
      const auto [u, v] = fs.candidates[i];
      if constexpr (Semantics::kPairCandidates) {
        if (fs.died_this_step(u) || fs.died_this_step(v)) continue;
        CHURNET_ASSERT(net.graph().is_alive(v));
      } else {
        if (!net.graph().is_alive(v)) continue;  // the interval's death
      }
      if (fs.mark_informed(v)) {
        ++stats.useful_deliveries;
        fs.frontier.push_back(v);
        scratch.informed.push_back(v);
        protocol.on_informed(v, u, i);
      } else {
        ++stats.duplicate_deliveries;
      }
    }

    trace.steps = step;
    const std::uint64_t informed_count = fs.informed_count();
    const std::uint64_t alive_count = net.graph().alive_count();
    trace.peak_informed = std::max(trace.peak_informed, informed_count);
    detail_flood::record_step(trace, options.flood, informed_count,
                              alive_count);
    trace.final_fraction = alive_count == 0
                               ? 0.0
                               : static_cast<double>(informed_count) /
                                     static_cast<double>(alive_count);

    if (Semantics::completed(informed_count, alive_count)) {
      trace.completed = true;
      trace.completion_step = step;
      break;
    }
    if (informed_count == 0) {
      trace.died_out = true;
      trace.die_out_step = step;
      if (options.flood.stop_on_die_out) break;
    }
    if (options.flood.stop_at_fraction < 1.0 &&
        trace.final_fraction >= options.flood.stop_at_fraction) {
      break;
    }
    if constexpr (Semantics::kChurnFree) {
      // Frontier-driven protocols (flood, TTL) can only ever propose from
      // new informs or new edges: with neither, the run is a fixed point.
      // Randomized gossip can idle and retry, so on its zero-progress
      // rounds check whether an informed-to-uninformed edge still exists;
      // once the reachable component is saturated (e.g. a disconnected
      // baseline), no coin can ever help and the run is over — without
      // this, a non-completing gossip run would burn the full max_steps.
      if (fs.frontier.empty()) {
        if (protocol.frontier_driven()) break;
        if (!detail_protocol::informed_boundary_exists(net.graph(),
                                                       scratch)) {
          break;
        }
      }
    }
  }

  net.set_hooks({});
  stats.rounds = trace.steps;
  stats.completed = trace.completed;
  stats.final_coverage = trace.final_fraction;
  telemetry::count(telemetry::Counter::kMessages, stats.total_messages());
  return result;
}

/// Convenience overload with a private (per-call) scratch.
template <typename Net>
ProtocolResult disseminate_dynamic(Net& net, DisseminationProtocol& protocol,
                                   const ProtocolOptions& options = {}) {
  ProtocolScratch scratch;
  return disseminate_dynamic(net, protocol, options, scratch);
}

}  // namespace churnet
