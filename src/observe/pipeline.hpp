// The observation pipeline driver: attaches an ObserverSet to one trial on
// any network model (DESIGN.md §6). This is the one-call entry the ported
// benches, examples and tests use; SweepRunner drives the same ObserverSet
// hooks inline so observers share its snapshot and dissemination run.
//
// One observation pass over a warmed network is:
//
//   1. begin_trial(seed)         -- reset + reseed every observer (seeds
//      routed per observer: derive_seed(seed, index, 0));
//   2. the observation window    -- advance the network by the set's
//      observation_rounds() churn steps, calling on_round after each
//      (skipped entirely when no observer wants rounds);
//   3. ObserverSet::observe      -- the set builds its one shared dense
//      snapshot iff some observer needs it, offers it via on_snapshot, and
//      lets delta-fed observers publish via on_observe; the same shared
//      snapshot serves the dissemination-start census in the flood /
//      protocol entries instead of a second capture;
//   4. optionally one dissemination run (flood or any protocol), offered
//      via on_dissemination;
//   5. append_values             -- one value per declared metric column.
//
// The window intentionally runs *before* the snapshot: observers measure
// the network after the window they asked for, and a set without round
// observers measures the warmed network unchanged.
//
// With incremental = true the pass runs delta-fed (DESIGN.md §6, decision
// 15): a ChangeFeed is attached to the network for the window, the trial
// starts with begin_incremental_trial, and every round's deltas are
// forwarded through on_deltas before the next step. Values remain a pure
// function of (seed, trial inputs); the first observation of a trial is
// bit-identical to the from-scratch pass (tests/test_incremental_observe
// pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "models/network.hpp"
#include "observe/observer.hpp"

namespace churnet {

/// Runs one observation pass (window + shared snapshot) on a warmed
/// network and returns the set's metric values. Dissemination observers in
/// the set report NaN (nothing spread); use the overloads below to observe
/// a flood or protocol run.
std::vector<double> observe_network(AnyNetwork& net, ObserverSet& observers,
                                    std::uint64_t seed,
                                    bool incremental = false);

/// As above, plus one flood run (the paper's process) between the snapshot
/// and value collection; the trace is offered to dissemination observers.
std::vector<double> observe_flood(AnyNetwork& net, ObserverSet& observers,
                                  std::uint64_t seed,
                                  const FloodOptions& options,
                                  FloodScratch& scratch,
                                  bool incremental = false);

/// As above with a dissemination protocol run instead of plain flooding;
/// observers additionally see the run's message accounting.
std::vector<double> observe_protocol(AnyNetwork& net, ObserverSet& observers,
                                     std::uint64_t seed,
                                     DisseminationProtocol& protocol,
                                     const ProtocolOptions& options,
                                     ProtocolScratch& scratch,
                                     bool incremental = false);

}  // namespace churnet
