#include "observe/pipeline.hpp"

namespace churnet {
namespace {

/// Steps 1-3 of the pass (reset, window, the set's shared snapshot); the
/// caller optionally runs a dissemination before collecting values. Both
/// modes route the measurement through ObserverSet::observe, so the one
/// shared snapshot serves every consumer (snapshot observers and, in the
/// flood/protocol entries, the dissemination-start state) instead of each
/// capturing its own.
void run_window_and_observe(AnyNetwork& net, ObserverSet& observers,
                            std::uint64_t seed, bool incremental) {
  const std::uint32_t rounds = observers.observation_rounds();
  if (incremental) {
    ChangeFeed feed;
    net.attach_change_feed(&feed);
    observers.begin_incremental_trial(seed, net.graph(), net.now());
    for (std::uint32_t r = 0; r < rounds; ++r) {
      feed.clear();
      net.step();
      observers.on_round(net.graph(), net.now());
      observers.on_deltas(net.graph(), feed.deltas(), net.now());
    }
    net.attach_change_feed(nullptr);
  } else {
    observers.begin_trial(seed);
    for (std::uint32_t r = 0; r < rounds; ++r) {
      net.step();
      observers.on_round(net.graph(), net.now());
    }
  }
  observers.observe(net.graph(), net.now());
}

std::vector<double> collect(const ObserverSet& observers) {
  std::vector<double> values;
  observers.append_values(values);
  return values;
}

}  // namespace

std::vector<double> observe_network(AnyNetwork& net, ObserverSet& observers,
                                    std::uint64_t seed, bool incremental) {
  run_window_and_observe(net, observers, seed, incremental);
  return collect(observers);
}

std::vector<double> observe_flood(AnyNetwork& net, ObserverSet& observers,
                                  std::uint64_t seed,
                                  const FloodOptions& options,
                                  FloodScratch& scratch, bool incremental) {
  run_window_and_observe(net, observers, seed, incremental);
  const FloodTrace trace = net.flood(options, scratch);
  observers.on_dissemination(trace, /*stats=*/nullptr);
  return collect(observers);
}

std::vector<double> observe_protocol(AnyNetwork& net, ObserverSet& observers,
                                     std::uint64_t seed,
                                     DisseminationProtocol& protocol,
                                     const ProtocolOptions& options,
                                     ProtocolScratch& scratch,
                                     bool incremental) {
  run_window_and_observe(net, observers, seed, incremental);
  const ProtocolResult result = net.disseminate(protocol, options, scratch);
  observers.on_dissemination(result.trace, &result.stats);
  return collect(observers);
}

}  // namespace churnet
