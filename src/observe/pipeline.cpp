#include "observe/pipeline.hpp"

namespace churnet {
namespace {

/// Steps 1-3 of the pass (reset, window, shared snapshot); the caller
/// optionally runs a dissemination before collecting values.
void run_window_and_snapshot(AnyNetwork& net, ObserverSet& observers,
                             std::uint64_t seed) {
  observers.begin_trial(seed);
  const std::uint32_t rounds = observers.observation_rounds();
  for (std::uint32_t r = 0; r < rounds; ++r) {
    net.step();
    observers.on_round(net.graph(), net.now());
  }
  if (observers.wants_snapshot()) {
    const Snapshot snapshot = net.snapshot();
    observers.on_snapshot(snapshot);
  }
}

std::vector<double> collect(const ObserverSet& observers) {
  std::vector<double> values;
  observers.append_values(values);
  return values;
}

}  // namespace

std::vector<double> observe_network(AnyNetwork& net, ObserverSet& observers,
                                    std::uint64_t seed) {
  run_window_and_snapshot(net, observers, seed);
  return collect(observers);
}

std::vector<double> observe_flood(AnyNetwork& net, ObserverSet& observers,
                                  std::uint64_t seed,
                                  const FloodOptions& options,
                                  FloodScratch& scratch) {
  run_window_and_snapshot(net, observers, seed);
  const FloodTrace trace = net.flood(options, scratch);
  observers.on_dissemination(trace, /*stats=*/nullptr);
  return collect(observers);
}

std::vector<double> observe_protocol(AnyNetwork& net, ObserverSet& observers,
                                     std::uint64_t seed,
                                     DisseminationProtocol& protocol,
                                     const ProtocolOptions& options,
                                     ProtocolScratch& scratch) {
  run_window_and_snapshot(net, observers, seed);
  const ProtocolResult result = net.disseminate(protocol, options, scratch);
  observers.on_dissemination(result.trace, &result.stats);
  return collect(observers);
}

}  // namespace churnet
