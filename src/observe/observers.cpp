#include "observe/observers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assertx.hpp"
#include "common/table.hpp"
#include "graph/algorithms.hpp"

namespace churnet {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Nearest-rank quantile over a sorted, non-empty range.
template <typename T>
double quantile(const std::vector<T>& sorted, double p) {
  const std::size_t n = sorted.size();
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(n - 1) + 0.5);
  return static_cast<double>(sorted[std::min(index, n - 1)]);
}

}  // namespace

// ---- ExpansionObserver -----------------------------------------------------

std::string ExpansionObserver::name() const {
  return "expansion(" + fmt_int(options_.random_sets_per_size) + ")";
}

void ExpansionObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("expansion_min_ratio");
  out.push_back("expansion_argmin_size");
  out.push_back("expansion_sets_probed");
}

void ExpansionObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  last_ = ProbeResult{};
  observed_ = false;
  live_ = false;
  sets_.clear();
  slot_masks_.clear();
}

void ExpansionObserver::on_trial_start(const DynamicGraph& graph,
                                       double now) {
  (void)graph;
  (void)now;
  live_ = true;
}

void ExpansionObserver::sample_persistent_sets(const Snapshot& snapshot) {
  const std::uint32_t n = snapshot.node_count();
  if (n < 2) return;
  const std::uint32_t min_size = std::max(options_.min_size, 1u);
  const std::uint32_t max_size = std::max(
      min_size,
      std::min(options_.max_size == 0 ? n / 2 : options_.max_size, n / 2));
  const std::uint32_t count =
      std::min(std::max(options_.size_steps, 1u), kMaxPersistentSets);

  sets_.assign(count, {});
  slot_masks_.clear();
  const double log_ratio =
      std::log(static_cast<double>(max_size) /
               static_cast<double>(min_size));
  for (std::uint32_t k = 0; k < count; ++k) {
    // The probe's geometric size grid between min and max.
    const double t = count == 1 ? 0.0
                                : static_cast<double>(k) /
                                      static_cast<double>(count - 1);
    const auto size = static_cast<std::uint32_t>(std::llround(
        static_cast<double>(min_size) * std::exp(log_ratio * t)));
    const std::uint32_t target =
        std::clamp(size, min_size, max_size);
    std::vector<NodeId>& set = sets_[k];
    set.reserve(target);
    const std::uint32_t bit = 1u << k;
    while (set.size() < target) {
      const std::uint32_t v = static_cast<std::uint32_t>(rng_.below(n));
      const NodeId id = snapshot.node_id(v);
      if (id.slot >= slot_masks_.size()) {
        slot_masks_.resize(id.slot + 1, 0);
      }
      if ((slot_masks_[id.slot] & bit) != 0) continue;  // already a member
      slot_masks_[id.slot] |= bit;
      set.push_back(id);
    }
  }
}

void ExpansionObserver::on_deltas(const DynamicGraph& graph,
                                  std::span<const GraphDelta> deltas,
                                  double now) {
  (void)now;
  if (sets_.empty()) return;  // no persistent sets before first observation
  for (const GraphDelta& delta : deltas) {
    if (delta.kind != GraphDelta::Kind::kDeath) continue;
    const std::uint32_t slot = delta.node.slot;
    if (slot >= slot_masks_.size()) continue;
    std::uint32_t mask = slot_masks_[slot];
    if (mask == 0) continue;
    slot_masks_[slot] = 0;
    for (std::uint32_t k = 0; mask != 0; ++k, mask >>= 1) {
      if ((mask & 1u) == 0) continue;
      std::vector<NodeId>& set = sets_[k];
      const auto member = std::find_if(
          set.begin(), set.end(),
          [slot](NodeId id) { return id.slot == slot; });
      CHURNET_ASSERT(member != set.end());
      // Repair-on-death: redraw the lost member uniformly from the current
      // population, rejecting nodes already in this set.
      const std::uint32_t bit = 1u << k;
      bool repaired = false;
      for (int attempt = 0; attempt < 64 && graph.alive_count() > 0;
           ++attempt) {
        const NodeId pick = graph.random_alive(rng_);
        if (pick.slot >= slot_masks_.size()) {
          slot_masks_.resize(pick.slot + 1, 0);
        }
        if ((slot_masks_[pick.slot] & bit) != 0) continue;
        slot_masks_[pick.slot] |= bit;
        *member = pick;
        repaired = true;
        break;
      }
      if (!repaired) {
        // Population too small to keep the set at size: drop the member.
        *member = set.back();
        set.pop_back();
      }
    }
  }
}

void ExpansionObserver::on_snapshot(const Snapshot& snapshot) {
  if (!live_ || !observed_) {
    // From-scratch probe — also the first observation of an incremental
    // trial, which is therefore bit-identical to the from-scratch path.
    last_ = probe_expansion(snapshot, rng_, options_);
    observed_ = true;
    if (live_) sample_persistent_sets(snapshot);
    return;
  }
  // Subsequent incremental observations: re-measure the maintained sets.
  ProbeResult result;
  for (const std::vector<NodeId>& set : sets_) {
    if (set.empty()) continue;
    set_indices_.clear();
    for (const NodeId id : set) {
      const auto index = snapshot.index_of(id);
      CHURNET_ASSERT(index.has_value());
      set_indices_.push_back(*index);
    }
    result.observe(expansion_ratio(snapshot, set_indices_),
                   static_cast<std::uint32_t>(set.size()), "persistent");
  }
  last_ = result;
}

void ExpansionObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? last_.min_ratio : kNan);
  out.push_back(observed_ ? static_cast<double>(last_.argmin_size) : kNan);
  out.push_back(observed_ ? static_cast<double>(last_.sets_probed) : kNan);
}

// ---- SpectralObserver ------------------------------------------------------

std::string SpectralObserver::name() const {
  return max_iterations_ == kDefaultIterations
             ? "spectral"
             : "spectral(" + fmt_int(max_iterations_) + ")";
}

void SpectralObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("spectral_gap");
  out.push_back("spectral_lambda2");
  out.push_back("spectral_converged");
}

void SpectralObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  last_ = SpectralResult{};
  observed_ = false;
  live_ = false;
  warm_.reset();
}

void SpectralObserver::on_trial_start(const DynamicGraph& graph, double now) {
  (void)graph;
  (void)now;
  live_ = true;
}

void SpectralObserver::on_snapshot(const Snapshot& snapshot) {
  // Warm-started in incremental mode: the first probe of a trial is
  // draw-for-draw the cold path (warm_ starts invalid, full budget), later
  // probes seed power iteration from the previous snapshot's eigenvector
  // under the reduced continuation budget (see the class comment).
  if (!live_) {
    last_ = spectral_gap(snapshot, rng_, max_iterations_, tolerance_);
  } else {
    const std::uint32_t budget =
        warm_.valid ? std::max(kWarmContinuationFloor,
                               max_iterations_ / kWarmBudgetDivisor)
                    : max_iterations_;
    last_ = spectral_gap_warm(snapshot, rng_, warm_, budget, tolerance_);
  }
  observed_ = true;
}

void SpectralObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? last_.spectral_gap : kNan);
  out.push_back(observed_ ? last_.lambda2 : kNan);
  out.push_back(observed_ ? (last_.converged ? 1.0 : 0.0) : kNan);
}

// ---- IsolatedObserver ------------------------------------------------------

void IsolatedObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("isolated_count");
  out.push_back("isolated_fraction");
}

void IsolatedObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  last_ = IsolatedCensus{};
  observed_ = false;
  live_ = false;
  isolated_ = 0;
  alive_ = 0;
}

void IsolatedObserver::on_trial_start(const DynamicGraph& graph, double now) {
  (void)now;
  live_ = true;
  slot_degrees_.assign(graph.slot_upper_bound(), 0);
  isolated_ = 0;
  scan_scratch_.clear();
  graph.append_alive_nodes(scan_scratch_);
  for (const NodeId id : scan_scratch_) {
    const std::uint32_t degree = graph.degree(id);
    slot_degrees_[id.slot] = degree;
    if (degree == 0) ++isolated_;
  }
  alive_ = graph.alive_count();
}

void IsolatedObserver::on_deltas(const DynamicGraph& graph,
                                 std::span<const GraphDelta> deltas,
                                 double now) {
  (void)graph;
  (void)now;
  if (!live_) return;
  auto ensure = [this](std::uint32_t slot) {
    if (slot >= slot_degrees_.size()) slot_degrees_.resize(slot + 1, 0);
  };
  for (const GraphDelta& delta : deltas) {
    switch (delta.kind) {
      case GraphDelta::Kind::kBirth:
        ensure(delta.node.slot);
        slot_degrees_[delta.node.slot] = 0;
        ++alive_;
        ++isolated_;
        break;
      case GraphDelta::Kind::kDeath:
        // The victim's edge clears precede its death (feed contract), so
        // its tracked degree is already zero.
        CHURNET_ASSERT(slot_degrees_[delta.node.slot] == 0);
        --alive_;
        --isolated_;
        break;
      case GraphDelta::Kind::kEdgeSet:
        ensure(delta.node.slot);
        ensure(delta.target.slot);
        if (slot_degrees_[delta.node.slot]++ == 0) --isolated_;
        if (slot_degrees_[delta.target.slot]++ == 0) --isolated_;
        break;
      case GraphDelta::Kind::kEdgeClear:
        if (--slot_degrees_[delta.node.slot] == 0) ++isolated_;
        if (--slot_degrees_[delta.target.slot] == 0) ++isolated_;
        break;
    }
  }
}

void IsolatedObserver::on_snapshot(const Snapshot& snapshot) {
  if (live_) return;  // delta-fed: measured in on_observe, snapshot unused
  last_ = isolated_census(snapshot);
  observed_ = true;
}

void IsolatedObserver::on_observe(const DynamicGraph& graph, double now) {
  (void)graph;
  (void)now;
  if (!live_) return;
  last_.isolated_nodes = isolated_;
  last_.total_nodes = alive_;
  last_.fraction = alive_ == 0 ? 0.0
                               : static_cast<double>(isolated_) /
                                     static_cast<double>(alive_);
  observed_ = true;
}

void IsolatedObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? static_cast<double>(last_.isolated_nodes) : kNan);
  out.push_back(observed_ ? last_.fraction : kNan);
}

// ---- DegreeHistogramObserver -----------------------------------------------

void DegreeHistogramObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("degree_mean");
  out.push_back("degree_min");
  out.push_back("degree_max");
  out.push_back("degree_p50");
  out.push_back("degree_p90");
  out.push_back("degree_p99");
}

void DegreeHistogramObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  degrees_.clear();
  summary_ = Summary{};
  observed_ = false;
  live_ = false;
  degree_sum_ = 0;
  alive_ = 0;
}

void DegreeHistogramObserver::on_trial_start(const DynamicGraph& graph,
                                             double now) {
  (void)now;
  live_ = true;
  slot_degrees_.assign(graph.slot_upper_bound(), 0);
  hist_.assign(1, 0);
  degree_sum_ = 0;
  scan_scratch_.clear();
  graph.append_alive_nodes(scan_scratch_);
  for (const NodeId id : scan_scratch_) {
    const std::uint32_t degree = graph.degree(id);
    slot_degrees_[id.slot] = degree;
    if (degree >= hist_.size()) hist_.resize(degree + 1, 0);
    ++hist_[degree];
    degree_sum_ += degree;
  }
  alive_ = graph.alive_count();
}

void DegreeHistogramObserver::on_deltas(const DynamicGraph& graph,
                                        std::span<const GraphDelta> deltas,
                                        double now) {
  (void)graph;
  (void)now;
  if (!live_) return;
  auto ensure_slot = [this](std::uint32_t slot) {
    if (slot >= slot_degrees_.size()) slot_degrees_.resize(slot + 1, 0);
  };
  auto add_edge_end = [this](std::uint32_t slot) {
    std::uint32_t& degree = slot_degrees_[slot];
    --hist_[degree];
    ++degree;
    if (degree >= hist_.size()) hist_.resize(degree + 1, 0);
    ++hist_[degree];
    ++degree_sum_;
  };
  auto drop_edge_end = [this](std::uint32_t slot) {
    std::uint32_t& degree = slot_degrees_[slot];
    --hist_[degree];
    --degree;
    ++hist_[degree];
    --degree_sum_;
  };
  for (const GraphDelta& delta : deltas) {
    switch (delta.kind) {
      case GraphDelta::Kind::kBirth:
        ensure_slot(delta.node.slot);
        slot_degrees_[delta.node.slot] = 0;
        ++hist_[0];
        ++alive_;
        break;
      case GraphDelta::Kind::kDeath:
        CHURNET_ASSERT(slot_degrees_[delta.node.slot] == 0);
        --hist_[0];
        --alive_;
        break;
      case GraphDelta::Kind::kEdgeSet:
        ensure_slot(delta.node.slot);
        ensure_slot(delta.target.slot);
        add_edge_end(delta.node.slot);
        add_edge_end(delta.target.slot);
        break;
      case GraphDelta::Kind::kEdgeClear:
        drop_edge_end(delta.node.slot);
        drop_edge_end(delta.target.slot);
        break;
    }
  }
}

void DegreeHistogramObserver::on_snapshot(const Snapshot& snapshot) {
  if (live_) return;  // delta-fed: measured in on_observe off the histogram
  degrees_.clear();
  degrees_.reserve(snapshot.node_count());
  double sum = 0.0;
  for (std::uint32_t v = 0; v < snapshot.node_count(); ++v) {
    const std::uint32_t degree = snapshot.degree(v);
    degrees_.push_back(degree);
    sum += degree;
  }
  std::sort(degrees_.begin(), degrees_.end());
  observed_ = !degrees_.empty();
  if (!observed_) {
    summary_ = Summary{};
    return;
  }
  summary_.mean = sum / static_cast<double>(degrees_.size());
  summary_.min = static_cast<double>(degrees_.front());
  summary_.max = static_cast<double>(degrees_.back());
  summary_.p50 = quantile(degrees_, 0.50);
  summary_.p90 = quantile(degrees_, 0.90);
  summary_.p99 = quantile(degrees_, 0.99);
}

void DegreeHistogramObserver::on_observe(const DynamicGraph& graph,
                                         double now) {
  (void)graph;
  (void)now;
  if (!live_) return;
  const std::uint64_t n = alive_;
  observed_ = n > 0;
  if (!observed_) {
    summary_ = Summary{};
    return;
  }
  // Nearest-rank quantile of the sorted degree multiset, read off the
  // cumulative histogram — the element at sorted position `index` is the
  // smallest degree whose cumulative count exceeds it.
  auto hist_quantile = [this, n](double p) {
    const auto index = std::min(
        static_cast<std::uint64_t>(
            p * static_cast<double>(n - 1) + 0.5),
        n - 1);
    std::uint64_t cumulative = 0;
    for (std::size_t g = 0; g < hist_.size(); ++g) {
      cumulative += hist_[g];
      if (cumulative > index) return static_cast<double>(g);
    }
    CHURNET_ASSERT(false && "histogram count < population");
    return 0.0;
  };
  // The integer degree sum is exact in double far past any reachable edge
  // count, so this mean equals the from-scratch accumulation bit for bit.
  summary_.mean = static_cast<double>(degree_sum_) / static_cast<double>(n);
  summary_.min = hist_quantile(0.0);
  summary_.max = [this] {
    for (std::size_t g = hist_.size(); g-- > 0;) {
      if (hist_[g] != 0) return static_cast<double>(g);
    }
    return 0.0;
  }();
  summary_.p50 = hist_quantile(0.50);
  summary_.p90 = hist_quantile(0.90);
  summary_.p99 = hist_quantile(0.99);
}

void DegreeHistogramObserver::append_values(std::vector<double>& out) const {
  if (!observed_) {
    out.insert(out.end(), 6, kNan);
    return;
  }
  out.push_back(summary_.mean);
  out.push_back(summary_.min);
  out.push_back(summary_.max);
  out.push_back(summary_.p50);
  out.push_back(summary_.p90);
  out.push_back(summary_.p99);
}

// ---- AgeHistogramObserver --------------------------------------------------

void AgeHistogramObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("age_mean");
  out.push_back("age_p50");
  out.push_back("age_p90");
  out.push_back("age_max");
}

void AgeHistogramObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  ages_.clear();
  summary_ = Summary{};
  observed_ = false;
  live_ = false;
  log_.clear();
  live_count_ = 0;
}

void AgeHistogramObserver::on_trial_start(const DynamicGraph& graph,
                                          double now) {
  (void)now;
  live_ = true;
  log_.clear();
  slot_to_log_.assign(graph.slot_upper_bound(), 0);
  std::vector<NodeId> nodes;
  graph.append_alive_nodes(nodes);
  // Seed the log in birth order (ascending birth sequence) — the snapshot
  // index order, which appends then preserve.
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return graph.birth_seq(a) < graph.birth_seq(b);
  });
  log_.reserve(nodes.size());
  for (const NodeId id : nodes) {
    slot_to_log_[id.slot] = log_.size();
    log_.push_back(LogEntry{graph.birth_time(id), id.slot, 1});
  }
  live_count_ = log_.size();
}

void AgeHistogramObserver::compact_log() {
  std::size_t kept = 0;
  for (const LogEntry& entry : log_) {
    if (entry.alive == 0) continue;
    slot_to_log_[entry.slot] = kept;
    log_[kept++] = entry;
  }
  log_.resize(kept);
}

void AgeHistogramObserver::on_deltas(const DynamicGraph& graph,
                                     std::span<const GraphDelta> deltas,
                                     double now) {
  (void)graph;
  (void)now;
  if (!live_) return;
  for (const GraphDelta& delta : deltas) {
    if (delta.kind == GraphDelta::Kind::kBirth) {
      if (delta.node.slot >= slot_to_log_.size()) {
        slot_to_log_.resize(delta.node.slot + 1, 0);
      }
      slot_to_log_[delta.node.slot] = log_.size();
      log_.push_back(LogEntry{delta.time, delta.node.slot, 1});
      ++live_count_;
    } else if (delta.kind == GraphDelta::Kind::kDeath) {
      LogEntry& entry = log_[slot_to_log_[delta.node.slot]];
      CHURNET_ASSERT(entry.slot == delta.node.slot && entry.alive != 0);
      entry.alive = 0;
      --live_count_;
    }
  }
  // Keep the tombstone overhead bounded: compact once dead entries
  // outnumber live ones (amortized O(1) per delta).
  if (log_.size() > 2 * live_count_ + 64) compact_log();
}

void AgeHistogramObserver::on_snapshot(const Snapshot& snapshot) {
  if (live_) return;  // delta-fed: measured in on_observe off the log
  ages_.clear();
  ages_.reserve(snapshot.node_count());
  double sum = 0.0;
  for (std::uint32_t v = 0; v < snapshot.node_count(); ++v) {
    const double age = snapshot.age(v);
    ages_.push_back(age);
    sum += age;
  }
  observed_ = !ages_.empty();
  if (!observed_) {
    summary_ = Summary{};
    return;
  }
  summary_.mean = sum / static_cast<double>(ages_.size());
  std::sort(ages_.begin(), ages_.end());
  summary_.p50 = quantile(ages_, 0.50);
  summary_.p90 = quantile(ages_, 0.90);
  summary_.max = ages_.back();
}

void AgeHistogramObserver::on_observe(const DynamicGraph& graph, double now) {
  (void)graph;
  if (!live_) return;
  observed_ = live_count_ > 0;
  if (!observed_) {
    summary_ = Summary{};
    return;
  }
  // Walk the live log oldest-first: exactly the snapshot index order, so
  // the float sum matches the from-scratch accumulation bit for bit; and
  // ages along the walk are non-increasing (birth times ascend), so the
  // ascending-sorted multiset is this walk reversed.
  ages_.clear();
  ages_.reserve(live_count_);
  double sum = 0.0;
  for (const LogEntry& entry : log_) {
    if (entry.alive == 0) continue;
    const double age = now - entry.birth_time;
    ages_.push_back(age);
    sum += age;
  }
  const std::size_t n = ages_.size();
  CHURNET_ASSERT(n == live_count_);
  auto sorted_at = [this, n](double p) {
    const auto index = std::min(
        static_cast<std::size_t>(p * static_cast<double>(n - 1) + 0.5),
        n - 1);
    return ages_[n - 1 - index];  // descending walk, ascending quantile
  };
  summary_.mean = sum / static_cast<double>(n);
  summary_.p50 = sorted_at(0.50);
  summary_.p90 = sorted_at(0.90);
  summary_.max = ages_.front();
}

void AgeHistogramObserver::append_values(std::vector<double>& out) const {
  if (!observed_) {
    out.insert(out.end(), 4, kNan);
    return;
  }
  out.push_back(summary_.mean);
  out.push_back(summary_.p50);
  out.push_back(summary_.p90);
  out.push_back(summary_.max);
}

// ---- CoverageObserver ------------------------------------------------------

std::string CoverageObserver::name() const {
  return "coverage(" + fmt_fixed(target_, 2) + ")";
}

void CoverageObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("coverage_step");
  out.push_back("coverage_final");
  out.push_back("coverage_auc");
}

void CoverageObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  step_ = kNan;
  final_ = kNan;
  auc_ = kNan;
  observed_ = false;
}

void CoverageObserver::on_dissemination(const FloodTrace& trace,
                                        const ProtocolStats* stats) {
  (void)stats;
  final_ = trace.final_fraction;
  if (trace.informed_per_step.empty()) {
    // The run recorded no series (FloodOptions::record_series off): the
    // curve metrics are unobservable, only the final fraction is.
    step_ = kNan;
    auc_ = kNan;
  } else {
    const std::uint64_t step = trace.step_reaching_fraction(target_);
    step_ = step == FloodTrace::kNever ? kNan : static_cast<double>(step);
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t t = 0; t < trace.informed_per_step.size(); ++t) {
      const std::uint64_t alive = trace.alive_per_step[t];
      if (alive == 0) continue;
      sum += static_cast<double>(trace.informed_per_step[t]) /
             static_cast<double>(alive);
      ++counted;
    }
    auc_ = counted == 0 ? kNan : sum / static_cast<double>(counted);
  }
  observed_ = true;
}

void CoverageObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? step_ : kNan);
  out.push_back(observed_ ? final_ : kNan);
  out.push_back(observed_ ? auc_ : kNan);
}

// ---- DemographyObserver ----------------------------------------------------

std::string DemographyObserver::name() const {
  return "demography(" + fmt_int(window_) + ")";
}

void DemographyObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("alive_mean");
  out.push_back("alive_min");
  out.push_back("alive_max");
}

void DemographyObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  rounds_seen_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void DemographyObserver::on_round(const DynamicGraph& graph, double now) {
  (void)now;
  const std::uint64_t alive = graph.alive_count();
  if (rounds_seen_ == 0) {
    min_ = alive;
    max_ = alive;
  } else {
    min_ = std::min(min_, alive);
    max_ = std::max(max_, alive);
  }
  sum_ += static_cast<double>(alive);
  ++rounds_seen_;
}

void DemographyObserver::append_values(std::vector<double>& out) const {
  if (rounds_seen_ == 0) {
    out.insert(out.end(), 3, kNan);
    return;
  }
  out.push_back(sum_ / static_cast<double>(rounds_seen_));
  out.push_back(static_cast<double>(min_));
  out.push_back(static_cast<double>(max_));
}

}  // namespace churnet
