#include "observe/observers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/table.hpp"
#include "graph/algorithms.hpp"

namespace churnet {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Nearest-rank quantile over a sorted, non-empty range.
template <typename T>
double quantile(const std::vector<T>& sorted, double p) {
  const std::size_t n = sorted.size();
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(n - 1) + 0.5);
  return static_cast<double>(sorted[std::min(index, n - 1)]);
}

}  // namespace

// ---- ExpansionObserver -----------------------------------------------------

std::string ExpansionObserver::name() const {
  return "expansion(" + fmt_int(options_.random_sets_per_size) + ")";
}

void ExpansionObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("expansion_min_ratio");
  out.push_back("expansion_argmin_size");
  out.push_back("expansion_sets_probed");
}

void ExpansionObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  last_ = ProbeResult{};
  observed_ = false;
}

void ExpansionObserver::on_snapshot(const Snapshot& snapshot) {
  last_ = probe_expansion(snapshot, rng_, options_);
  observed_ = true;
}

void ExpansionObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? last_.min_ratio : kNan);
  out.push_back(observed_ ? static_cast<double>(last_.argmin_size) : kNan);
  out.push_back(observed_ ? static_cast<double>(last_.sets_probed) : kNan);
}

// ---- SpectralObserver ------------------------------------------------------

std::string SpectralObserver::name() const {
  return max_iterations_ == kDefaultIterations
             ? "spectral"
             : "spectral(" + fmt_int(max_iterations_) + ")";
}

void SpectralObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("spectral_gap");
  out.push_back("spectral_lambda2");
  out.push_back("spectral_converged");
}

void SpectralObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  last_ = SpectralResult{};
  observed_ = false;
}

void SpectralObserver::on_snapshot(const Snapshot& snapshot) {
  last_ = spectral_gap(snapshot, rng_, max_iterations_, tolerance_);
  observed_ = true;
}

void SpectralObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? last_.spectral_gap : kNan);
  out.push_back(observed_ ? last_.lambda2 : kNan);
  out.push_back(observed_ ? (last_.converged ? 1.0 : 0.0) : kNan);
}

// ---- IsolatedObserver ------------------------------------------------------

void IsolatedObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("isolated_count");
  out.push_back("isolated_fraction");
}

void IsolatedObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  last_ = IsolatedCensus{};
  observed_ = false;
}

void IsolatedObserver::on_snapshot(const Snapshot& snapshot) {
  last_ = isolated_census(snapshot);
  observed_ = true;
}

void IsolatedObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? static_cast<double>(last_.isolated_nodes) : kNan);
  out.push_back(observed_ ? last_.fraction : kNan);
}

// ---- DegreeHistogramObserver -----------------------------------------------

void DegreeHistogramObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("degree_mean");
  out.push_back("degree_min");
  out.push_back("degree_max");
  out.push_back("degree_p50");
  out.push_back("degree_p90");
  out.push_back("degree_p99");
}

void DegreeHistogramObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  degrees_.clear();
  mean_ = 0.0;
  observed_ = false;
}

void DegreeHistogramObserver::on_snapshot(const Snapshot& snapshot) {
  degrees_.clear();
  degrees_.reserve(snapshot.node_count());
  double sum = 0.0;
  for (std::uint32_t v = 0; v < snapshot.node_count(); ++v) {
    const std::uint32_t degree = snapshot.degree(v);
    degrees_.push_back(degree);
    sum += degree;
  }
  std::sort(degrees_.begin(), degrees_.end());
  mean_ = degrees_.empty() ? 0.0 : sum / static_cast<double>(degrees_.size());
  observed_ = !degrees_.empty();
}

void DegreeHistogramObserver::append_values(std::vector<double>& out) const {
  if (!observed_) {
    out.insert(out.end(), 6, kNan);
    return;
  }
  out.push_back(mean_);
  out.push_back(static_cast<double>(degrees_.front()));
  out.push_back(static_cast<double>(degrees_.back()));
  out.push_back(quantile(degrees_, 0.50));
  out.push_back(quantile(degrees_, 0.90));
  out.push_back(quantile(degrees_, 0.99));
}

// ---- AgeHistogramObserver --------------------------------------------------

void AgeHistogramObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("age_mean");
  out.push_back("age_p50");
  out.push_back("age_p90");
  out.push_back("age_max");
}

void AgeHistogramObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  ages_.clear();
  mean_ = 0.0;
  observed_ = false;
}

void AgeHistogramObserver::on_snapshot(const Snapshot& snapshot) {
  ages_.clear();
  ages_.reserve(snapshot.node_count());
  double sum = 0.0;
  for (std::uint32_t v = 0; v < snapshot.node_count(); ++v) {
    const double age = snapshot.age(v);
    ages_.push_back(age);
    sum += age;
  }
  std::sort(ages_.begin(), ages_.end());
  mean_ = ages_.empty() ? 0.0 : sum / static_cast<double>(ages_.size());
  observed_ = !ages_.empty();
}

void AgeHistogramObserver::append_values(std::vector<double>& out) const {
  if (!observed_) {
    out.insert(out.end(), 4, kNan);
    return;
  }
  out.push_back(mean_);
  out.push_back(quantile(ages_, 0.50));
  out.push_back(quantile(ages_, 0.90));
  out.push_back(ages_.back());
}

// ---- CoverageObserver ------------------------------------------------------

std::string CoverageObserver::name() const {
  return "coverage(" + fmt_fixed(target_, 2) + ")";
}

void CoverageObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("coverage_step");
  out.push_back("coverage_final");
  out.push_back("coverage_auc");
}

void CoverageObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  step_ = kNan;
  final_ = kNan;
  auc_ = kNan;
  observed_ = false;
}

void CoverageObserver::on_dissemination(const FloodTrace& trace,
                                        const ProtocolStats* stats) {
  (void)stats;
  final_ = trace.final_fraction;
  if (trace.informed_per_step.empty()) {
    // The run recorded no series (FloodOptions::record_series off): the
    // curve metrics are unobservable, only the final fraction is.
    step_ = kNan;
    auc_ = kNan;
  } else {
    const std::uint64_t step = trace.step_reaching_fraction(target_);
    step_ = step == FloodTrace::kNever ? kNan : static_cast<double>(step);
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t t = 0; t < trace.informed_per_step.size(); ++t) {
      const std::uint64_t alive = trace.alive_per_step[t];
      if (alive == 0) continue;
      sum += static_cast<double>(trace.informed_per_step[t]) /
             static_cast<double>(alive);
      ++counted;
    }
    auc_ = counted == 0 ? kNan : sum / static_cast<double>(counted);
  }
  observed_ = true;
}

void CoverageObserver::append_values(std::vector<double>& out) const {
  out.push_back(observed_ ? step_ : kNan);
  out.push_back(observed_ ? final_ : kNan);
  out.push_back(observed_ ? auc_ : kNan);
}

// ---- DemographyObserver ----------------------------------------------------

std::string DemographyObserver::name() const {
  return "demography(" + fmt_int(window_) + ")";
}

void DemographyObserver::append_metric_names(
    std::vector<std::string>& out) const {
  out.push_back("alive_mean");
  out.push_back("alive_min");
  out.push_back("alive_max");
}

void DemographyObserver::begin_trial(std::uint64_t seed) {
  rng_ = Rng(seed);
  rounds_seen_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void DemographyObserver::on_round(const DynamicGraph& graph, double now) {
  (void)now;
  const std::uint64_t alive = graph.alive_count();
  if (rounds_seen_ == 0) {
    min_ = alive;
    max_ = alive;
  } else {
    min_ = std::min(min_, alive);
    max_ = std::max(max_, alive);
  }
  sum_ += static_cast<double>(alive);
  ++rounds_seen_;
}

void DemographyObserver::append_values(std::vector<double>& out) const {
  if (rounds_seen_ == 0) {
    out.insert(out.end(), 3, kNan);
    return;
  }
  out.push_back(sum_ / static_cast<double>(rounds_seen_));
  out.push_back(static_cast<double>(min_));
  out.push_back(static_cast<double>(max_));
}

}  // namespace churnet
