// Concrete metric observers wrapping the existing analyses (expansion/,
// graph/algorithms, flooding traces) behind the MetricObserver interface.
// Each one is the measurement previously hand-rolled inside a bench binary
// (bench_expansion_*, bench_spectral_gap, bench_isolated_nodes, the
// coverage benches), now attachable to any churn / flood / protocol run —
// the benches call these directly and sweeps attach them via ObserverSpec.
//
// Seeding parity with the pre-port bench loops: begin_trial(s) seeds the
// observer RNG as Rng(s) — exactly how the benches seeded their probe /
// power-iteration RNGs — so an observer fed the same snapshot under the
// same seed reproduces the pre-port values bit for bit
// (tests/test_observers.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expansion/expansion.hpp"
#include "expansion/isolated.hpp"
#include "expansion/spectral.hpp"
#include "observe/observer.hpp"

namespace churnet {

/// Vertex-expansion probe over random/adversarial candidate set families
/// (expansion/expansion.hpp). Metrics: expansion_min_ratio,
/// expansion_argmin_size, expansion_sets_probed.
///
/// Incremental mode: the first observation of a trial runs the full probe
/// (bit-identical to the from-scratch path); it also samples a family of
/// persistent candidate sets, which later observations re-measure instead
/// of resampling, with members lost to churn repaired from the observer's
/// own RNG (repair-on-death). Deaths arrive through on_deltas; each
/// repaired set stays a uniform-ish set of the same size, and every ratio
/// reported is an exact expansion_ratio of the current snapshot.
class ExpansionObserver final : public MetricObserver {
 public:
  /// Persistent candidate sets maintained across rounds (one per probed
  /// size step, at most this many).
  static constexpr std::uint32_t kMaxPersistentSets = 32;

  explicit ExpansionObserver(ProbeOptions options = {})
      : options_(options) {}

  /// Replaces the probe options (bench ports restrict the size window per
  /// configuration); takes effect at the next on_snapshot.
  void set_options(const ProbeOptions& options) { options_ = options; }
  const ProbeOptions& options() const { return options_; }

  /// The full probe result of the last on_snapshot (argmin family, ...).
  const ProbeResult& last() const { return last_; }

  /// The persistent sets (incremental mode, after the first observation) —
  /// exposed so the equivalence suite can recount their boundaries with
  /// the from-scratch oracle.
  const std::vector<std::vector<NodeId>>& persistent_sets() const {
    return sets_;
  }

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_trial_start(const DynamicGraph& graph, double now) override;
  void on_deltas(const DynamicGraph& graph,
                 std::span<const GraphDelta> deltas, double now) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  void sample_persistent_sets(const Snapshot& snapshot);

  ProbeOptions options_;
  ProbeResult last_;
  bool observed_ = false;
  bool live_ = false;
  std::vector<std::vector<NodeId>> sets_;   // persistent candidate sets
  std::vector<std::uint32_t> slot_masks_;   // slot -> set-membership bitmask
  std::vector<std::uint32_t> set_indices_;  // scratch for ratio calls
};

/// Spectral gap of the lazy random walk via deflated power iteration
/// (expansion/spectral.hpp). Metrics: spectral_gap, spectral_lambda2,
/// spectral_converged.
///
/// Incremental mode: the first probe of a trial is draw-for-draw the cold
/// path; later probes warm-start from the previous snapshot's eigenvector
/// AND run under a reduced iteration budget (max_iterations /
/// kWarmBudgetDivisor, floored at kWarmContinuationFloor). The clustered
/// bulk spectrum of these graphs means a tight tolerance rarely triggers
/// before the budget, so the budget IS the estimator: a warm continuation
/// accumulates power-iteration work across the trial's windows instead of
/// restarting the full budget from a random vector each time. Deterministic
/// (pure function of seed + snapshot sequence), pinned by the fixed-budget
/// convention of decision 15.
class SpectralObserver final : public MetricObserver {
 public:
  static constexpr std::uint32_t kDefaultIterations = 500;
  /// Warm continuation probes run max_iterations_ / this.
  static constexpr std::uint32_t kWarmBudgetDivisor = 16;
  /// ... but never fewer iterations than this.
  static constexpr std::uint32_t kWarmContinuationFloor = 32;

  explicit SpectralObserver(std::uint32_t max_iterations = kDefaultIterations,
                            double tolerance = 1e-9)
      : max_iterations_(max_iterations), tolerance_(tolerance) {}

  const SpectralResult& last() const { return last_; }

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_trial_start(const DynamicGraph& graph, double now) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  std::uint32_t max_iterations_;
  double tolerance_;
  SpectralResult last_;
  bool observed_ = false;
  bool live_ = false;            // incremental mode: warm-start the probe
  SpectralWarmState warm_;       // previous snapshot's eigenvector
};

/// Isolated-node census (expansion/isolated.hpp). Metrics: isolated_count,
/// isolated_fraction.
///
/// Incremental mode: a running degree-0 counter updated from edge deltas —
/// no snapshot needed at all (needs_dense_snapshot() turns false), and the
/// published census is exactly isolated_census of the same instant.
class IsolatedObserver final : public MetricObserver {
 public:
  const IsolatedCensus& last() const { return last_; }

  std::string name() const override { return "isolated"; }
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_trial_start(const DynamicGraph& graph, double now) override;
  void on_deltas(const DynamicGraph& graph,
                 std::span<const GraphDelta> deltas, double now) override;
  void on_snapshot(const Snapshot& snapshot) override;
  void on_observe(const DynamicGraph& graph, double now) override;
  bool wants_snapshot() const override { return true; }
  bool needs_dense_snapshot() const override { return !live_; }
  void append_values(std::vector<double>& out) const override;

 private:
  IsolatedCensus last_;
  bool observed_ = false;
  bool live_ = false;
  std::vector<std::uint32_t> slot_degrees_;  // undirected degree per slot
  std::uint64_t isolated_ = 0;
  std::uint64_t alive_ = 0;
  std::vector<NodeId> scan_scratch_;
};

/// Degree distribution summary. Metrics: degree_mean, degree_min,
/// degree_max, degree_p50, degree_p90, degree_p99 (nearest-rank quantiles
/// over the snapshot's degree multiset).
///
/// Incremental mode: a counting histogram over per-slot degrees updated
/// from edge deltas; observation reads mean/min/max/quantiles off the
/// histogram with no snapshot and no sort, exactly equal to the
/// from-scratch summary (integer degree sums are exact in double well past
/// any reachable edge count, and a cumulative histogram walk is the
/// nearest-rank quantile of the sorted multiset).
class DegreeHistogramObserver final : public MetricObserver {
 public:
  std::string name() const override { return "degrees"; }
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_trial_start(const DynamicGraph& graph, double now) override;
  void on_deltas(const DynamicGraph& graph,
                 std::span<const GraphDelta> deltas, double now) override;
  void on_snapshot(const Snapshot& snapshot) override;
  void on_observe(const DynamicGraph& graph, double now) override;
  bool wants_snapshot() const override { return true; }
  bool needs_dense_snapshot() const override { return !live_; }
  void append_values(std::vector<double>& out) const override;

 private:
  struct Summary {
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  std::vector<std::uint32_t> degrees_;  // from-scratch scratch, reused
  Summary summary_;
  bool observed_ = false;
  bool live_ = false;
  std::vector<std::uint32_t> slot_degrees_;
  std::vector<std::uint64_t> hist_;  // hist_[g] = #alive nodes of degree g
  std::uint64_t degree_sum_ = 0;
  std::uint64_t alive_ = 0;
  std::vector<NodeId> scan_scratch_;
};

/// Node-age distribution summary (ages in model time units at the
/// snapshot instant). Metrics: age_mean, age_p50, age_p90, age_max.
///
/// Incremental mode: an append-only birth log (ascending birth sequence,
/// i.e. snapshot index order) with death tombstones and periodic
/// compaction. Observation walks the live log oldest-first — the exact
/// order the from-scratch path sums ages in, so the floating-point mean is
/// bit-identical — and ages along the walk are non-increasing, so sorted
/// quantile positions map to walk positions directly.
class AgeHistogramObserver final : public MetricObserver {
 public:
  std::string name() const override { return "ages"; }
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_trial_start(const DynamicGraph& graph, double now) override;
  void on_deltas(const DynamicGraph& graph,
                 std::span<const GraphDelta> deltas, double now) override;
  void on_snapshot(const Snapshot& snapshot) override;
  void on_observe(const DynamicGraph& graph, double now) override;
  bool wants_snapshot() const override { return true; }
  bool needs_dense_snapshot() const override { return !live_; }
  void append_values(std::vector<double>& out) const override;

 private:
  struct Summary {
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double max = 0.0;
  };
  struct LogEntry {
    double birth_time = 0.0;
    std::uint32_t slot = 0;
    std::uint32_t alive = 0;
  };

  void compact_log();

  std::vector<double> ages_;  // reused across trials / observations
  Summary summary_;
  bool observed_ = false;
  bool live_ = false;
  std::vector<LogEntry> log_;            // birth order == snapshot order
  std::vector<std::size_t> slot_to_log_;
  std::size_t live_count_ = 0;
};

/// Flooding / protocol coverage curve derivatives. Metrics: coverage_step
/// (first step with informed >= target * alive; NaN if never reached or
/// the trace recorded no series), coverage_final (informed/alive at stop),
/// coverage_auc (mean informed/alive over the recorded steps — the
/// normalized area under the coverage curve).
class CoverageObserver final : public MetricObserver {
 public:
  static constexpr double kDefaultTarget = 0.5;

  explicit CoverageObserver(double target_fraction = kDefaultTarget)
      : target_(target_fraction) {}

  double target_fraction() const { return target_; }

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_dissemination(const FloodTrace& trace,
                        const ProtocolStats* stats) override;
  bool wants_dissemination() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  double target_;
  double step_ = 0.0;
  double final_ = 0.0;
  double auc_ = 0.0;
  bool observed_ = false;
};

/// Alive-population trajectory over an observation window of churn rounds
/// (the per-round hook's reference consumer). Metrics: alive_mean,
/// alive_min, alive_max over the window's per-round alive counts.
class DemographyObserver final : public MetricObserver {
 public:
  static constexpr std::uint32_t kDefaultWindow = 64;

  explicit DemographyObserver(std::uint32_t window_rounds = kDefaultWindow)
      : window_(window_rounds) {}

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_round(const DynamicGraph& graph, double now) override;
  std::uint32_t observation_rounds() const override { return window_; }
  void append_values(std::vector<double>& out) const override;

 private:
  std::uint32_t window_;
  std::uint64_t rounds_seen_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace churnet
