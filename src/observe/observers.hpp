// Concrete metric observers wrapping the existing analyses (expansion/,
// graph/algorithms, flooding traces) behind the MetricObserver interface.
// Each one is the measurement previously hand-rolled inside a bench binary
// (bench_expansion_*, bench_spectral_gap, bench_isolated_nodes, the
// coverage benches), now attachable to any churn / flood / protocol run —
// the benches call these directly and sweeps attach them via ObserverSpec.
//
// Seeding parity with the pre-port bench loops: begin_trial(s) seeds the
// observer RNG as Rng(s) — exactly how the benches seeded their probe /
// power-iteration RNGs — so an observer fed the same snapshot under the
// same seed reproduces the pre-port values bit for bit
// (tests/test_observers.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expansion/expansion.hpp"
#include "expansion/isolated.hpp"
#include "expansion/spectral.hpp"
#include "observe/observer.hpp"

namespace churnet {

/// Vertex-expansion probe over random/adversarial candidate set families
/// (expansion/expansion.hpp). Metrics: expansion_min_ratio,
/// expansion_argmin_size, expansion_sets_probed.
class ExpansionObserver final : public MetricObserver {
 public:
  explicit ExpansionObserver(ProbeOptions options = {})
      : options_(options) {}

  /// Replaces the probe options (bench ports restrict the size window per
  /// configuration); takes effect at the next on_snapshot.
  void set_options(const ProbeOptions& options) { options_ = options; }
  const ProbeOptions& options() const { return options_; }

  /// The full probe result of the last on_snapshot (argmin family, ...).
  const ProbeResult& last() const { return last_; }

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  ProbeOptions options_;
  ProbeResult last_;
  bool observed_ = false;
};

/// Spectral gap of the lazy random walk via deflated power iteration
/// (expansion/spectral.hpp). Metrics: spectral_gap, spectral_lambda2,
/// spectral_converged.
class SpectralObserver final : public MetricObserver {
 public:
  static constexpr std::uint32_t kDefaultIterations = 500;

  explicit SpectralObserver(std::uint32_t max_iterations = kDefaultIterations,
                            double tolerance = 1e-9)
      : max_iterations_(max_iterations), tolerance_(tolerance) {}

  const SpectralResult& last() const { return last_; }

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  std::uint32_t max_iterations_;
  double tolerance_;
  SpectralResult last_;
  bool observed_ = false;
};

/// Isolated-node census (expansion/isolated.hpp). Metrics: isolated_count,
/// isolated_fraction.
class IsolatedObserver final : public MetricObserver {
 public:
  const IsolatedCensus& last() const { return last_; }

  std::string name() const override { return "isolated"; }
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  IsolatedCensus last_;
  bool observed_ = false;
};

/// Degree distribution summary. Metrics: degree_mean, degree_min,
/// degree_max, degree_p50, degree_p90, degree_p99 (nearest-rank quantiles
/// over the snapshot's degree multiset).
class DegreeHistogramObserver final : public MetricObserver {
 public:
  std::string name() const override { return "degrees"; }
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  std::vector<std::uint32_t> degrees_;  // reused across trials
  double mean_ = 0.0;
  bool observed_ = false;
};

/// Node-age distribution summary (ages in model time units at the
/// snapshot instant). Metrics: age_mean, age_p50, age_p90, age_max.
class AgeHistogramObserver final : public MetricObserver {
 public:
  std::string name() const override { return "ages"; }
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_snapshot(const Snapshot& snapshot) override;
  bool wants_snapshot() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  std::vector<double> ages_;  // reused across trials
  double mean_ = 0.0;
  bool observed_ = false;
};

/// Flooding / protocol coverage curve derivatives. Metrics: coverage_step
/// (first step with informed >= target * alive; NaN if never reached or
/// the trace recorded no series), coverage_final (informed/alive at stop),
/// coverage_auc (mean informed/alive over the recorded steps — the
/// normalized area under the coverage curve).
class CoverageObserver final : public MetricObserver {
 public:
  static constexpr double kDefaultTarget = 0.5;

  explicit CoverageObserver(double target_fraction = kDefaultTarget)
      : target_(target_fraction) {}

  double target_fraction() const { return target_; }

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_dissemination(const FloodTrace& trace,
                        const ProtocolStats* stats) override;
  bool wants_dissemination() const override { return true; }
  void append_values(std::vector<double>& out) const override;

 private:
  double target_;
  double step_ = 0.0;
  double final_ = 0.0;
  double auc_ = 0.0;
  bool observed_ = false;
};

/// Alive-population trajectory over an observation window of churn rounds
/// (the per-round hook's reference consumer). Metrics: alive_mean,
/// alive_min, alive_max over the window's per-round alive counts.
class DemographyObserver final : public MetricObserver {
 public:
  static constexpr std::uint32_t kDefaultWindow = 64;

  explicit DemographyObserver(std::uint32_t window_rounds = kDefaultWindow)
      : window_(window_rounds) {}

  std::string name() const override;
  void append_metric_names(std::vector<std::string>& out) const override;
  void begin_trial(std::uint64_t seed) override;
  void on_round(const DynamicGraph& graph, double now) override;
  std::uint32_t observation_rounds() const override { return window_; }
  void append_values(std::vector<double>& out) const override;

 private:
  std::uint32_t window_;
  std::uint64_t rounds_seen_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace churnet
