// Textual observer specs: the grammar sweeps and the repro CLI use to name
// a set of metric observers, and the factory that instantiates one —
// mirroring churn/churn_spec.hpp and protocols/protocol_spec.hpp for the
// observation axis.
//
// Grammar (case-insensitive, optional whitespace; built on the shared
// common/specgram.hpp machinery, so diagnostics match the other families):
//
//   spec     := observer ('+' observer)*
//   observer := "expansion" ['(' k ')'] | "spectral" ['(' i ')']
//               | "isolated" | "degrees" | "ages"
//               | "coverage" ['(' f ')'] | "demography" ['(' w ')']
//
//   expansion(k)    vertex-expansion probe, k >= 1 random sets per probed
//                   size (default 8) -> expansion_min_ratio,
//                   expansion_argmin_size, expansion_sets_probed
//   spectral(i)     lazy-walk spectral gap, i >= 1 power iterations
//                   (default 500) -> spectral_gap, spectral_lambda2,
//                   spectral_converged
//   isolated        isolated-node census -> isolated_count,
//                   isolated_fraction
//   degrees         degree histogram -> degree_mean/min/max/p50/p90/p99
//   ages            node-age histogram -> age_mean/p50/p90/max
//   coverage(f)     dissemination coverage curve, target fraction
//                   0 < f <= 1 (default 0.5) -> coverage_step,
//                   coverage_final, coverage_auc
//   demography(w)   alive-count trajectory over a w-round observation
//                   window, w >= 1 (default 64) -> alive_mean/min/max
//
// An empty spec is valid and names the empty observer set. Each observer
// family may appear at most once (duplicates would duplicate metric
// columns). Malformed specs are rejected with a one-line reason, surfaced
// verbatim by the sweep config loader and the CLIs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "observe/observer.hpp"

namespace churnet {

struct ObserverSpec {
  enum class Kind : std::uint8_t {
    kExpansion,
    kSpectral,
    kIsolated,
    kDegrees,
    kAges,
    kCoverage,
    kDemography,
  };

  /// One "name(arg)" call of the spec; `a` is the single numeric argument
  /// (k / i / f / w above), already defaulted and range-checked by parse.
  struct Call {
    Kind kind = Kind::kIsolated;
    double a = 0.0;

    friend bool operator==(const Call&, const Call&) = default;
  };

  std::vector<Call> calls;

  bool empty() const { return calls.empty(); }

  /// The spec in canonical text form ("expansion(8)+spectral+isolated");
  /// each segment matches the instantiated observer's name(). Empty spec
  /// canonicalizes to "".
  std::string canonical() const;

  /// Parses `text`; empty/whitespace text yields the empty spec. On
  /// failure returns nullopt and, when `error` is non-null, stores a
  /// one-line reason (unknown names list the catalog).
  static std::optional<ObserverSpec> parse(std::string_view text,
                                           std::string* error = nullptr);

  /// True when `name` ("expansion" — the call name alone) names an
  /// observer family of this grammar.
  static bool is_known_name(std::string_view name);

  /// One-line summary of the grammar's names for diagnostics.
  static std::string known_names();

  /// The observer catalog as (spelling, description) rows.
  static std::vector<std::pair<std::string, std::string>> catalog();

  friend bool operator==(const ObserverSpec&, const ObserverSpec&) = default;
};

/// Instantiates one observer per spec call, in spec order.
std::vector<std::unique_ptr<MetricObserver>> make_observers(
    const ObserverSpec& spec);

/// The observers wrapped as a drivable ObserverSet.
ObserverSet make_observer_set(const ObserverSpec& spec);

}  // namespace churnet
