#include "observe/observer_spec.hpp"

#include <cmath>
#include <limits>

#include "common/assertx.hpp"
#include "common/specgram.hpp"
#include "common/table.hpp"
#include "observe/observers.hpp"

namespace churnet {
namespace {

struct KnownObserver {
  const char* name;
  ObserverSpec::Kind kind;
  /// Default for the single numeric argument; NaN = takes no argument.
  double default_arg;
};

constexpr double kNoArg = std::numeric_limits<double>::quiet_NaN();

// The one name -> kind table: parse() dispatches through it and
// is_known_name() scans it, matching the churn/protocol spec families.
const KnownObserver kKnownObservers[] = {
    {"expansion", ObserverSpec::Kind::kExpansion, 8.0},
    {"spectral", ObserverSpec::Kind::kSpectral,
     static_cast<double>(SpectralObserver::kDefaultIterations)},
    {"isolated", ObserverSpec::Kind::kIsolated, kNoArg},
    {"degrees", ObserverSpec::Kind::kDegrees, kNoArg},
    {"ages", ObserverSpec::Kind::kAges, kNoArg},
    {"coverage", ObserverSpec::Kind::kCoverage,
     CoverageObserver::kDefaultTarget},
    {"demography", ObserverSpec::Kind::kDemography,
     static_cast<double>(DemographyObserver::kDefaultWindow)},
};

const KnownObserver* find_observer(std::string_view name) {
  for (const KnownObserver& observer : kKnownObservers) {
    if (name == observer.name) return &observer;
  }
  return nullptr;
}

bool positive_integer(double value) {
  return value >= 1.0 && std::floor(value) == value;
}

}  // namespace

bool ObserverSpec::is_known_name(std::string_view name) {
  return find_observer(lowercase_spec(name)) != nullptr;
}

std::string ObserverSpec::known_names() {
  return "expansion(k), spectral(i), isolated, degrees, ages, coverage(f), "
         "demography(w)";
}

std::vector<std::pair<std::string, std::string>> ObserverSpec::catalog() {
  return {
      {"expansion(k)",
       "vertex-expansion probe, k random sets per size (default 8) -> "
       "expansion_min_ratio, expansion_argmin_size, expansion_sets_probed"},
      {"spectral(i)",
       "lazy-walk spectral gap, i power iterations (default 500) -> "
       "spectral_gap, spectral_lambda2, spectral_converged"},
      {"isolated",
       "isolated-node census -> isolated_count, isolated_fraction"},
      {"degrees",
       "degree histogram -> degree_mean/min/max and p50/p90/p99"},
      {"ages", "node-age histogram -> age_mean, age_p50, age_p90, age_max"},
      {"coverage(f)",
       "dissemination coverage curve at target fraction f (default 0.5) -> "
       "coverage_step, coverage_final, coverage_auc"},
      {"demography(w)",
       "alive-count trajectory over a w-round window (default 64) -> "
       "alive_mean, alive_min, alive_max"},
  };
}

std::string ObserverSpec::canonical() const {
  std::string out;
  for (const Call& call : calls) {
    if (!out.empty()) out += '+';
    switch (call.kind) {
      case Kind::kExpansion:
        out += "expansion(" + fmt_int(static_cast<std::int64_t>(call.a)) + ")";
        break;
      case Kind::kSpectral:
        out += static_cast<std::uint32_t>(call.a) ==
                       SpectralObserver::kDefaultIterations
                   ? "spectral"
                   : "spectral(" + fmt_int(static_cast<std::int64_t>(call.a)) +
                         ")";
        break;
      case Kind::kIsolated:
        out += "isolated";
        break;
      case Kind::kDegrees:
        out += "degrees";
        break;
      case Kind::kAges:
        out += "ages";
        break;
      case Kind::kCoverage:
        out += "coverage(" + fmt_fixed(call.a, 2) + ")";
        break;
      case Kind::kDemography:
        out += "demography(" + fmt_int(static_cast<std::int64_t>(call.a)) +
               ")";
        break;
    }
  }
  return out;
}

std::optional<ObserverSpec> ObserverSpec::parse(std::string_view text,
                                                std::string* error) {
  ObserverSpec spec;
  if (trim_spec(text).empty()) return spec;  // the empty observer set

  for (const std::string_view segment : split_spec_segments(text)) {
    SpecCall call;
    if (!split_spec_call(segment, "observer spec", &call, error)) {
      return std::nullopt;
    }
    const KnownObserver* known = find_observer(call.name);
    if (known == nullptr) {
      spec_fail(error, "unknown observer '" + call.name +
                           "'; known: " + known_names());
      return std::nullopt;
    }
    const bool takes_arg = !std::isnan(known->default_arg);
    if (call.args.size() > (takes_arg ? 1u : 0u)) {
      spec_fail(error, "observer spec '" + std::string(trim_spec(segment)) +
                           "': at most " +
                           std::to_string(takes_arg ? 1 : 0) +
                           " argument(s) allowed");
      return std::nullopt;
    }
    Call parsed;
    parsed.kind = known->kind;
    parsed.a = call.args.empty() ? known->default_arg : call.args[0];
    switch (known->kind) {
      case Kind::kExpansion:
        if (!positive_integer(parsed.a)) {
          spec_fail(error, "expansion sets-per-size must be an integer >= 1 "
                           "(got " +
                               fmt_fixed(parsed.a, 3) + ")");
          return std::nullopt;
        }
        break;
      case Kind::kSpectral:
        if (!positive_integer(parsed.a)) {
          spec_fail(error, "spectral iteration count must be an integer >= 1 "
                           "(got " +
                               fmt_fixed(parsed.a, 3) + ")");
          return std::nullopt;
        }
        break;
      case Kind::kCoverage:
        if (!(parsed.a > 0.0) || parsed.a > 1.0) {  // negated: rejects NaN
          spec_fail(error, "coverage target fraction must be in (0, 1] (got " +
                               fmt_fixed(parsed.a, 3) + ")");
          return std::nullopt;
        }
        break;
      case Kind::kDemography:
        if (!positive_integer(parsed.a)) {
          spec_fail(error, "demography window must be an integer >= 1 round "
                           "(got " +
                               fmt_fixed(parsed.a, 3) + ")");
          return std::nullopt;
        }
        break;
      case Kind::kIsolated:
      case Kind::kDegrees:
      case Kind::kAges:
        parsed.a = 0.0;
        break;
    }
    for (const Call& existing : spec.calls) {
      if (existing.kind == parsed.kind) {
        spec_fail(error, "observer '" + call.name +
                             "' appears twice; each family contributes its "
                             "metric columns at most once");
        return std::nullopt;
      }
    }
    spec.calls.push_back(parsed);
  }
  return spec;
}

std::vector<std::unique_ptr<MetricObserver>> make_observers(
    const ObserverSpec& spec) {
  std::vector<std::unique_ptr<MetricObserver>> observers;
  observers.reserve(spec.calls.size());
  for (const ObserverSpec::Call& call : spec.calls) {
    switch (call.kind) {
      case ObserverSpec::Kind::kExpansion: {
        ProbeOptions options;
        options.random_sets_per_size = static_cast<std::uint32_t>(call.a);
        observers.push_back(std::make_unique<ExpansionObserver>(options));
        break;
      }
      case ObserverSpec::Kind::kSpectral:
        observers.push_back(std::make_unique<SpectralObserver>(
            static_cast<std::uint32_t>(call.a)));
        break;
      case ObserverSpec::Kind::kIsolated:
        observers.push_back(std::make_unique<IsolatedObserver>());
        break;
      case ObserverSpec::Kind::kDegrees:
        observers.push_back(std::make_unique<DegreeHistogramObserver>());
        break;
      case ObserverSpec::Kind::kAges:
        observers.push_back(std::make_unique<AgeHistogramObserver>());
        break;
      case ObserverSpec::Kind::kCoverage:
        observers.push_back(std::make_unique<CoverageObserver>(call.a));
        break;
      case ObserverSpec::Kind::kDemography:
        observers.push_back(std::make_unique<DemographyObserver>(
            static_cast<std::uint32_t>(call.a)));
        break;
    }
  }
  return observers;
}

ObserverSet make_observer_set(const ObserverSpec& spec) {
  return ObserverSet(make_observers(spec));
}

}  // namespace churnet
