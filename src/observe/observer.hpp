// The pluggable observation layer (DESIGN.md §6, decision 12): one
// interface every metric observer implements, generalizing the ad-hoc
// measurement loops of the bench binaries the same way ChurnProcess
// generalized churn and DisseminationProtocol generalized rumor spreading.
//
// A MetricObserver declares named metric columns and fills them from three
// driver hooks:
//
//   * on_round(graph, now)       -- once per churn step of the observation
//     window (trajectory metrics: demography, rates);
//   * on_snapshot(snapshot)      -- once per captured snapshot, shared by
//     every attached observer (structure metrics: expansion, spectral gap,
//     isolated nodes, degree/age histograms);
//   * on_dissemination(trace, stats) -- once per flood/protocol run
//     (coverage curves, message complexity derivatives).
//
// Observers are driver hooks rather than post-hoc snapshot scans because
// trajectory and coverage metrics need the run, not its final state — and
// because one shared snapshot serves every snapshot observer, instead of
// each analysis re-capturing its own.
//
// Contract:
//   * begin_trial(seed) fully resets per-trial state and reseeds the
//     observer's private RNG: an observer's values are a pure function of
//     (seed, observed inputs), which is what makes sweeps-with-observers
//     bit-identical at any thread count.
//   * RNG isolation: observers draw randomness (probe candidate sets,
//     power-iteration init vectors) ONLY from their own trial seed, never
//     from the network's RNG — attaching or removing observers never
//     changes the churn realization or any other measured value.
//   * Scratch reuse: instances are long-lived (one per worker, reused
//     across replications, the FloodScratch/ProtocolScratch convention);
//     begin_trial resets without deallocating, so replication loops do not
//     allocate through the observer once warmed.
//   * append_values appends exactly one value per declared metric name;
//     NaN marks a metric whose input was never observed this trial (e.g. a
//     coverage column when no dissemination ran).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flooding/flood_driver.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"

namespace churnet {

struct ProtocolStats;

class MetricObserver {
 public:
  virtual ~MetricObserver() = default;

  /// Canonical spec name, matching ObserverSpec::canonical() of the call
  /// that built it ("expansion(8)", "spectral", "coverage(0.50)", ...).
  virtual std::string name() const = 0;

  /// Appends this observer's metric column names, in the same order
  /// append_values emits values.
  virtual void append_metric_names(std::vector<std::string>& out) const = 0;

  /// Resets all per-trial state and reseeds the observer RNG. Values are a
  /// pure function of the seed and the subsequently observed inputs.
  virtual void begin_trial(std::uint64_t seed) = 0;

  /// Per-round hook: called after each churn step of the observation
  /// window (only when observation_rounds() > 0 for some attached
  /// observer; every attached observer sees every window round).
  virtual void on_round(const DynamicGraph& graph, double now) {
    (void)graph;
    (void)now;
  }

  /// Per-snapshot hook: called once with the trial's shared snapshot.
  virtual void on_snapshot(const Snapshot& snapshot) { (void)snapshot; }

  /// Dissemination hook: the trial's flood/protocol run. `stats` is
  /// nullptr for a plain flood run (no message accounting).
  virtual void on_dissemination(const FloodTrace& trace,
                                const ProtocolStats* stats) {
    (void)trace;
    (void)stats;
  }

  /// True when this observer needs on_snapshot (lets drivers skip the
  /// snapshot capture entirely when nobody wants one).
  virtual bool wants_snapshot() const { return false; }

  /// True when this observer needs on_dissemination.
  virtual bool wants_dissemination() const { return false; }

  /// Churn rounds of observation window this observer wants before
  /// measurement; the driver advances the network by the maximum over the
  /// attached set. 0 = measure the warmed network as-is.
  virtual std::uint32_t observation_rounds() const { return 0; }

  /// Appends exactly one value per append_metric_names entry (NaN =
  /// unobserved this trial).
  virtual void append_values(std::vector<double>& out) const = 0;

 protected:
  Rng rng_{0};
};

/// An ordered set of observers driven as one unit: the shape every driver
/// (SweepRunner jobs, observe_network, the ported benches) attaches.
///
/// begin_trial routes per-observer seeds as derive_seed(trial_seed, index,
/// 0) — each observer owns a stream decorrelated from its peers and from
/// everything else derived from the trial seed.
class ObserverSet {
 public:
  ObserverSet() = default;
  explicit ObserverSet(std::vector<std::unique_ptr<MetricObserver>> observers)
      : observers_(std::move(observers)) {}

  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }
  MetricObserver& at(std::size_t i) { return *observers_[i]; }

  /// All metric column names, observer-major in set order.
  std::vector<std::string> metric_names() const {
    std::vector<std::string> names;
    for (const auto& observer : observers_) {
      observer->append_metric_names(names);
    }
    return names;
  }

  bool wants_snapshot() const {
    for (const auto& observer : observers_) {
      if (observer->wants_snapshot()) return true;
    }
    return false;
  }
  bool wants_dissemination() const {
    for (const auto& observer : observers_) {
      if (observer->wants_dissemination()) return true;
    }
    return false;
  }
  std::uint32_t observation_rounds() const {
    std::uint32_t rounds = 0;
    for (const auto& observer : observers_) {
      rounds = std::max(rounds, observer->observation_rounds());
    }
    return rounds;
  }

  void begin_trial(std::uint64_t trial_seed) {
    for (std::size_t i = 0; i < observers_.size(); ++i) {
      observers_[i]->begin_trial(derive_seed(trial_seed, i, 0));
    }
  }
  void on_round(const DynamicGraph& graph, double now) {
    for (const auto& observer : observers_) observer->on_round(graph, now);
  }
  void on_snapshot(const Snapshot& snapshot) {
    for (const auto& observer : observers_) observer->on_snapshot(snapshot);
  }
  void on_dissemination(const FloodTrace& trace, const ProtocolStats* stats) {
    for (const auto& observer : observers_) {
      observer->on_dissemination(trace, stats);
    }
  }
  void append_values(std::vector<double>& out) const {
    for (const auto& observer : observers_) observer->append_values(out);
  }

 private:
  std::vector<std::unique_ptr<MetricObserver>> observers_;
};

}  // namespace churnet
