// The pluggable observation layer (DESIGN.md §6, decision 12): one
// interface every metric observer implements, generalizing the ad-hoc
// measurement loops of the bench binaries the same way ChurnProcess
// generalized churn and DisseminationProtocol generalized rumor spreading.
//
// A MetricObserver declares named metric columns and fills them from three
// driver hooks:
//
//   * on_round(graph, now)       -- once per churn step of the observation
//     window (trajectory metrics: demography, rates);
//   * on_snapshot(snapshot)      -- once per captured snapshot, shared by
//     every attached observer (structure metrics: expansion, spectral gap,
//     isolated nodes, degree/age histograms);
//   * on_dissemination(trace, stats) -- once per flood/protocol run
//     (coverage curves, message complexity derivatives).
//
// Observers are driver hooks rather than post-hoc snapshot scans because
// trajectory and coverage metrics need the run, not its final state — and
// because one shared snapshot serves every snapshot observer, instead of
// each analysis re-capturing its own.
//
// Contract:
//   * begin_trial(seed) fully resets per-trial state and reseeds the
//     observer's private RNG: an observer's values are a pure function of
//     (seed, observed inputs), which is what makes sweeps-with-observers
//     bit-identical at any thread count.
//   * RNG isolation: observers draw randomness (probe candidate sets,
//     power-iteration init vectors) ONLY from their own trial seed, never
//     from the network's RNG — attaching or removing observers never
//     changes the churn realization or any other measured value.
//   * Scratch reuse: instances are long-lived (one per worker, reused
//     across replications, the FloodScratch/ProtocolScratch convention);
//     begin_trial resets without deallocating, so replication loops do not
//     allocate through the observer once warmed.
//   * append_values appends exactly one value per declared metric name;
//     NaN marks a metric whose input was never observed this trial (e.g. a
//     coverage column when no dissemination ran).
//
// Incremental observation (DESIGN.md §6, decision 15): a driver that
// attaches a ChangeFeed to its network can run observers delta-fed instead
// of from-scratch. The incremental lifecycle is
//
//   begin_incremental_trial(seed, graph, now)   -- reset + full baseline scan
//   per churn round:  on_round(...); on_deltas(graph, round_deltas, now)
//   per observation:  observe(graph, now)       -- the measurement point
//
// observe() builds/updates the set's one shared dense Snapshot only when at
// least one attached observer still needs the dense form
// (needs_dense_snapshot()); delta-fed observers answer from running state
// in on_observe. The from-scratch path uses the same observe() entry with
// begin_trial, where it captures a fresh snapshot — so drivers are written
// once and the two modes differ only in which begin_* they call.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flooding/flood_driver.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {

struct ProtocolStats;

class MetricObserver {
 public:
  virtual ~MetricObserver() = default;

  /// Canonical spec name, matching ObserverSpec::canonical() of the call
  /// that built it ("expansion(8)", "spectral", "coverage(0.50)", ...).
  virtual std::string name() const = 0;

  /// Appends this observer's metric column names, in the same order
  /// append_values emits values.
  virtual void append_metric_names(std::vector<std::string>& out) const = 0;

  /// Resets all per-trial state and reseeds the observer RNG. Values are a
  /// pure function of the seed and the subsequently observed inputs.
  virtual void begin_trial(std::uint64_t seed) = 0;

  /// Per-round hook: called after each churn step of the observation
  /// window (only when observation_rounds() > 0 for some attached
  /// observer; every attached observer sees every window round).
  virtual void on_round(const DynamicGraph& graph, double now) {
    (void)graph;
    (void)now;
  }

  /// Per-snapshot hook: called once with the trial's shared snapshot.
  virtual void on_snapshot(const Snapshot& snapshot) { (void)snapshot; }

  // ---- incremental lifecycle (all optional; defaults = from-scratch) ----

  /// Incremental-trial baseline: called once after begin_trial, before any
  /// deltas, with the warmed network. Delta-fed observers seed their
  /// running state with one full scan here; from-scratch observers ignore
  /// it (and then behave identically in both modes).
  virtual void on_trial_start(const DynamicGraph& graph, double now) {
    (void)graph;
    (void)now;
  }

  /// Delta hook: the graph mutations since the previous on_deltas call (or
  /// since on_trial_start), in mutation order (graph/change_feed.hpp for
  /// the contract). `graph` is the post-mutation state.
  virtual void on_deltas(const DynamicGraph& graph,
                         std::span<const GraphDelta> deltas, double now) {
    (void)graph;
    (void)deltas;
    (void)now;
  }

  /// Measurement point for delta-fed observers: called by
  /// ObserverSet::observe after on_snapshot (if a dense snapshot was
  /// built). Running-state observers publish their values here.
  virtual void on_observe(const DynamicGraph& graph, double now) {
    (void)graph;
    (void)now;
  }

  /// True while this observer needs the dense Snapshot to measure. An
  /// observer running on delta-fed counters returns false after
  /// on_trial_start, letting ObserverSet::observe skip the snapshot
  /// build/update entirely when no attached observer needs it. Defaults to
  /// wants_snapshot().
  virtual bool needs_dense_snapshot() const { return wants_snapshot(); }

  /// Dissemination hook: the trial's flood/protocol run. `stats` is
  /// nullptr for a plain flood run (no message accounting).
  virtual void on_dissemination(const FloodTrace& trace,
                                const ProtocolStats* stats) {
    (void)trace;
    (void)stats;
  }

  /// True when this observer needs on_snapshot (lets drivers skip the
  /// snapshot capture entirely when nobody wants one).
  virtual bool wants_snapshot() const { return false; }

  /// True when this observer needs on_dissemination.
  virtual bool wants_dissemination() const { return false; }

  /// Churn rounds of observation window this observer wants before
  /// measurement; the driver advances the network by the maximum over the
  /// attached set. 0 = measure the warmed network as-is.
  virtual std::uint32_t observation_rounds() const { return 0; }

  /// Appends exactly one value per append_metric_names entry (NaN =
  /// unobserved this trial).
  virtual void append_values(std::vector<double>& out) const = 0;

 protected:
  Rng rng_{0};
};

/// An ordered set of observers driven as one unit: the shape every driver
/// (SweepRunner jobs, observe_network, the ported benches) attaches.
///
/// begin_trial routes per-observer seeds as derive_seed(trial_seed, index,
/// 0) — each observer owns a stream decorrelated from its peers and from
/// everything else derived from the trial seed.
class ObserverSet {
 public:
  ObserverSet() = default;
  explicit ObserverSet(std::vector<std::unique_ptr<MetricObserver>> observers)
      : observers_(std::move(observers)) {}

  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }
  MetricObserver& at(std::size_t i) { return *observers_[i]; }

  /// All metric column names, observer-major in set order.
  std::vector<std::string> metric_names() const {
    std::vector<std::string> names;
    for (const auto& observer : observers_) {
      observer->append_metric_names(names);
    }
    return names;
  }

  bool wants_snapshot() const {
    for (const auto& observer : observers_) {
      if (observer->wants_snapshot()) return true;
    }
    return false;
  }
  bool wants_dissemination() const {
    for (const auto& observer : observers_) {
      if (observer->wants_dissemination()) return true;
    }
    return false;
  }
  std::uint32_t observation_rounds() const {
    std::uint32_t rounds = 0;
    for (const auto& observer : observers_) {
      rounds = std::max(rounds, observer->observation_rounds());
    }
    return rounds;
  }

  void begin_trial(std::uint64_t trial_seed) {
    for (std::size_t i = 0; i < observers_.size(); ++i) {
      observers_[i]->begin_trial(derive_seed(trial_seed, i, 0));
    }
    incremental_ = false;
    snapshot_valid_ = false;
    pending_births_.clear();
  }

  /// Incremental-mode trial start: begin_trial plus the per-observer
  /// baseline scan of the warmed network. After this, feed every round's
  /// deltas through on_deltas and measure with observe().
  void begin_incremental_trial(std::uint64_t trial_seed,
                               const DynamicGraph& graph, double now) {
    begin_trial(trial_seed);
    for (const auto& observer : observers_) {
      observer->on_trial_start(graph, now);
    }
    incremental_ = true;
  }

  void on_round(const DynamicGraph& graph, double now) {
    for (const auto& observer : observers_) observer->on_round(graph, now);
  }
  void on_snapshot(const Snapshot& snapshot) {
    for (const auto& observer : observers_) observer->on_snapshot(snapshot);
  }

  /// Forwards one round's deltas to every observer and banks the births the
  /// set's own snapshot update will need at the next observe().
  void on_deltas(const DynamicGraph& graph,
                 std::span<const GraphDelta> deltas, double now) {
    const telemetry::PhaseTimer span(telemetry::Phase::kDeltaFold);
    for (const GraphDelta& delta : deltas) {
      if (delta.kind == GraphDelta::Kind::kBirth) {
        pending_births_.push_back(delta);
      }
    }
    for (const auto& observer : observers_) {
      observer->on_deltas(graph, deltas, now);
    }
  }

  /// The measurement point: builds (or, in incremental mode, updates in
  /// place) the set's one shared dense snapshot iff some observer still
  /// needs the dense form, runs on_snapshot for the snapshot observers and
  /// on_observe for everyone. Returns the shared snapshot, or nullptr when
  /// no dense form was needed — callers wanting snapshot-derived engine
  /// metrics can reuse it instead of capturing their own.
  const Snapshot* observe(const DynamicGraph& graph, double now) {
    const telemetry::PhaseTimer span(telemetry::Phase::kObserve);
    telemetry::count(telemetry::Counter::kObservations);
    bool dense = false;
    for (const auto& observer : observers_) {
      dense = dense || observer->needs_dense_snapshot();
    }
    if (dense) {
      if (incremental_ && snapshot_valid_) {
        Snapshot::update(graph, pending_births_, now, snapshot_, scratch_);
      } else {
        snapshot_ = Snapshot::capture(graph, now);
      }
      snapshot_valid_ = true;
      for (const auto& observer : observers_) {
        if (observer->wants_snapshot()) observer->on_snapshot(snapshot_);
      }
    }
    pending_births_.clear();
    for (const auto& observer : observers_) observer->on_observe(graph, now);
    return dense ? &snapshot_ : nullptr;
  }
  void on_dissemination(const FloodTrace& trace, const ProtocolStats* stats) {
    for (const auto& observer : observers_) {
      observer->on_dissemination(trace, stats);
    }
  }
  void append_values(std::vector<double>& out) const {
    for (const auto& observer : observers_) observer->append_values(out);
  }

 private:
  std::vector<std::unique_ptr<MetricObserver>> observers_;
  // The set's shared dense snapshot, reused across observations (updated in
  // place from banked birth deltas in incremental mode).
  Snapshot snapshot_;
  SnapshotScratch scratch_;
  std::vector<GraphDelta> pending_births_;
  bool snapshot_valid_ = false;
  bool incremental_ = false;
};

}  // namespace churnet
