#include "graph/algorithms.hpp"

#include <algorithm>

#include "common/assertx.hpp"

namespace churnet {

std::vector<std::int32_t> bfs_distances(const Snapshot& snapshot,
                                        std::uint32_t source) {
  CHURNET_EXPECTS(source < snapshot.node_count());
  std::vector<std::int32_t> dist(snapshot.node_count(), -1);
  std::vector<std::uint32_t> frontier{source};
  dist[source] = 0;
  std::int32_t depth = 0;
  std::vector<std::uint32_t> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const std::uint32_t u : frontier) {
      for (const std::uint32_t v : snapshot.neighbors(u)) {
        if (dist[v] == -1) {
          dist[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Snapshot& snapshot, std::uint32_t source) {
  const auto dist = bfs_distances(snapshot, source);
  std::int32_t max_dist = 0;
  for (const std::int32_t d : dist) max_dist = std::max(max_dist, d);
  return static_cast<std::uint32_t>(max_dist);
}

Components connected_components(const Snapshot& snapshot) {
  Components result;
  const std::uint32_t n = snapshot.node_count();
  result.label.assign(n, NodeId::kInvalidSlot);
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (result.label[start] != NodeId::kInvalidSlot) continue;
    const std::uint32_t component = result.count++;
    std::uint32_t size = 0;
    stack.push_back(start);
    result.label[start] = component;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++size;
      for (const std::uint32_t v : snapshot.neighbors(u)) {
        if (result.label[v] == NodeId::kInvalidSlot) {
          result.label[v] = component;
          stack.push_back(v);
        }
      }
    }
    sizes.push_back(size);
  }
  for (std::uint32_t c = 0; c < result.count; ++c) {
    if (sizes[c] > result.largest_size) {
      result.largest_size = sizes[c];
      result.largest_label = c;
    }
  }
  return result;
}

DegreeStats degree_stats(const Snapshot& snapshot) {
  DegreeStats stats;
  const std::uint32_t n = snapshot.node_count();
  if (n == 0) return stats;
  stats.min = snapshot.degree(0);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t d = snapshot.degree(i);
    sum += d;
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    if (d == 0) ++stats.isolated;
  }
  stats.mean = sum / static_cast<double>(n);
  return stats;
}

}  // namespace churnet
