#include "graph/snapshot.hpp"

#include <algorithm>
#include <numeric>

#include "common/assertx.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {
namespace {

/// Bytes materialized into a snapshot's arrays (telemetry accounting only).
std::uint64_t snapshot_bytes(std::size_t nodes, std::size_t adjacency) {
  return static_cast<std::uint64_t>(
      nodes * (sizeof(NodeId) + sizeof(std::uint64_t) + sizeof(double)) +
      (nodes + 1) * sizeof(std::uint64_t) +
      adjacency * sizeof(std::uint32_t));
}

}  // namespace

Snapshot Snapshot::capture(const DynamicGraph& graph, double now) {
  const telemetry::PhaseTimer span(telemetry::Phase::kSnapshot);
  Snapshot snap;
  snap.time_ = now;
  graph.append_alive_nodes(snap.node_ids_);
  // Oldest first: ascending birth sequence.
  std::sort(snap.node_ids_.begin(), snap.node_ids_.end(),
            [&](NodeId a, NodeId b) {
              return graph.birth_seq(a) < graph.birth_seq(b);
            });

  const auto n = static_cast<std::uint32_t>(snap.node_ids_.size());
  snap.birth_seqs_.resize(n);
  snap.ages_.resize(n);
  snap.index_.reserve(n * 2);
  // Dense slot -> snapshot index map: alive nodes have distinct slots, so
  // this replaces hash lookups on the hot path.
  std::vector<std::uint32_t> slot_index(graph.slot_upper_bound(), 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = snap.node_ids_[i];
    snap.birth_seqs_[i] = graph.birth_seq(id);
    snap.ages_[i] = now - graph.birth_time(id);
    snap.index_.emplace(id, i);
    slot_index[id.slot] = i;
  }

  // First pass: undirected degrees (out-edges contribute to both endpoints).
  std::vector<std::uint32_t> degrees(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = snap.node_ids_[i];
    const std::uint32_t slots = graph.out_slot_count(id);
    for (std::uint32_t k = 0; k < slots; ++k) {
      const NodeId target = graph.out_target(id, k);
      if (!target.valid()) continue;
      ++degrees[i];
      ++degrees[slot_index[target.slot]];
    }
  }

  snap.offsets_.resize(n + 1);
  snap.offsets_[0] = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    snap.offsets_[i + 1] = snap.offsets_[i] + degrees[i];
  }
  snap.adjacency_.resize(snap.offsets_[n]);

  // Second pass: fill both directions.
  std::vector<std::uint64_t> cursor(snap.offsets_.begin(),
                                    snap.offsets_.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = snap.node_ids_[i];
    const std::uint32_t slots = graph.out_slot_count(id);
    for (std::uint32_t k = 0; k < slots; ++k) {
      const NodeId target = graph.out_target(id, k);
      if (!target.valid()) continue;
      const std::uint32_t j = slot_index[target.slot];
      snap.adjacency_[cursor[i]++] = j;
      snap.adjacency_[cursor[j]++] = i;
    }
  }
  telemetry::count(telemetry::Counter::kSnapshots);
  telemetry::count(telemetry::Counter::kSnapshotBytes,
                   snapshot_bytes(snap.node_ids_.size(),
                                  snap.adjacency_.size()));
  return snap;
}

void Snapshot::update(const DynamicGraph& graph,
                      std::span<const GraphDelta> deltas, double now,
                      Snapshot& snap, SnapshotScratch& scratch) {
  const telemetry::PhaseTimer span(telemetry::Phase::kSnapshot);
  snap.time_ = now;

  // Compact the node list in place: survivors keep their relative order,
  // which is ascending birth sequence — exactly capture's sort order.
  std::size_t kept = 0;
  for (const NodeId id : snap.node_ids_) {
    if (graph.is_alive(id)) snap.node_ids_[kept++] = id;
  }
  snap.node_ids_.resize(kept);

  // Append the window's newborns that are still alive. Feed order is birth
  // order, so their seqs ascend and all exceed every survivor's.
  for (const GraphDelta& delta : deltas) {
    if (delta.kind != GraphDelta::Kind::kBirth) continue;
    if (graph.is_alive(delta.node)) snap.node_ids_.push_back(delta.node);
  }

  const auto n = static_cast<std::uint32_t>(snap.node_ids_.size());
  CHURNET_ASSERT(n == graph.alive_count());
  snap.birth_seqs_.resize(n);
  snap.ages_.resize(n);
  snap.index_.clear();
  snap.index_.reserve(n * 2);
  scratch.slot_index.assign(graph.slot_upper_bound(), 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = snap.node_ids_[i];
    snap.birth_seqs_[i] = graph.birth_seq(id);
    snap.ages_[i] = now - graph.birth_time(id);
    snap.index_.emplace(id, i);
    scratch.slot_index[id.slot] = i;
  }

  // The CSR passes are capture's, verbatim, over pooled scratch buffers.
  scratch.degrees.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = snap.node_ids_[i];
    const std::uint32_t slots = graph.out_slot_count(id);
    for (std::uint32_t k = 0; k < slots; ++k) {
      const NodeId target = graph.out_target(id, k);
      if (!target.valid()) continue;
      ++scratch.degrees[i];
      ++scratch.degrees[scratch.slot_index[target.slot]];
    }
  }

  snap.offsets_.resize(n + 1);
  snap.offsets_[0] = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    snap.offsets_[i + 1] = snap.offsets_[i] + scratch.degrees[i];
  }
  snap.adjacency_.resize(snap.offsets_[n]);

  scratch.cursor.assign(snap.offsets_.begin(), snap.offsets_.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id = snap.node_ids_[i];
    const std::uint32_t slots = graph.out_slot_count(id);
    for (std::uint32_t k = 0; k < slots; ++k) {
      const NodeId target = graph.out_target(id, k);
      if (!target.valid()) continue;
      const std::uint32_t j = scratch.slot_index[target.slot];
      snap.adjacency_[scratch.cursor[i]++] = j;
      snap.adjacency_[scratch.cursor[j]++] = i;
    }
  }
  telemetry::count(telemetry::Counter::kSnapshots);
  telemetry::count(telemetry::Counter::kSnapshotBytes,
                   snapshot_bytes(snap.node_ids_.size(),
                                  snap.adjacency_.size()));
}

Snapshot Snapshot::from_edges(
    std::uint32_t n,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  Snapshot snap;
  snap.time_ = 0.0;
  snap.node_ids_.resize(n);
  snap.birth_seqs_.resize(n);
  snap.ages_.assign(n, 0.0);
  snap.index_.reserve(n * 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    snap.node_ids_[i] = NodeId{i, 0};
    snap.birth_seqs_[i] = i;
    snap.index_.emplace(snap.node_ids_[i], i);
  }
  std::vector<std::uint32_t> degrees(n, 0);
  for (const auto& [a, b] : edges) {
    CHURNET_EXPECTS(a < n && b < n);
    ++degrees[a];
    ++degrees[b];
  }
  snap.offsets_.resize(n + 1);
  snap.offsets_[0] = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    snap.offsets_[i + 1] = snap.offsets_[i] + degrees[i];
  }
  snap.adjacency_.resize(snap.offsets_[n]);
  std::vector<std::uint64_t> cursor(snap.offsets_.begin(),
                                    snap.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    snap.adjacency_[cursor[a]++] = b;
    snap.adjacency_[cursor[b]++] = a;
  }
  return snap;
}

std::span<const std::uint32_t> Snapshot::neighbors(
    std::uint32_t index) const {
  CHURNET_EXPECTS(index < node_count());
  const std::uint64_t begin = offsets_[index];
  const std::uint64_t end = offsets_[index + 1];
  return {adjacency_.data() + begin, adjacency_.data() + end};
}

std::uint32_t Snapshot::degree(std::uint32_t index) const {
  CHURNET_EXPECTS(index < node_count());
  return static_cast<std::uint32_t>(offsets_[index + 1] - offsets_[index]);
}

std::optional<std::uint32_t> Snapshot::index_of(NodeId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace churnet
