// Bulk genesis wiring: installs a pure-growth phase's whole edge list in a
// few streaming passes instead of n·d random-access set_out_edge calls.
//
// During the growth phase of a streaming warm-up every round is a birth, so
// the model layer can record all n·d wiring draws (owner slot r-1 targeting
// a uniform slot < r-1) and hand the flat list here. Random insertion order
// is what makes sequential wiring slow at n=10M — every edge touches a
// random target's slot record and in-list, a guaranteed cache miss per
// edge. This path radix-buckets the edge list by target block (2^15 slots,
// so one block's records and in-lists stay cache-resident), then applies
// each block's edges in ascending edge order.
//
// Equivalence with the sequential path is by construction:
//   * per-target in-list contents: edges arrive in ascending e order inside
//     a block (the scatter is stable), which is the global chronological
//     order restricted to that target — exactly the sequential insert
//     order; in_pos values are the same insertion ranks.
//   * chunk capacities: a target with final in-degree deg ends at the
//     smallest first_in_cap_·2^k >= deg, the fixed point of grow_in_chunk's
//     doubling; where the chunk *lives* differs (block-contiguous carve vs
//     upgrade-and-recycle), but no observable API exposes placement.
//   * out runs: a freshly grown graph allocates out runs sequentially, so
//     slot s's run base is s·out_slots (asserted); entries are written with
//     the same {peer, in_pos} values set_out_edge would store.
//
// Every pass shards over fixed-size ranges/blocks (never a function of the
// worker count) with disjoint outputs, so results are byte-identical at
// every intra_threads value.
#include <algorithm>

#include "common/intra.hpp"
#include "graph/dynamic_graph.hpp"

namespace churnet {

namespace {

/// Slots per radix block: 2^15 SlotCore records = 1 MiB, cache-resident
/// while a block's edges are applied.
constexpr std::uint32_t kBlockBits = 15;

/// Edges per scatter range; fixed so the stable scatter's bucket layout is
/// independent of the worker count.
constexpr std::size_t kScatterRange = std::size_t{1} << 20;

}  // namespace

void DynamicGraph::bulk_wire_genesis(std::uint32_t out_slots,
                                     std::span<const std::uint32_t> targets,
                                     unsigned intra_threads) {
  const std::size_t edges = targets.size();
  if (edges == 0) return;
  CHURNET_EXPECTS(out_slots > 0 && edges % out_slots == 0);
  CHURNET_EXPECTS(edges / out_slots == core_.size());
  CHURNET_EXPECTS(edges <= NodeId::kInvalidSlot);  // edge ids fit u32
  // Bulk wiring bypasses the per-edge mutators and emits no deltas; a
  // consumer expecting the feed must use the sequential path instead.
  CHURNET_EXPECTS(feed_ == nullptr && "bulk wiring does not record deltas");

  const std::uint32_t slot_count = static_cast<std::uint32_t>(core_.size());
  const std::size_t block_count =
      (static_cast<std::size_t>(slot_count) + (std::size_t{1} << kBlockBits) -
       1) >>
      kBlockBits;
  const std::size_t range_count =
      (edges + kScatterRange - 1) / kScatterRange;
  const unsigned threads = intra_threads == 0 ? 1 : intra_threads;

  // Pass A: per-(range, block) histogram of valid edges.
  std::vector<std::uint64_t> offsets(range_count * block_count, 0);
  for_each_chunk(threads, range_count, [&](std::size_t r, unsigned) {
    std::uint64_t* row = offsets.data() + r * block_count;
    const std::size_t begin = r * kScatterRange;
    const std::size_t end = std::min(edges, begin + kScatterRange);
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t target = targets[e];
      if (target == NodeId::kInvalidSlot) continue;
      ++row[target >> kBlockBits];
    }
  });

  // Column-major prefix sum: offsets[r][b] becomes the bucket write cursor
  // for range r within block b; iterating ranges in order inside each block
  // keeps the scatter stable in edge order.
  std::vector<std::uint64_t> block_begin(block_count + 1, 0);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < block_count; ++b) {
    block_begin[b] = total;
    for (std::size_t r = 0; r < range_count; ++r) {
      const std::uint64_t count = offsets[r * block_count + b];
      offsets[r * block_count + b] = total;
      total += count;
    }
  }
  block_begin[block_count] = total;

  // Pass B: stable scatter of edge ids into per-block buckets.
  std::vector<std::uint32_t> bucket(total);
  for_each_chunk(threads, range_count, [&](std::size_t r, unsigned) {
    std::uint64_t* cursor = offsets.data() + r * block_count;
    const std::size_t begin = r * kScatterRange;
    const std::size_t end = std::min(edges, begin + kScatterRange);
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t target = targets[e];
      if (target == NodeId::kInvalidSlot) continue;
      bucket[cursor[target >> kBlockBits]++] = static_cast<std::uint32_t>(e);
    }
  });

  // Pass C: per-block in-pool demand — the sum of each target's final
  // chunk capacity (grow_in_chunk's doubling fixed point).
  const unsigned block_workers = static_cast<unsigned>(
      std::min<std::size_t>(std::max(threads, 1u), block_count));
  std::vector<std::vector<std::uint32_t>> worker_degrees(block_workers);
  std::vector<std::uint64_t> block_cap(block_count, 0);
  auto count_block_degrees = [&](std::size_t b, unsigned worker) {
    const std::uint32_t s0 = static_cast<std::uint32_t>(b << kBlockBits);
    const std::uint32_t s1 = std::min<std::uint32_t>(
        slot_count, static_cast<std::uint32_t>((b + 1) << kBlockBits));
    std::vector<std::uint32_t>& degree = worker_degrees[worker];
    degree.assign(s1 - s0, 0);
    for (std::uint64_t i = block_begin[b]; i < block_begin[b + 1]; ++i) {
      ++degree[targets[bucket[i]] - s0];
    }
    return std::pair<std::uint32_t, std::uint32_t>{s0, s1};
  };
  auto final_cap = [this](std::uint32_t degree) {
    std::uint32_t cap = first_in_cap_;
    while (cap < degree) cap *= 2;
    CHURNET_EXPECTS(in_class_of(cap) < kInClassCount);
    return cap;
  };
  for_each_chunk(threads, block_count, [&](std::size_t b, unsigned worker) {
    const auto [s0, s1] = count_block_degrees(b, worker);
    const std::vector<std::uint32_t>& degree = worker_degrees[worker];
    std::uint64_t cap_sum = 0;
    for (std::uint32_t s = s0; s < s1; ++s) {
      if (degree[s - s0] > 0) cap_sum += final_cap(degree[s - s0]);
    }
    block_cap[b] = cap_sum;
  });

  // Serial: carve one contiguous in-pool region per block. Headroom of one
  // first-sized chunk per slot keeps the post-growth churn rounds carving
  // within capacity (the steady-state zero-allocation invariant).
  const std::size_t pool_base = in_pool_.size();
  std::vector<std::uint64_t> block_pool_base(block_count, 0);
  std::uint64_t pool_need = 0;
  for (std::size_t b = 0; b < block_count; ++b) {
    block_pool_base[b] = pool_base + pool_need;
    pool_need += block_cap[b];
  }
  CHURNET_EXPECTS(pool_base + pool_need <= NodeId::kInvalidSlot);
  const std::size_t headroom =
      static_cast<std::size_t>(slot_count) * first_in_cap_ / 2;
  if (in_pool_.capacity() < pool_base + pool_need + headroom) {
    in_pool_.reserve(pool_base + pool_need + headroom);
  }
  in_pool_.resize(pool_base + pool_need);

  // Pass D: per-block apply. Blocks own disjoint slot ranges, in-pool
  // regions and edge buckets; the out-pool entry of edge e is written only
  // by e's target block. Inserts run in ascending e order — the sequential
  // insertion order — so in-list contents and in_pos back-pointers match
  // the set_out_edge path exactly.
  for_each_chunk(threads, block_count, [&](std::size_t b, unsigned worker) {
    const auto [s0, s1] = count_block_degrees(b, worker);
    const std::vector<std::uint32_t>& degree = worker_degrees[worker];
    std::uint64_t cursor = block_pool_base[b];
    for (std::uint32_t s = s0; s < s1; ++s) {
      SlotCore& core = core_[s];
      CHURNET_ASSERT(core.alive != 0 && core.generation == 0);
      CHURNET_ASSERT(core.out_count == out_slots &&
                     core.out_base ==
                         static_cast<std::uint64_t>(s) * out_slots);
      CHURNET_ASSERT(core.in_count == 0 && core.in_cap == 0);
      const std::uint32_t d = degree[s - s0];
      if (d == 0) continue;
      core.in_base = static_cast<std::uint32_t>(cursor);
      core.in_cap = final_cap(d);
      cursor += core.in_cap;
    }
    CHURNET_ASSERT(cursor == block_pool_base[b] + block_cap[b]);
    for (std::uint64_t i = block_begin[b]; i < block_begin[b + 1]; ++i) {
      const std::uint32_t e = bucket[i];
      const std::uint32_t target = targets[e];
      const std::uint32_t owner = e / out_slots;
      const std::uint32_t out_index = e % out_slots;
      CHURNET_ASSERT(owner != target);
      SlotCore& target_core = core_[target];
      const std::uint32_t pos = target_core.in_count++;
      in_pool_[target_core.in_base + pos] = InEdge{owner, out_index};
      out_pool_[static_cast<std::size_t>(owner) * out_slots + out_index] =
          OutEdge{target, pos};
    }
  });

  edge_count_ += total;
}

}  // namespace churnet
