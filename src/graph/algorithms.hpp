// Classic graph algorithms over snapshots: BFS, connected components,
// degree statistics. These feed the flooding/expansion analyses and the
// benches' structural sanity columns.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/snapshot.hpp"

namespace churnet {

/// BFS hop distances from `source`; -1 marks unreachable nodes.
std::vector<std::int32_t> bfs_distances(const Snapshot& snapshot,
                                        std::uint32_t source);

/// Eccentricity of `source` within its component (max finite BFS distance).
std::uint32_t eccentricity(const Snapshot& snapshot, std::uint32_t source);

/// Connected-component labelling.
struct Components {
  std::vector<std::uint32_t> label;   // per node component id, dense from 0
  std::uint32_t count = 0;
  std::uint32_t largest_size = 0;
  std::uint32_t largest_label = 0;
};
Components connected_components(const Snapshot& snapshot);

/// Degree summary over a snapshot (degrees count parallel edges).
struct DegreeStats {
  double mean = 0.0;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  std::uint32_t isolated = 0;  // degree-0 node count
};
DegreeStats degree_stats(const Snapshot& snapshot);

}  // namespace churnet
