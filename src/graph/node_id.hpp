// Generational node identifiers.
//
// Node slots are recycled aggressively under churn; a generation counter per
// slot makes stale references detectable instead of silently aliasing a
// newer node that reused the slot (the classic ABA hazard in slot maps).
#pragma once

#include <cstdint>
#include <functional>

namespace churnet {

/// Identifier of a (possibly dead) node in a DynamicGraph.
///
/// Compares by (slot, generation); a default-constructed id is invalid.
struct NodeId {
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;

  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  constexpr bool valid() const { return slot != kInvalidSlot; }

  friend constexpr bool operator==(NodeId a, NodeId b) {
    return a.slot == b.slot && a.generation == b.generation;
  }
  friend constexpr bool operator!=(NodeId a, NodeId b) { return !(a == b); }
  friend constexpr bool operator<(NodeId a, NodeId b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    return a.generation < b.generation;
  }
};

/// Sentinel invalid id.
inline constexpr NodeId kInvalidNode{};

}  // namespace churnet

template <>
struct std::hash<churnet::NodeId> {
  std::size_t operator()(churnet::NodeId id) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(id.slot) << 32) | id.generation;
    // splitmix64 finalizer as the mixing function.
    std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
