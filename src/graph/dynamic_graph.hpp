// Dynamic adjacency structure for sparse graphs under node churn.
//
// This is the storage substrate shared by all four paper models. It supports
// the exact operations the models need, all in O(1) amortized (plus the
// degree of the dying node for removals):
//
//   * add_node                       -- birth
//   * set_out_edge / clear_out_edge  -- a node's d "requests" (paper Def 3.4)
//   * remove_node                    -- death; detaches every incident edge
//                                       and reports which out-slots of other
//                                       nodes were orphaned so the model
//                                       layer can regenerate them (Def 3.13)
//   * random_alive / random_alive_other -- uniform sampling for requests
//
// Edges are stored directed (owner -> target) mirroring the paper's
// "requests", but the graph is undirected for processes: neighbors(u) is the
// union of out-targets and in-sources. Parallel edges are allowed (requests
// are independent uniform choices); self-loops are rejected.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/node_id.hpp"

namespace churnet {

/// Reference to one out-edge slot of a node (the i-th of its d requests).
struct OutSlotRef {
  NodeId owner;
  std::uint32_t index = 0;

  friend bool operator==(const OutSlotRef&, const OutSlotRef&) = default;
};

class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Creates a node with `out_slots` (initially dangling) out-edge slots.
  /// `birth_time` is the model-level timestamp (round or continuous time).
  NodeId add_node(std::uint32_t out_slots, double birth_time);

  /// Kills the node: detaches all incident edges, recycles the slot.
  /// Returns the out-slots of *other* alive nodes that pointed at `node`
  /// (now dangling) so the caller can regenerate them. The order of the
  /// returned slots is deterministic given the graph state.
  std::vector<OutSlotRef> remove_node(NodeId node);

  /// Points out-slot `index` of `owner` at `target`. The slot must currently
  /// be dangling. Self-loops are rejected (paper: "d random *other* nodes").
  void set_out_edge(NodeId owner, std::uint32_t index, NodeId target);

  /// Makes out-slot `index` of `owner` dangling, detaching it from its
  /// current target (which must be set).
  void clear_out_edge(NodeId owner, std::uint32_t index);

  /// Target of an out-slot; invalid id if dangling.
  NodeId out_target(NodeId owner, std::uint32_t index) const;

  // ---- liveness and sampling ------------------------------------------

  bool is_alive(NodeId node) const;
  std::uint32_t alive_count() const {
    return static_cast<std::uint32_t>(alive_slots_.size());
  }

  /// Uniformly random alive node. Requires alive_count() > 0.
  NodeId random_alive(Rng& rng) const;

  /// Uniformly random alive node != exclude; invalid id if none exists.
  NodeId random_alive_other(Rng& rng, NodeId exclude) const;

  /// Dense list of currently alive nodes (stable until the next mutation).
  std::vector<NodeId> alive_nodes() const;

  /// Appends the alive nodes to `out` (same deterministic order as
  /// alive_nodes) — for per-step full scans that reuse one buffer instead
  /// of allocating.
  void append_alive_nodes(std::vector<NodeId>& out) const;

  // ---- per-node queries ------------------------------------------------

  /// Monotone global birth sequence number (0 for the first node ever).
  std::uint64_t birth_seq(NodeId node) const;
  /// Model timestamp passed to add_node.
  double birth_time(NodeId node) const;

  std::uint32_t out_slot_count(NodeId node) const;
  /// Number of non-dangling out-edges.
  std::uint32_t out_degree(NodeId node) const;
  std::uint32_t in_degree(NodeId node) const;
  /// out_degree + in_degree (parallel edges counted with multiplicity).
  std::uint32_t degree(NodeId node) const;

  /// Appends all current neighbors of `node` (out-targets then in-sources,
  /// with multiplicity) to `out`. Cheap enough for flooding hot loops.
  void append_neighbors(NodeId node, std::vector<NodeId>& out) const;

  /// Total number of (directed) edges currently present.
  std::uint64_t edge_count() const { return edge_count_; }

  /// Number of births since construction (== next birth_seq).
  std::uint64_t total_births() const { return next_birth_seq_; }

  /// Exclusive upper bound on slot indices ever allocated; alive nodes have
  /// distinct slots below this bound (used for dense slot-indexed scratch).
  std::uint32_t slot_upper_bound() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Verifies the full doubly-indexed adjacency invariant; O(V+E).
  /// Used by tests and debug assertions, returns true when consistent.
  bool check_consistency() const;

 private:
  struct OutEdge {
    NodeId target = kInvalidNode;   // invalid == dangling
    std::uint32_t in_pos = 0;       // index into target's in-list
  };
  struct InEdge {
    NodeId source = kInvalidNode;
    std::uint32_t out_index = 0;    // index into source's out-slot array
  };
  struct Slot {
    std::uint32_t generation = 0;
    bool alive = false;
    std::uint32_t alive_pos = 0;    // index into alive_slots_
    std::uint64_t birth_seq = 0;
    double birth_time = 0.0;
    std::vector<OutEdge> out;
    std::vector<InEdge> in;
  };

  const Slot& slot_of(NodeId node) const;
  Slot& slot_of(NodeId node);
  void detach_in_entry(Slot& target_slot, std::uint32_t in_pos);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> alive_slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_birth_seq_ = 0;
  std::uint64_t edge_count_ = 0;
};

}  // namespace churnet
