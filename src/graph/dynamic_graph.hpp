// Dynamic adjacency structure for sparse graphs under node churn.
//
// This is the storage substrate shared by all four paper models. It supports
// the exact operations the models need, all in O(1) amortized (plus the
// degree of the dying node for removals):
//
//   * add_node                       -- birth
//   * set_out_edge / clear_out_edge  -- a node's d "requests" (paper Def 3.4)
//   * remove_node                    -- death; detaches every incident edge
//                                       and reports which out-slots of other
//                                       nodes were orphaned so the model
//                                       layer can regenerate them (Def 3.13)
//   * random_alive / random_alive_other -- uniform sampling for requests
//
// Edges are stored directed (owner -> target) mirroring the paper's
// "requests", but the graph is undirected for processes: neighbors(u) is the
// union of out-targets and in-sources. Parallel edges are allowed (requests
// are independent uniform choices); self-loops are rejected.
//
// Storage is a flat arena (DESIGN.md, "Memory layout" / decision 11):
// per-node out-slot runs live contiguously in one pooled array recycled
// through per-stride free lists, in-lists are capacity-class chunks carved
// from a slab pool, and hot per-slot metadata is a fixed 32-byte record.
// Pool entries are 8 bytes: they store the peer's slot index only, because
// both endpoints of a live edge are alive by construction, so the peer's
// generation is always recoverable from its slot record. Together with the
// caller-owned RemovalScratch for orphan reporting, the steady-state churn
// loop performs zero heap allocations: every birth and death recycles
// pooled runs instead of touching the allocator. The mutators live in this
// header so model round loops inline them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/change_feed.hpp"
#include "graph/node_id.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {

/// Reference to one out-edge slot of a node (the i-th of its d requests).
struct OutSlotRef {
  NodeId owner;
  std::uint32_t index = 0;

  friend bool operator==(const OutSlotRef&, const OutSlotRef&) = default;
};

/// Caller-owned scratch for DynamicGraph::remove_node — the pooled-buffer
/// sibling of FloodScratch/ProtocolScratch. remove_node rewrites `orphans`
/// in place (clear + fill, capacity retained), so a churn loop that keeps
/// one RemovalScratch alive does zero per-death allocation once the buffer
/// has grown to the peak orphan count. The contents are valid until the
/// next remove_node call with the same scratch.
struct RemovalScratch {
  std::vector<OutSlotRef> orphans;
};

class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Pre-sizes every arena for a population of `nodes` nodes with
  /// `out_slots_hint` out-slots each, so a warmed-up churn loop never grows
  /// a pool. Also seeds the initial in-list chunk capacity so typical
  /// in-degrees (~out_slots_hint) need at most one chunk upgrade. Purely a
  /// capacity hint: the graph remains correct (and merely reallocates) for
  /// any workload.
  void reserve(std::uint32_t nodes, std::uint32_t out_slots_hint);

  /// Creates a node with `out_slots` (initially dangling) out-edge slots.
  /// `birth_time` is the model-level timestamp (round or continuous time).
  NodeId add_node(std::uint32_t out_slots, double birth_time) {
    telemetry::count(telemetry::Counter::kChurnEvents);
    std::uint32_t slot_index;
    if (!free_slots_.empty()) {
      slot_index = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot_index = grow_slot_arrays();
    }
    SlotCore& core = core_[slot_index];
    core.alive = 1;
    core.alive_pos = static_cast<std::uint32_t>(alive_slots_.size());
    // Recycled out runs are all-dangling by the remove_node invariant and
    // fresh pool entries default-construct dangling, so no per-slot reset.
    core.out_base = out_slots > 0 ? acquire_out_run(out_slots) : 0;
    core.out_count = out_slots;
    core.in_base = 0;
    core.in_count = 0;
    core.in_cap = 0;
    birth_seqs_[slot_index] = next_birth_seq_++;
    birth_times_[slot_index] = birth_time;
    alive_slots_.push_back(slot_index);
    const NodeId id{slot_index, core.generation};
    if (feed_ != nullptr) feed_->record_birth(id, out_slots, birth_time);
    return id;
  }

  /// Kills the node: detaches all incident edges, recycles the slot, the
  /// out-slot run and the in-list chunk. Fills `scratch.orphans` with the
  /// out-slots of *other* alive nodes that pointed at `node` (now dangling)
  /// so the caller can regenerate them. The orphan order is deterministic
  /// given the graph state (in-list order, identical to the historical
  /// vector-returning API).
  void remove_node(NodeId node, RemovalScratch& scratch) {
    telemetry::count(telemetry::Counter::kChurnEvents);
    SlotCore& core = core_of(node);
    CHURNET_EXPECTS(core.alive != 0);

    // The victim's edge runs name ~degree random peers; issue all the
    // prefetches up front so the detach loops overlap their cache misses
    // instead of serializing them.
    for (std::uint32_t i = 0; i < core.out_count; ++i) {
      const std::uint32_t target_slot = out_pool_[core.out_base + i].peer;
      if (target_slot != NodeId::kInvalidSlot) {
        __builtin_prefetch(&core_[target_slot]);
      }
    }
    for (std::uint32_t i = 0; i < core.in_count; ++i) {
      __builtin_prefetch(&core_[in_pool_[core.in_base + i].peer]);
    }

    // Detach this node's out-edges from their targets' in-lists, leaving
    // the whole run dangling (the invariant add_node relies on when
    // recycling).
    for (std::uint32_t i = 0; i < core.out_count; ++i) {
      OutEdge& edge = out_pool_[core.out_base + i];
      if (edge.peer == NodeId::kInvalidSlot) continue;
      if (feed_ != nullptr) {
        feed_->record_edge_clear(node, i,
                                 NodeId{edge.peer, core_[edge.peer].generation});
      }
      detach_in_entry(core_[edge.peer], edge.in_pos);
      edge.peer = NodeId::kInvalidSlot;
      --edge_count_;
    }

    // Clear the out-slots of nodes pointing at us, reporting each orphan in
    // in-list order (the historical, deterministic order). In-list sources
    // are alive by construction, so their NodeIds rebuild from their slots.
    scratch.orphans.clear();
    for (std::uint32_t i = 0; i < core.in_count; ++i) {
      const InEdge in_edge = in_pool_[core.in_base + i];
      const SlotCore& source_core = core_[in_edge.peer];
      OutEdge& out_edge = out_pool_[source_core.out_base + in_edge.out_index];
      CHURNET_ASSERT(out_edge.peer == node.slot);
      out_edge.peer = NodeId::kInvalidSlot;
      --edge_count_;
      const NodeId source{in_edge.peer, source_core.generation};
      if (feed_ != nullptr) {
        feed_->record_edge_clear(source, in_edge.out_index, node);
      }
      scratch.orphans.push_back(OutSlotRef{source, in_edge.out_index});
    }
    if (core.in_cap > 0) {
      release_in_chunk(core.in_base, core.in_cap);
      core.in_cap = 0;
      core.in_base = 0;
    }
    core.in_count = 0;

    // Remove from the dense alive list (swap with the last entry).
    const std::uint32_t last_slot = alive_slots_.back();
    alive_slots_[core.alive_pos] = last_slot;
    core_[last_slot].alive_pos = core.alive_pos;
    alive_slots_.pop_back();

    core.alive = 0;
    ++core.generation;  // invalidate outstanding NodeIds for this slot
    if (core.out_count > 0) release_out_run(core.out_base, core.out_count);
    core.out_base = 0;
    core.out_count = 0;
    free_slots_.push_back(node.slot);
    if (feed_ != nullptr) feed_->record_death(node);
  }

  /// Convenience wrapper allocating a fresh orphan vector per call. Hot
  /// churn loops should hold a RemovalScratch and use the overload above.
  std::vector<OutSlotRef> remove_node(NodeId node);

  /// Points out-slot `index` of `owner` at `target`. The slot must currently
  /// be dangling. Self-loops are rejected (paper: "d random *other* nodes").
  void set_out_edge(NodeId owner, std::uint32_t index, NodeId target) {
    CHURNET_EXPECTS(owner != target);
    SlotCore& owner_core = core_of(owner);
    CHURNET_EXPECTS(owner_core.alive != 0);
    CHURNET_EXPECTS(index < owner_core.out_count);
    OutEdge& edge = out_pool_[owner_core.out_base + index];
    CHURNET_EXPECTS(edge.peer == NodeId::kInvalidSlot);
    SlotCore& target_core = core_of(target);
    CHURNET_EXPECTS(target_core.alive != 0);
    edge.peer = target.slot;
    edge.in_pos = target_core.in_count;
    if (target_core.in_count == target_core.in_cap) {
      grow_in_chunk(target_core);
    }
    in_pool_[target_core.in_base + target_core.in_count] =
        InEdge{owner.slot, index};
    ++target_core.in_count;
    ++edge_count_;
    if (feed_ != nullptr) feed_->record_edge_set(owner, index, target);
  }

  /// Makes out-slot `index` of `owner` dangling, detaching it from its
  /// current target (which must be set).
  void clear_out_edge(NodeId owner, std::uint32_t index) {
    SlotCore& owner_core = core_of(owner);
    CHURNET_EXPECTS(owner_core.alive != 0);
    CHURNET_EXPECTS(index < owner_core.out_count);
    OutEdge& edge = out_pool_[owner_core.out_base + index];
    CHURNET_EXPECTS(edge.peer != NodeId::kInvalidSlot);
    if (feed_ != nullptr) {
      feed_->record_edge_clear(owner, index,
                               NodeId{edge.peer, core_[edge.peer].generation});
    }
    detach_in_entry(core_[edge.peer], edge.in_pos);
    edge.peer = NodeId::kInvalidSlot;
    --edge_count_;
  }

  /// Target of an out-slot; invalid id if dangling.
  NodeId out_target(NodeId owner, std::uint32_t index) const {
    const SlotCore& core = core_of(owner);
    CHURNET_EXPECTS(index < core.out_count);
    const std::uint32_t peer = out_pool_[core.out_base + index].peer;
    if (peer == NodeId::kInvalidSlot) return kInvalidNode;
    return NodeId{peer, core_[peer].generation};
  }

  // ---- liveness and sampling ------------------------------------------

  bool is_alive(NodeId node) const {
    if (!node.valid() || node.slot >= core_.size()) return false;
    const SlotCore& core = core_[node.slot];
    return core.alive != 0 && core.generation == node.generation;
  }
  std::uint32_t alive_count() const {
    return static_cast<std::uint32_t>(alive_slots_.size());
  }

  /// Uniformly random alive node. Requires alive_count() > 0.
  NodeId random_alive(Rng& rng) const {
    CHURNET_EXPECTS(!alive_slots_.empty());
    const std::uint32_t slot_index = alive_slots_[static_cast<std::size_t>(
        rng.below(alive_slots_.size()))];
    return NodeId{slot_index, core_[slot_index].generation};
  }

  /// Uniformly random alive node != exclude; invalid id if none exists.
  NodeId random_alive_other(Rng& rng, NodeId exclude) const {
    const bool exclude_alive = is_alive(exclude);
    const std::size_t candidates =
        alive_slots_.size() - (exclude_alive ? 1 : 0);
    if (candidates == 0) return kInvalidNode;
    if (!exclude_alive) return random_alive(rng);
    // Draw from the alive list skipping the excluded node's position.
    std::size_t pick = static_cast<std::size_t>(rng.below(candidates));
    const std::size_t excluded_pos = core_[exclude.slot].alive_pos;
    if (pick >= excluded_pos) ++pick;
    const std::uint32_t slot_index = alive_slots_[pick];
    return NodeId{slot_index, core_[slot_index].generation};
  }

  /// Prefetch hints for wiring loops: pull a node's hot slot record (and,
  /// once that record is cached, its next in-list insert position) toward
  /// the cache so independently drawn targets overlap their misses instead
  /// of serializing them. Pure hints — no-ops on invalid ids, no effect on
  /// behavior.
  void prefetch_node(NodeId node) const {
    if (node.slot < core_.size()) __builtin_prefetch(&core_[node.slot]);
  }
  void prefetch_in_insert(NodeId node) const {
    if (node.slot >= core_.size()) return;
    const SlotCore& core = core_[node.slot];
    if (core.in_count < core.in_cap) {
      __builtin_prefetch(&in_pool_[core.in_base + core.in_count], 1);
    }
  }

  /// Dense list of currently alive nodes (stable until the next mutation).
  std::vector<NodeId> alive_nodes() const;

  /// Appends the alive nodes to `out` (same deterministic order as
  /// alive_nodes) — for per-step full scans that reuse one buffer instead
  /// of allocating.
  void append_alive_nodes(std::vector<NodeId>& out) const;

  // ---- per-node queries ------------------------------------------------

  /// Monotone global birth sequence number (0 for the first node ever).
  std::uint64_t birth_seq(NodeId node) const {
    return birth_seqs_[checked_slot(node)];
  }
  /// Model timestamp passed to add_node.
  double birth_time(NodeId node) const {
    return birth_times_[checked_slot(node)];
  }

  std::uint32_t out_slot_count(NodeId node) const {
    return core_of(node).out_count;
  }
  /// Number of non-dangling out-edges.
  std::uint32_t out_degree(NodeId node) const {
    const SlotCore& core = core_of(node);
    std::uint32_t degree = 0;
    for (std::uint32_t i = 0; i < core.out_count; ++i) {
      degree += out_pool_[core.out_base + i].peer != NodeId::kInvalidSlot;
    }
    return degree;
  }
  std::uint32_t in_degree(NodeId node) const { return core_of(node).in_count; }
  /// out_degree + in_degree (parallel edges counted with multiplicity).
  std::uint32_t degree(NodeId node) const {
    return out_degree(node) + in_degree(node);
  }

  /// Appends all current neighbors of `node` (out-targets then in-sources,
  /// with multiplicity) to `out`. Cheap enough for flooding hot loops: both
  /// edge runs are contiguous in their pools, and live peers are alive by
  /// construction so their NodeIds rebuild from the slot records.
  void append_neighbors(NodeId node, std::vector<NodeId>& out) const {
    const SlotCore& core = core_of(node);
    for (std::uint32_t i = 0; i < core.out_count; ++i) {
      const std::uint32_t peer = out_pool_[core.out_base + i].peer;
      if (peer != NodeId::kInvalidSlot) {
        out.push_back(NodeId{peer, core_[peer].generation});
      }
    }
    for (std::uint32_t i = 0; i < core.in_count; ++i) {
      const std::uint32_t peer = in_pool_[core.in_base + i].peer;
      out.push_back(NodeId{peer, core_[peer].generation});
    }
  }

  /// Slot-only variant for the flood fast path: appends neighbor *slots*
  /// (out-targets then in-sources, with multiplicity — the exact
  /// append_neighbors order) without touching the peers' generation words.
  /// Live peers are alive by construction, so slot identity is enough for
  /// membership tests keyed by slot; the scan never drags the peers' hot
  /// records through the cache.
  void append_neighbor_slots(std::uint32_t slot,
                             std::vector<std::uint32_t>& out) const {
    const SlotCore& core = core_[slot];
    for (std::uint32_t i = 0; i < core.out_count; ++i) {
      const std::uint32_t peer = out_pool_[core.out_base + i].peer;
      if (peer != NodeId::kInvalidSlot) out.push_back(peer);
    }
    for (std::uint32_t i = 0; i < core.in_count; ++i) {
      out.push_back(in_pool_[core.in_base + i].peer);
    }
  }

  /// Whether the slot currently hosts an alive node (generation-blind
  /// liveness for slot-keyed fast paths).
  bool slot_alive(std::uint32_t slot) const {
    return slot < core_.size() && core_[slot].alive != 0;
  }

  /// Full NodeId of the alive node hosted at `slot`; requires
  /// slot_alive(slot). Pairs with slot_alive for slot-scan consumers (e.g.
  /// the GraphReadView adapter) that need generation-checked handles.
  NodeId alive_id_at(std::uint32_t slot) const {
    CHURNET_EXPECTS(slot_alive(slot));
    return NodeId{slot, core_[slot].generation};
  }

  /// Bulk genesis wiring (src/graph/bulk_wiring.cpp): installs the edge
  /// list of a pure-growth phase — edge e points out-slot (e % out_slots)
  /// of slot (e / out_slots) at slot targets[e], kInvalidSlot entries
  /// dangle — producing per-node adjacency *contents* identical to issuing
  /// the same set_out_edge calls in ascending e order. Requires a freshly
  /// grown graph: every slot alive at generation 0 with `out_slots`
  /// dangling out-edges and an empty in-list. Radix-buckets edges by
  /// target block so in-list inserts are cache-resident, and shards the
  /// passes over `intra_threads` workers with thread-count-invariant
  /// results.
  void bulk_wire_genesis(std::uint32_t out_slots,
                         std::span<const std::uint32_t> targets,
                         unsigned intra_threads);

  /// Attaches a caller-owned change feed: every subsequent mutation records
  /// a GraphDelta (see graph/change_feed.hpp for the delta contract).
  /// nullptr detaches. The feed must outlive the attachment; recording is a
  /// branch-plus-append per mutation, zero when detached.
  void attach_change_feed(ChangeFeed* feed) { feed_ = feed; }

  /// The currently attached feed, nullptr when detached.
  const ChangeFeed* change_feed() const { return feed_; }

  /// Total number of (directed) edges currently present.
  std::uint64_t edge_count() const { return edge_count_; }

  /// Number of births since construction (== next birth_seq).
  std::uint64_t total_births() const { return next_birth_seq_; }

  /// Exclusive upper bound on slot indices ever allocated; alive nodes have
  /// distinct slots below this bound (used for dense slot-indexed scratch).
  std::uint32_t slot_upper_bound() const {
    return static_cast<std::uint32_t>(core_.size());
  }

  /// Verifies the full doubly-indexed adjacency invariant; O(V+E).
  /// Used by tests and debug assertions, returns true when consistent.
  bool check_consistency() const;

 private:
  /// Pooled out-slot entry (8 bytes): slot of the live target, or
  /// kInvalidSlot when dangling, plus the back-pointer into the target's
  /// in-list.
  struct OutEdge {
    std::uint32_t peer = NodeId::kInvalidSlot;
    std::uint32_t in_pos = 0;
  };
  /// Pooled in-list entry (8 bytes): slot of the live source plus the index
  /// of the out-slot in the source's run that carries this edge.
  struct InEdge {
    std::uint32_t peer = NodeId::kInvalidSlot;
    std::uint32_t out_index = 0;
  };
  /// Hot per-slot record: 32 bytes, two per cache line. Cold per-slot data
  /// (birth_seq, birth_time) lives in parallel arrays so churn-loop access
  /// patterns never drag it through the cache.
  struct SlotCore {
    std::uint32_t generation = 0;
    std::uint32_t alive = 0;        // bool; u32 keeps the record at 32 bytes
    std::uint32_t alive_pos = 0;    // index into alive_slots_
    std::uint32_t out_base = 0;     // first out-slot in out_pool_
    std::uint32_t out_count = 0;    // == the node's out-slot count (stride)
    std::uint32_t in_base = 0;      // first in-edge in in_pool_
    std::uint32_t in_count = 0;     // live in-edges
    std::uint32_t in_cap = 0;       // chunk capacity (0 = no chunk held)
  };

  /// Smallest in-list chunk; every chunk capacity is kMinInChunk << class.
  static constexpr std::uint32_t kMinInChunk = 4;
  static constexpr std::uint32_t kInClassCount = 26;  // caps 4 .. 4<<25

  static std::uint32_t in_class_of(std::uint32_t cap) {
    std::uint32_t cls = 0;
    while ((kMinInChunk << cls) < cap) ++cls;
    return cls;
  }

  std::uint32_t checked_slot(NodeId node) const {
    CHURNET_EXPECTS(node.valid() && node.slot < core_.size());
    CHURNET_EXPECTS(core_[node.slot].generation == node.generation);
    return node.slot;
  }
  const SlotCore& core_of(NodeId node) const {
    return core_[checked_slot(node)];
  }
  SlotCore& core_of(NodeId node) { return core_[checked_slot(node)]; }

  /// Swap-with-last removal from a node's in-list; fixes the moved entry's
  /// back-pointer in its source's out-slot run.
  void detach_in_entry(SlotCore& target_core, std::uint32_t in_pos) {
    CHURNET_ASSERT(in_pos < target_core.in_count);
    const std::uint32_t last = target_core.in_count - 1;
    if (in_pos != last) {
      InEdge& moved = in_pool_[target_core.in_base + in_pos];
      moved = in_pool_[target_core.in_base + last];
      out_pool_[core_[moved.peer].out_base + moved.out_index].in_pos = in_pos;
    }
    target_core.in_count = last;
  }

  std::uint32_t grow_slot_arrays();                      // cold: new slot
  std::uint32_t acquire_out_run(std::uint32_t stride);
  void release_out_run(std::uint32_t base, std::uint32_t stride);
  void release_in_chunk(std::uint32_t base, std::uint32_t cap) {
    in_free_[in_class_of(cap)].push_back(base);
  }
  void grow_in_chunk(SlotCore& core);                    // cold: upgrade

  // ---- arenas ----------------------------------------------------------
  std::vector<SlotCore> core_;
  std::vector<std::uint64_t> birth_seqs_;   // cold, parallel to core_
  std::vector<double> birth_times_;         // cold, parallel to core_
  std::vector<OutEdge> out_pool_;           // strided out-slot runs
  std::vector<InEdge> in_pool_;             // capacity-class in-list chunks

  // Free runs, recycled without touching the allocator. Out runs are keyed
  // by stride (one entry per distinct out-slot count ever used — in
  // practice a single entry, the model's d); in chunks by capacity class.
  struct OutFreeList {
    std::uint32_t stride = 0;
    std::vector<std::uint32_t> bases;
  };
  std::vector<OutFreeList> out_free_;
  std::vector<std::uint32_t> in_free_[kInClassCount];
  std::uint32_t first_in_cap_ = kMinInChunk;  // reserve()'s chunk-size hint

  std::vector<std::uint32_t> alive_slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_birth_seq_ = 0;
  std::uint64_t edge_count_ = 0;
  ChangeFeed* feed_ = nullptr;  // optional delta recording (attach_change_feed)
};

}  // namespace churnet
