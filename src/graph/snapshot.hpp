// Immutable CSR snapshot of a DynamicGraph at one instant.
//
// Analyses (expansion, BFS, components, degree statistics) run on snapshots:
// they are cache-friendly, cannot be invalidated by churn, and give every
// alive node a dense index. Indices are assigned oldest-first (ascending
// birth sequence), which the demographic analyses of Section 4 rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/change_feed.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/node_id.hpp"

namespace churnet {

/// Caller-owned scratch for Snapshot::update — pooled work buffers reused
/// across updates so a steady-state observation loop stops allocating once
/// they have grown to the population's working size.
struct SnapshotScratch {
  std::vector<std::uint32_t> slot_index;
  std::vector<std::uint32_t> degrees;
  std::vector<std::uint64_t> cursor;
};

class Snapshot {
 public:
  /// Captures the current alive subgraph of `graph` at time `now`
  /// (used to report node ages).
  static Snapshot capture(const DynamicGraph& graph, double now);

  /// Applies a window of graph deltas to `snap` in place, bringing it to
  /// the state capture(graph, now) would build — equal on every observable
  /// (node order, ids, birth seqs, ages, CSR adjacency), bit-exact
  /// including the double-valued ages. `deltas` must cover every mutation
  /// since `snap` was last captured/updated against `graph`; only kBirth
  /// entries are consumed (deaths are detected via liveness, and the CSR is
  /// rebuilt from the graph), so passing the whole feed is fine. Skips the
  /// O(n log n) birth-order sort capture pays: survivors keep their
  /// ascending-birth-seq order under compaction and newborns append in feed
  /// order, which is already seq order.
  static void update(const DynamicGraph& graph,
                     std::span<const GraphDelta> deltas, double now,
                     Snapshot& snap, SnapshotScratch& scratch);

  /// Builds a static snapshot from an explicit undirected edge list over
  /// nodes 0..n-1 (used by baselines and tests). NodeIds are synthetic
  /// ({slot=i, generation=0}), birth order equals index order, all ages 0.
  static Snapshot from_edges(
      std::uint32_t n,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(node_ids_.size());
  }
  /// Undirected edge count (each request edge counted once).
  std::uint64_t edge_count() const { return adjacency_.size() / 2; }

  /// Neighbors of node `index`, with multiplicity for parallel edges.
  std::span<const std::uint32_t> neighbors(std::uint32_t index) const;

  std::uint32_t degree(std::uint32_t index) const;

  /// Dense index -> stable NodeId in the originating graph.
  NodeId node_id(std::uint32_t index) const { return node_ids_.at(index); }

  /// Stable NodeId -> dense index, if the node is in this snapshot.
  std::optional<std::uint32_t> index_of(NodeId id) const;

  /// Global birth sequence number of node `index` (monotone with age:
  /// smaller == older). Indices are sorted by this, ascending.
  std::uint64_t birth_seq(std::uint32_t index) const {
    return birth_seqs_.at(index);
  }

  /// Age of node `index` at capture time, in model time units.
  double age(std::uint32_t index) const { return ages_.at(index); }

  /// Capture timestamp.
  double time() const { return time_; }

 private:
  double time_ = 0.0;
  std::vector<NodeId> node_ids_;
  std::vector<std::uint64_t> birth_seqs_;
  std::vector<double> ages_;
  std::vector<std::uint64_t> offsets_;     // size node_count()+1
  std::vector<std::uint32_t> adjacency_;   // concatenated neighbor lists
  std::unordered_map<NodeId, std::uint32_t> index_;
};

}  // namespace churnet
