// Graph change feed: the delta stream behind incremental observation.
//
// A ChangeFeed is a caller-owned scratch ring, the recording sibling of
// RemovalScratch: a DynamicGraph with a feed attached appends one GraphDelta
// per mutation (birth, death, edge set, edge clear) into the feed's pooled
// buffer. The consumer drains with deltas() + clear(); capacity is retained
// across clears, so steady-state recording performs zero heap allocations
// once the buffer has grown to the peak per-window delta count.
//
// The delta contract (DESIGN.md, decision 15):
//
//   * Deltas appear in exact mutation order. Replaying them against a copy
//     of the graph's adjacency taken at the last drain reconstructs the
//     current adjacency (tests/test_graph_stress.cpp proves this against
//     the shadow model).
//   * kEdgeClear deltas for a dying node's incident edges precede its
//     kDeath delta (both directions: its own out-edges first, in slot
//     order, then the out-slots of other nodes that pointed at it, in
//     in-list order — the same deterministic order as RemovalScratch's
//     orphan report). A consumer therefore never sees an edge delta naming
//     a node whose death it has already seen.
//   * NodeIds in deltas are generation-qualified: `target` of a kEdgeClear
//     emitted during a removal names the still-alive generation of the
//     peer, captured before detachment.
//   * kBirth carries the node's out-slot count in `index` and its model
//     birth timestamp in `time`; new out-slots are born dangling, so a
//     birth implies no edges.
//
// Bulk genesis wiring (bulk_wire_genesis) bypasses per-edge mutators and
// does not emit deltas; DynamicGraph rejects it while a feed is attached,
// and the model layer falls back to the exact sequential round loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/node_id.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {

/// One graph mutation, 32 bytes.
struct GraphDelta {
  enum class Kind : std::uint32_t {
    kBirth,      // node born: `node` = id, `index` = out-slot count,
                 // `time` = birth timestamp
    kDeath,      // node died: `node` = id (its edge clears precede this)
    kEdgeSet,    // out-slot `index` of `node` now points at `target`
    kEdgeClear,  // out-slot `index` of `node` detached from `target`
  };

  Kind kind = Kind::kBirth;
  std::uint32_t index = 0;
  NodeId node;
  NodeId target;
  double time = 0.0;

  friend bool operator==(const GraphDelta&, const GraphDelta&) = default;
};

/// Caller-owned delta buffer a DynamicGraph records into (see
/// DynamicGraph::attach_change_feed). Not thread-safe; one feed per graph.
class ChangeFeed {
 public:
  /// The recorded deltas, in mutation order, since the last clear().
  std::span<const GraphDelta> deltas() const { return deltas_; }

  std::size_t size() const { return deltas_.size(); }
  bool empty() const { return deltas_.empty(); }

  /// Drops all recorded deltas, retaining capacity (zero-allocation reuse).
  void clear() { deltas_.clear(); }

  // ---- recording interface (called by DynamicGraph) --------------------

  void record_birth(NodeId node, std::uint32_t out_slots, double time) {
    telemetry::count(telemetry::Counter::kDeltas);
    deltas_.push_back(
        GraphDelta{GraphDelta::Kind::kBirth, out_slots, node, kInvalidNode,
                   time});
  }
  void record_death(NodeId node) {
    telemetry::count(telemetry::Counter::kDeltas);
    deltas_.push_back(
        GraphDelta{GraphDelta::Kind::kDeath, 0, node, kInvalidNode, 0.0});
  }
  void record_edge_set(NodeId owner, std::uint32_t index, NodeId target) {
    telemetry::count(telemetry::Counter::kDeltas);
    deltas_.push_back(
        GraphDelta{GraphDelta::Kind::kEdgeSet, index, owner, target, 0.0});
  }
  void record_edge_clear(NodeId owner, std::uint32_t index, NodeId target) {
    telemetry::count(telemetry::Counter::kDeltas);
    deltas_.push_back(
        GraphDelta{GraphDelta::Kind::kEdgeClear, index, owner, target, 0.0});
  }

 private:
  std::vector<GraphDelta> deltas_;
};

}  // namespace churnet
