// Cold paths of the flat-arena DynamicGraph: reservation, pool growth,
// whole-graph scans and the consistency audit. The hot mutators live in the
// header so model round loops inline them.
#include "graph/dynamic_graph.hpp"

#include <algorithm>

namespace churnet {

void DynamicGraph::reserve(std::uint32_t nodes, std::uint32_t out_slots_hint) {
  // One extra slot of headroom: churn loops briefly hold n alive nodes plus
  // the round's newborn-to-be bookkeeping.
  const std::size_t slots = static_cast<std::size_t>(nodes) + 1;
  core_.reserve(slots);
  birth_seqs_.reserve(slots);
  birth_times_.reserve(slots);
  alive_slots_.reserve(slots);
  free_slots_.reserve(slots);
  out_pool_.reserve(slots * out_slots_hint);
  // Seed the chunk-size hint so a node's first in-list chunk already fits
  // the typical in-degree (~out_slots_hint); heavier nodes upgrade chunks
  // geometrically. Reserve one such chunk per slot plus 50% headroom for
  // the in-degree distribution's upper tail.
  first_in_cap_ = kMinInChunk
                  << in_class_of(std::max(out_slots_hint, kMinInChunk));
  out_free_.reserve(4);
  in_pool_.reserve(slots * first_in_cap_ + slots * first_in_cap_ / 2);
}

std::uint32_t DynamicGraph::grow_slot_arrays() {
  const auto slot_index = static_cast<std::uint32_t>(core_.size());
  CHURNET_EXPECTS(slot_index != NodeId::kInvalidSlot);
  core_.emplace_back();
  birth_seqs_.emplace_back();
  birth_times_.emplace_back();
  return slot_index;
}

std::vector<OutSlotRef> DynamicGraph::remove_node(NodeId node) {
  RemovalScratch scratch;
  remove_node(node, scratch);
  return std::move(scratch.orphans);
}

std::vector<NodeId> DynamicGraph::alive_nodes() const {
  std::vector<NodeId> nodes;
  append_alive_nodes(nodes);
  return nodes;
}

void DynamicGraph::append_alive_nodes(std::vector<NodeId>& out) const {
  out.reserve(out.size() + alive_slots_.size());
  for (const std::uint32_t slot_index : alive_slots_) {
    out.push_back(NodeId{slot_index, core_[slot_index].generation});
  }
}

bool DynamicGraph::check_consistency() const {
  std::uint64_t seen_edges = 0;
  for (std::uint32_t s = 0; s < core_.size(); ++s) {
    const SlotCore& core = core_[s];
    if (core.alive == 0) continue;
    if (core.alive_pos >= alive_slots_.size()) return false;
    if (alive_slots_[core.alive_pos] != s) return false;
    if (core.in_count > core.in_cap) return false;
    if (static_cast<std::uint64_t>(core.out_base) + core.out_count >
        out_pool_.size()) {
      return false;
    }
    if (core.in_cap > 0 &&
        static_cast<std::uint64_t>(core.in_base) + core.in_cap >
            in_pool_.size()) {
      return false;
    }
    for (std::uint32_t i = 0; i < core.out_count; ++i) {
      const OutEdge& edge = out_pool_[core.out_base + i];
      if (edge.peer == NodeId::kInvalidSlot) continue;
      ++seen_edges;
      if (edge.peer >= core_.size()) return false;
      const SlotCore& target_core = core_[edge.peer];
      if (target_core.alive == 0) return false;
      if (edge.in_pos >= target_core.in_count) return false;
      const InEdge& back = in_pool_[target_core.in_base + edge.in_pos];
      if (back.peer != s) return false;
      if (back.out_index != i) return false;
    }
    for (std::uint32_t i = 0; i < core.in_count; ++i) {
      const InEdge& in_edge = in_pool_[core.in_base + i];
      if (in_edge.peer >= core_.size()) return false;
      const SlotCore& source_core = core_[in_edge.peer];
      if (source_core.alive == 0) return false;
      if (in_edge.out_index >= source_core.out_count) return false;
      const OutEdge& out = out_pool_[source_core.out_base + in_edge.out_index];
      if (out.peer != s) return false;
      if (out.in_pos != i) return false;
    }
  }
  return seen_edges == edge_count_;
}

std::uint32_t DynamicGraph::acquire_out_run(std::uint32_t stride) {
  for (OutFreeList& list : out_free_) {
    if (list.stride != stride) continue;
    if (list.bases.empty()) break;
    const std::uint32_t base = list.bases.back();
    list.bases.pop_back();
    return base;
  }
  const std::size_t base = out_pool_.size();
  CHURNET_EXPECTS(base + stride <= NodeId::kInvalidSlot);
  out_pool_.resize(base + stride);
  return static_cast<std::uint32_t>(base);
}

void DynamicGraph::release_out_run(std::uint32_t base, std::uint32_t stride) {
  for (OutFreeList& list : out_free_) {
    if (list.stride == stride) {
      list.bases.push_back(base);
      return;
    }
  }
  out_free_.push_back(OutFreeList{stride, {base}});
}

void DynamicGraph::grow_in_chunk(SlotCore& core) {
  // First chunk at the reserve() hint size, then geometric upgrades; the
  // retired chunk returns to its class free list, so steady-state churn
  // recycles chunks without touching the allocator.
  const std::uint32_t new_cap =
      core.in_cap == 0 ? first_in_cap_ : core.in_cap * 2;
  const std::uint32_t cls = in_class_of(new_cap);
  CHURNET_EXPECTS(cls < kInClassCount);
  std::uint32_t new_base;
  std::vector<std::uint32_t>& list = in_free_[cls];
  if (!list.empty()) {
    new_base = list.back();
    list.pop_back();
  } else {
    const std::size_t base = in_pool_.size();
    const std::uint32_t cap = kMinInChunk << cls;
    CHURNET_EXPECTS(base + cap <= NodeId::kInvalidSlot);
    in_pool_.resize(base + cap);
    new_base = static_cast<std::uint32_t>(base);
  }
  if (core.in_count > 0) {
    std::copy_n(in_pool_.begin() + core.in_base, core.in_count,
                in_pool_.begin() + new_base);
  }
  if (core.in_cap > 0) release_in_chunk(core.in_base, core.in_cap);
  core.in_base = new_base;
  core.in_cap = kMinInChunk << cls;
}

}  // namespace churnet
