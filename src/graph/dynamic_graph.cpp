#include "graph/dynamic_graph.hpp"

#include <algorithm>

namespace churnet {

NodeId DynamicGraph::add_node(std::uint32_t out_slots, double birth_time) {
  std::uint32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<std::uint32_t>(slots_.size());
    CHURNET_EXPECTS(slot_index != NodeId::kInvalidSlot);
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.alive = true;
  slot.alive_pos = static_cast<std::uint32_t>(alive_slots_.size());
  slot.birth_seq = next_birth_seq_++;
  slot.birth_time = birth_time;
  slot.out.assign(out_slots, OutEdge{});
  slot.in.clear();
  alive_slots_.push_back(slot_index);
  return NodeId{slot_index, slot.generation};
}

std::vector<OutSlotRef> DynamicGraph::remove_node(NodeId node) {
  Slot& slot = slot_of(node);
  CHURNET_EXPECTS(slot.alive);

  // Detach this node's out-edges from their targets' in-lists.
  for (std::uint32_t i = 0; i < slot.out.size(); ++i) {
    OutEdge& edge = slot.out[i];
    if (!edge.target.valid()) continue;
    detach_in_entry(slot_of(edge.target), edge.in_pos);
    edge.target = kInvalidNode;
    --edge_count_;
  }

  // Clear the out-slots of nodes pointing at us, reporting each orphan.
  std::vector<OutSlotRef> orphans;
  orphans.reserve(slot.in.size());
  for (const InEdge& in_edge : slot.in) {
    Slot& source_slot = slot_of(in_edge.source);
    OutEdge& out_edge = source_slot.out[in_edge.out_index];
    CHURNET_ASSERT(out_edge.target == node);
    out_edge.target = kInvalidNode;
    --edge_count_;
    orphans.push_back(OutSlotRef{in_edge.source, in_edge.out_index});
  }
  slot.in.clear();

  // Remove from the dense alive list (swap with the last entry).
  const std::uint32_t last_slot = alive_slots_.back();
  alive_slots_[slot.alive_pos] = last_slot;
  slots_[last_slot].alive_pos = slot.alive_pos;
  alive_slots_.pop_back();

  slot.alive = false;
  ++slot.generation;  // invalidate outstanding NodeIds for this slot
  slot.out.clear();
  free_slots_.push_back(node.slot);
  return orphans;
}

void DynamicGraph::set_out_edge(NodeId owner, std::uint32_t index,
                                NodeId target) {
  CHURNET_EXPECTS(owner != target);
  Slot& owner_slot = slot_of(owner);
  CHURNET_EXPECTS(owner_slot.alive);
  CHURNET_EXPECTS(index < owner_slot.out.size());
  OutEdge& edge = owner_slot.out[index];
  CHURNET_EXPECTS(!edge.target.valid());
  Slot& target_slot = slot_of(target);
  CHURNET_EXPECTS(target_slot.alive);
  edge.target = target;
  edge.in_pos = static_cast<std::uint32_t>(target_slot.in.size());
  target_slot.in.push_back(InEdge{owner, index});
  ++edge_count_;
}

void DynamicGraph::clear_out_edge(NodeId owner, std::uint32_t index) {
  Slot& owner_slot = slot_of(owner);
  CHURNET_EXPECTS(owner_slot.alive);
  CHURNET_EXPECTS(index < owner_slot.out.size());
  OutEdge& edge = owner_slot.out[index];
  CHURNET_EXPECTS(edge.target.valid());
  detach_in_entry(slot_of(edge.target), edge.in_pos);
  edge.target = kInvalidNode;
  --edge_count_;
}

NodeId DynamicGraph::out_target(NodeId owner, std::uint32_t index) const {
  const Slot& slot = slot_of(owner);
  CHURNET_EXPECTS(index < slot.out.size());
  return slot.out[index].target;
}

bool DynamicGraph::is_alive(NodeId node) const {
  if (!node.valid() || node.slot >= slots_.size()) return false;
  const Slot& slot = slots_[node.slot];
  return slot.alive && slot.generation == node.generation;
}

NodeId DynamicGraph::random_alive(Rng& rng) const {
  CHURNET_EXPECTS(!alive_slots_.empty());
  const std::uint32_t slot_index = alive_slots_[static_cast<std::size_t>(
      rng.below(alive_slots_.size()))];
  return NodeId{slot_index, slots_[slot_index].generation};
}

NodeId DynamicGraph::random_alive_other(Rng& rng, NodeId exclude) const {
  const bool exclude_alive = is_alive(exclude);
  const std::size_t candidates =
      alive_slots_.size() - (exclude_alive ? 1 : 0);
  if (candidates == 0) return kInvalidNode;
  if (!exclude_alive) return random_alive(rng);
  // Draw from the alive list skipping the excluded node's position.
  std::size_t pick = static_cast<std::size_t>(rng.below(candidates));
  const std::size_t excluded_pos = slots_[exclude.slot].alive_pos;
  if (pick >= excluded_pos) ++pick;
  const std::uint32_t slot_index = alive_slots_[pick];
  return NodeId{slot_index, slots_[slot_index].generation};
}

std::vector<NodeId> DynamicGraph::alive_nodes() const {
  std::vector<NodeId> nodes;
  append_alive_nodes(nodes);
  return nodes;
}

void DynamicGraph::append_alive_nodes(std::vector<NodeId>& out) const {
  out.reserve(out.size() + alive_slots_.size());
  for (const std::uint32_t slot_index : alive_slots_) {
    out.push_back(NodeId{slot_index, slots_[slot_index].generation});
  }
}

std::uint64_t DynamicGraph::birth_seq(NodeId node) const {
  return slot_of(node).birth_seq;
}

double DynamicGraph::birth_time(NodeId node) const {
  return slot_of(node).birth_time;
}

std::uint32_t DynamicGraph::out_slot_count(NodeId node) const {
  return static_cast<std::uint32_t>(slot_of(node).out.size());
}

std::uint32_t DynamicGraph::out_degree(NodeId node) const {
  const Slot& slot = slot_of(node);
  std::uint32_t degree = 0;
  for (const OutEdge& edge : slot.out) degree += edge.target.valid() ? 1 : 0;
  return degree;
}

std::uint32_t DynamicGraph::in_degree(NodeId node) const {
  return static_cast<std::uint32_t>(slot_of(node).in.size());
}

std::uint32_t DynamicGraph::degree(NodeId node) const {
  return out_degree(node) + in_degree(node);
}

void DynamicGraph::append_neighbors(NodeId node,
                                    std::vector<NodeId>& out) const {
  const Slot& slot = slot_of(node);
  for (const OutEdge& edge : slot.out) {
    if (edge.target.valid()) out.push_back(edge.target);
  }
  for (const InEdge& edge : slot.in) out.push_back(edge.source);
}

bool DynamicGraph::check_consistency() const {
  std::uint64_t seen_edges = 0;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    if (!slot.alive) continue;
    if (slot.alive_pos >= alive_slots_.size()) return false;
    if (alive_slots_[slot.alive_pos] != s) return false;
    for (std::uint32_t i = 0; i < slot.out.size(); ++i) {
      const OutEdge& edge = slot.out[i];
      if (!edge.target.valid()) continue;
      ++seen_edges;
      if (!is_alive(edge.target)) return false;
      const Slot& target_slot = slots_[edge.target.slot];
      if (edge.in_pos >= target_slot.in.size()) return false;
      const InEdge& back = target_slot.in[edge.in_pos];
      if (back.source != NodeId{s, slot.generation}) return false;
      if (back.out_index != i) return false;
    }
    for (const InEdge& in_edge : slot.in) {
      if (!is_alive(in_edge.source)) return false;
      const Slot& source_slot = slots_[in_edge.source.slot];
      if (in_edge.out_index >= source_slot.out.size()) return false;
      const NodeId self{s, slot.generation};
      if (source_slot.out[in_edge.out_index].target != self) return false;
    }
  }
  return seen_edges == edge_count_;
}

const DynamicGraph::Slot& DynamicGraph::slot_of(NodeId node) const {
  CHURNET_EXPECTS(node.valid() && node.slot < slots_.size());
  const Slot& slot = slots_[node.slot];
  CHURNET_EXPECTS(slot.generation == node.generation);
  return slot;
}

DynamicGraph::Slot& DynamicGraph::slot_of(NodeId node) {
  return const_cast<Slot&>(
      static_cast<const DynamicGraph*>(this)->slot_of(node));
}

void DynamicGraph::detach_in_entry(Slot& target_slot, std::uint32_t in_pos) {
  CHURNET_ASSERT(in_pos < target_slot.in.size());
  const std::uint32_t last = static_cast<std::uint32_t>(
      target_slot.in.size() - 1);
  if (in_pos != last) {
    target_slot.in[in_pos] = target_slot.in[last];
    // Fix the moved entry's back-pointer in its source's out-slot.
    const InEdge& moved = target_slot.in[in_pos];
    slots_[moved.source.slot].out[moved.out_index].in_pos = in_pos;
  }
  target_slot.in.pop_back();
}

}  // namespace churnet
