#include "telemetry/telemetry.hpp"

namespace churnet::telemetry {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kGenesis: return "genesis";
    case Phase::kChurn: return "churn";
    case Phase::kDissemination: return "dissemination";
    case Phase::kDeltaFold: return "delta_fold";
    case Phase::kObserve: return "observe";
    case Phase::kSnapshot: return "snapshot";
  }
  return "unknown";
}

const char* counter_name(Counter counter) {
  switch (counter) {
    case Counter::kChurnEvents: return "churn_events";
    case Counter::kDeltas: return "deltas";
    case Counter::kMessages: return "messages";
    case Counter::kSnapshotBytes: return "snapshot_bytes";
    case Counter::kSnapshots: return "snapshots";
    case Counter::kObservations: return "observations";
    case Counter::kTrials: return "trials";
  }
  return "unknown";
}

}  // namespace churnet::telemetry
