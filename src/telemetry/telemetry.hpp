// Runtime telemetry: hierarchical phase timers and monotonic counters for
// the simulation engine itself (DESIGN.md §7, decision 16).
//
// The observer pipeline measures the *graph*; this layer measures the
// *system* — where a multi-hour sweep spends its wall clock (genesis
// wiring, churn stepping, dissemination, delta folding, snapshot builds,
// observation) and how much work it pushed through (churn events, deltas,
// messages, snapshot bytes). Accumulation is thread-local (one fixed-size
// `Totals` per thread, no locks, no allocation); drivers fold per-trial
// slices out of the thread-local stream with a `TrialRecorder` and hand
// them to the TraceSink (telemetry/trace_sink.hpp) for NDJSON streaming.
//
// The hard contract — telemetry is off-path by construction:
//
//   * No RNG: nothing here draws randomness or touches any network, graph
//     or observer state. Spans read the steady clock; counters increment a
//     thread-local integer. Every deterministic output (sweep CSV/JSON,
//     repro goldens, BENCH deterministic fields) is byte-identical with
//     telemetry on or off, at any thread count — CI cmp's it.
//   * Zero steady-state allocation: `Totals` is a fixed struct, the
//     thread-local accumulator is eagerly constructed, and span
//     enter/exit, counting and recorder snapshots never allocate
//     (tests/test_telemetry.cpp pins this with a counting allocator).
//   * Cheap when dormant: spans check one relaxed atomic and skip the
//     clock when disabled; counters are a single thread-local add. Spans
//     wrap *loops and phases*, never individual churn steps, so the
//     enabled-mode overhead on the steady churn loop stays < 3%
//     (bench_perf_suite's telemetry_overhead section pins it).
//   * Compile-off: configuring with -DCHURNET_TELEMETRY=OFF defines
//     CHURNET_TELEMETRY_DISABLED, which compiles spans and counters to
//     empty inlines; the Totals/TraceSink plumbing stays available (it
//     just reports zeros) so callers need no #ifdefs.
//
// Phase hierarchy (what nests inside what, for report folding):
//
//   genesis        — model construction + warm-up (make_warmed)
//   churn          — observation-window churn loops (outside dissemination)
//     delta_fold   — ObserverSet::on_deltas (child of churn in sweeps)
//   dissemination  — one flood/protocol run, churn-during-flood included
//   observe        — ObserverSet::observe (measurement point)
//     snapshot     — dense Snapshot capture/update (child of observe)
//
// Same-phase re-entry is depth-guarded: only the outermost span of a phase
// records time, so a run_growth_phase span inside a make_warmed span never
// double-counts genesis nanoseconds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace churnet::telemetry {

enum class Phase : std::uint8_t {
  kGenesis = 0,    // model construction + warm-up
  kChurn,          // observation-window churn stepping
  kDissemination,  // one flood / protocol run
  kDeltaFold,      // incremental observers folding a delta window
  kObserve,        // ObserverSet::observe measurement point
  kSnapshot,       // dense snapshot capture / in-place update
};
inline constexpr std::size_t kPhaseCount = 6;

enum class Counter : std::uint8_t {
  kChurnEvents = 0,  // node births + deaths (DynamicGraph mutations)
  kDeltas,           // GraphDeltas recorded into change feeds
  kMessages,         // dissemination messages (transmissions + probes)
  kSnapshotBytes,    // bytes materialized into dense snapshots
  kSnapshots,        // dense snapshot builds/updates
  kObservations,     // ObserverSet::observe calls
  kTrials,           // trials folded by a TrialRecorder
};
inline constexpr std::size_t kCounterCount = 7;

/// Stable lower_snake names for sinks and reports ("genesis", "churn", ...).
const char* phase_name(Phase phase);
/// Stable lower_snake names ("churn_events", "deltas", ...).
const char* counter_name(Counter counter);

/// One accumulation bucket: per-phase span nanoseconds + call counts plus
/// the monotonic counters. Plain data; merging and diffing are exact
/// (unsigned wrap-free in practice: 2^64 ns ≈ 584 years).
struct Totals {
  std::uint64_t phase_ns[kPhaseCount] = {};
  std::uint64_t phase_calls[kPhaseCount] = {};
  std::uint64_t counters[kCounterCount] = {};

  void clear() { *this = Totals{}; }
  void merge(const Totals& other) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      phase_ns[p] += other.phase_ns[p];
      phase_calls[p] += other.phase_calls[p];
    }
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      counters[c] += other.counters[c];
    }
  }
  /// this - since, field by field (for TrialRecorder slices).
  Totals diff(const Totals& since) const {
    Totals out;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out.phase_ns[p] = phase_ns[p] - since.phase_ns[p];
      out.phase_calls[p] = phase_calls[p] - since.phase_calls[p];
    }
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      out.counters[c] = counters[c] - since.counters[c];
    }
    return out;
  }
  std::uint64_t phase_total_ns() const {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kPhaseCount; ++p) total += phase_ns[p];
    return total;
  }
  bool empty() const {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (phase_ns[p] != 0 || phase_calls[p] != 0) return false;
    }
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      if (counters[c] != 0) return false;
    }
    return true;
  }
};

#if !defined(CHURNET_TELEMETRY_DISABLED)

namespace detail {

/// Global runtime switch. Spans consult it so a build that never asks for
/// telemetry pays one relaxed load per phase, not two clock reads.
inline std::atomic<bool> g_enabled{false};

/// Thread-local accumulation state. Eagerly value-initialized per thread;
/// fixed size, so touching it never allocates.
struct ThreadState {
  Totals totals;
  std::uint32_t depth[kPhaseCount] = {};  // same-phase re-entry guard
};
inline thread_local ThreadState t_state;

}  // namespace detail

/// Whether spans are currently recording. Counters accumulate regardless
/// (a thread-local add is cheaper than a well-predicted branch plus an
/// add); only clock reads are gated.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
/// Flips span recording process-wide (ScopedTraceSink does this for CLI
/// runs). Affects only whether time is measured — never what any
/// simulation computes.
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Adds `by` to a monotonic counter of the calling thread.
inline void count(Counter counter, std::uint64_t by = 1) {
  detail::t_state.totals.counters[static_cast<std::size_t>(counter)] += by;
}

/// A copy of the calling thread's accumulated totals.
inline Totals thread_totals() { return detail::t_state.totals; }

/// Resets the calling thread's totals (tests; drivers use TrialRecorder
/// diffs instead so concurrent accumulation is never lost).
inline void reset_thread_totals() {
  detail::t_state.totals.clear();
}

/// RAII phase span. Constructed cheaply when telemetry is disabled (one
/// relaxed load); when enabled, the outermost span of each phase on each
/// thread accumulates its wall time and call count into the thread totals.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase) {
    if (!enabled()) return;
    const auto index = static_cast<std::size_t>(phase);
    depth_index_ = index;  // we incremented: the destructor rebalances
    if (detail::t_state.depth[index]++ != 0) return;  // inner same-phase span
    record_ = true;
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (depth_index_ == kPhaseCount) return;  // constructed while disabled
    detail::ThreadState& state = detail::t_state;
    if (record_) {
      state.totals.phase_ns[depth_index_] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
      state.totals.phase_calls[depth_index_] += 1;
    }
    --state.depth[depth_index_];
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  // kPhaseCount = constructed while disabled (fully inert). Inner (nested
  // same-phase) spans balance the depth counter but record nothing, so the
  // outermost span stays authoritative and time is never double-counted.
  std::size_t depth_index_ = kPhaseCount;
  bool record_ = false;
  std::chrono::steady_clock::time_point start_{};
};

/// Snapshot-diff recorder for one trial on one thread: construct before
/// the trial body, finish() after — the difference is exactly this trial's
/// phase time and counter traffic (thread-local accumulation makes the
/// diff race-free). Also bumps Counter::kTrials.
class TrialRecorder {
 public:
  TrialRecorder() : start_(detail::t_state.totals) {}
  Totals finish() const {
    count(Counter::kTrials);
    return detail::t_state.totals.diff(start_);
  }

 private:
  Totals start_;
};

#else  // CHURNET_TELEMETRY_DISABLED: spans and counters compile away.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void count(Counter, std::uint64_t = 1) {}
inline Totals thread_totals() { return Totals{}; }
inline void reset_thread_totals() {}

class PhaseTimer {
 public:
  explicit PhaseTimer(Phase) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
};

class TrialRecorder {
 public:
  TrialRecorder() = default;
  Totals finish() const { return Totals{}; }
};

#endif  // CHURNET_TELEMETRY_DISABLED

}  // namespace churnet::telemetry
