// Streaming NDJSON trace sink + heartbeat progress for long-running sweeps.
//
// A TraceSink turns the telemetry layer's thread-local accumulation
// (telemetry/telemetry.hpp) into a live event stream: one self-describing
// JSON object per line, flushed as it is produced, so a multi-hour sweep
// can be watched (tail -f), folded into a phase-breakdown table
// (tools/telemetry_report.py) or archived as a CI artifact while it runs.
//
// Event vocabulary (schema version 1; telemetry_report.py --check
// validates it):
//
//   trace_begin  {"ev","schema","tool","ts_ms"[,"worker"]}  first line
//   span_begin   {"ev","name","t_s"}                        coarse phases
//   span_end     {"ev","name","t_s","wall_s"}               (targets, sweeps)
//   sweep_begin  {"ev","label","cells","reps","jobs","resumed","threads",
//                 "t_s", spec}
//   job          {"ev","cell","replication","seed","t_s","wall_s",
//                 "phases":{...s},"counters":{...}, + cell identity
//                 fields [,"worker"]}
//   heartbeat    {"ev","t_s","jobs_done","jobs_resumed","jobs_total",
//                 "eta_s","threads_busy"}                   periodic
//   sweep_end    {"ev","label","jobs","wall_s","t_s",
//                 "phases":{...},"counters":{...}}          aggregate
//   trace_end    {"ev","t_s"}                               last line
//
// Ordering: every line is self-describing and carries t_s (seconds since
// trace_begin, steady clock); under multi-threaded sweeps job lines may
// interleave in completion order, which varies run to run. The trace is
// diagnostics — the deterministic surfaces (CSV/JSON results) are written
// elsewhere and are byte-identical whether or not a sink is installed.
//
// Threading: emission serializes on one mutex; events are built off the
// hot paths (once per job / heartbeat interval, never per churn step).
// Heartbeats piggyback on job completion (checked against a monotonic
// deadline), so an idle pool emits none — a sweep whose individual jobs
// are minutes long heartbeats at job granularity, which is also the
// granularity at which any progress exists to report.
//
// Install: exactly one process-global sink, set via TraceSink::install
// (ScopedTraceSink does install + telemetry::set_enabled for a scope).
// Engine code (TrialRunner, SweepRunner) consults TraceSink::global() and
// stays silent when none is installed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace churnet::telemetry {

class TraceSink {
 public:
  struct Options {
    /// NDJSON destination; nullptr = no trace lines (progress-only sink).
    /// Not owned; must outlive the sink.
    std::ostream* out = nullptr;
    /// Also print heartbeat lines to stderr ("[12/96] ..."), for humans.
    bool progress = false;
    /// Minimum seconds between heartbeat events.
    double heartbeat_seconds = 1.0;
    /// Recorded in trace_begin ("churnet_sweep", "churnet_repro", ...).
    std::string tool;
    /// Sweep-service worker id; >= 0 tags trace_begin and every job event
    /// with "worker":k so tools/telemetry_report.py can fold per-worker
    /// trace files and attribute jobs. -1 = not a worker (default).
    int worker = -1;
  };

  explicit TraceSink(Options options);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// The process-global sink, nullptr when none is installed.
  static TraceSink* global();
  /// Installs (or, with nullptr, clears) the process-global sink. Not
  /// thread-safe against concurrent engine runs — install before running.
  static void install(TraceSink* sink);

  // ---- coarse spans (targets, whole sweeps) -----------------------------

  void span_begin(std::string_view name);
  void span_end(std::string_view name);

  // ---- sweep lifecycle (called by SweepRunner) --------------------------

  /// `spec_json` is a raw JSON object fragment ({"scenarios":...}) spliced
  /// into the sweep_begin event as its "spec" field; pass "{}" when
  /// unknown. `resumed` is how many of jobs_total were restored from a
  /// checkpoint journal: progress starts at [resumed/total] and the
  /// heartbeat ETA is computed from this run's own completion rate over
  /// the *remaining* jobs, not the whole-campaign average.
  void sweep_begin(std::string_view label, std::uint64_t cells,
                   std::uint64_t replications, std::uint64_t jobs_total,
                   unsigned threads, std::string_view spec_json,
                   std::uint64_t resumed = 0);
  /// One completed (cell, replication) job with its phase/counter slice.
  /// `identity_json` is a raw fragment of extra key/value pairs to splice
  /// into the event ("\"scenario\":\"SDG\",\"n\":500"); may be empty.
  void job(std::uint64_t cell, std::uint64_t replication, std::uint64_t seed,
           double wall_seconds, const Totals& totals,
           std::string_view identity_json);
  void sweep_end(std::string_view label, double wall_seconds);

  // ---- pool progress (called by TrialRunner) ----------------------------

  void job_started();
  /// Marks one job done; emits a heartbeat when the interval elapsed.
  void job_finished();

  /// Aggregate of every job() totals since construction (sweep_end embeds
  /// it; bench code reads it for the perf section).
  Totals aggregate_totals() const;

 private:
  struct OpenSpan {
    std::string name;
    double began_s;
  };

  double elapsed_seconds() const;
  void write_line(const std::string& line);
  void emit_heartbeat();
  /// Appends {"phases":{...},"counters":{...}} fields for `totals`.
  static void append_totals(std::string& out, const Totals& totals);

  Options options_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;       // guards the progress/aggregate state
  std::mutex write_mutex_;         // serializes NDJSON line emission
  std::vector<OpenSpan> open_spans_;
  Totals aggregate_;
  std::uint64_t jobs_done_ = 0;
  std::uint64_t jobs_total_ = 0;
  std::uint64_t jobs_resumed_ = 0;
  std::uint64_t threads_busy_ = 0;
  double sweep_started_s_ = 0.0;
  double next_heartbeat_s_ = 0.0;
};

/// Scoped install for CLI tools: constructs a sink, installs it globally
/// and enables span recording; the destructor restores both. Use exactly
/// one per process at a time.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink::Options options)
      : sink_(std::move(options)) {
    TraceSink::install(&sink_);
    set_enabled(true);
  }
  ~ScopedTraceSink() {
    set_enabled(false);
    TraceSink::install(nullptr);
  }

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

  TraceSink& sink() { return sink_; }

 private:
  TraceSink sink_;
};

}  // namespace churnet::telemetry
