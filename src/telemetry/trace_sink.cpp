#include "telemetry/trace_sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace churnet::telemetry {
namespace {

TraceSink* g_sink = nullptr;

void append_f(std::string& out, const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  out += buffer;
}

void append_u(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

/// Minimal JSON string escaping for the event vocabulary (labels, spec
/// names); mirrors common/sinks.hpp rules.
void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

TraceSink::TraceSink(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {
  std::string line = "{\"ev\":\"trace_begin\",\"schema\":1,\"tool\":";
  append_json_string(line, options_.tool);
  if (options_.worker >= 0) {
    line += ",\"worker\":";
    append_u(line, static_cast<std::uint64_t>(options_.worker));
  }
  line += ",\"ts_ms\":";
  append_u(line,
           static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count()));
  line += '}';
  write_line(line);
}

TraceSink::~TraceSink() {
  std::string line = "{\"ev\":\"trace_end\",\"t_s\":";
  append_f(line, "%.3f", elapsed_seconds());
  line += '}';
  write_line(line);
}

TraceSink* TraceSink::global() { return g_sink; }
void TraceSink::install(TraceSink* sink) { g_sink = sink; }

double TraceSink::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void TraceSink::write_line(const std::string& line) {
  if (options_.out == nullptr) return;
  const std::lock_guard<std::mutex> lock(write_mutex_);
  *options_.out << line << '\n';
  options_.out->flush();  // streaming contract: lines land as they happen
}

void TraceSink::span_begin(std::string_view name) {
  std::string line = "{\"ev\":\"span_begin\",\"name\":";
  append_json_string(line, name);
  line += ",\"t_s\":";
  const double now_s = elapsed_seconds();
  append_f(line, "%.3f", now_s);
  line += '}';
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    open_spans_.push_back({std::string(name), now_s});
  }
  write_line(line);
}

void TraceSink::span_end(std::string_view name) {
  double began_s = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = open_spans_.size(); i-- > 0;) {
      if (open_spans_[i].name == name) {
        began_s = open_spans_[i].began_s;
        open_spans_.erase(open_spans_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  std::string line = "{\"ev\":\"span_end\",\"name\":";
  append_json_string(line, name);
  line += ",\"t_s\":";
  const double now_s = elapsed_seconds();
  append_f(line, "%.3f", now_s);
  line += ",\"wall_s\":";
  append_f(line, "%.3f", now_s - began_s);
  line += '}';
  write_line(line);
}

void TraceSink::sweep_begin(std::string_view label, std::uint64_t cells,
                            std::uint64_t replications,
                            std::uint64_t jobs_total, unsigned threads,
                            std::string_view spec_json,
                            std::uint64_t resumed) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // A resumed campaign starts with `resumed` jobs already done; this
    // run's rate (and the ETA) is measured over the remaining jobs only.
    jobs_done_ = resumed;
    jobs_resumed_ = resumed;
    jobs_total_ = jobs_total;
    sweep_started_s_ = elapsed_seconds();
    next_heartbeat_s_ = sweep_started_s_ + options_.heartbeat_seconds;
  }
  std::string line = "{\"ev\":\"sweep_begin\",\"label\":";
  append_json_string(line, label);
  line += ",\"cells\":";
  append_u(line, cells);
  line += ",\"reps\":";
  append_u(line, replications);
  line += ",\"jobs\":";
  append_u(line, jobs_total);
  line += ",\"resumed\":";
  append_u(line, resumed);
  line += ",\"threads\":";
  append_u(line, threads);
  line += ",\"t_s\":";
  append_f(line, "%.3f", elapsed_seconds());
  line += ",\"spec\":";
  line += spec_json.empty() ? std::string_view("{}") : spec_json;
  line += '}';
  write_line(line);
}

void TraceSink::append_totals(std::string& out, const Totals& totals) {
  out += "\"phases\":{";
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (p > 0) out += ',';
    append_json_string(out, phase_name(static_cast<Phase>(p)));
    out += ":{\"s\":";
    append_f(out, "%.6f",
             static_cast<double>(totals.phase_ns[p]) * 1e-9);
    out += ",\"calls\":";
    append_u(out, totals.phase_calls[p]);
    out += '}';
  }
  out += "},\"counters\":{";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    if (c > 0) out += ',';
    append_json_string(out, counter_name(static_cast<Counter>(c)));
    out += ':';
    append_u(out, totals.counters[c]);
  }
  out += '}';
}

void TraceSink::job(std::uint64_t cell, std::uint64_t replication,
                    std::uint64_t seed, double wall_seconds,
                    const Totals& totals, std::string_view identity_json) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aggregate_.merge(totals);
  }
  std::string line = "{\"ev\":\"job\",\"cell\":";
  append_u(line, cell);
  line += ",\"replication\":";
  append_u(line, replication);
  line += ",\"seed\":";
  append_u(line, seed);
  if (!identity_json.empty()) {
    line += ',';
    line += identity_json;
  }
  if (options_.worker >= 0) {
    line += ",\"worker\":";
    append_u(line, static_cast<std::uint64_t>(options_.worker));
  }
  line += ",\"t_s\":";
  append_f(line, "%.3f", elapsed_seconds());
  line += ",\"wall_s\":";
  append_f(line, "%.6f", wall_seconds);
  line += ',';
  append_totals(line, totals);
  line += '}';
  write_line(line);
}

void TraceSink::sweep_end(std::string_view label, double wall_seconds) {
  Totals totals;
  std::uint64_t jobs = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    totals = aggregate_;
    jobs = jobs_done_;
  }
  std::string line = "{\"ev\":\"sweep_end\",\"label\":";
  append_json_string(line, label);
  line += ",\"jobs\":";
  append_u(line, jobs);
  line += ",\"wall_s\":";
  append_f(line, "%.3f", wall_seconds);
  line += ",\"t_s\":";
  append_f(line, "%.3f", elapsed_seconds());
  line += ',';
  append_totals(line, totals);
  line += '}';
  write_line(line);
}

void TraceSink::job_started() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++threads_busy_;
}

void TraceSink::job_finished() {
  bool due = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (threads_busy_ > 0) --threads_busy_;
    ++jobs_done_;
    const double now_s = elapsed_seconds();
    if (now_s >= next_heartbeat_s_ || jobs_done_ == jobs_total_) {
      next_heartbeat_s_ = now_s + options_.heartbeat_seconds;
      due = true;
    }
  }
  if (due) emit_heartbeat();
}

void TraceSink::emit_heartbeat() {
  std::uint64_t done = 0;
  std::uint64_t resumed = 0;
  std::uint64_t total = 0;
  std::uint64_t busy = 0;
  double eta_s = 0.0;
  double now_s = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    done = jobs_done_;
    resumed = jobs_resumed_;
    total = jobs_total_;
    busy = threads_busy_;
    now_s = elapsed_seconds();
    const double elapsed = now_s - sweep_started_s_;
    // Rate over jobs *this run* completed (done - resumed): journaled
    // jobs cost this run nothing, so folding them into the rate would
    // make a resumed campaign's ETA wildly optimistic.
    const std::uint64_t fresh = done - resumed;
    eta_s = (fresh > 0 && total > done)
                ? elapsed / static_cast<double>(fresh) *
                      static_cast<double>(total - done)
                : 0.0;
  }
  std::string line = "{\"ev\":\"heartbeat\",\"t_s\":";
  append_f(line, "%.3f", now_s);
  line += ",\"jobs_done\":";
  append_u(line, done);
  line += ",\"jobs_resumed\":";
  append_u(line, resumed);
  line += ",\"jobs_total\":";
  append_u(line, total);
  line += ",\"eta_s\":";
  append_f(line, "%.1f", eta_s);
  line += ",\"threads_busy\":";
  append_u(line, busy);
  line += '}';
  write_line(line);
  if (options_.progress) {
    if (resumed > 0) {
      std::fprintf(stderr,
                   "[%" PRIu64 "/%" PRIu64 "] (%" PRIu64
                   " resumed) eta %.0fs, %" PRIu64 " thread(s) busy\n",
                   done, total, resumed, eta_s, busy);
    } else {
      std::fprintf(stderr, "[%" PRIu64 "/%" PRIu64 "] eta %.0fs, %" PRIu64
                           " thread(s) busy\n",
                   done, total, eta_s, busy);
    }
  }
}

Totals TraceSink::aggregate_totals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

}  // namespace churnet::telemetry
