// Poisson node churn (paper Definition 4.1), simulated exactly as the jump
// chain of Lemma 4.6 / Theorem C.5:
//
//   * with N alive nodes, the next event happens after Exp(lambda + N*mu);
//   * it is a birth with probability lambda / (lambda + N*mu), otherwise the
//     death of a uniformly random alive node.
//
// This is an exact sampling of the continuous-time process (superposition of
// the birth Poisson process and N independent exponential death clocks), not
// a discretization: node lifetimes come out exactly Exp(mu) distributed.
#pragma once

#include <cstdint>

#include "churn/churn_process.hpp"
#include "common/rng.hpp"

namespace churnet {

/// One churn event of the jump chain.
struct ChurnEvent {
  enum class Kind : std::uint8_t { kBirth, kDeath };
  Kind kind = Kind::kBirth;
  double time = 0.0;  // absolute continuous time of the event
};

class PoissonChurn {
 public:
  /// lambda: birth rate; mu: per-node death rate (mean lifetime 1/mu).
  /// The paper's convention is lambda = 1, mu = 1/n.
  PoissonChurn(double lambda, double mu, std::uint64_t seed);

  /// Samples the next event given the current number of alive nodes and
  /// advances the internal clock to it. Which node dies (for death events)
  /// is up to the caller; uniform choice preserves exactness.
  ChurnEvent next(std::uint64_t alive_count);

  /// Current absolute time (time of the last event returned).
  double now() const { return now_; }

  double lambda() const { return lambda_; }
  double mu() const { return mu_; }

  /// Expected stationary network size lambda/mu.
  double expected_size() const { return lambda_ / mu_; }

  /// Events emitted so far (paper: "rounds" T_r, Definition 4.5).
  std::uint64_t event_count() const { return events_; }

 private:
  double lambda_;
  double mu_;
  double now_ = 0.0;
  std::uint64_t events_ = 0;
  Rng rng_;
};

/// The paper's Poisson churn as a pluggable ChurnProcess: births are
/// kBirth events, deaths are kUniform-victim events (the network picks the
/// victim from its own RNG, preserving the exactness argument of Lemma
/// 4.6). This is the jump-chain skeleton every continuous regime shares;
/// it wraps PoissonChurn without changing a single draw, so PDG/PDGR built
/// through the ChurnProcess layer are bit-identical to the direct
/// simulators.
class PoissonJumpChurn final : public ChurnProcess {
 public:
  PoissonJumpChurn(double lambda, double mu, std::uint64_t seed)
      : chain_(lambda, mu, seed) {}

  Step next(std::uint64_t alive) override {
    const ChurnEvent event = chain_.next(alive);
    Step step;
    step.time = event.time;
    step.is_birth = event.kind == ChurnEvent::Kind::kBirth;
    step.victim = Victim::kUniform;
    return step;
  }

  std::string name() const override { return "poisson"; }
  double mean_lifetime() const override { return 1.0 / chain_.mu(); }
  /// Preserves the exact pre-refactor arithmetic (multiple / mu).
  double warm_up_time(double multiple) const override {
    return multiple / chain_.mu();
  }

  const PoissonChurn& chain() const { return chain_; }

 private:
  PoissonChurn chain_;
};

}  // namespace churnet
