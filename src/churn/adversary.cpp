#include "churn/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assertx.hpp"

namespace churnet {

AdversaryPolicy::AdversaryPolicy(AdversaryConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  CHURNET_EXPECTS(config.budget >= 0.0 && config.budget <= 1.0);
}

bool AdversaryPolicy::take_death() {
  // The boundary budgets draw nothing: 0 must leave the run byte-identical
  // to the base regime, and 1 should not burn entropy on a certainty.
  if (config_.budget <= 0.0) return false;
  if (config_.budget >= 1.0) return true;
  return rng_.bernoulli(config_.budget);
}

NodeId AdversaryPolicy::select(const GraphReadView& view) {
  CHURNET_EXPECTS(view.alive_count() > 0);
  switch (config_.rule) {
    case AdversaryRule::kMaxDegree:
      return select_extreme_degree(view, /*maximize=*/true);
    case AdversaryRule::kMinDegree:
      return select_extreme_degree(view, /*maximize=*/false);
    case AdversaryRule::kCutSet:
      return select_cutset(view);
    case AdversaryRule::kEclipse:
      return select_eclipse(view);
  }
  CHURNET_ASSERT(false);
  return kInvalidNode;
}

void AdversaryPolicy::on_death(NodeId id) {
  if (id == target_) target_ = kInvalidNode;
}

NodeId AdversaryPolicy::select_extreme_degree(const GraphReadView& view,
                                              bool maximize) {
  // Slot-ascending scan with strict improvement: ties resolve to the
  // smallest slot, making the choice independent of any internal iteration
  // order a view might otherwise expose.
  NodeId best = kInvalidNode;
  std::uint32_t best_degree = 0;
  const std::uint32_t bound = view.slot_upper_bound();
  for (std::uint32_t slot = 0; slot < bound; ++slot) {
    const NodeId id = view.alive_at(slot);
    if (!id.valid()) continue;
    const std::uint32_t degree = view.degree(id);
    if (!best.valid() || (maximize ? degree > best_degree
                                   : degree < best_degree)) {
      best = id;
      best_degree = degree;
    }
  }
  CHURNET_ASSERT(best.valid());
  return best;
}

NodeId AdversaryPolicy::first_alive_other(const GraphReadView& view,
                                          NodeId exclude) const {
  const std::uint32_t bound = view.slot_upper_bound();
  for (std::uint32_t slot = 0; slot < bound; ++slot) {
    const NodeId id = view.alive_at(slot);
    if (id.valid() && id != exclude) return id;
  }
  return kInvalidNode;
}

NodeId AdversaryPolicy::select_eclipse(const GraphReadView& view) {
  // A persistent target, (re)picked uniformly from the adversary's own RNG
  // whenever the previous one died: rejection-sample slots (the alive set
  // is dense below slot_upper_bound, so this terminates fast).
  if (!target_.valid() || !view.alive_at(target_.slot).valid() ||
      view.alive_at(target_.slot) != target_) {
    const std::uint32_t bound = view.slot_upper_bound();
    CHURNET_ASSERT(bound > 0);
    for (;;) {
      const NodeId candidate =
          view.alive_at(static_cast<std::uint32_t>(rng_.below(bound)));
      if (candidate.valid()) {
        target_ = candidate;
        break;
      }
    }
  }
  // Starve the target: kill its smallest-id alive neighbor. An isolated
  // target (eclipse achieved — or never wired) yields the smallest other
  // alive node; a network of one yields the target itself (last resort).
  neighbors_.clear();
  view.append_neighbors(target_, neighbors_);
  if (!neighbors_.empty()) {
    return *std::min_element(neighbors_.begin(), neighbors_.end());
  }
  const NodeId fallback = first_alive_other(view, target_);
  return fallback.valid() ? fallback : target_;
}

void AdversaryPolicy::rebuild_cutset(const GraphReadView& view) {
  // Pivot: the first alive slot at or after the rotating cursor, so
  // successive balls sweep the slot space instead of re-growing around the
  // same (partially destroyed) region.
  const std::uint32_t bound = view.slot_upper_bound();
  CHURNET_ASSERT(bound > 0);
  NodeId pivot = kInvalidNode;
  for (std::uint32_t i = 0; i < bound; ++i) {
    std::uint32_t slot = cursor_ + i;
    if (slot >= bound) slot -= bound;
    const NodeId id = view.alive_at(slot);
    if (id.valid()) {
      pivot = id;
      cursor_ = slot + 1 == bound ? 0 : slot + 1;
      break;
    }
  }
  CHURNET_ASSERT(pivot.valid());

  // Grow a BFS ball of ~sqrt(alive) nodes, expanding each node's neighbors
  // in ascending id order (sorted — so the traversal, and therefore the
  // boundary, is independent of the view's neighbor ordering).
  const std::uint64_t alive = view.alive_count();
  const std::size_t ball_target = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(std::sqrt(static_cast<double>(alive)))));
  ball_.clear();
  in_ball_.assign(bound, 0);
  ball_.push_back(pivot);
  in_ball_[pivot.slot] = 1;
  for (std::size_t head = 0;
       head < ball_.size() && ball_.size() < ball_target; ++head) {
    neighbors_.clear();
    view.append_neighbors(ball_[head], neighbors_);
    std::sort(neighbors_.begin(), neighbors_.end());
    for (const NodeId peer : neighbors_) {
      if (in_ball_[peer.slot] != 0) continue;
      in_ball_[peer.slot] = 1;
      ball_.push_back(peer);
      if (ball_.size() >= ball_target) break;
    }
  }

  // The victim queue: ball members with at least one neighbor outside the
  // ball (the cut around the small set), in ascending id order. A ball
  // with no outside edges is a whole small component — kill all of it.
  boundary_.clear();
  for (const NodeId member : ball_) {
    neighbors_.clear();
    view.append_neighbors(member, neighbors_);
    for (const NodeId peer : neighbors_) {
      if (in_ball_[peer.slot] == 0) {
        boundary_.push_back(member);
        break;
      }
    }
  }
  if (boundary_.empty()) boundary_ = ball_;
  std::sort(boundary_.begin(), boundary_.end());
  boundary_next_ = 0;
}

NodeId AdversaryPolicy::select_cutset(const GraphReadView& view) {
  // Serve queued boundary victims first, skipping entries that died of
  // other causes since the ball was grown; rebuild when the queue drains.
  for (int attempt = 0; attempt < 2; ++attempt) {
    while (boundary_next_ < boundary_.size()) {
      const NodeId candidate = boundary_[boundary_next_++];
      const NodeId current = view.alive_at(candidate.slot);
      if (current.valid() && current == candidate) return candidate;
    }
    rebuild_cutset(view);
  }
  // A freshly rebuilt queue always starts with its alive pivot's ball.
  CHURNET_ASSERT(false && "cutset rebuild produced no alive victim");
  return kInvalidNode;
}

AdversarialChurn::AdversarialChurn(std::unique_ptr<ChurnProcess> base,
                                   AdversaryConfig config,
                                   std::uint64_t policy_seed,
                                   std::string name)
    : base_(std::move(base)),
      policy_(config, policy_seed),
      name_(std::move(name)) {
  CHURNET_EXPECTS(base_ != nullptr);
}

ChurnProcess::Step AdversarialChurn::next(std::uint64_t alive) {
  Step step = base_->next(alive);
  if (!step.is_birth && step.victim == Victim::kUniform &&
      policy_.take_death()) {
    step.victim = Victim::kAdversarial;
    step.victim_id = kInvalidNode;
  }
  return step;
}

NodeId AdversarialChurn::select_victim(const GraphReadView& view) {
  return policy_.select(view);
}

void AdversarialChurn::on_birth(NodeId id, double time) {
  base_->on_birth(id, time);
}

void AdversarialChurn::on_death(NodeId id, double time) {
  base_->on_death(id, time);
  policy_.on_death(id);
}

}  // namespace churnet
