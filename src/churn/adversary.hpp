// Adversarial victim selection: churn regimes in which deaths target the
// network instead of striking uniformly (ROADMAP item 2; cf. Cruciani 2025
// on expander maintenance under targeted deletions).
//
// An AdversaryPolicy owns the adversary's state and RNG stream and picks
// victims through the GraphReadView contract (churn/churn_process.hpp):
//
//   maxdeg   kill an alive node of maximum total degree (hub removal)
//   mindeg   kill an alive node of minimum total degree (periphery erosion,
//            pushes nodes toward isolation)
//   cutset   kill nodes on the boundary of a small BFS ball: grow a ball of
//            ~sqrt(alive) nodes from a rotating pivot, queue its frontier
//            (members with a neighbor outside the ball), and serve deaths
//            from the queue — the adversary keeps attacking the cut edges
//            around small sets, the paper's expansion bottleneck
//   eclipse  capture a target node's neighborhood: keep one (randomly
//            chosen, persistent) target and always kill its lowest-id
//            alive neighbor, starving the target of links
//
// Determinism contract: selections are a pure function of (rule, seed,
// view) — degree rules break ties toward the smallest slot, the cutset BFS
// expands neighbors in sorted id order, and the eclipse victim is the
// smallest neighbor id — so any conforming GraphReadView implementation
// (including a test's shadow adjacency) reproduces the exact choice.
//
// The `budget` in [0,1] is the probability that an individual death is
// adversarial (the rest follow the base regime). budget 0 draws nothing
// from the adversary's RNG and never redirects an event, so a budget-0 run
// is byte-identical to the base regime; budget 1 redirects every death,
// also without Bernoulli draws.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "churn/churn_process.hpp"
#include "common/rng.hpp"

namespace churnet {

enum class AdversaryRule : std::uint8_t {
  kMaxDegree,
  kMinDegree,
  kCutSet,
  kEclipse,
};

struct AdversaryConfig {
  AdversaryRule rule = AdversaryRule::kMaxDegree;
  /// Probability that a death is adversarial, in [0,1].
  double budget = 1.0;
};

/// The adversary's seed stream, derived from the owning network's seed but
/// disjoint from both the wiring RNG and the base churn process — a
/// budget-0 run must replay the base regime's draws bit-for-bit.
inline std::uint64_t adversary_seed(std::uint64_t network_seed) {
  return derive_seed(network_seed, 0xADFE5A11ULL, 0);
}

class AdversaryPolicy {
 public:
  AdversaryPolicy(AdversaryConfig config, std::uint64_t seed);

  /// Whether the next death is adversarial. Consumes one Bernoulli draw
  /// only for budgets strictly inside (0,1).
  bool take_death();

  /// Picks the victim per the configured rule; requires
  /// view.alive_count() > 0 and returns an alive node.
  NodeId select(const GraphReadView& view);

  /// Death notification (any victim rule): maintains the eclipse target.
  void on_death(NodeId id);

  const AdversaryConfig& config() const { return config_; }

  // ---- introspection (tests, benches) ----------------------------------

  /// Current eclipse target (invalid until the first eclipse selection or
  /// after the target itself died).
  NodeId eclipse_target() const { return target_; }
  /// The last BFS ball the cutset rule grew (empty before the first
  /// selection).
  const std::vector<NodeId>& cutset_ball() const { return ball_; }
  /// The cutset victim queue computed from that ball (boundary members in
  /// ascending id order); entries already served may be dead.
  const std::vector<NodeId>& cutset_boundary() const { return boundary_; }

 private:
  NodeId select_extreme_degree(const GraphReadView& view, bool maximize);
  NodeId select_cutset(const GraphReadView& view);
  NodeId select_eclipse(const GraphReadView& view);
  void rebuild_cutset(const GraphReadView& view);
  /// Smallest-slot alive node != exclude; invalid when none exists.
  NodeId first_alive_other(const GraphReadView& view, NodeId exclude) const;

  AdversaryConfig config_;
  Rng rng_;
  NodeId target_ = kInvalidNode;  // eclipse
  std::uint32_t cursor_ = 0;      // cutset pivot rotation
  std::vector<NodeId> boundary_;  // cutset victim queue
  std::size_t boundary_next_ = 0;
  std::vector<NodeId> ball_;         // cutset BFS ball (also the queue)
  std::vector<std::uint8_t> in_ball_;  // slot-indexed membership scratch
  std::vector<NodeId> neighbors_;    // shared neighbor scratch
};

/// Adversarial churn over a continuous base regime: the base process
/// (normally the paper's Poisson jump chain) drives event times and the
/// birth/death mix unchanged; each kUniform death is redirected to the
/// adversary with probability `budget`. Used by the Poisson-family models;
/// StreamingChurn embeds an AdversaryPolicy directly for the round
/// schedule.
class AdversarialChurn final : public ChurnProcess {
 public:
  /// `name` is the canonical spec ("maxdeg(0.50)", ...).
  AdversarialChurn(std::unique_ptr<ChurnProcess> base, AdversaryConfig config,
                   std::uint64_t policy_seed, std::string name);

  Step next(std::uint64_t alive) override;
  NodeId select_victim(const GraphReadView& view) override;
  void on_birth(NodeId id, double time) override;
  void on_death(NodeId id, double time) override;

  std::string name() const override { return name_; }
  double mean_lifetime() const override { return base_->mean_lifetime(); }
  double warm_up_time(double multiple) const override {
    return base_->warm_up_time(multiple);
  }

  const AdversaryPolicy& policy() const { return policy_; }
  const ChurnProcess& base() const { return *base_; }

 private:
  std::unique_ptr<ChurnProcess> base_;
  AdversaryPolicy policy_;
  std::string name_;
};

}  // namespace churnet
