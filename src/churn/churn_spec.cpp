#include "churn/churn_spec.hpp"

#include <vector>

#include "churn/adversary.hpp"
#include "churn/burst_churn.hpp"
#include "churn/lifetime_churn.hpp"
#include "churn/phased_churn.hpp"
#include "churn/poisson_churn.hpp"
#include "churn/streaming_churn.hpp"
#include "common/assertx.hpp"
#include "common/rng.hpp"
#include "common/specgram.hpp"
#include "common/table.hpp"

namespace churnet {
namespace {

// Regime defaults used when arguments are omitted.
constexpr double kDefaultParetoAlpha = 2.5;
constexpr double kDefaultWeibullShape = 0.7;
constexpr double kDefaultBurstyBoost = 4.0;
constexpr double kDefaultBurstyPhase = 0.5;
constexpr double kDefaultDriftGrowth = 2.0;
constexpr double kDefaultAdversaryBudget = 1.0;
constexpr double kDefaultBurstFraction = 0.1;
constexpr double kDefaultBurstPeriod = 1.0;

// The one name -> kind table: parse() dispatches through it and
// is_known_name() scans it, so a regime added here is automatically
// routable by ScenarioRegistry::resolve's segment dispatch.
struct KnownRegime {
  const char* name;
  ChurnSpec::Kind kind;
};
constexpr KnownRegime kKnownRegimes[] = {
    {"stream", ChurnSpec::Kind::kStream},
    {"poisson", ChurnSpec::Kind::kJumpChain},
    {"pareto", ChurnSpec::Kind::kPareto},
    {"weibull", ChurnSpec::Kind::kWeibull},
    {"bursty", ChurnSpec::Kind::kBursty},
    {"drift", ChurnSpec::Kind::kDrift},
    {"maxdeg", ChurnSpec::Kind::kMaxDeg},
    {"mindeg", ChurnSpec::Kind::kMinDeg},
    {"cutset", ChurnSpec::Kind::kCutSet},
    {"eclipse", ChurnSpec::Kind::kEclipse},
    {"massfail", ChurnSpec::Kind::kMassFail},
    {"flashcrowd", ChurnSpec::Kind::kFlashCrowd},
};

const KnownRegime* find_regime(std::string_view name) {
  for (const KnownRegime& regime : kKnownRegimes) {
    if (name == regime.name) return &regime;
  }
  return nullptr;
}

bool fail(std::string* error, std::string message) {
  return spec_fail(error, std::move(message));
}

}  // namespace

bool ChurnSpec::is_known_name(std::string_view name) {
  return find_regime(lowercase_spec(name)) != nullptr;
}

std::vector<std::pair<std::string, std::string>> ChurnSpec::catalog() {
  return {
      {"stream",
       "the paper's streaming round schedule (Def. 3.2); streaming models "
       "only"},
      {"poisson", "the paper's jump chain (Def. 4.1 / Lemma 4.6)"},
      {"pareto(a)",
       "Pareto session lengths, tail index a > 1 (default 2.5), mean 1/mu"},
      {"weibull(k)",
       "Weibull session lengths, shape k > 0 (default 0.7), mean 1/mu"},
      {"bursty(b,p)",
       "on/off death rates mu*b / mu/b (b > 1), phase length p > 0 "
       "lifetimes (defaults 4, 0.5)"},
      {"drift(g)",
       "stationary through warm-up, then birth rate g*lambda (default 2)"},
      {"maxdeg(b)",
       "adversarial max-degree kills with budget b in [0,1] (default 1); "
       "streaming and Poisson-family models"},
      {"mindeg(b)",
       "adversarial min-degree kills, budget b in [0,1] (default 1)"},
      {"cutset(b)",
       "adversarial small-set boundary kills (BFS-ball frontiers), budget "
       "b in [0,1] (default 1)"},
      {"eclipse(b)",
       "adversarial neighborhood capture of a persistent target, budget b "
       "in [0,1] (default 1)"},
      {"massfail(p,T)",
       "kills floor(p*alive) at once every T lifetimes, p in (0,1), T > 0 "
       "(defaults 0.1, 1); Poisson-family models only"},
      {"flashcrowd(f,T)",
       "births floor(f*alive) at once every T lifetimes, f > 0, T > 0 "
       "(defaults 0.1, 1); Poisson-family models only"},
  };
}

std::vector<std::string> ChurnSpec::known_names() {
  std::vector<std::string> names;
  for (const KnownRegime& regime : kKnownRegimes) {
    names.emplace_back(regime.name);
  }
  return names;
}

AdversaryConfig ChurnSpec::adversary_config() const {
  CHURNET_EXPECTS(adversarial());
  AdversaryConfig config;
  switch (kind) {
    case Kind::kMaxDeg:
      config.rule = AdversaryRule::kMaxDegree;
      break;
    case Kind::kMinDeg:
      config.rule = AdversaryRule::kMinDegree;
      break;
    case Kind::kCutSet:
      config.rule = AdversaryRule::kCutSet;
      break;
    case Kind::kEclipse:
      config.rule = AdversaryRule::kEclipse;
      break;
    default:
      CHURNET_ASSERT(false);
  }
  config.budget = a;
  return config;
}

std::string ChurnSpec::canonical() const {
  switch (kind) {
    case Kind::kStream:
      return "stream";
    case Kind::kJumpChain:
      return "poisson";
    case Kind::kPareto:
      return "pareto(" + fmt_fixed(a, 2) + ")";
    case Kind::kWeibull:
      return "weibull(" + fmt_fixed(a, 2) + ")";
    case Kind::kBursty:
      return "bursty(" + fmt_fixed(a, 2) + "," + fmt_fixed(b, 2) + ")";
    case Kind::kDrift:
      return "drift(" + fmt_fixed(a, 2) + ")";
    case Kind::kMaxDeg:
      return "maxdeg(" + fmt_fixed(a, 2) + ")";
    case Kind::kMinDeg:
      return "mindeg(" + fmt_fixed(a, 2) + ")";
    case Kind::kCutSet:
      return "cutset(" + fmt_fixed(a, 2) + ")";
    case Kind::kEclipse:
      return "eclipse(" + fmt_fixed(a, 2) + ")";
    case Kind::kMassFail:
      return "massfail(" + fmt_fixed(a, 2) + "," + fmt_fixed(b, 2) + ")";
    case Kind::kFlashCrowd:
      return "flashcrowd(" + fmt_fixed(a, 2) + "," + fmt_fixed(b, 2) + ")";
  }
  CHURNET_ASSERT(false);
  return "";
}

std::optional<ChurnSpec> ChurnSpec::parse(std::string_view text,
                                          std::string* error) {
  SpecCall call;
  if (!split_spec_call(text, "churn spec", &call, error)) return std::nullopt;
  const std::string& name = call.name;
  const std::vector<double>& args = call.args;

  const auto arity = [&](std::size_t max_args) {
    if (args.size() <= max_args) return true;
    fail(error, "churn spec '" + std::string(trim_spec(text)) +
                    "': at most " + std::to_string(max_args) +
                    " argument(s) allowed");
    return false;
  };

  const KnownRegime* regime = find_regime(name);
  if (regime == nullptr) {
    // List the full catalog's spellings so the error can never drift from
    // what --list-churn prints (the catalog-completeness test pins both
    // against the factory table above).
    std::string known;
    for (const auto& [spelling, description] : catalog()) {
      if (!known.empty()) known += ", ";
      known += spelling;
    }
    fail(error, "unknown churn regime '" + name + "'; known: " + known);
    return std::nullopt;
  }
  ChurnSpec spec;
  spec.kind = regime->kind;
  switch (regime->kind) {
    case Kind::kStream:
    case Kind::kJumpChain:
      if (!arity(0)) return std::nullopt;
      return spec;
    case Kind::kPareto:
      if (!arity(1)) return std::nullopt;
      spec.a = args.empty() ? kDefaultParetoAlpha : args[0];
      if (!(spec.a > 1.0)) {  // negated: also rejects NaN
        fail(error, "pareto tail index must be > 1 (got " +
                        fmt_fixed(spec.a, 3) +
                        "); the mean lifetime is infinite otherwise");
        return std::nullopt;
      }
      return spec;
    case Kind::kWeibull:
      if (!arity(1)) return std::nullopt;
      spec.a = args.empty() ? kDefaultWeibullShape : args[0];
      if (!(spec.a > 0.0)) {
        fail(error, "weibull shape must be > 0 (got " + fmt_fixed(spec.a, 3) +
                        ")");
        return std::nullopt;
      }
      return spec;
    case Kind::kBursty:
      if (!arity(2)) return std::nullopt;
      spec.a = args.empty() ? kDefaultBurstyBoost : args[0];
      spec.b = args.size() < 2 ? kDefaultBurstyPhase : args[1];
      if (!(spec.a > 1.0)) {
        fail(error, "bursty boost must be > 1 (got " + fmt_fixed(spec.a, 3) +
                        ")");
        return std::nullopt;
      }
      if (!(spec.b > 0.0)) {
        fail(error, "bursty phase length must be > 0 lifetimes (got " +
                        fmt_fixed(spec.b, 3) + ")");
        return std::nullopt;
      }
      return spec;
    case Kind::kDrift:
      if (!arity(1)) return std::nullopt;
      spec.a = args.empty() ? kDefaultDriftGrowth : args[0];
      if (!(spec.a > 0.0)) {
        fail(error, "drift growth factor must be > 0 (got " +
                        fmt_fixed(spec.a, 3) + ")");
        return std::nullopt;
      }
      return spec;
    case Kind::kMaxDeg:
    case Kind::kMinDeg:
    case Kind::kCutSet:
    case Kind::kEclipse:
      if (!arity(1)) return std::nullopt;
      spec.a = args.empty() ? kDefaultAdversaryBudget : args[0];
      if (!(spec.a >= 0.0 && spec.a <= 1.0)) {  // negated: also rejects NaN
        fail(error, std::string(regime->name) +
                        " budget must be in [0,1] (got " +
                        fmt_fixed(spec.a, 3) +
                        "); it is the probability a death is adversarial");
        return std::nullopt;
      }
      return spec;
    case Kind::kMassFail:
      if (!arity(2)) return std::nullopt;
      spec.a = args.empty() ? kDefaultBurstFraction : args[0];
      spec.b = args.size() < 2 ? kDefaultBurstPeriod : args[1];
      if (!(spec.a > 0.0 && spec.a < 1.0)) {
        fail(error, "massfail fraction must be in (0,1) (got " +
                        fmt_fixed(spec.a, 3) +
                        "); a full-fraction burst would empty the network "
                        "mid-burst");
        return std::nullopt;
      }
      if (!(spec.b > 0.0)) {
        fail(error, "massfail period must be > 0 lifetimes (got " +
                        fmt_fixed(spec.b, 3) + ")");
        return std::nullopt;
      }
      return spec;
    case Kind::kFlashCrowd:
      if (!arity(2)) return std::nullopt;
      spec.a = args.empty() ? kDefaultBurstFraction : args[0];
      spec.b = args.size() < 2 ? kDefaultBurstPeriod : args[1];
      if (!(spec.a > 0.0)) {
        fail(error, "flashcrowd burst fraction must be > 0 (got " +
                        fmt_fixed(spec.a, 3) + ")");
        return std::nullopt;
      }
      if (!(spec.b > 0.0)) {
        fail(error, "flashcrowd period must be > 0 lifetimes (got " +
                        fmt_fixed(spec.b, 3) + ")");
        return std::nullopt;
      }
      return spec;
  }
  CHURNET_ASSERT(false);
  return std::nullopt;
}

std::unique_ptr<ChurnProcess> make_churn_process(const ChurnSpec& spec,
                                                 double lambda, double mu,
                                                 std::uint64_t network_seed) {
  // One seeding path for every regime — and exactly the pre-refactor
  // derivation for the paper's jump chain.
  const std::uint64_t seed = Rng(network_seed).next_u64();
  switch (spec.kind) {
    case ChurnSpec::Kind::kStream:
      return nullptr;  // size-coupled; built by StreamingNetwork
    case ChurnSpec::Kind::kJumpChain:
      return std::make_unique<PoissonJumpChurn>(lambda, mu, seed);
    case ChurnSpec::Kind::kPareto:
      return std::make_unique<LifetimeChurn>(
          LifetimeLaw{LifetimeLaw::Kind::kPareto, spec.a}, lambda, mu, seed);
    case ChurnSpec::Kind::kWeibull:
      return std::make_unique<LifetimeChurn>(
          LifetimeLaw{LifetimeLaw::Kind::kWeibull, spec.a}, lambda, mu, seed);
    case ChurnSpec::Kind::kBursty:
      return std::make_unique<PhasedChurn>(
          make_bursty_churn(spec.a, spec.b, lambda, mu, seed));
    case ChurnSpec::Kind::kDrift:
      return std::make_unique<PhasedChurn>(
          make_drift_churn(spec.a, lambda, mu, seed));
    case ChurnSpec::Kind::kMaxDeg:
    case ChurnSpec::Kind::kMinDeg:
    case ChurnSpec::Kind::kCutSet:
    case ChurnSpec::Kind::kEclipse:
      // The paper's jump chain drives times and the birth/death mix (with
      // the exact poisson seed, so budget 0 replays "poisson" bit-for-
      // bit); the policy redirects budgeted deaths from its own stream.
      return std::make_unique<AdversarialChurn>(
          std::make_unique<PoissonJumpChurn>(lambda, mu, seed),
          spec.adversary_config(), adversary_seed(network_seed),
          spec.canonical());
    case ChurnSpec::Kind::kMassFail:
      return std::make_unique<BurstChurn>(BurstChurn::Kind::kMassFail,
                                          spec.a, spec.b, lambda, mu, seed);
    case ChurnSpec::Kind::kFlashCrowd:
      return std::make_unique<BurstChurn>(BurstChurn::Kind::kFlashCrowd,
                                          spec.a, spec.b, lambda, mu, seed);
  }
  CHURNET_ASSERT(false);
  return nullptr;
}

}  // namespace churnet
