#include "churn/churn_spec.hpp"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "churn/lifetime_churn.hpp"
#include "churn/phased_churn.hpp"
#include "churn/poisson_churn.hpp"
#include "churn/streaming_churn.hpp"
#include "common/assertx.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace churnet {
namespace {

// Regime defaults used when arguments are omitted.
constexpr double kDefaultParetoAlpha = 2.5;
constexpr double kDefaultWeibullShape = 0.7;
constexpr double kDefaultBurstyBoost = 4.0;
constexpr double kDefaultBurstyPhase = 0.5;
constexpr double kDefaultDriftGrowth = 2.0;

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string lowercase(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Splits "name(a,b)" into name and numeric args; false on syntax errors.
bool split_spec(std::string_view text, std::string* name,
                std::vector<double>* args, std::string* error) {
  text = trim(text);
  if (text.empty()) return fail(error, "empty churn spec");
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos) {
    *name = lowercase(text);
    return true;
  }
  if (text.back() != ')') {
    return fail(error, "churn spec '" + std::string(text) +
                           "': missing closing ')'");
  }
  *name = lowercase(trim(text.substr(0, open)));
  std::string_view body = text.substr(open + 1, text.size() - open - 2);
  body = trim(body);
  if (body.empty()) return true;  // "name()" == "name"
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view piece =
        trim(comma == std::string_view::npos ? body : body.substr(0, comma));
    if (piece.empty()) {
      return fail(error, "churn spec '" + std::string(text) +
                             "': empty argument");
    }
    const std::string number(piece);
    char* end = nullptr;
    const double value = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size()) {
      return fail(error, "churn spec '" + std::string(text) +
                             "': bad number '" + number + "'");
    }
    args->push_back(value);
    if (comma == std::string_view::npos) break;
    body = body.substr(comma + 1);
  }
  return true;
}

}  // namespace

std::string ChurnSpec::canonical() const {
  switch (kind) {
    case Kind::kStream:
      return "stream";
    case Kind::kJumpChain:
      return "poisson";
    case Kind::kPareto:
      return "pareto(" + fmt_fixed(a, 2) + ")";
    case Kind::kWeibull:
      return "weibull(" + fmt_fixed(a, 2) + ")";
    case Kind::kBursty:
      return "bursty(" + fmt_fixed(a, 2) + "," + fmt_fixed(b, 2) + ")";
    case Kind::kDrift:
      return "drift(" + fmt_fixed(a, 2) + ")";
  }
  CHURNET_ASSERT(false);
  return "";
}

std::optional<ChurnSpec> ChurnSpec::parse(std::string_view text,
                                          std::string* error) {
  std::string name;
  std::vector<double> args;
  if (!split_spec(text, &name, &args, error)) return std::nullopt;

  const auto arity = [&](std::size_t max_args) {
    if (args.size() <= max_args) return true;
    fail(error, "churn spec '" + std::string(trim(text)) + "': at most " +
                    std::to_string(max_args) + " argument(s) allowed");
    return false;
  };

  ChurnSpec spec;
  if (name == "stream") {
    if (!arity(0)) return std::nullopt;
    spec.kind = Kind::kStream;
    return spec;
  }
  if (name == "poisson") {
    if (!arity(0)) return std::nullopt;
    spec.kind = Kind::kJumpChain;
    return spec;
  }
  if (name == "pareto") {
    if (!arity(1)) return std::nullopt;
    spec.kind = Kind::kPareto;
    spec.a = args.empty() ? kDefaultParetoAlpha : args[0];
    if (spec.a <= 1.0) {
      fail(error, "pareto tail index must be > 1 (got " + fmt_fixed(spec.a, 3) +
                      "); the mean lifetime is infinite otherwise");
      return std::nullopt;
    }
    return spec;
  }
  if (name == "weibull") {
    if (!arity(1)) return std::nullopt;
    spec.kind = Kind::kWeibull;
    spec.a = args.empty() ? kDefaultWeibullShape : args[0];
    if (spec.a <= 0.0) {
      fail(error, "weibull shape must be > 0 (got " + fmt_fixed(spec.a, 3) +
                      ")");
      return std::nullopt;
    }
    return spec;
  }
  if (name == "bursty") {
    if (!arity(2)) return std::nullopt;
    spec.kind = Kind::kBursty;
    spec.a = args.empty() ? kDefaultBurstyBoost : args[0];
    spec.b = args.size() < 2 ? kDefaultBurstyPhase : args[1];
    if (spec.a <= 1.0) {
      fail(error, "bursty boost must be > 1 (got " + fmt_fixed(spec.a, 3) +
                      ")");
      return std::nullopt;
    }
    if (spec.b <= 0.0) {
      fail(error, "bursty phase length must be > 0 lifetimes (got " +
                      fmt_fixed(spec.b, 3) + ")");
      return std::nullopt;
    }
    return spec;
  }
  if (name == "drift") {
    if (!arity(1)) return std::nullopt;
    spec.kind = Kind::kDrift;
    spec.a = args.empty() ? kDefaultDriftGrowth : args[0];
    if (spec.a <= 0.0) {
      fail(error, "drift growth factor must be > 0 (got " +
                      fmt_fixed(spec.a, 3) + ")");
      return std::nullopt;
    }
    return spec;
  }
  fail(error, "unknown churn regime '" + name +
                  "'; known: stream, poisson, pareto(a), weibull(k), "
                  "bursty(b,p), drift(g)");
  return std::nullopt;
}

std::unique_ptr<ChurnProcess> make_churn_process(const ChurnSpec& spec,
                                                 double lambda, double mu,
                                                 std::uint64_t network_seed) {
  // One seeding path for every regime — and exactly the pre-refactor
  // derivation for the paper's jump chain.
  const std::uint64_t seed = Rng(network_seed).next_u64();
  switch (spec.kind) {
    case ChurnSpec::Kind::kStream:
      return nullptr;  // size-coupled; built by StreamingNetwork
    case ChurnSpec::Kind::kJumpChain:
      return std::make_unique<PoissonJumpChurn>(lambda, mu, seed);
    case ChurnSpec::Kind::kPareto:
      return std::make_unique<LifetimeChurn>(
          LifetimeLaw{LifetimeLaw::Kind::kPareto, spec.a}, lambda, mu, seed);
    case ChurnSpec::Kind::kWeibull:
      return std::make_unique<LifetimeChurn>(
          LifetimeLaw{LifetimeLaw::Kind::kWeibull, spec.a}, lambda, mu, seed);
    case ChurnSpec::Kind::kBursty:
      return std::make_unique<PhasedChurn>(
          make_bursty_churn(spec.a, spec.b, lambda, mu, seed));
    case ChurnSpec::Kind::kDrift:
      return std::make_unique<PhasedChurn>(
          make_drift_churn(spec.a, lambda, mu, seed));
  }
  CHURNET_ASSERT(false);
  return nullptr;
}

}  // namespace churnet
