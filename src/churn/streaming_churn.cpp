#include "churn/streaming_churn.hpp"

#include <utility>

#include "common/assertx.hpp"

namespace churnet {

StreamingChurn::StreamingChurn(std::uint32_t n) : n_(n), ring_(n) {
  CHURNET_EXPECTS(n >= 1);
}

NodeId StreamingChurn::pop_oldest() {
  CHURNET_ASSERT(size_ > 0);
  const NodeId oldest = ring_[head_];
  head_ = head_ + 1 == n_ ? 0 : head_ + 1;
  --size_;
  return oldest;
}

void StreamingChurn::push_newest(NodeId id) {
  CHURNET_ASSERT(size_ < n_);
  std::uint32_t tail = head_ + size_;
  if (tail >= n_) tail -= n_;
  ring_[tail] = id;
  ++size_;
}

void StreamingChurn::remove_from_ring(NodeId id) {
  // Adversarial victims are arbitrary ring members; shift the younger
  // suffix one position toward the head so age order is preserved. O(n)
  // worst case, but only on adversarial rounds.
  for (std::uint32_t i = 0; i < size_; ++i) {
    std::uint32_t pos = head_ + i;
    if (pos >= n_) pos -= n_;
    if (ring_[pos] != id) continue;
    for (std::uint32_t j = i + 1; j < size_; ++j) {
      std::uint32_t from = head_ + j;
      if (from >= n_) from -= n_;
      const std::uint32_t to = from == 0 ? n_ - 1 : from - 1;
      ring_[to] = ring_[from];
    }
    --size_;
    return;
  }
  CHURNET_ASSERT(false && "adversarial victim not in the streaming ring");
}

std::optional<NodeId> StreamingChurn::begin_round() {
  CHURNET_EXPECTS(!birth_pending_);
  ++round_;
  birth_pending_ = true;
  if (size_ == n_) return pop_oldest();
  CHURNET_ASSERT(size_ < n_);
  return std::nullopt;
}

void StreamingChurn::record_birth(NodeId id) {
  CHURNET_EXPECTS(birth_pending_);
  CHURNET_EXPECTS(id.valid());
  birth_pending_ = false;
  push_newest(id);
}

ChurnProcess::Step StreamingChurn::next(std::uint64_t alive) {
  (void)alive;  // the schedule is the authority on the population
  Step step;
  if (!birth_pending_) {
    if (size_ == n_ && adversary_.has_value() && adversary_->take_death()) {
      // Adversarial round: a death still happens (the size stays pinned at
      // n), but the victim comes from select_victim() instead of the FIFO
      // head; on_death() removes it from the ring.
      CHURNET_ASSERT(!adversarial_pending_);
      ++round_;
      birth_pending_ = true;
      adversarial_pending_ = true;
      step.time = static_cast<double>(round_);
      step.is_birth = false;
      step.victim = Victim::kAdversarial;
      return step;
    }
    // Round boundary: begin the next round; a full network emits the death
    // of the FIFO head first, otherwise the round is birth-only.
    const std::optional<NodeId> victim = begin_round();
    if (victim.has_value()) {
      step.time = static_cast<double>(round_);
      step.is_birth = false;
      step.victim = Victim::kScheduled;
      step.victim_id = *victim;
      return step;
    }
  }
  // The round's birth; realized by on_birth().
  step.time = static_cast<double>(round_);
  step.is_birth = true;
  return step;
}

void StreamingChurn::on_birth(NodeId id, double time) {
  (void)time;
  record_birth(id);
}

void StreamingChurn::on_death(NodeId id, double time) {
  (void)time;
  if (adversarial_pending_) {
    remove_from_ring(id);
    adversarial_pending_ = false;
  }
  if (adversary_.has_value()) adversary_->on_death(id);
}

NodeId StreamingChurn::select_victim(const GraphReadView& view) {
  CHURNET_EXPECTS(adversary_.has_value());
  CHURNET_EXPECTS(adversarial_pending_);
  return adversary_->select(view);
}

void StreamingChurn::set_adversary(AdversaryConfig config, std::uint64_t seed,
                                   std::string name) {
  CHURNET_EXPECTS(round_ == 0);
  adversary_.emplace(config, seed);
  name_ = std::move(name);
}

}  // namespace churnet
