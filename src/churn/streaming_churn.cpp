#include "churn/streaming_churn.hpp"

#include "common/assertx.hpp"

namespace churnet {

StreamingChurn::StreamingChurn(std::uint32_t n) : n_(n) {
  CHURNET_EXPECTS(n >= 1);
}

std::optional<NodeId> StreamingChurn::begin_round() {
  CHURNET_EXPECTS(!birth_pending_);
  ++round_;
  birth_pending_ = true;
  if (fifo_.size() == n_) {
    const NodeId victim = fifo_.front();
    fifo_.pop_front();
    return victim;
  }
  CHURNET_ASSERT(fifo_.size() < n_);
  return std::nullopt;
}

void StreamingChurn::record_birth(NodeId id) {
  CHURNET_EXPECTS(birth_pending_);
  CHURNET_EXPECTS(id.valid());
  birth_pending_ = false;
  fifo_.push_back(id);
}

}  // namespace churnet
