#include "churn/streaming_churn.hpp"

#include "common/assertx.hpp"

namespace churnet {

StreamingChurn::StreamingChurn(std::uint32_t n) : n_(n), ring_(n) {
  CHURNET_EXPECTS(n >= 1);
}

NodeId StreamingChurn::pop_oldest() {
  CHURNET_ASSERT(size_ > 0);
  const NodeId oldest = ring_[head_];
  head_ = head_ + 1 == n_ ? 0 : head_ + 1;
  --size_;
  return oldest;
}

void StreamingChurn::push_newest(NodeId id) {
  CHURNET_ASSERT(size_ < n_);
  std::uint32_t tail = head_ + size_;
  if (tail >= n_) tail -= n_;
  ring_[tail] = id;
  ++size_;
}

std::optional<NodeId> StreamingChurn::begin_round() {
  CHURNET_EXPECTS(!birth_pending_);
  ++round_;
  birth_pending_ = true;
  if (size_ == n_) return pop_oldest();
  CHURNET_ASSERT(size_ < n_);
  return std::nullopt;
}

void StreamingChurn::record_birth(NodeId id) {
  CHURNET_EXPECTS(birth_pending_);
  CHURNET_EXPECTS(id.valid());
  birth_pending_ = false;
  push_newest(id);
}

ChurnProcess::Step StreamingChurn::next(std::uint64_t alive) {
  (void)alive;  // the schedule is the authority on the population
  Step step;
  if (!birth_pending_) {
    // Round boundary: begin the next round; a full network emits the death
    // of the FIFO head first, otherwise the round is birth-only.
    const std::optional<NodeId> victim = begin_round();
    if (victim.has_value()) {
      step.time = static_cast<double>(round_);
      step.is_birth = false;
      step.victim = Victim::kScheduled;
      step.victim_id = *victim;
      return step;
    }
  }
  // The round's birth; realized by on_birth().
  step.time = static_cast<double>(round_);
  step.is_birth = true;
  return step;
}

void StreamingChurn::on_birth(NodeId id, double time) {
  (void)time;
  record_birth(id);
}

}  // namespace churnet
