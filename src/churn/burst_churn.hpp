// Correlated burst churn: regional mass failure and flash crowds.
//
// Between bursts the regime is the paper's jump chain (Lemma 4.6) at base
// rates (lambda, mu). Every `period` expected lifetimes (i.e. period/mu
// time units) a burst fires:
//
//   massfail(p, T)    kills floor(p * alive) uniformly random nodes, all at
//                     the burst instant — a correlated regional outage;
//   flashcrowd(f, T)  births floor(f * alive) nodes at the burst instant —
//                     a join surge (each newborn wires its d requests as
//                     usual).
//
// Sampling stays exact between bursts: the waiting time to the next
// baseline event is Exp(lambda + N*mu); when the sampled time crosses the
// next burst boundary, the clock advances to the boundary and the draw
// restarts — valid with no correction because exponential clocks are
// memoryless (the same argument as PhasedChurn's phase boundaries). The
// burst size is fixed from the population at the burst instant, and every
// burst event carries that same timestamp. Deaths are kUniform: within a
// burst each remaining node is equally likely, so the network's own RNG
// picks victims exactly as for the baseline chain.
//
// Steady state allocates nothing: the process is a handful of scalars.
#pragma once

#include <cstdint>
#include <string>

#include "churn/churn_process.hpp"
#include "common/rng.hpp"

namespace churnet {

class BurstChurn final : public ChurnProcess {
 public:
  enum class Kind : std::uint8_t { kMassFail, kFlashCrowd };

  /// `frac`: burst size as a fraction of the population at the burst
  /// instant (massfail requires frac in (0,1); flashcrowd frac > 0).
  /// `period_lifetimes`: burst spacing in expected lifetimes (> 0).
  BurstChurn(Kind kind, double frac, double period_lifetimes, double lambda,
             double mu, std::uint64_t seed);

  Step next(std::uint64_t alive) override;

  std::string name() const override;
  double mean_lifetime() const override { return 1.0 / mu_; }
  /// The jump-chain convention (multiple / mu), like PoissonJumpChurn.
  double warm_up_time(double multiple) const override {
    return multiple / mu_;
  }

  // ---- introspection (tests, benches) ----------------------------------

  Kind burst_kind() const { return kind_; }
  /// Non-empty bursts fired so far.
  std::uint64_t bursts_fired() const { return bursts_; }
  /// Size of the most recent burst (0 until one fires; empty bursts on a
  /// tiny population record 0 without counting in bursts_fired).
  std::uint64_t last_burst_size() const { return last_burst_size_; }
  /// Absolute time of the next burst boundary.
  double next_burst_time() const { return next_burst_; }

 private:
  Kind kind_;
  double frac_;
  double period_;  // time units between bursts (period_lifetimes / mu)
  double lambda_;
  double mu_;
  double now_ = 0.0;
  double next_burst_;
  std::uint64_t burst_remaining_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t last_burst_size_ = 0;
  Rng rng_;
};

}  // namespace churnet
