// Textual churn-regime specs: the grammar scenarios and sweeps use to name
// a churn process, and the factory that instantiates one.
//
// Grammar (case-insensitive, optional whitespace):
//
//   spec    := name | name '(' args ')'
//   name    := "stream" | "poisson" | "pareto" | "weibull" | "bursty"
//              | "drift" | "maxdeg" | "mindeg" | "cutset" | "eclipse"
//              | "massfail" | "flashcrowd"
//   args    := number (',' number)*
//
//   stream          the paper's streaming round schedule (Def. 3.2);
//                   streaming models only
//   poisson         the paper's jump chain (Def. 4.1 / Lemma 4.6)
//   pareto(a)       Pareto(tail index a > 1) session lengths, mean 1/mu
//   weibull(k)      Weibull(shape k > 0) session lengths, mean 1/mu
//   bursty(b,p)     on/off death rates mu*b / mu/b (b > 1), phase length
//                   p > 0 expected lifetimes
//   drift(g)        stationary through warm-up, then birth rate g*lambda
//   maxdeg(b)       adversarial: each death is a max-degree kill with
//                   probability b in [0,1] (the budget); runs on streaming
//                   AND Poisson-family bases (churn/adversary.hpp)
//   mindeg(b)       adversarial min-degree kills, budget b
//   cutset(b)       adversarial small-set boundary kills, budget b
//   eclipse(b)      adversarial neighborhood capture of a target, budget b
//   massfail(p,T)   kills floor(p*alive) at once every T lifetimes,
//                   jump-chain baseline between bursts; Poisson-family
//                   models only (churn/burst_churn.hpp)
//   flashcrowd(f,T) births floor(f*alive) at once every T lifetimes;
//                   Poisson-family models only
//
// Omitted arguments take the documented defaults. Malformed specs are
// rejected with a one-line reason (unknown name, wrong arity, parameter
// out of range), surfaced verbatim by the scenario registry and the sweep
// config loader.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "churn/adversary.hpp"
#include "churn/churn_process.hpp"

namespace churnet {

struct ChurnSpec {
  enum class Kind : std::uint8_t {
    kStream,
    kJumpChain,
    kPareto,
    kWeibull,
    kBursty,
    kDrift,
    kMaxDeg,
    kMinDeg,
    kCutSet,
    kEclipse,
    kMassFail,
    kFlashCrowd,
  };

  Kind kind = Kind::kJumpChain;
  /// First parameter: pareto alpha / weibull shape / bursty boost /
  /// drift growth factor / adversary budget / burst fraction. Unused for
  /// stream and poisson.
  double a = 0.0;
  /// Second parameter: bursty phase length or burst period, in expected
  /// lifetimes.
  double b = 0.0;

  /// True for every regime the continuous-time simulator can run (all but
  /// the streaming round schedule).
  bool continuous() const { return kind != Kind::kStream; }

  /// True for the adversarial victim-selection rules
  /// (maxdeg/mindeg/cutset/eclipse) — the only non-stream specs a
  /// streaming model also accepts (the base schedule is implied by the
  /// model; only victim selection changes).
  bool adversarial() const {
    return kind == Kind::kMaxDeg || kind == Kind::kMinDeg ||
           kind == Kind::kCutSet || kind == Kind::kEclipse;
  }

  /// The adversary rule + budget an adversarial spec names; requires
  /// adversarial().
  AdversaryConfig adversary_config() const;

  /// The spec in canonical text form ("pareto(2.50)", "poisson", ...);
  /// matches ChurnProcess::name() of the instantiated process.
  std::string canonical() const;

  /// Parses `text`; on failure returns nullopt and, when `error` is
  /// non-null, stores a one-line reason.
  static std::optional<ChurnSpec> parse(std::string_view text,
                                        std::string* error = nullptr);

  /// True when `name` ("pareto" — the call name alone, no arguments) names
  /// a churn regime; used to dispatch composite-scenario segments between
  /// the churn and protocol spec families before a full parse.
  static bool is_known_name(std::string_view name);

  /// The churn-regime catalog as (spelling, description) rows — the same
  /// shape as ProtocolSpec::catalog() / ObserverSpec::catalog(), consumed
  /// by the shared listing helper (engine/spec_catalog.hpp). Every
  /// spelling's call name is a known_names() entry and vice versa (pinned
  /// by the catalog-completeness test).
  static std::vector<std::pair<std::string, std::string>> catalog();

  /// Every regime name parse() dispatches on, in registration order — the
  /// factory-side name list the catalog-completeness test cross-checks
  /// against catalog().
  static std::vector<std::string> known_names();

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Instantiates the continuous-time process a spec names, with base rates
/// (lambda, mu) — the paper convention is lambda = 1, mu = 1/n. The
/// process seed is derived from the owning network's seed exactly as the
/// pre-refactor simulators did (Rng(seed).next_u64()), preserving
/// bit-identical paper models. Returns nullptr for Kind::kStream (the
/// streaming schedule is size-coupled and built by StreamingNetwork).
std::unique_ptr<ChurnProcess> make_churn_process(const ChurnSpec& spec,
                                                 double lambda, double mu,
                                                 std::uint64_t network_seed);

}  // namespace churnet
