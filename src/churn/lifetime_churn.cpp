#include "churn/lifetime_churn.hpp"

#include <cmath>

#include "common/assertx.hpp"
#include "common/table.hpp"

namespace churnet {

LifetimeChurn::LifetimeChurn(LifetimeLaw law, double lambda, double mu,
                             std::uint64_t seed)
    : law_(law), lambda_(lambda), mu_(mu), rng_(seed) {
  CHURNET_EXPECTS(lambda > 0.0);
  CHURNET_EXPECTS(mu > 0.0);
  switch (law_.kind) {
    case LifetimeLaw::Kind::kPareto:
      // Mean of Pareto(alpha, xmin) is alpha*xmin/(alpha-1); solve for xmin.
      CHURNET_EXPECTS(law_.shape > 1.0);
      scale_ = (law_.shape - 1.0) / (law_.shape * mu_);
      break;
    case LifetimeLaw::Kind::kWeibull:
      // Mean of Weibull(k, scale) is scale * Gamma(1 + 1/k).
      CHURNET_EXPECTS(law_.shape > 0.0);
      scale_ = 1.0 / (mu_ * std::tgamma(1.0 + 1.0 / law_.shape));
      break;
  }
}

double LifetimeChurn::sample_lifetime() {
  switch (law_.kind) {
    case LifetimeLaw::Kind::kPareto:
      return rng_.pareto(law_.shape, scale_);
    case LifetimeLaw::Kind::kWeibull:
      return rng_.weibull(law_.shape, scale_);
  }
  CHURNET_ASSERT(false);
  return 0.0;
}

ChurnProcess::Step LifetimeChurn::next(std::uint64_t alive) {
  (void)alive;  // expiries are scheduled per node; no population coupling
  if (!birth_time_valid_) {
    next_birth_ = now_ + rng_.exponential(lambda_);
    birth_time_valid_ = true;
  }
  Step step;
  if (!expiries_.empty() && expiries_.top().time <= next_birth_) {
    const Expiry expiry = expiries_.top();
    expiries_.pop();
    now_ = expiry.time;
    step.time = expiry.time;
    step.is_birth = false;
    step.victim = Victim::kScheduled;
    step.victim_id = expiry.id;
    return step;
  }
  now_ = next_birth_;
  birth_time_valid_ = false;
  step.time = now_;
  step.is_birth = true;
  return step;
}

void LifetimeChurn::on_birth(NodeId id, double time) {
  expiries_.push(Expiry{time + sample_lifetime(), id});
}

std::string LifetimeChurn::name() const {
  const char* base =
      law_.kind == LifetimeLaw::Kind::kPareto ? "pareto" : "weibull";
  return std::string(base) + "(" + fmt_fixed(law_.shape, 2) + ")";
}

}  // namespace churnet
