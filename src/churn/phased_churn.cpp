#include "churn/phased_churn.hpp"

#include <limits>
#include <utility>

#include "common/assertx.hpp"
#include "common/table.hpp"

namespace churnet {

PhasedChurn::PhasedChurn(std::string name, std::vector<ChurnPhase> phases,
                         bool cycle, double mean_lifetime, std::uint64_t seed)
    : name_(std::move(name)),
      phases_(std::move(phases)),
      cycle_(cycle),
      mean_lifetime_(mean_lifetime),
      rng_(seed) {
  CHURNET_EXPECTS(!phases_.empty());
  CHURNET_EXPECTS(mean_lifetime_ > 0.0);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    CHURNET_EXPECTS(phases_[i].lambda > 0.0);
    CHURNET_EXPECTS(phases_[i].mu > 0.0);
    // Every phase that ever ends needs positive length, or next() would
    // live-lock advancing phases without moving the clock. The last phase
    // of a non-cycling schedule never ends, so its duration is free.
    const bool terminal = !cycle_ && i + 1 == phases_.size();
    CHURNET_EXPECTS(terminal || phases_[i].duration > 0.0);
  }
}

double PhasedChurn::phase_end() const {
  const bool terminal = !cycle_ && phase_ + 1 == phases_.size();
  if (terminal) return std::numeric_limits<double>::infinity();
  return phase_start_ + phases_[phase_].duration;
}

ChurnProcess::Step PhasedChurn::next(std::uint64_t alive) {
  for (;;) {
    const ChurnPhase& phase = phases_[phase_];
    const double total_rate =
        phase.lambda + phase.mu * static_cast<double>(alive);
    const double wait = rng_.exponential(total_rate);
    const double boundary = phase_end();
    if (now_ + wait >= boundary) {
      // The draw crossed into the next phase: advance to the boundary and
      // resample under the new rates (exact by memorylessness).
      now_ = boundary;
      phase_start_ = boundary;
      phase_ = phase_ + 1 == phases_.size() ? (cycle_ ? 0 : phase_)
                                            : phase_ + 1;
      continue;
    }
    now_ += wait;
    Step step;
    step.time = now_;
    step.is_birth = rng_.bernoulli(phase.lambda / total_rate);
    step.victim = Victim::kUniform;
    return step;
  }
}

PhasedChurn make_bursty_churn(double boost, double phase_lifetimes,
                              double lambda, double mu, std::uint64_t seed) {
  CHURNET_EXPECTS(boost > 1.0);
  CHURNET_EXPECTS(phase_lifetimes > 0.0);
  const double phase_duration = phase_lifetimes / mu;
  std::vector<ChurnPhase> phases{
      ChurnPhase{phase_duration, lambda, mu * boost},  // burst: mass deaths
      ChurnPhase{phase_duration, lambda, mu / boost},  // calm: recovery
  };
  return PhasedChurn("bursty(" + fmt_fixed(boost, 2) + "," +
                         fmt_fixed(phase_lifetimes, 2) + ")",
                     std::move(phases), /*cycle=*/true,
                     /*mean_lifetime=*/1.0 / mu, seed);
}

PhasedChurn make_drift_churn(double growth, double lambda, double mu,
                             std::uint64_t seed) {
  CHURNET_EXPECTS(growth > 0.0);
  // Phase 0 covers exactly the standard warm_up(10.0) horizon, so the
  // network warms to the (lambda, mu) stationary size and every measurement
  // after warm-up happens mid-drift toward growth*lambda/mu.
  std::vector<ChurnPhase> phases{
      ChurnPhase{10.0 / mu, lambda, mu},
      ChurnPhase{0.0, lambda * growth, mu},  // terminal: never ends
  };
  return PhasedChurn("drift(" + fmt_fixed(growth, 2) + ")",
                     std::move(phases), /*cycle=*/false,
                     /*mean_lifetime=*/1.0 / mu, seed);
}

}  // namespace churnet
