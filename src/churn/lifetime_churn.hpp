// Heavy-tailed session lengths over the Poisson birth skeleton.
//
// Births arrive as a Poisson process of rate lambda (exactly as in the
// paper's Definition 4.1); what changes is the lifetime law: each node
// draws its session length at birth from a configurable distribution
// (Pareto or Weibull here — the empirical P2P session shapes surveyed in
// the churn literature) instead of Exp(mu). Deaths are therefore
// kScheduled events: the process keeps a min-heap of (expiry, node) and
// emits whichever of {next birth, earliest expiry} comes first. This is an
// exact simulation of the M/G/inf queue the regime describes — no
// discretization, no thinning — because the birth clock is memoryless and
// expiries are known the moment a node is born.
//
// Lifetimes are normalized to mean 1/mu (the paper's n when mu = 1/n), so
// by Little's law the stationary size is lambda/mu regardless of the
// lifetime shape and regimes stay size-comparable with the paper models;
// only the age profile — and through it degree structure, expansion and
// flooding — changes.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "churn/churn_process.hpp"
#include "common/rng.hpp"

namespace churnet {

/// Which lifetime law a LifetimeChurn draws from.
struct LifetimeLaw {
  enum class Kind : std::uint8_t { kPareto, kWeibull };
  Kind kind = Kind::kPareto;
  /// Pareto: tail index alpha (> 1 so the mean exists).
  /// Weibull: shape k (> 0; k < 1 = heavy tail).
  double shape = 2.5;
};

class LifetimeChurn final : public ChurnProcess {
 public:
  /// Births Poisson(lambda); lifetimes from `law`, scaled to mean 1/mu.
  LifetimeChurn(LifetimeLaw law, double lambda, double mu,
                std::uint64_t seed);

  Step next(std::uint64_t alive) override;
  void on_birth(NodeId id, double time) override;

  std::string name() const override;
  double mean_lifetime() const override { return 1.0 / mu_; }

  /// Samples one lifetime (exposed for the statistical sanity tests).
  double sample_lifetime();

 private:
  struct Expiry {
    double time;
    NodeId id;
    bool operator>(const Expiry& other) const { return time > other.time; }
  };

  LifetimeLaw law_;
  double lambda_;
  double mu_;
  /// Distribution scale chosen so the mean lifetime is exactly 1/mu.
  double scale_;
  double now_ = 0.0;
  bool birth_time_valid_ = false;
  double next_birth_ = 0.0;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
      expiries_;
  Rng rng_;
};

}  // namespace churnet
