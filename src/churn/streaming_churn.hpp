// Streaming node churn (paper Definition 3.2).
//
// Discrete rounds; at each round exactly one node is born and lives exactly
// n rounds, so from round n+1 on, every round kills the unique node of age
// n-1 and the network size is pinned at n. Deaths are processed before the
// round's birth (the newborn "stays up to round t+n-1").
//
// The age order lives in a fixed-capacity ring buffer (capacity n, the hard
// upper bound on the alive count): push/pop are index arithmetic on one
// allocation made at construction, so the per-round hot path of the
// streaming simulators never touches the allocator.
//
// StreamingChurn is also a ChurnProcess (churn/churn_process.hpp): a round
// becomes one kScheduled death event (the FIFO head, only when the network
// is full) followed by one birth event, both stamped with the round number.
// The original round-structured API (begin_round/record_birth) remains for
// direct consumers and is what the event adapter drives internally.
//
// With set_adversary() installed, each full-network round's death is
// redirected to the adversary with probability `budget`: the event carries
// Victim::kAdversarial, the driver calls select_victim() against the live
// graph, and on_death() removes the chosen node from the age ring (a linear
// scan — adversarial victims are arbitrary, not the FIFO head). The round
// count, pinned size, and birth schedule are unchanged, and with no
// adversary installed (or budget 0, which draws nothing) the event stream
// is byte-identical to the plain schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "churn/adversary.hpp"
#include "churn/churn_process.hpp"
#include "graph/node_id.hpp"

namespace churnet {

class StreamingChurn final : public ChurnProcess {
 public:
  /// `n` is both the steady-state size and the exact node lifetime.
  explicit StreamingChurn(std::uint32_t n);

  // ---- round-structured API --------------------------------------------

  /// Starts round `round()+1`. Returns the node that dies this round (the
  /// oldest alive node) or nullopt during the initial fill (rounds 1..n).
  std::optional<NodeId> begin_round();

  /// Records this round's newborn; must be called exactly once per round,
  /// after begin_round().
  void record_birth(NodeId id);

  // ---- ChurnProcess ----------------------------------------------------

  /// Event view of the same schedule: the death event (if the network is
  /// full) then the birth event of round `round()+1`. `alive` is ignored —
  /// the schedule tracks its own population. The birth event must be
  /// acknowledged through on_birth() before the next round begins.
  Step next(std::uint64_t alive) override;

  /// Realizes the pending birth event (same contract as record_birth).
  void on_birth(NodeId id, double time) override;

  /// Realizes an adversarial death (removes `id` from the age ring) and
  /// notifies the adversary; a no-op ring-wise for kScheduled deaths,
  /// whose victim was already popped by begin_round().
  void on_death(NodeId id, double time) override;

  /// Delegates to the installed adversary; only called by drivers after a
  /// kAdversarial death event.
  NodeId select_victim(const GraphReadView& view) override;

  /// Installs adversarial victim selection (before round 1). `name` is the
  /// canonical spec the process reports ("maxdeg(0.50)", ...).
  void set_adversary(AdversaryConfig config, std::uint64_t seed,
                     std::string name);

  std::string name() const override { return name_; }

  /// Every lifetime is exactly n rounds.
  double mean_lifetime() const override { return static_cast<double>(n_); }

  // ---- observers -------------------------------------------------------

  /// Rounds completed (== births recorded).
  std::uint64_t round() const { return round_; }

  /// Steady-state size / lifetime parameter n.
  std::uint32_t n() const { return n_; }

  /// Number of currently alive nodes tracked by the schedule.
  std::uint32_t alive() const { return size_; }

  /// The installed adversary, nullptr for the plain schedule.
  const AdversaryPolicy* adversary() const {
    return adversary_.has_value() ? &*adversary_ : nullptr;
  }

 private:
  NodeId pop_oldest();
  void push_newest(NodeId id);
  void remove_from_ring(NodeId id);

  std::uint32_t n_;
  std::uint64_t round_ = 0;
  bool birth_pending_ = false;
  bool adversarial_pending_ = false;  // death emitted, victim not yet realized
  // Fixed-capacity ring buffer of alive nodes in age order; head_ indexes
  // the oldest. Capacity is exactly n: begin_round() pops before
  // record_birth() pushes, so size_ never exceeds n.
  std::vector<NodeId> ring_;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
  std::optional<AdversaryPolicy> adversary_;
  std::string name_ = "stream";
};

}  // namespace churnet
