// Streaming node churn (paper Definition 3.2).
//
// Discrete rounds; at each round exactly one node is born and lives exactly
// n rounds, so from round n+1 on, every round kills the unique node of age
// n-1 and the network size is pinned at n. Deaths are processed before the
// round's birth (the newborn "stays up to round t+n-1").
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "graph/node_id.hpp"

namespace churnet {

class StreamingChurn {
 public:
  /// `n` is both the steady-state size and the exact node lifetime.
  explicit StreamingChurn(std::uint32_t n);

  /// Starts round `round()+1`. Returns the node that dies this round (the
  /// oldest alive node) or nullopt during the initial fill (rounds 1..n).
  std::optional<NodeId> begin_round();

  /// Records this round's newborn; must be called exactly once per round,
  /// after begin_round().
  void record_birth(NodeId id);

  /// Rounds completed (== births recorded).
  std::uint64_t round() const { return round_; }

  /// Steady-state size / lifetime parameter n.
  std::uint32_t n() const { return n_; }

  /// Number of currently alive nodes tracked by the schedule.
  std::uint32_t alive() const { return static_cast<std::uint32_t>(fifo_.size()); }

 private:
  std::uint32_t n_;
  std::uint64_t round_ = 0;
  bool birth_pending_ = false;
  std::deque<NodeId> fifo_;  // front = oldest
};

}  // namespace churnet
