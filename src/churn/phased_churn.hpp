// Piecewise-constant-rate churn schedules: bursty on/off phases and
// growth/decline drifts.
//
// The regime is the paper's jump chain (Lemma 4.6) with birth rate lambda
// and per-node death rate mu that are constant within a phase and switch at
// phase boundaries. Sampling stays exact: within a phase the waiting time
// to the next event is Exp(lambda + N*mu); if the sampled time crosses the
// phase boundary, the clock advances to the boundary and the draw restarts
// under the new rates — valid with no correction because exponential clocks
// are memoryless. Deaths are kUniform (every alive node carries the same
// death rate inside a phase).
//
// Two built-in schedules:
//   * bursty(boost, phase): cycling on/off death rates mu*boost / mu/boost
//     with phase length `phase` expected lifetimes — massive correlated
//     departures followed by calm recovery windows;
//   * drift(g): a stationary phase at (lambda, mu) covering exactly the
//     standard 10-lifetime warm-up, then birth rate g*lambda forever after,
//     so the measured network is drifting toward g times its warmed size
//     (growth g > 1, decline g < 1) instead of sitting at a steady state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "churn/churn_process.hpp"
#include "common/rng.hpp"

namespace churnet {

/// One constant-rate segment of a schedule.
struct ChurnPhase {
  double duration = 0.0;  // time units; the last phase of a non-cycling
                          // schedule is unbounded (duration ignored)
  double lambda = 1.0;    // birth rate during the phase
  double mu = 1e-3;       // per-node death rate during the phase
};

class PhasedChurn final : public ChurnProcess {
 public:
  /// `cycle`: phases repeat forever; otherwise the last phase never ends.
  /// `mean_lifetime` is the reporting/warm-up normalization (the base 1/mu).
  PhasedChurn(std::string name, std::vector<ChurnPhase> phases, bool cycle,
              double mean_lifetime, std::uint64_t seed);

  Step next(std::uint64_t alive) override;

  std::string name() const override { return name_; }
  double mean_lifetime() const override { return mean_lifetime_; }

  /// Rates in force at the current clock (exposed for tests).
  const ChurnPhase& current_phase() const { return phases_[phase_]; }

 private:
  /// End time of the current phase (+inf for a terminal phase).
  double phase_end() const;

  std::string name_;
  std::vector<ChurnPhase> phases_;
  bool cycle_;
  double mean_lifetime_;
  std::size_t phase_ = 0;
  double phase_start_ = 0.0;
  double now_ = 0.0;
  Rng rng_;
};

/// bursty(boost, phase): cycling high/low death-rate phases around base
/// rates (lambda, mu); phase length is `phase` expected lifetimes.
PhasedChurn make_bursty_churn(double boost, double phase_lifetimes,
                              double lambda, double mu, std::uint64_t seed);

/// drift(g): stationary (lambda, mu) for the 10-lifetime warm-up horizon,
/// then birth rate g*lambda (stationary size drifts to g*lambda/mu).
PhasedChurn make_drift_churn(double growth, double lambda, double mu,
                             std::uint64_t seed);

}  // namespace churnet
