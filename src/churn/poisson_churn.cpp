#include "churn/poisson_churn.hpp"

#include "common/assertx.hpp"

namespace churnet {

PoissonChurn::PoissonChurn(double lambda, double mu, std::uint64_t seed)
    : lambda_(lambda), mu_(mu), rng_(seed) {
  CHURNET_EXPECTS(lambda > 0.0);
  CHURNET_EXPECTS(mu > 0.0);
}

ChurnEvent PoissonChurn::next(std::uint64_t alive_count) {
  const double death_rate = mu_ * static_cast<double>(alive_count);
  const double total_rate = lambda_ + death_rate;
  now_ += rng_.exponential(total_rate);
  ++events_;
  ChurnEvent event;
  event.time = now_;
  event.kind = rng_.bernoulli(lambda_ / total_rate) ? ChurnEvent::Kind::kBirth
                                                    : ChurnEvent::Kind::kDeath;
  return event;
}

}  // namespace churnet
