#include "churn/burst_churn.hpp"

#include "common/assertx.hpp"
#include "common/table.hpp"

namespace churnet {

BurstChurn::BurstChurn(Kind kind, double frac, double period_lifetimes,
                       double lambda, double mu, std::uint64_t seed)
    : kind_(kind),
      frac_(frac),
      period_(period_lifetimes / mu),
      lambda_(lambda),
      mu_(mu),
      next_burst_(period_lifetimes / mu),
      rng_(seed) {
  CHURNET_EXPECTS(lambda > 0.0);
  CHURNET_EXPECTS(mu > 0.0);
  CHURNET_EXPECTS(period_lifetimes > 0.0);
  // A massfail fraction of 1 would kill the whole network inside one burst
  // (the burst size is fixed up front, so the last death would hit an
  // empty graph); flash crowds only need a positive fraction.
  if (kind == Kind::kMassFail) {
    CHURNET_EXPECTS(frac > 0.0 && frac < 1.0);
  } else {
    CHURNET_EXPECTS(frac > 0.0);
  }
}

std::string BurstChurn::name() const {
  const char* base = kind_ == Kind::kMassFail ? "massfail(" : "flashcrowd(";
  return base + fmt_fixed(frac_, 2) + "," + fmt_fixed(period_ * mu_, 2) + ")";
}

ChurnProcess::Step BurstChurn::next(std::uint64_t alive) {
  Step step;
  step.victim = Victim::kUniform;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    step.time = now_;
    step.is_birth = kind_ == Kind::kFlashCrowd;
    return step;
  }
  for (;;) {
    const double death_rate = mu_ * static_cast<double>(alive);
    const double total_rate = lambda_ + death_rate;
    const double t = now_ + rng_.exponential(total_rate);
    if (t >= next_burst_) {
      // The boundary preempts the sampled wait; restarting the draw past
      // it is exact because exponential clocks are memoryless.
      now_ = next_burst_;
      next_burst_ += period_;
      last_burst_size_ =
          static_cast<std::uint64_t>(frac_ * static_cast<double>(alive));
      if (last_burst_size_ == 0) continue;  // population too small to burst
      ++bursts_;
      burst_remaining_ = last_burst_size_ - 1;
      step.time = now_;
      step.is_birth = kind_ == Kind::kFlashCrowd;
      return step;
    }
    now_ = t;
    step.time = now_;
    step.is_birth = rng_.bernoulli(lambda_ / total_rate);
    return step;
  }
}

}  // namespace churnet
