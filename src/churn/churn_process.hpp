// The pluggable churn layer: one interface every churn regime implements.
//
// A ChurnProcess is an event stream: `next(alive)` samples the next birth or
// death given the current network size, and the consuming network realizes
// it (creates the node and wires its requests, or removes the victim and
// regenerates orphans). The split keeps demography (who is born/dies, when)
// separate from topology (which edges exist) — the paper's two processes
// (streaming Definition 3.2, Poisson Definition 4.1) and every extended
// regime (heavy-tailed lifetimes, bursty on/off phases, growth/decline
// schedules) are implementations of this one interface, and both
// StreamingNetwork and PoissonNetwork drive their churn only through it.
//
// Contract:
//   * `next(alive)` is called with the number of currently alive nodes and
//     returns the next event in non-decreasing time order.
//   * After a birth event is realized, the network calls `on_birth(id, t)`
//     with the newborn's id before sampling the next event — processes that
//     schedule per-node deaths (streaming FIFO, lifetime heaps) depend on
//     this notification.
//   * After a death event is realized the network calls `on_death(id, t)`.
//   * A death event names its victim rule: `kUniform` lets the network pick
//     a uniform random alive node from its own RNG stream (the paper's
//     Poisson models), `kScheduled` pins the exact node chosen by the
//     process (streaming oldest-first, lifetime expiry).
//   * All of a process's randomness comes from its own seed; processes never
//     touch the network's RNG, so churn and wiring streams stay decoupled.
#pragma once

#include <cstdint>
#include <string>

#include "graph/node_id.hpp"

namespace churnet {

class ChurnProcess {
 public:
  /// How a death event selects its victim.
  enum class Victim : std::uint8_t {
    kUniform,    // network draws a uniform random alive node
    kScheduled,  // the process names the exact node (victim_id)
  };

  /// One churn event: a birth, or the death of a node.
  struct Step {
    double time = 0.0;
    bool is_birth = true;
    Victim victim = Victim::kUniform;
    NodeId victim_id = kInvalidNode;  // valid iff victim == kScheduled
  };

  virtual ~ChurnProcess() = default;

  /// Samples the next event given the current number of alive nodes and
  /// advances the process clock to it.
  virtual Step next(std::uint64_t alive) = 0;

  /// Notification that a birth event was realized as node `id` at `time`.
  virtual void on_birth(NodeId id, double time) {
    (void)id;
    (void)time;
  }

  /// Notification that `id` died at `time` (any victim rule).
  virtual void on_death(NodeId id, double time) {
    (void)id;
    (void)time;
  }

  /// Canonical spec name of the regime ("poisson", "pareto(2.5)", ...).
  virtual std::string name() const = 0;

  /// Expected node lifetime (the paper's n); sets warm-up horizons and
  /// normalizes regimes against each other.
  virtual double mean_lifetime() const = 0;

  /// Warm-up horizon for `multiple` expected lifetimes. The default is
  /// multiple * mean_lifetime(); regimes override it when a different
  /// arithmetic must be preserved exactly (the paper's jump chain) or when
  /// a schedule pins the stationary phase (drift).
  virtual double warm_up_time(double multiple) const {
    return multiple * mean_lifetime();
  }
};

}  // namespace churnet
