// The pluggable churn layer: one interface every churn regime implements.
//
// A ChurnProcess is an event stream: `next(alive)` samples the next birth or
// death given the current network size, and the consuming network realizes
// it (creates the node and wires its requests, or removes the victim and
// regenerates orphans). The split keeps demography (who is born/dies, when)
// separate from topology (which edges exist) — the paper's two processes
// (streaming Definition 3.2, Poisson Definition 4.1) and every extended
// regime (heavy-tailed lifetimes, bursty on/off phases, growth/decline
// schedules) are implementations of this one interface, and both
// StreamingNetwork and PoissonNetwork drive their churn only through it.
//
// Contract:
//   * `next(alive)` is called with the number of currently alive nodes and
//     returns the next event in non-decreasing time order.
//   * After a birth event is realized, the network calls `on_birth(id, t)`
//     with the newborn's id before sampling the next event — processes that
//     schedule per-node deaths (streaming FIFO, lifetime heaps) depend on
//     this notification.
//   * After a death event is realized the network calls `on_death(id, t)`.
//   * A death event names its victim rule: `kUniform` lets the network pick
//     a uniform random alive node from its own RNG stream (the paper's
//     Poisson models), `kScheduled` pins the exact node chosen by the
//     process (streaming oldest-first, lifetime expiry), and `kAdversarial`
//     defers the choice to the instant the death is realized: the network
//     calls back `select_victim(view)` with a read-only view of the current
//     topology, so adversarial rules (max-degree targeting, eclipse
//     capture, ...) can inspect graph state that does not exist when the
//     event is sampled. See DESIGN.md decision 18 for the contract.
//   * All of a process's randomness comes from its own seed; processes never
//     touch the network's RNG, so churn and wiring streams stay decoupled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assertx.hpp"
#include "graph/node_id.hpp"

namespace churnet {

/// Read-only topology view handed to ChurnProcess::select_victim at the
/// moment a kAdversarial death is realized. An abstract interface (rather
/// than DynamicGraph itself) for two reasons: churn processes stay
/// decoupled from the graph's storage layout, and tests can implement the
/// view over a shadow adjacency to differentially verify victim selection.
///
/// Slots are the graph's dense node indices: every alive node occupies a
/// distinct slot below slot_upper_bound(), so a slot-ascending scan visits
/// the alive set in a deterministic, view-independent order — adversary
/// rules break ties toward the smallest slot, which keeps their choices
/// reproducible by any conforming view implementation.
class GraphReadView {
 public:
  virtual ~GraphReadView() = default;

  /// Number of currently alive nodes.
  virtual std::uint64_t alive_count() const = 0;

  /// Exclusive upper bound on slot indices hosting alive nodes.
  virtual std::uint32_t slot_upper_bound() const = 0;

  /// Full id of the alive node hosted at `slot`, or an invalid id when the
  /// slot is empty / dead.
  virtual NodeId alive_at(std::uint32_t slot) const = 0;

  /// Total degree (out + in, parallel edges with multiplicity) of an alive
  /// node.
  virtual std::uint32_t degree(NodeId node) const = 0;

  /// Appends the alive neighbors of `node` (with multiplicity, any order —
  /// consumers that need a canonical order sort).
  virtual void append_neighbors(NodeId node,
                                std::vector<NodeId>& out) const = 0;
};

class ChurnProcess {
 public:
  /// How a death event selects its victim.
  enum class Victim : std::uint8_t {
    kUniform,      // network draws a uniform random alive node
    kScheduled,    // the process names the exact node (victim_id)
    kAdversarial,  // network calls back select_victim() with a graph view
  };

  /// One churn event: a birth, or the death of a node.
  struct Step {
    double time = 0.0;
    bool is_birth = true;
    Victim victim = Victim::kUniform;
    NodeId victim_id = kInvalidNode;  // valid iff victim == kScheduled
  };

  virtual ~ChurnProcess() = default;

  /// Samples the next event given the current number of alive nodes and
  /// advances the process clock to it.
  virtual Step next(std::uint64_t alive) = 0;

  /// Notification that a birth event was realized as node `id` at `time`.
  virtual void on_birth(NodeId id, double time) {
    (void)id;
    (void)time;
  }

  /// Notification that `id` died at `time` (any victim rule).
  virtual void on_death(NodeId id, double time) {
    (void)id;
    (void)time;
  }

  /// Names the victim of a kAdversarial death event. Called by the network
  /// exactly once per kAdversarial event, after the event is sampled and
  /// before the removal, with a view of the then-current topology; must
  /// return an alive node. Only processes that emit kAdversarial events
  /// implement it (requires view.alive_count() > 0).
  virtual NodeId select_victim(const GraphReadView& view) {
    (void)view;
    CHURNET_ASSERT(false &&
                   "select_victim on a process that never emits "
                   "kAdversarial events");
    return kInvalidNode;
  }

  /// Canonical spec name of the regime ("poisson", "pareto(2.5)", ...).
  virtual std::string name() const = 0;

  /// Expected node lifetime (the paper's n); sets warm-up horizons and
  /// normalizes regimes against each other.
  virtual double mean_lifetime() const = 0;

  /// Warm-up horizon for `multiple` expected lifetimes. The default is
  /// multiple * mean_lifetime(); regimes override it when a different
  /// arithmetic must be preserved exactly (the paper's jump chain) or when
  /// a schedule pins the stationary phase (drift).
  virtual double warm_up_time(double multiple) const {
    return multiple * mean_lifetime();
  }
};

}  // namespace churnet
