#include "expansion/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assertx.hpp"

namespace churnet {

namespace {

/// Shared deflated-power-iteration core. `seed` fills the start vector
/// (after the degree-0 early-out, so it is only invoked — and only consumes
/// RNG draws — when the iteration actually runs). When `final_x` is
/// non-null the pi-normalized iterate at stop is copied into it (the warm
/// state for the next probe).
template <typename SeedFn>
SpectralResult run_power_iteration(const Snapshot& snapshot, Rng& rng,
                                   std::uint32_t max_iterations,
                                   double tolerance, SeedFn&& seed,
                                   std::vector<double>* final_x) {
  const std::uint32_t n = snapshot.node_count();
  CHURNET_EXPECTS(n >= 2);
  SpectralResult result;

  // Isolated nodes are degree-0 fixed points of the lazy walk: lambda2 = 1
  // exactly and no iteration is needed.
  std::uint64_t total_degree = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t deg = snapshot.degree(v);
    if (deg == 0) {
      result.lambda2 = 1.0;
      result.spectral_gap = 0.0;
      result.cheeger_lower = 0.0;
      result.cheeger_upper = 0.0;
      result.converged = true;
      return result;
    }
    total_degree += deg;
  }

  // Stationary distribution pi_v = deg(v) / (2m); the top eigenvector of
  // the lazy walk is the all-ones vector, deflated in the pi-inner product.
  std::vector<double> pi(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    pi[v] = static_cast<double>(snapshot.degree(v)) /
            static_cast<double>(total_degree);
  }

  std::vector<double> x(n);
  seed(x);
  std::vector<double> next(n);

  auto deflate = [&](std::vector<double>& values) {
    double mean = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) mean += pi[v] * values[v];
    for (double& value : values) value -= mean;
  };
  auto pi_norm = [&](const std::vector<double>& values) {
    double sum = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      sum += pi[v] * values[v] * values[v];
    }
    return std::sqrt(sum);
  };

  deflate(x);
  {
    double norm = pi_norm(x);
    if (norm <= 0.0) {
      // A warm seed can (degenerately) lie entirely in the top eigenspace;
      // fall back to a fresh random vector, deterministically from `rng`.
      // Unreachable with a random seed, so the cold path is unaffected.
      for (double& value : x) value = rng.normal();
      deflate(x);
      norm = pi_norm(x);
    }
    CHURNET_ASSERT(norm > 0.0);
    for (double& value : x) value /= norm;
  }

  double rayleigh = 0.0;
  for (std::uint32_t iteration = 1; iteration <= max_iterations;
       ++iteration) {
    // next = P x with P = (I + D^{-1} A) / 2.
    for (std::uint32_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const std::uint32_t w : snapshot.neighbors(v)) sum += x[w];
      next[v] =
          0.5 * (x[v] + sum / static_cast<double>(snapshot.degree(v)));
    }
    deflate(next);  // numerical re-orthogonalization against constants
    // Rayleigh quotient <x, Px>_pi with the pre-normalized x.
    double quotient = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      quotient += pi[v] * x[v] * next[v];
    }
    const double norm = pi_norm(next);
    result.iterations = iteration;
    if (norm <= 1e-300) {
      // x was (numerically) entirely in the top eigenspace: gap is huge.
      rayleigh = 0.0;
      result.converged = true;
      break;
    }
    for (std::uint32_t v = 0; v < n; ++v) x[v] = next[v] / norm;
    if (std::abs(quotient - rayleigh) < tolerance && iteration > 8) {
      rayleigh = quotient;
      result.converged = true;
      break;
    }
    rayleigh = quotient;
  }

  if (final_x != nullptr) *final_x = std::move(x);

  // The lazy walk's spectrum lies in [0, 1]; clamp numerical noise.
  result.lambda2 = std::clamp(rayleigh, 0.0, 1.0);
  result.spectral_gap = 1.0 - result.lambda2;
  result.cheeger_lower = result.spectral_gap / 2.0;
  result.cheeger_upper = std::sqrt(2.0 * result.spectral_gap);
  return result;
}

}  // namespace

SpectralResult spectral_gap(const Snapshot& snapshot, Rng& rng,
                            std::uint32_t max_iterations, double tolerance) {
  return run_power_iteration(
      snapshot, rng, max_iterations, tolerance,
      [&rng](std::vector<double>& x) {
        for (double& value : x) value = rng.normal();
      },
      nullptr);
}

SpectralResult spectral_gap_warm(const Snapshot& snapshot, Rng& rng,
                                 SpectralWarmState& state,
                                 std::uint32_t max_iterations,
                                 double tolerance) {
  const std::uint32_t n = snapshot.node_count();
  SpectralResult result;
  if (!state.valid) {
    // Cold start: draw-for-draw identical to spectral_gap.
    result = run_power_iteration(
        snapshot, rng, max_iterations, tolerance,
        [&rng](std::vector<double>& x) {
          for (double& value : x) value = rng.normal();
        },
        &state.values);
  } else {
    // Re-project the previous eigenvector onto the surviving node set:
    // survivors (matched by generation-qualified NodeId) keep their stored
    // component, newcomers draw fresh — in index order, so the draw
    // sequence is a deterministic function of the churn history.
    std::uint32_t max_slot = 0;
    for (const NodeId id : state.nodes) max_slot = std::max(max_slot, id.slot);
    std::vector<std::uint32_t> slot_to_prev(
        static_cast<std::size_t>(max_slot) + 1, NodeId::kInvalidSlot);
    for (std::uint32_t p = 0;
         p < static_cast<std::uint32_t>(state.nodes.size()); ++p) {
      slot_to_prev[state.nodes[p].slot] = p;
    }
    result = run_power_iteration(
        snapshot, rng, max_iterations, tolerance,
        [&](std::vector<double>& x) {
          for (std::uint32_t v = 0; v < n; ++v) {
            const NodeId id = snapshot.node_id(v);
            const std::uint32_t p =
                id.slot <= max_slot ? slot_to_prev[id.slot]
                                    : NodeId::kInvalidSlot;
            if (p != NodeId::kInvalidSlot && state.nodes[p] == id) {
              x[v] = state.values[p];
            } else {
              x[v] = rng.normal();
            }
          }
        },
        &state.values);
  }

  if (result.iterations == 0 && result.converged) {
    // Degree-0 early-out: no eigenvector was produced. Keep any previous
    // state — its survivors stay reusable for the next connected snapshot.
    return result;
  }
  state.nodes.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) state.nodes[v] = snapshot.node_id(v);
  state.valid = true;
  return result;
}

}  // namespace churnet
