#include "expansion/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assertx.hpp"

namespace churnet {

SpectralResult spectral_gap(const Snapshot& snapshot, Rng& rng,
                            std::uint32_t max_iterations, double tolerance) {
  const std::uint32_t n = snapshot.node_count();
  CHURNET_EXPECTS(n >= 2);
  SpectralResult result;

  // Isolated nodes are degree-0 fixed points of the lazy walk: lambda2 = 1
  // exactly and no iteration is needed.
  std::uint64_t total_degree = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t deg = snapshot.degree(v);
    if (deg == 0) {
      result.lambda2 = 1.0;
      result.spectral_gap = 0.0;
      result.cheeger_lower = 0.0;
      result.cheeger_upper = 0.0;
      result.converged = true;
      return result;
    }
    total_degree += deg;
  }

  // Stationary distribution pi_v = deg(v) / (2m); the top eigenvector of
  // the lazy walk is the all-ones vector, deflated in the pi-inner product.
  std::vector<double> pi(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    pi[v] = static_cast<double>(snapshot.degree(v)) /
            static_cast<double>(total_degree);
  }

  std::vector<double> x(n);
  for (double& value : x) value = rng.normal();
  std::vector<double> next(n);

  auto deflate = [&](std::vector<double>& values) {
    double mean = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) mean += pi[v] * values[v];
    for (double& value : values) value -= mean;
  };
  auto pi_norm = [&](const std::vector<double>& values) {
    double sum = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      sum += pi[v] * values[v] * values[v];
    }
    return std::sqrt(sum);
  };

  deflate(x);
  {
    const double norm = pi_norm(x);
    CHURNET_ASSERT(norm > 0.0);
    for (double& value : x) value /= norm;
  }

  double rayleigh = 0.0;
  for (std::uint32_t iteration = 1; iteration <= max_iterations;
       ++iteration) {
    // next = P x with P = (I + D^{-1} A) / 2.
    for (std::uint32_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const std::uint32_t w : snapshot.neighbors(v)) sum += x[w];
      next[v] =
          0.5 * (x[v] + sum / static_cast<double>(snapshot.degree(v)));
    }
    deflate(next);  // numerical re-orthogonalization against constants
    // Rayleigh quotient <x, Px>_pi with the pre-normalized x.
    double quotient = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      quotient += pi[v] * x[v] * next[v];
    }
    const double norm = pi_norm(next);
    result.iterations = iteration;
    if (norm <= 1e-300) {
      // x was (numerically) entirely in the top eigenspace: gap is huge.
      rayleigh = 0.0;
      result.converged = true;
      break;
    }
    for (std::uint32_t v = 0; v < n; ++v) x[v] = next[v] / norm;
    if (std::abs(quotient - rayleigh) < tolerance && iteration > 8) {
      rayleigh = quotient;
      result.converged = true;
      break;
    }
    rayleigh = quotient;
  }

  // The lazy walk's spectrum lies in [0, 1]; clamp numerical noise.
  result.lambda2 = std::clamp(rayleigh, 0.0, 1.0);
  result.spectral_gap = 1.0 - result.lambda2;
  result.cheeger_lower = result.spectral_gap / 2.0;
  result.cheeger_upper = std::sqrt(2.0 * result.spectral_gap);
  return result;
}

}  // namespace churnet
