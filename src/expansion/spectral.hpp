// Spectral expansion estimation: the second eigenvalue of the lazy random
// walk on a snapshot, computed by deflated power iteration.
//
// This is an *algebraic* expansion measure, independent of the
// combinatorial probe in expansion.hpp. For the lazy walk
// P = (I + D^{-1} A) / 2 the spectral gap 1 - lambda_2 controls
// conductance through the Cheeger inequalities
//     (1 - lambda_2) / 2  <=  Phi(G)  <=  sqrt(2 (1 - lambda_2)),
// and conductance lower-bounds vertex expansion up to degree factors. A
// gap bounded away from zero certifies that no sparse cut exists anywhere
// -- complementing the probe, which can only exhibit bad sets, not exclude
// them. Disconnected graphs (e.g. SDG/PDG with isolated nodes) have
// lambda_2 = 1, i.e. zero gap, which the benches use as the negative
// signal for the non-regenerating models.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/snapshot.hpp"

namespace churnet {

struct SpectralResult {
  /// Second eigenvalue of the lazy random walk (1 = disconnected).
  double lambda2 = 1.0;
  /// 1 - lambda2.
  double spectral_gap = 0.0;
  /// Cheeger bounds on the conductance derived from lambda2.
  double cheeger_lower = 0.0;
  double cheeger_upper = 0.0;
  /// Power-iteration steps actually used.
  std::uint32_t iterations = 0;
  /// True when the Rayleigh quotient moved less than `tolerance` at stop.
  bool converged = false;
};

/// Estimates lambda_2 by power iteration on the lazy walk, deflating the
/// stationary component (pi-weighted projection onto constants). Isolated
/// nodes are fixed points of the lazy walk; if any exists the result is
/// exactly lambda2 = 1. Deterministic given `rng`'s state.
SpectralResult spectral_gap(const Snapshot& snapshot, Rng& rng,
                            std::uint32_t max_iterations = 500,
                            double tolerance = 1e-9);

/// Carried eigenvector for warm-started probes: the previous snapshot's
/// final iterate, keyed by generation-qualified NodeId so survivors can be
/// matched across churn. Default-constructed = no history (cold).
struct SpectralWarmState {
  std::vector<NodeId> nodes;
  std::vector<double> values;
  bool valid = false;

  void reset() {
    nodes.clear();
    values.clear();
    valid = false;
  }
};

/// spectral_gap seeded from `state`: survivors of the previous probe keep
/// their eigenvector component (re-projected onto the current node set),
/// newcomers draw from `rng` in index order. With an invalid state this is
/// draw-for-draw identical to spectral_gap. On a slowly-churning graph the
/// seed is already near the lambda_2 eigenspace, cutting iterations per
/// probe by an order of magnitude. The result remains a pure function of
/// (seed, sequence of snapshots probed) — deterministic, but after the
/// first probe of a trial it is a different (faster-converging) estimator
/// than the cold path, which tests pin with fixed iteration budgets.
SpectralResult spectral_gap_warm(const Snapshot& snapshot, Rng& rng,
                                 SpectralWarmState& state,
                                 std::uint32_t max_iterations = 500,
                                 double tolerance = 1e-9);

}  // namespace churnet
