// Isolated-node census (paper Lemmas 3.5 and 4.10).
#pragma once

#include <cstdint>

#include "graph/snapshot.hpp"

namespace churnet {

struct IsolatedCensus {
  std::uint64_t isolated_nodes = 0;
  std::uint64_t total_nodes = 0;
  double fraction = 0.0;
};

/// Counts degree-0 nodes in a snapshot.
IsolatedCensus isolated_census(const Snapshot& snapshot);

/// The paper's lower-bound fractions for comparison columns:
/// Lemma 3.5 (streaming): e^{-2d}/6 of n; Lemma 4.10 (Poisson): e^{-2d}/18.
double lemma_3_5_isolated_fraction(std::uint32_t d);
double lemma_4_10_isolated_fraction(std::uint32_t d);

}  // namespace churnet
