// Vertex-expansion measurement (paper Definition 3.1).
//
// h_out(G) = min over 0 < |S| <= |N|/2 of |∂out(S)| / |S|.
//
// Certifying h_out exactly is exponential, so the library offers:
//   * exact_vertex_expansion   -- exhaustive, for n <= 20 (tests, tiny demos)
//   * probe_expansion          -- an *upper bound* on h_out obtained from
//     adversarial candidate families: random sets, BFS balls, age prefixes
//     and suffixes (the paper's worst cases are sets of old nodes), and a
//     greedy minimum-boundary growth. A probe that stays above the paper's
//     ε = 0.1 across thousands of adversarial candidates is evidence for the
//     expansion theorems, not a certificate; EXPERIMENTS.md says so plainly.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "graph/snapshot.hpp"

namespace churnet {

/// Incremental set/boundary tracker over a snapshot.
///
/// add() maintains |∂out(S)| under single-node insertions in O(deg) time,
/// which lets one growth pass report the expansion ratio at every prefix
/// size. Used by all candidate families and exposed publicly for custom
/// probes.
class IncrementalSet {
 public:
  explicit IncrementalSet(const Snapshot& snapshot);

  /// Adds node `v` (must not be in the set).
  void add(std::uint32_t v);

  bool contains(std::uint32_t v) const { return in_set_[v]; }
  std::uint32_t size() const { return size_; }
  std::uint32_t boundary_size() const { return boundary_; }
  /// |∂out(S)| / |S|; requires a non-empty set.
  double ratio() const;

  /// Resets to the empty set in O(touched) time.
  void clear();

 private:
  const Snapshot* snapshot_;
  std::vector<bool> in_set_;
  std::vector<bool> in_boundary_;
  std::vector<std::uint32_t> touched_;
  std::uint32_t size_ = 0;
  std::uint32_t boundary_ = 0;
};

/// |∂out(S)| for an explicit set of snapshot indices.
std::uint32_t boundary_size(const Snapshot& snapshot,
                            std::span<const std::uint32_t> set);

/// |∂out(S)|/|S| for an explicit non-empty set.
double expansion_ratio(const Snapshot& snapshot,
                       std::span<const std::uint32_t> set);

/// Exhaustive h_out; requires node_count() <= 20.
double exact_vertex_expansion(const Snapshot& snapshot);

struct ProbeOptions {
  std::uint32_t min_size = 1;
  /// 0 means node_count()/2 (the definition's upper limit).
  std::uint32_t max_size = 0;
  /// Random subsets drawn per probed size.
  std::uint32_t random_sets_per_size = 8;
  /// Number of geometrically spaced sizes between min and max.
  std::uint32_t size_steps = 24;
  /// BFS balls around this many random seeds (ratios at every prefix size).
  std::uint32_t bfs_seeds = 8;
  /// Include oldest-k and youngest-k prefixes for every k in range.
  bool age_ranges = true;
  /// Probe the k lowest-degree vertices as singletons and the set of all
  /// degree-0 vertices (catches the SDG/PDG isolated-node worst case).
  std::uint32_t low_degree_singletons = 16;
  /// Greedy minimum-boundary growth runs (ratios at every prefix size).
  std::uint32_t greedy_seeds = 4;
  /// Cap on greedy/BFS growth length (they are the slow families).
  std::uint32_t growth_limit = 4096;
  /// Candidate boundary nodes evaluated per greedy step.
  std::uint32_t greedy_fanout = 48;
};

struct ProbeResult {
  double min_ratio = std::numeric_limits<double>::infinity();
  std::uint32_t argmin_size = 0;
  std::string argmin_family;
  std::uint64_t sets_probed = 0;

  /// Feeds one candidate observation into the running minimum.
  void observe(double ratio, std::uint32_t size, const char* family);
};

/// Probes h_out from above using all enabled candidate families.
ProbeResult probe_expansion(const Snapshot& snapshot, Rng& rng,
                            const ProbeOptions& options = {});

}  // namespace churnet
