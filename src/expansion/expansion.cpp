#include "expansion/expansion.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assertx.hpp"

namespace churnet {

IncrementalSet::IncrementalSet(const Snapshot& snapshot)
    : snapshot_(&snapshot),
      in_set_(snapshot.node_count(), false),
      in_boundary_(snapshot.node_count(), false) {}

void IncrementalSet::add(std::uint32_t v) {
  CHURNET_EXPECTS(v < snapshot_->node_count());
  CHURNET_EXPECTS(!in_set_[v]);
  if (in_boundary_[v]) {
    in_boundary_[v] = false;
    --boundary_;
  }
  in_set_[v] = true;
  touched_.push_back(v);
  ++size_;
  for (const std::uint32_t w : snapshot_->neighbors(v)) {
    if (!in_set_[w] && !in_boundary_[w]) {
      in_boundary_[w] = true;
      touched_.push_back(w);
      ++boundary_;
    }
  }
}

double IncrementalSet::ratio() const {
  CHURNET_EXPECTS(size_ > 0);
  return static_cast<double>(boundary_) / static_cast<double>(size_);
}

void IncrementalSet::clear() {
  for (const std::uint32_t v : touched_) {
    in_set_[v] = false;
    in_boundary_[v] = false;
  }
  touched_.clear();
  size_ = 0;
  boundary_ = 0;
}

std::uint32_t boundary_size(const Snapshot& snapshot,
                            std::span<const std::uint32_t> set) {
  IncrementalSet tracker(snapshot);
  for (const std::uint32_t v : set) tracker.add(v);
  return tracker.boundary_size();
}

double expansion_ratio(const Snapshot& snapshot,
                       std::span<const std::uint32_t> set) {
  CHURNET_EXPECTS(!set.empty());
  return static_cast<double>(boundary_size(snapshot, set)) /
         static_cast<double>(set.size());
}

double exact_vertex_expansion(const Snapshot& snapshot) {
  const std::uint32_t n = snapshot.node_count();
  CHURNET_EXPECTS(n >= 2 && n <= 20);
  // Bitmask adjacency; subset enumeration over all S with |S| <= n/2.
  std::vector<std::uint32_t> adjacency(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const std::uint32_t w : snapshot.neighbors(v)) {
      adjacency[v] |= 1u << w;
    }
  }
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    const int size = std::popcount(mask);
    if (static_cast<std::uint32_t>(size) * 2 > n) continue;
    std::uint32_t reach = 0;
    std::uint32_t bits = mask;
    while (bits != 0) {
      const int v = std::countr_zero(bits);
      bits &= bits - 1;
      reach |= adjacency[static_cast<std::uint32_t>(v)];
    }
    const int boundary = std::popcount(reach & ~mask);
    best = std::min(best,
                    static_cast<double>(boundary) / static_cast<double>(size));
  }
  return best;
}

void ProbeResult::observe(double ratio, std::uint32_t size,
                          const char* family) {
  ++sets_probed;
  if (ratio < min_ratio) {
    min_ratio = ratio;
    argmin_size = size;
    argmin_family = family;
  }
}

namespace {

/// Observes every prefix of a growth sequence whose size is within range.
class GrowthObserver {
 public:
  GrowthObserver(ProbeResult& result, std::uint32_t min_size,
                 std::uint32_t max_size, const char* family)
      : result_(&result),
        min_size_(min_size),
        max_size_(max_size),
        family_(family) {}

  void step(const IncrementalSet& set) {
    if (set.size() < min_size_ || set.size() > max_size_) return;
    result_->observe(set.ratio(), set.size(), family_);
  }

 private:
  ProbeResult* result_;
  std::uint32_t min_size_;
  std::uint32_t max_size_;
  const char* family_;
};

void probe_random_sets(const Snapshot& snapshot, Rng& rng,
                       const ProbeOptions& options, std::uint32_t max_size,
                       ProbeResult& result) {
  // Geometric size sweep between min_size and max_size.
  std::vector<std::uint32_t> sizes;
  const double lo = std::max<double>(1.0, options.min_size);
  const double hi = std::max<double>(lo, max_size);
  for (std::uint32_t i = 0; i < options.size_steps; ++i) {
    const double t = options.size_steps == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(options.size_steps - 1);
    const auto size = static_cast<std::uint32_t>(
        std::llround(lo * std::pow(hi / lo, t)));
    if (sizes.empty() || sizes.back() != size) sizes.push_back(size);
  }
  IncrementalSet tracker(snapshot);
  for (const std::uint32_t size : sizes) {
    for (std::uint32_t rep = 0; rep < options.random_sets_per_size; ++rep) {
      tracker.clear();
      for (const std::uint64_t v :
           rng.sample_distinct(snapshot.node_count(), size)) {
        tracker.add(static_cast<std::uint32_t>(v));
      }
      result.observe(tracker.ratio(), size, "random");
    }
  }
}

void probe_bfs_balls(const Snapshot& snapshot, Rng& rng,
                     const ProbeOptions& options, std::uint32_t max_size,
                     ProbeResult& result) {
  const std::uint32_t limit = std::min(max_size, options.growth_limit);
  IncrementalSet tracker(snapshot);
  std::vector<std::uint32_t> queue;
  std::vector<bool> enqueued(snapshot.node_count(), false);
  for (std::uint32_t seed = 0; seed < options.bfs_seeds; ++seed) {
    tracker.clear();
    queue.clear();
    std::fill(enqueued.begin(), enqueued.end(), false);
    GrowthObserver observer(result, options.min_size, max_size, "bfs");
    const auto start =
        static_cast<std::uint32_t>(rng.below(snapshot.node_count()));
    queue.push_back(start);
    enqueued[start] = true;
    std::size_t head = 0;
    while (head < queue.size() && tracker.size() < limit) {
      const std::uint32_t v = queue[head++];
      tracker.add(v);
      observer.step(tracker);
      for (const std::uint32_t w : snapshot.neighbors(v)) {
        if (!enqueued[w]) {
          enqueued[w] = true;
          queue.push_back(w);
        }
      }
    }
  }
}

void probe_age_ranges(const Snapshot& snapshot, const ProbeOptions& options,
                      std::uint32_t max_size, ProbeResult& result) {
  const std::uint32_t n = snapshot.node_count();
  // Oldest-first prefixes: snapshot indices are age-sorted (oldest == 0).
  {
    IncrementalSet tracker(snapshot);
    GrowthObserver observer(result, options.min_size, max_size, "age-oldest");
    for (std::uint32_t v = 0; v < n && tracker.size() < max_size; ++v) {
      tracker.add(v);
      observer.step(tracker);
    }
  }
  {
    IncrementalSet tracker(snapshot);
    GrowthObserver observer(result, options.min_size, max_size,
                            "age-youngest");
    for (std::uint32_t i = 0; i < n && tracker.size() < max_size; ++i) {
      tracker.add(n - 1 - i);
      observer.step(tracker);
    }
  }
}

void probe_low_degree(const Snapshot& snapshot, const ProbeOptions& options,
                      std::uint32_t max_size, ProbeResult& result) {
  const std::uint32_t n = snapshot.node_count();
  // The k lowest-degree vertices, probed as singletons (and their union as
  // one set). Partial selection, O(n log k).
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t v = 0; v < n; ++v) order[v] = v;
  const std::uint32_t k =
      std::min<std::uint32_t>(options.low_degree_singletons, n);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return snapshot.degree(a) < snapshot.degree(b);
                    });
  if (options.min_size <= 1) {
    for (std::uint32_t i = 0; i < k; ++i) {
      // A singleton's boundary is its number of distinct neighbors.
      const std::uint32_t single[] = {order[i]};
      result.observe(static_cast<double>(boundary_size(snapshot, single)), 1,
                     "low-degree");
    }
  }
  // All degree-0 vertices as one set (ratio 0 whenever it is non-empty and
  // within the size window).
  std::vector<std::uint32_t> isolated;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (snapshot.degree(v) == 0) isolated.push_back(v);
  }
  if (!isolated.empty() && isolated.size() >= options.min_size &&
      isolated.size() <= max_size) {
    result.observe(0.0, static_cast<std::uint32_t>(isolated.size()),
                   "isolated-set");
  }
}

void probe_greedy_growth(const Snapshot& snapshot, Rng& rng,
                         const ProbeOptions& options, std::uint32_t max_size,
                         ProbeResult& result) {
  const std::uint32_t n = snapshot.node_count();
  const std::uint32_t limit = std::min(max_size, options.growth_limit);
  IncrementalSet tracker(snapshot);
  std::vector<std::uint32_t> boundary_pool;
  for (std::uint32_t seed_index = 0; seed_index < options.greedy_seeds;
       ++seed_index) {
    tracker.clear();
    boundary_pool.clear();
    GrowthObserver observer(result, options.min_size, max_size, "greedy");
    const auto start = static_cast<std::uint32_t>(rng.below(n));
    tracker.add(start);
    observer.step(tracker);
    for (const std::uint32_t w : snapshot.neighbors(start)) {
      boundary_pool.push_back(w);
    }
    while (tracker.size() < limit && !boundary_pool.empty()) {
      // Evaluate a random sample of boundary candidates; pick the one whose
      // addition keeps the boundary smallest (most neighbors already inside).
      std::uint32_t best_pos = 0;
      std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
      const std::uint32_t tries = std::min<std::uint32_t>(
          options.greedy_fanout,
          static_cast<std::uint32_t>(boundary_pool.size()));
      for (std::uint32_t t = 0; t < tries; ++t) {
        const auto pos =
            static_cast<std::uint32_t>(rng.below(boundary_pool.size()));
        const std::uint32_t candidate = boundary_pool[pos];
        if (tracker.contains(candidate)) {  // stale entry
          boundary_pool[pos] = boundary_pool.back();
          boundary_pool.pop_back();
          if (boundary_pool.empty()) break;
          continue;
        }
        std::int64_t outside = 0;
        for (const std::uint32_t w : snapshot.neighbors(candidate)) {
          if (!tracker.contains(w)) ++outside;
        }
        if (outside < best_score) {
          best_score = outside;
          best_pos = pos;
        }
      }
      if (boundary_pool.empty()) break;
      const std::uint32_t chosen = boundary_pool[best_pos];
      boundary_pool[best_pos] = boundary_pool.back();
      boundary_pool.pop_back();
      if (tracker.contains(chosen)) continue;
      tracker.add(chosen);
      observer.step(tracker);
      for (const std::uint32_t w : snapshot.neighbors(chosen)) {
        if (!tracker.contains(w)) boundary_pool.push_back(w);
      }
    }
  }
}

}  // namespace

ProbeResult probe_expansion(const Snapshot& snapshot, Rng& rng,
                            const ProbeOptions& options) {
  const std::uint32_t n = snapshot.node_count();
  CHURNET_EXPECTS(n >= 2);
  const std::uint32_t max_size =
      options.max_size == 0 ? n / 2 : std::min(options.max_size, n / 2);
  CHURNET_EXPECTS(options.min_size >= 1 && options.min_size <= max_size);

  ProbeResult result;
  probe_random_sets(snapshot, rng, options, max_size, result);
  if (options.bfs_seeds > 0) {
    probe_bfs_balls(snapshot, rng, options, max_size, result);
  }
  if (options.age_ranges) probe_age_ranges(snapshot, options, max_size, result);
  if (options.low_degree_singletons > 0) {
    probe_low_degree(snapshot, options, max_size, result);
  }
  if (options.greedy_seeds > 0) {
    probe_greedy_growth(snapshot, rng, options, max_size, result);
  }
  return result;
}

}  // namespace churnet
