#include "expansion/isolated.hpp"

#include <cmath>

namespace churnet {

IsolatedCensus isolated_census(const Snapshot& snapshot) {
  IsolatedCensus census;
  census.total_nodes = snapshot.node_count();
  for (std::uint32_t v = 0; v < snapshot.node_count(); ++v) {
    if (snapshot.degree(v) == 0) ++census.isolated_nodes;
  }
  census.fraction = census.total_nodes == 0
                        ? 0.0
                        : static_cast<double>(census.isolated_nodes) /
                              static_cast<double>(census.total_nodes);
  return census;
}

double lemma_3_5_isolated_fraction(std::uint32_t d) {
  return std::exp(-2.0 * static_cast<double>(d)) / 6.0;
}

double lemma_4_10_isolated_fraction(std::uint32_t d) {
  return std::exp(-2.0 * static_cast<double>(d)) / 18.0;
}

}  // namespace churnet
