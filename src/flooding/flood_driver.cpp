#include "flooding/flood_driver.hpp"

namespace churnet {

std::uint64_t FloodTrace::step_reaching_fraction(double fraction) const {
  CHURNET_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  for (std::size_t t = 0; t < informed_per_step.size(); ++t) {
    const double alive = static_cast<double>(alive_per_step[t]);
    if (static_cast<double>(informed_per_step[t]) >= fraction * alive) {
      return t;
    }
  }
  return kNever;
}

}  // namespace churnet
