#include "flooding/async_flooding.hpp"

namespace churnet {

AsyncFloodResult flood_poisson_async(PoissonNetwork& net,
                                     const AsyncFloodOptions& options) {
  // Advance to the next birth: that newborn is the source.
  for (;;) {
    const auto event = net.step();
    if (event.kind == ChurnEvent::Kind::kBirth) {
      return flood_async_from(net, event.node, options);
    }
  }
}

}  // namespace churnet
