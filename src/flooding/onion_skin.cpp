#include "flooding/onion_skin.hpp"

#include <algorithm>
#include <cmath>

#include "common/assertx.hpp"
#include "common/rng.hpp"

namespace churnet {

OnionSkinResult run_onion_skin(const OnionSkinConfig& config) {
  const std::uint32_t n = config.n;
  const std::uint32_t d = config.d;
  CHURNET_EXPECTS(n >= 16);
  CHURNET_EXPECTS(d >= 2 && d % 2 == 0);
  Rng rng(config.seed);

  // Node slots 0..n-1 by age position at time t0 (the paper classifies by
  // remaining life; with the streaming lifetime of exactly n the two views
  // coincide up to relabeling):
  //   [0, young_count)                      young  (life in [2, n/2))
  //   [young_count, young_count+old_count)  old    (life in [n/2, n-log n])
  //   the remaining ~log n slots            very old (discarded targets)
  const auto log_n = static_cast<std::uint32_t>(std::ceil(std::log(n)));
  const std::uint32_t young_count = n / 2;
  const std::uint32_t old_count = n - young_count - log_n;
  const std::uint32_t half_d = d / 2;

  const auto is_old = [&](std::uint64_t slot) {
    return slot >= young_count && slot < young_count + old_count;
  };

  // Pre-draw every young node's requests (equivalent in distribution to the
  // paper's deferred decisions: each request is examined exactly once).
  // type_a[y] / type_b[y]: requests 1..d/2 and d/2+1..d, kept only if the
  // destination lands in the old set (others are discarded by the process).
  std::vector<std::vector<std::uint32_t>> type_a(young_count);
  std::vector<std::vector<std::uint32_t>> type_b(young_count);
  // Reverse index for type-B: old slot -> young nodes with a B-request to it.
  std::vector<std::vector<std::uint32_t>> rev_b(old_count);
  for (std::uint32_t y = 0; y < young_count; ++y) {
    for (std::uint32_t r = 0; r < d; ++r) {
      const std::uint64_t dest = rng.below(n);
      if (!is_old(dest)) continue;  // links outside O are discarded
      const auto old_index = static_cast<std::uint32_t>(dest - young_count);
      if (r < half_d) {
        type_a[y].push_back(old_index);
      } else {
        type_b[y].push_back(old_index);
        rev_b[old_index].push_back(y);
      }
    }
  }

  std::vector<bool> young_informed(young_count, false);
  std::vector<bool> old_informed(old_count, false);
  OnionSkinResult result;

  // Phase 0: the source (the newborn at t0, not itself a member of Y or O)
  // issues d requests; the old nodes hit form O_0.
  std::vector<std::uint32_t> fresh_old;
  for (std::uint32_t r = 0; r < d; ++r) {
    const std::uint64_t dest = rng.below(n);
    if (!is_old(dest)) continue;
    const auto old_index = static_cast<std::uint32_t>(dest - young_count);
    if (!old_informed[old_index]) {
      old_informed[old_index] = true;
      fresh_old.push_back(old_index);
    }
  }
  result.old_layers.push_back(fresh_old.size());
  result.informed_old = fresh_old.size();

  const std::uint64_t target = n / std::max<std::uint32_t>(d, 1);
  std::vector<std::uint32_t> fresh_young;
  for (std::uint32_t phase = 1; phase <= config.max_phases; ++phase) {
    if (fresh_old.empty()) break;
    result.phases = phase;

    // Step 1: young nodes whose type-B requests hit the fresh old layer.
    fresh_young.clear();
    for (const std::uint32_t o : fresh_old) {
      for (const std::uint32_t y : rev_b[o]) {
        if (!young_informed[y]) {
          young_informed[y] = true;
          fresh_young.push_back(y);
        }
      }
    }
    result.young_layers.push_back(fresh_young.size());
    result.informed_young += fresh_young.size();
    if (fresh_young.empty()) break;

    // Step 2: old nodes hit by the fresh young layer's type-A requests.
    fresh_old.clear();
    for (const std::uint32_t y : fresh_young) {
      for (const std::uint32_t o : type_a[y]) {
        if (!old_informed[o]) {
          old_informed[o] = true;
          fresh_old.push_back(o);
        }
      }
    }
    result.old_layers.push_back(fresh_old.size());
    result.informed_old += fresh_old.size();

    if (result.informed_young >= target && result.informed_old >= target) {
      result.reached_target = true;
      break;
    }
  }
  // The target may also be met exactly at the last examined layer.
  if (result.informed_young >= target && result.informed_old >= target) {
    result.reached_target = true;
  }
  return result;
}

}  // namespace churnet
