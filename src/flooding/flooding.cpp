#include "flooding/flooding.hpp"

#include <unordered_set>
#include <utility>

#include "common/assertx.hpp"

namespace churnet {
namespace {

/// Edge-creation record shared by both drivers.
struct CreatedEdge {
  NodeId owner;
  NodeId target;
};

void record_step(FloodTrace& trace, const FloodOptions& options,
                 std::uint64_t informed, std::uint64_t alive) {
  if (!options.record_series) return;
  trace.informed_per_step.push_back(informed);
  trace.alive_per_step.push_back(alive);
}

}  // namespace

std::uint64_t FloodTrace::step_reaching_fraction(double fraction) const {
  CHURNET_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  for (std::size_t t = 0; t < informed_per_step.size(); ++t) {
    const double alive = static_cast<double>(alive_per_step[t]);
    if (static_cast<double>(informed_per_step[t]) >= fraction * alive) {
      return t;
    }
  }
  return kNever;
}

FloodTrace flood_streaming(StreamingNetwork& net,
                           const FloodOptions& options) {
  FloodTrace trace;
  std::vector<CreatedEdge> created;
  NetworkHooks hooks;
  hooks.on_edge_created = [&created](NodeId owner, std::uint32_t, NodeId target,
                                     bool, double) {
    created.push_back({owner, target});
  };
  net.set_hooks(std::move(hooks));

  // Round t0: the source joins the network.
  const auto source_round = net.step();
  const NodeId source = source_round.born;
  std::unordered_set<NodeId> informed{source};
  std::vector<NodeId> frontier{source};
  // The source's own birth edges are covered by the frontier.
  created.clear();

  trace.peak_informed = 1;
  record_step(trace, options, 1, net.graph().alive_count());

  std::vector<NodeId> newly;
  std::unordered_set<NodeId> newly_set;
  std::vector<NodeId> neighbor_scratch;
  for (std::uint64_t step = 1; step <= options.max_steps; ++step) {
    const DynamicGraph& graph = net.graph();

    // Boundary of I_{t-1} in G_{t-1}, examined incrementally.
    newly.clear();
    newly_set.clear();
    auto consider = [&](NodeId candidate) {
      if (informed.contains(candidate)) return;
      if (newly_set.insert(candidate).second) newly.push_back(candidate);
    };
    for (const NodeId u : frontier) {
      if (!graph.is_alive(u)) continue;  // died in a previous round
      neighbor_scratch.clear();
      graph.append_neighbors(u, neighbor_scratch);
      for (const NodeId v : neighbor_scratch) consider(v);
    }
    for (const CreatedEdge& edge : created) {
      if (!graph.is_alive(edge.owner) || !graph.is_alive(edge.target)) continue;
      const bool owner_informed = informed.contains(edge.owner);
      const bool target_informed = informed.contains(edge.target);
      if (owner_informed && !target_informed) consider(edge.target);
      if (target_informed && !owner_informed) consider(edge.owner);
    }
    created.clear();

    // Churn round t: one death (maybe), regeneration, one birth.
    const auto report = net.step();
    if (report.died.has_value()) informed.erase(*report.died);

    // I_t = (I_{t-1} ∪ ∂(I_{t-1})) ∩ N_t.
    frontier.clear();
    for (const NodeId v : newly) {
      if (!net.graph().is_alive(v)) continue;  // the round's death
      if (informed.insert(v).second) frontier.push_back(v);
    }

    trace.steps = step;
    const std::uint64_t informed_count = informed.size();
    const std::uint64_t alive_count = net.graph().alive_count();
    trace.peak_informed = std::max(trace.peak_informed, informed_count);
    record_step(trace, options, informed_count, alive_count);
    trace.final_fraction = alive_count == 0
                               ? 0.0
                               : static_cast<double>(informed_count) /
                                     static_cast<double>(alive_count);

    // Completion: the newborn is never informed at this point, so exactly
    // one uninformed alive node means I_t ⊇ N_{t-1} ∩ N_t.
    if (informed_count + 1 >= alive_count && alive_count >= 2) {
      trace.completed = true;
      trace.completion_step = step;
      break;
    }
    if (informed.empty()) {
      trace.died_out = true;
      trace.die_out_step = step;
      if (options.stop_on_die_out) break;
    }
    if (options.stop_at_fraction < 1.0 &&
        trace.final_fraction >= options.stop_at_fraction) {
      break;
    }
  }

  net.set_hooks({});
  return trace;
}

FloodTrace flood_poisson_discretized(PoissonNetwork& net,
                                     const FloodOptions& options) {
  FloodTrace trace;
  std::vector<CreatedEdge> created;
  std::unordered_set<NodeId> deaths;
  NetworkHooks hooks;
  hooks.on_edge_created = [&created](NodeId owner, std::uint32_t, NodeId target,
                                     bool, double) {
    created.push_back({owner, target});
  };
  hooks.on_death = [&deaths](NodeId node, double) { deaths.insert(node); };
  net.set_hooks(std::move(hooks));

  // Advance to the next birth: that newborn is the source (paper: the
  // flooding starts from the node joining at time t0).
  NodeId source;
  for (;;) {
    const auto event = net.step();
    if (event.kind == ChurnEvent::Kind::kBirth) {
      source = event.node;
      break;
    }
  }
  std::unordered_set<NodeId> informed{source};
  std::vector<NodeId> frontier{source};
  created.clear();  // source's own edges are covered by the frontier
  deaths.clear();
  double clock = net.now();

  trace.peak_informed = 1;
  record_step(trace, options, 1, net.graph().alive_count());

  // Candidate pairs (u informed at T, v uninformed): v becomes informed at
  // T+1 iff neither u nor v dies in (T, T+1].
  std::vector<std::pair<NodeId, NodeId>> candidates;
  std::vector<NodeId> neighbor_scratch;
  for (std::uint64_t step = 1; step <= options.max_steps; ++step) {
    const DynamicGraph& graph = net.graph();
    candidates.clear();
    for (const NodeId u : frontier) {
      if (!graph.is_alive(u)) continue;
      neighbor_scratch.clear();
      graph.append_neighbors(u, neighbor_scratch);
      for (const NodeId v : neighbor_scratch) {
        if (!informed.contains(v)) candidates.emplace_back(u, v);
      }
    }
    for (const CreatedEdge& edge : created) {
      // An edge created in the previous interval counts from time T on,
      // provided it still exists (both endpoints alive).
      if (!graph.is_alive(edge.owner) || !graph.is_alive(edge.target)) continue;
      const bool owner_informed = informed.contains(edge.owner);
      const bool target_informed = informed.contains(edge.target);
      if (owner_informed && !target_informed) {
        candidates.emplace_back(edge.owner, edge.target);
      } else if (target_informed && !owner_informed) {
        candidates.emplace_back(edge.target, edge.owner);
      }
    }
    created.clear();
    deaths.clear();

    // One unit of continuous time: churn events fire, hooks record them.
    net.run_until(clock + 1.0);
    clock += 1.0;

    for (const NodeId dead : deaths) informed.erase(dead);

    frontier.clear();
    for (const auto& [u, v] : candidates) {
      if (deaths.contains(u) || deaths.contains(v)) continue;
      CHURNET_ASSERT(net.graph().is_alive(v));
      if (informed.insert(v).second) frontier.push_back(v);
    }

    trace.steps = step;
    const std::uint64_t informed_count = informed.size();
    const std::uint64_t alive_count = net.graph().alive_count();
    trace.peak_informed = std::max(trace.peak_informed, informed_count);
    record_step(trace, options, informed_count, alive_count);
    trace.final_fraction = alive_count == 0
                               ? 0.0
                               : static_cast<double>(informed_count) /
                                     static_cast<double>(alive_count);

    if (informed_count == alive_count && alive_count > 0) {
      trace.completed = true;
      trace.completion_step = step;
      break;
    }
    if (informed.empty()) {
      trace.died_out = true;
      trace.die_out_step = step;
      if (options.stop_on_die_out) break;
    }
    if (options.stop_at_fraction < 1.0 &&
        trace.final_fraction >= options.stop_at_fraction) {
      break;
    }
  }

  net.set_hooks({});
  return trace;
}

}  // namespace churnet
