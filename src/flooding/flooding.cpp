#include "flooding/flooding.hpp"

namespace churnet {

FloodTrace flood_streaming(StreamingNetwork& net, const FloodOptions& options) {
  FloodScratch scratch;
  return flood_dynamic(net, options, scratch);
}

FloodTrace flood_streaming(StreamingNetwork& net, const FloodOptions& options,
                           FloodScratch& scratch) {
  return flood_dynamic(net, options, scratch);
}

FloodTrace flood_poisson_discretized(PoissonNetwork& net,
                                     const FloodOptions& options) {
  FloodScratch scratch;
  return flood_dynamic(net, options, scratch);
}

FloodTrace flood_poisson_discretized(PoissonNetwork& net,
                                     const FloodOptions& options,
                                     FloodScratch& scratch) {
  return flood_dynamic(net, options, scratch);
}

}  // namespace churnet
