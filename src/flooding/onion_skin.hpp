// The onion-skin process of paper Section 3.1.2.
//
// The paper's analysis device for SDG flooding: starting from the source,
// build a bipartite graph of alternating layers of "young" nodes (age below
// the median) and "old" nodes (age in [n/2, n - log n]), where each young
// node's d requests are split into d/2 type-A and d/2 type-B requests, and
// a path may only alternate young -(type B)-> old -(type B source)-> ... as
// in the paper. Claim 3.10 says each layer grows by a factor >= d/20 until
// the layers hold ~n/d nodes; Lemma 3.9 concludes 2n/d informed nodes in
// O(log n / log d) phases with probability >= 1 - 4 e^{-d/100}.
//
// This implementation simulates exactly the process (requests drawn
// uniformly over the n node slots, links outside the old set discarded),
// so benches can measure the per-phase growth factors and the failure
// probability against Claim 3.10 / Lemma 3.9.
#pragma once

#include <cstdint>
#include <vector>

namespace churnet {

struct OnionSkinConfig {
  std::uint32_t n = 10000;  // network size at the source's birth
  std::uint32_t d = 200;    // requests per node (paper needs d >= 200)
  std::uint64_t seed = 1;
  std::uint32_t max_phases = 64;
};

struct OnionSkinResult {
  /// |O_k - O_{k-1}| for k = 0, 1, ... (old layer added per phase).
  std::vector<std::uint64_t> old_layers;
  /// |Y_k - Y_{k-1}| for k = 1, 2, ... (young layer added per phase).
  std::vector<std::uint64_t> young_layers;
  std::uint64_t informed_young = 0;
  std::uint64_t informed_old = 0;
  /// Both sides reached n/d nodes (the target of Lemma 3.9).
  bool reached_target = false;
  std::uint32_t phases = 0;
};

OnionSkinResult run_onion_skin(const OnionSkinConfig& config);

}  // namespace churnet
