// Asynchronous flooding (paper Definition 4.2), event-driven.
//
// Semantics (DESIGN.md, decision 5): a message takes exactly one time unit
// per edge. When a node becomes informed it immediately sends on every
// incident edge; when an edge is created while exactly one endpoint is
// informed, a message starts on it at creation time. A delivery succeeds
// iff both endpoints are still alive at arrival (edges in these models
// disappear only through endpoint death, so surviving endpoints imply the
// edge persisted for the whole transmission).
//
// The driver is a template over the network type: it works for any network
// exposing set_hooks / graph / step / peek_next_event_time / now (both
// PoissonNetwork and P2pNetwork qualify). Churn events and deliveries are
// processed in global chronological order, so the simulation is exact.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/assertx.hpp"
#include "graph/node_id.hpp"
#include "models/poisson_network.hpp"

namespace churnet {

struct AsyncFloodOptions {
  /// Hard cap on simulated time after the flood starts.
  double max_time = 1e6;
  /// Stop once informed >= stop_at_fraction * alive (1.0 = completion only).
  double stop_at_fraction = 1.0;
};

struct AsyncFloodResult {
  /// I_t ⊇ N_t held at some time t (all alive nodes informed).
  bool completed = false;
  /// Time from the flood start to completion.
  double completion_time = 0.0;
  /// Every informed node died; the flood can never restart.
  bool died_out = false;
  double die_out_time = 0.0;
  std::uint64_t peak_informed = 0;
  /// informed/alive when the run stopped.
  double final_fraction = 0.0;
  /// Time from the flood start to the moment the run stopped (for
  /// stop_at_fraction runs: when the threshold was crossed).
  double elapsed = 0.0;
  std::uint64_t messages_delivered = 0;
  /// Messages dropped because an endpoint died during transmission.
  std::uint64_t messages_dropped = 0;
};

namespace detail_async_flood {

struct Delivery {
  double time;
  NodeId target;
  NodeId sender;
};

struct LaterDelivery {
  bool operator()(const Delivery& a, const Delivery& b) const {
    return a.time > b.time;
  }
};

}  // namespace detail_async_flood

/// Concept sketch (documented, not enforced): Net must provide
///   void set_hooks(NetworkHooks);
///   const DynamicGraph& graph() const;
///   <any> step();                    // executes the next churn event
///   double peek_next_event_time();
///   double now() const;
template <typename Net>
AsyncFloodResult flood_async_from(Net& net, NodeId source,
                                  const AsyncFloodOptions& options = {}) {
  namespace afd = detail_async_flood;
  AsyncFloodResult result;
  std::unordered_set<NodeId> informed;
  std::priority_queue<afd::Delivery, std::vector<afd::Delivery>,
                      afd::LaterDelivery>
      queue;
  std::uint64_t informed_alive = 0;
  bool completed_by_death = false;
  double completion_by_death_time = 0.0;

  NetworkHooks hooks;
  hooks.on_edge_created = [&](NodeId owner, std::uint32_t, NodeId target,
                              bool, double time) {
    const bool owner_informed = informed.contains(owner);
    const bool target_informed = informed.contains(target);
    if (owner_informed == target_informed) return;  // nothing to transmit
    const NodeId to = owner_informed ? target : owner;
    const NodeId from = owner_informed ? owner : target;
    queue.push(afd::Delivery{time + 1.0, to, from});
  };
  hooks.on_death = [&](NodeId node, double time) {
    if (informed.erase(node) > 0) {
      CHURNET_ASSERT(informed_alive > 0);
      --informed_alive;
    } else if (informed_alive > 0 &&
               informed_alive == net.graph().alive_count() - 1) {
      // The last uninformed node died: flooding completes at this instant.
      completed_by_death = true;
      completion_by_death_time = time;
    }
  };
  net.set_hooks(std::move(hooks));

  const double t0 = net.now();
  const double deadline = t0 + options.max_time;
  double last_time = t0;  // time of the most recent processed event

  std::vector<NodeId> neighbor_scratch;
  auto inform = [&](NodeId node, double time) {
    if (!informed.insert(node).second) return;
    ++informed_alive;
    result.peak_informed = std::max(result.peak_informed, informed_alive);
    neighbor_scratch.clear();
    net.graph().append_neighbors(node, neighbor_scratch);
    for (const NodeId neighbor : neighbor_scratch) {
      if (!informed.contains(neighbor)) {
        queue.push(afd::Delivery{time + 1.0, neighbor, node});
      }
    }
  };
  CHURNET_EXPECTS(net.graph().is_alive(source));
  inform(source, t0);

  while (!completed_by_death) {
    if (informed_alive == net.graph().alive_count() &&
        net.graph().alive_count() > 0) {
      result.completed = true;
      result.completion_time = net.now() - t0;
      break;
    }
    if (options.stop_at_fraction < 1.0 &&
        static_cast<double>(informed_alive) >=
            options.stop_at_fraction *
                static_cast<double>(net.graph().alive_count())) {
      break;
    }
    if (informed_alive == 0) {
      result.died_out = true;
      result.die_out_time = net.now() - t0;
      break;
    }
    if (queue.empty()) {
      // No message in flight; wait for churn to create an edge that carries
      // one (or for completion by deaths of uninformed nodes).
      if (net.peek_next_event_time() > deadline) break;
      net.step();
      last_time = net.now();
      continue;
    }
    const afd::Delivery next = queue.top();
    if (next.time > deadline) break;
    if (net.peek_next_event_time() <= next.time) {
      net.step();  // hooks update informed/queue as needed
      last_time = net.now();
      continue;
    }
    queue.pop();
    last_time = next.time;
    if (!net.graph().is_alive(next.sender) ||
        !net.graph().is_alive(next.target)) {
      ++result.messages_dropped;
      continue;
    }
    if (informed.contains(next.target)) continue;  // duplicate
    ++result.messages_delivered;
    inform(next.target, next.time);
    if (informed_alive == net.graph().alive_count()) {
      result.completed = true;
      result.completion_time = next.time - t0;
      break;
    }
  }

  if (completed_by_death) {
    result.completed = true;
    result.completion_time = completion_by_death_time - t0;
  }
  result.elapsed = last_time - t0;
  result.final_fraction =
      net.graph().alive_count() == 0
          ? 0.0
          : static_cast<double>(informed_alive) /
                static_cast<double>(net.graph().alive_count());
  net.set_hooks({});
  return result;
}

/// Convenience wrapper matching the paper's convention: the source is the
/// next node to be born in the Poisson network.
AsyncFloodResult flood_poisson_async(PoissonNetwork& net,
                                     const AsyncFloodOptions& options = {});

}  // namespace churnet
