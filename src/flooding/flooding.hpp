// Flooding processes over the dynamic network models.
//
//   * flood_streaming            -- synchronous flooding, paper Def. 3.3
//   * flood_poisson_discretized  -- discretized flooding, paper Def. 4.3
//
// Both drivers use an incremental frontier algorithm: a node can only
// become informed through (a) an edge incident to a node informed at the
// previous step, or (b) an edge created since the previous step with an
// informed endpoint. Edges never appear between two long-lived nodes except
// by regeneration, and never disappear except by endpoint death, so
// examining frontier edges plus freshly created edges covers the full
// boundary ∂out(I_t) at every step. This makes an Ω(n)-step completion run
// cost O(E + total churn) instead of O(n·E).
//
// The drivers install their own network hooks for the duration of the call
// and clear them on return; callers must not rely on hooks across a flood.
#pragma once

#include <cstdint>
#include <vector>

#include "models/poisson_network.hpp"
#include "models/streaming_network.hpp"

namespace churnet {

struct FloodOptions {
  /// Hard cap on flooding steps (rounds in streaming, unit intervals in the
  /// discretized Poisson process).
  std::uint64_t max_steps = 1'000'000;
  /// Stop once informed >= stop_at_fraction * alive (1.0 = only on
  /// completion per the paper's definitions).
  double stop_at_fraction = 1.0;
  /// Stop when the informed set dies out entirely.
  bool stop_on_die_out = true;
  /// Record per-step |I_t| and |N_t| series (cheap; on by default).
  bool record_series = true;
};

/// Outcome of one flooding run.
struct FloodTrace {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// |I_t| after flooding step t (index 0 = the source round, value 1).
  std::vector<std::uint64_t> informed_per_step;
  /// |N_t| at the same instants.
  std::vector<std::uint64_t> alive_per_step;

  std::uint64_t steps = 0;
  /// Completion per the paper: every node alive at both ends of a step is
  /// informed (streaming Def. 3.3) / all alive nodes informed (Def. 4.3).
  bool completed = false;
  std::uint64_t completion_step = kNever;
  /// The informed set became empty (every informed node died).
  bool died_out = false;
  std::uint64_t die_out_step = kNever;
  std::uint64_t peak_informed = 0;
  /// informed/alive when the run stopped.
  double final_fraction = 0.0;

  /// First step with informed >= fraction * alive; kNever if never reached.
  /// Requires record_series.
  std::uint64_t step_reaching_fraction(double fraction) const;
};

/// Runs synchronous flooding (Def. 3.3) on a streaming network. The source
/// is the node joining at the next round (the paper's convention). The
/// network should be warmed up; it is advanced by one round per step.
FloodTrace flood_streaming(StreamingNetwork& net,
                           const FloodOptions& options = {});

/// Runs discretized flooding (Def. 4.3) on a Poisson network. The source is
/// the next node to be born; each flooding step advances continuous time by
/// exactly one unit. A node is newly informed at step T+1 iff it had an
/// edge, already present at time T, to a node informed at T, and both
/// endpoints survived the whole interval (T, T+1].
FloodTrace flood_poisson_discretized(PoissonNetwork& net,
                                     const FloodOptions& options = {});

}  // namespace churnet
