// Flooding processes over the dynamic network models.
//
//   * flood_streaming            -- synchronous flooding, paper Def. 3.3
//   * flood_poisson_discretized  -- discretized flooding, paper Def. 4.3
//
// Both are thin wrappers over the generic frontier driver in
// flooding/flood_driver.hpp, instantiated with the model's declared
// semantics (StreamingFloodSemantics / DiscretizedFloodSemantics). Pass a
// FloodScratch to amortize allocations across repeated trials; the
// scratch-free overloads allocate privately per call.
//
// The drivers install their own network hooks for the duration of the call
// and clear them on return; callers must not rely on hooks across a flood.
#pragma once

#include "flooding/flood_driver.hpp"
#include "models/poisson_network.hpp"
#include "models/streaming_network.hpp"

namespace churnet {

/// Runs synchronous flooding (Def. 3.3) on a streaming network. The source
/// is the node joining at the next round (the paper's convention). The
/// network should be warmed up; it is advanced by one round per step.
FloodTrace flood_streaming(StreamingNetwork& net,
                           const FloodOptions& options = {});
FloodTrace flood_streaming(StreamingNetwork& net, const FloodOptions& options,
                           FloodScratch& scratch);

/// Runs discretized flooding (Def. 4.3) on a Poisson network. The source is
/// the next node to be born; each flooding step advances continuous time by
/// exactly one unit. A node is newly informed at step T+1 iff it had an
/// edge, already present at time T, to a node informed at T, and both
/// endpoints survived the whole interval (T, T+1].
FloodTrace flood_poisson_discretized(PoissonNetwork& net,
                                     const FloodOptions& options = {});
FloodTrace flood_poisson_discretized(PoissonNetwork& net,
                                     const FloodOptions& options,
                                     FloodScratch& scratch);

}  // namespace churnet
