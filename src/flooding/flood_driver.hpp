// Generic incremental flooding driver over any dynamic network model.
//
// One frontier algorithm serves every model (DESIGN.md, decision 6): a node
// can only become informed through (a) an edge incident to a node informed
// at the previous step, or (b) an edge created since the previous step with
// an informed endpoint. Edges never appear between two long-lived nodes
// except by regeneration, and never disappear except by endpoint death, so
// examining frontier edges plus freshly created edges covers the full
// boundary ∂out(I_t) at every step. This makes an Ω(n)-step completion run
// cost O(E + total churn) instead of O(n·E).
//
// What differs between the paper's flooding processes is captured by a small
// semantics type (`Net::flood_semantics`):
//
//   * StreamingFloodSemantics (paper Def. 3.3): one flooding step is one
//     churn round; a boundary node is informed at step t iff it is still
//     alive at t (the sender's death within the round does not cancel the
//     message); the round's newborn is exempt from the completion test.
//   * DiscretizedFloodSemantics (paper Def. 4.3): one flooding step is one
//     unit of continuous time; a boundary node is informed at T+1 iff BOTH
//     endpoints of the carrying edge survive the whole interval (T, T+1];
//     completion means every alive node is informed.
//   * StaticFloodSemantics: synchronous flooding on a churn-free network
//     (BFS rounds); the source is drawn uniformly since nobody is born.
//
// The driver installs its own network hooks for the duration of the call and
// clears them on return; callers must not rely on hooks across a flood.
//
// All per-run state lives in a caller-supplied FloodScratch whose buffers
// are epoch-stamped: repeated trials reuse the same allocations, so a
// replication loop does zero per-trial allocation once warmed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assertx.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/node_id.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

struct FloodOptions {
  /// Hard cap on flooding steps (rounds in streaming, unit intervals in the
  /// discretized Poisson process).
  std::uint64_t max_steps = 1'000'000;
  /// Stop once informed >= stop_at_fraction * alive (1.0 = only on
  /// completion per the paper's definitions).
  double stop_at_fraction = 1.0;
  /// Stop when the informed set dies out entirely.
  bool stop_on_die_out = true;
  /// Record per-step |I_t| and |N_t| series (cheap; on by default).
  bool record_series = true;
};

/// Outcome of one flooding run.
struct FloodTrace {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// |I_t| after flooding step t (index 0 = the source round, value 1).
  std::vector<std::uint64_t> informed_per_step;
  /// |N_t| at the same instants.
  std::vector<std::uint64_t> alive_per_step;

  std::uint64_t steps = 0;
  /// Completion per the paper: every node alive at both ends of a step is
  /// informed (streaming Def. 3.3) / all alive nodes informed (Def. 4.3).
  bool completed = false;
  std::uint64_t completion_step = kNever;
  /// The informed set became empty (every informed node died).
  bool died_out = false;
  std::uint64_t die_out_step = kNever;
  std::uint64_t peak_informed = 0;
  /// informed/alive when the run stopped.
  double final_fraction = 0.0;

  /// First step with informed >= fraction * alive; kNever if never reached.
  /// Requires record_series.
  std::uint64_t step_reaching_fraction(double fraction) const;
};

/// An out-edge created while the driver was watching (via hooks).
struct CreatedEdge {
  NodeId owner;
  NodeId target;
};

/// Reusable per-run state for the generic driver. Membership sets are dense
/// slot-indexed stamp arrays: clearing is an epoch bump, not a memset, so a
/// replication loop over same-sized networks allocates nothing after the
/// first trial.
class FloodScratch {
 public:
  /// Prepares for a new flood over a graph whose slots are < slot_bound.
  void begin_trial(std::uint32_t slot_bound) {
    ensure(slot_bound);
    ++informed_epoch_;
    informed_count_ = 0;
    frontier.clear();
    created.clear();
    candidates.clear();
    deaths_.clear();
    ++death_epoch_;
  }

  // ---- informed set ----------------------------------------------------

  bool is_informed(NodeId node) const {
    return node.slot < informed_stamp_.size() &&
           informed_stamp_[node.slot] == informed_epoch_;
  }
  /// Marks `node` informed; returns true if it was not already.
  bool mark_informed(NodeId node) {
    ensure(node.slot + 1);
    if (informed_stamp_[node.slot] == informed_epoch_) return false;
    informed_stamp_[node.slot] = informed_epoch_;
    ++informed_count_;
    return true;
  }
  /// Un-marks `node` if informed (death of an informed node).
  void unmark_informed(NodeId node) {
    if (!is_informed(node)) return;
    informed_stamp_[node.slot] = 0;
    CHURNET_ASSERT(informed_count_ > 0);
    --informed_count_;
  }
  std::uint64_t informed_count() const { return informed_count_; }

  // ---- per-step candidate dedup (streaming semantics) ------------------

  void begin_step() { ++candidate_epoch_; }
  /// Returns true the first time `node` is proposed this step.
  bool mark_candidate(NodeId node) {
    ensure(node.slot + 1);
    if (candidate_stamp_[node.slot] == candidate_epoch_) return false;
    candidate_stamp_[node.slot] = candidate_epoch_;
    return true;
  }

  // ---- deaths during the current churn interval ------------------------

  void clear_deaths() {
    deaths_.clear();
    ++death_epoch_;
  }
  void note_death(NodeId node) {
    ensure(node.slot + 1);
    death_stamp_[node.slot] = death_epoch_;
    deaths_.push_back(node);
  }
  bool died_this_step(NodeId node) const {
    return node.slot < death_stamp_.size() &&
           death_stamp_[node.slot] == death_epoch_;
  }
  const std::vector<NodeId>& deaths() const { return deaths_; }

  // ---- plain reusable buffers ------------------------------------------

  std::vector<NodeId> frontier;
  std::vector<NodeId> neighbors;
  std::vector<CreatedEdge> created;
  std::vector<std::pair<NodeId, NodeId>> candidates;  // (sender, receiver)

 private:
  void ensure(std::uint32_t slot_bound) {
    if (slot_bound <= informed_stamp_.size()) return;
    const std::size_t size = std::max<std::size_t>(
        slot_bound, informed_stamp_.size() + informed_stamp_.size() / 2);
    informed_stamp_.resize(size, 0);
    candidate_stamp_.resize(size, 0);
    death_stamp_.resize(size, 0);
  }

  // Epoch counters start at 1 and only grow, so a stamp of 0 never matches
  // and stale stamps from earlier trials/steps are invalid by construction.
  std::vector<std::uint64_t> informed_stamp_;
  std::vector<std::uint64_t> candidate_stamp_;
  std::vector<std::uint64_t> death_stamp_;
  std::vector<NodeId> deaths_;
  std::uint64_t informed_epoch_ = 0;
  std::uint64_t candidate_epoch_ = 0;
  std::uint64_t death_epoch_ = 0;
  std::uint64_t informed_count_ = 0;
};

/// Synchronous flooding on a streaming network (paper Def. 3.3).
struct StreamingFloodSemantics {
  /// Only the receiver must survive the round.
  static constexpr bool kPairCandidates = false;
  /// The source is the node born at the first advanced round.
  static constexpr bool kSourceIsNewborn = true;
  /// Churn keeps creating edges, so an empty frontier can revive.
  static constexpr bool kChurnFree = false;
  /// The round's newborn is never informed at the check, so exactly one
  /// uninformed alive node means I_t ⊇ N_{t-1} ∩ N_t.
  static bool completed(std::uint64_t informed, std::uint64_t alive) {
    return informed + 1 >= alive && alive >= 2;
  }
  template <typename Net>
  static void advance(Net& net) {
    net.step();
  }
};

/// Discretized flooding on a continuous-time network (paper Def. 4.3).
struct DiscretizedFloodSemantics {
  /// Both endpoints of the carrying edge must survive the interval.
  static constexpr bool kPairCandidates = true;
  static constexpr bool kSourceIsNewborn = true;
  static constexpr bool kChurnFree = false;
  static bool completed(std::uint64_t informed, std::uint64_t alive) {
    return informed == alive && alive > 0;
  }
  template <typename Net>
  static void advance(Net& net) {
    net.run_until(net.now() + 1.0);
  }
};

/// Synchronous flooding on a churn-free network: BFS rounds.
struct StaticFloodSemantics {
  static constexpr bool kPairCandidates = false;
  /// Nobody is born, so the source is a uniform random alive node.
  static constexpr bool kSourceIsNewborn = false;
  /// No churn: an exhausted frontier is a fixed point (BFS termination).
  static constexpr bool kChurnFree = true;
  static bool completed(std::uint64_t informed, std::uint64_t alive) {
    return informed == alive && alive > 0;
  }
  template <typename Net>
  static void advance(Net& net) {
    net.step();
  }
};

namespace detail_flood {

inline void record_step(FloodTrace& trace, const FloodOptions& options,
                        std::uint64_t informed, std::uint64_t alive) {
  if (!options.record_series) return;
  trace.informed_per_step.push_back(informed);
  trace.alive_per_step.push_back(alive);
}

}  // namespace detail_flood

/// Runs one flooding process on `net` under its declared flood semantics
/// (`Net::flood_semantics`). The network should be warmed up; it is advanced
/// by one semantic step per flooding step. All allocations are reused across
/// calls through `scratch`.
template <typename Net>
FloodTrace flood_dynamic(Net& net, const FloodOptions& options,
                         FloodScratch& scratch) {
  using Semantics = typename Net::flood_semantics;
  FloodTrace trace;
  scratch.begin_trial(net.graph().slot_upper_bound());

  NodeId source = kInvalidNode;
  NetworkHooks hooks;
  hooks.on_birth = [&source](NodeId node, double) {
    if (!source.valid()) source = node;
  };
  hooks.on_edge_created = [&scratch](NodeId owner, std::uint32_t,
                                     NodeId target, bool, double) {
    scratch.created.push_back({owner, target});
  };
  hooks.on_death = [&scratch](NodeId node, double) {
    scratch.note_death(node);
  };
  net.set_hooks(std::move(hooks));

  if constexpr (Semantics::kSourceIsNewborn) {
    // Advance to the next birth: that newborn is the source (the paper's
    // convention: flooding starts from the node joining at time t0).
    while (!source.valid()) net.step();
  } else {
    CHURNET_EXPECTS(net.graph().alive_count() > 0);
    source = net.graph().random_alive(net.rng());
  }
  // The source's own birth edges are covered by the frontier.
  scratch.created.clear();
  scratch.clear_deaths();
  scratch.mark_informed(source);
  scratch.frontier.push_back(source);

  trace.peak_informed = 1;
  detail_flood::record_step(trace, options, 1, net.graph().alive_count());

  for (std::uint64_t step = 1; step <= options.max_steps; ++step) {
    const DynamicGraph& graph = net.graph();

    // Boundary of I_{t-1} in G_{t-1}, examined incrementally. Under
    // pair-candidate semantics every (sender, receiver) pair is kept (any
    // surviving sender suffices); otherwise receivers are deduplicated.
    scratch.candidates.clear();
    if constexpr (!Semantics::kPairCandidates) scratch.begin_step();
    auto consider = [&scratch](NodeId sender, NodeId receiver) {
      if constexpr (Semantics::kPairCandidates) {
        scratch.candidates.emplace_back(sender, receiver);
      } else {
        if (scratch.mark_candidate(receiver)) {
          scratch.candidates.emplace_back(sender, receiver);
        }
      }
    };
    for (const NodeId u : scratch.frontier) {
      if (!graph.is_alive(u)) continue;  // died in a previous interval
      scratch.neighbors.clear();
      graph.append_neighbors(u, scratch.neighbors);
      for (const NodeId v : scratch.neighbors) {
        if (!scratch.is_informed(v)) consider(u, v);
      }
    }
    for (const CreatedEdge& edge : scratch.created) {
      // An edge created in the previous interval counts from now on,
      // provided it still exists (both endpoints alive).
      if (!graph.is_alive(edge.owner) || !graph.is_alive(edge.target)) {
        continue;
      }
      const bool owner_informed = scratch.is_informed(edge.owner);
      const bool target_informed = scratch.is_informed(edge.target);
      if (owner_informed && !target_informed) {
        consider(edge.owner, edge.target);
      } else if (target_informed && !owner_informed) {
        consider(edge.target, edge.owner);
      }
    }
    scratch.created.clear();
    scratch.clear_deaths();

    // One semantic step of churn; hooks record deaths and new edges.
    Semantics::advance(net);

    for (const NodeId dead : scratch.deaths()) {
      scratch.unmark_informed(dead);
    }

    // I_t = (I_{t-1} ∪ ∂(I_{t-1})) ∩ N_t.
    scratch.frontier.clear();
    for (const auto& [u, v] : scratch.candidates) {
      if constexpr (Semantics::kPairCandidates) {
        if (scratch.died_this_step(u) || scratch.died_this_step(v)) continue;
        CHURNET_ASSERT(net.graph().is_alive(v));
      } else {
        if (!net.graph().is_alive(v)) continue;  // the interval's death
      }
      if (scratch.mark_informed(v)) scratch.frontier.push_back(v);
    }

    trace.steps = step;
    const std::uint64_t informed_count = scratch.informed_count();
    const std::uint64_t alive_count = net.graph().alive_count();
    trace.peak_informed = std::max(trace.peak_informed, informed_count);
    detail_flood::record_step(trace, options, informed_count, alive_count);
    trace.final_fraction = alive_count == 0
                               ? 0.0
                               : static_cast<double>(informed_count) /
                                     static_cast<double>(alive_count);

    if (Semantics::completed(informed_count, alive_count)) {
      trace.completed = true;
      trace.completion_step = step;
      break;
    }
    if (informed_count == 0) {
      trace.died_out = true;
      trace.die_out_step = step;
      if (options.stop_on_die_out) break;
    }
    if (options.stop_at_fraction < 1.0 &&
        trace.final_fraction >= options.stop_at_fraction) {
      break;
    }
    if constexpr (Semantics::kChurnFree) {
      // No churn can ever create a new boundary edge: an empty frontier is
      // a fixed point (the graph's reachable set is exhausted, BFS-style).
      if (scratch.frontier.empty()) break;
    }
  }

  net.set_hooks({});
  return trace;
}

/// Convenience overload with a private (per-call) scratch.
template <typename Net>
FloodTrace flood_dynamic(Net& net, const FloodOptions& options = {}) {
  FloodScratch scratch;
  return flood_dynamic(net, options, scratch);
}

}  // namespace churnet
