// Generic incremental flooding driver over any dynamic network model.
//
// One frontier algorithm serves every model (DESIGN.md, decision 6): a node
// can only become informed through (a) an edge incident to a node informed
// at the previous step, or (b) an edge created since the previous step with
// an informed endpoint. Edges never appear between two long-lived nodes
// except by regeneration, and never disappear except by endpoint death, so
// examining frontier edges plus freshly created edges covers the full
// boundary ∂out(I_t) at every step. This makes an Ω(n)-step completion run
// cost O(E + total churn) instead of O(n·E).
//
// What differs between the paper's flooding processes is captured by a small
// semantics type (`Net::flood_semantics`):
//
//   * StreamingFloodSemantics (paper Def. 3.3): one flooding step is one
//     churn round; a boundary node is informed at step t iff it is still
//     alive at t (the sender's death within the round does not cancel the
//     message); the round's newborn is exempt from the completion test.
//   * DiscretizedFloodSemantics (paper Def. 4.3): one flooding step is one
//     unit of continuous time; a boundary node is informed at T+1 iff BOTH
//     endpoints of the carrying edge survive the whole interval (T, T+1];
//     completion means every alive node is informed.
//   * StaticFloodSemantics: synchronous flooding on a churn-free network
//     (BFS rounds); the source is drawn uniformly since nobody is born.
//
// The driver installs its own network hooks for the duration of the call and
// clears them on return; callers must not rely on hooks across a flood.
//
// All per-run state lives in a caller-supplied FloodScratch whose membership
// sets are word-packed bitsets (common/bitset64.hpp, DESIGN.md "Frontier
// representation"): repeated trials reuse the same allocations, clears are
// O(words) streams with no epoch counters to wrap, and the receiver-dedup
// commit is a fused AND-NOT word scan. The flood-only fast path additionally
// works in raw slots (no generation loads) and can shard the boundary scan
// across a worker pool (FloodOptions::intra_threads) with byte-identical
// output at every thread count (common/intra.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assertx.hpp"
#include "common/bitset64.hpp"
#include "common/intra.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/node_id.hpp"
#include "models/edge_policy.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {

struct FloodOptions {
  /// Hard cap on flooding steps (rounds in streaming, unit intervals in the
  /// discretized Poisson process).
  std::uint64_t max_steps = 1'000'000;
  /// Stop once informed >= stop_at_fraction * alive (1.0 = only on
  /// completion per the paper's definitions).
  double stop_at_fraction = 1.0;
  /// Stop when the informed set dies out entirely.
  bool stop_on_die_out = true;
  /// Record per-step |I_t| and |N_t| series (cheap; on by default).
  bool record_series = true;
  /// Worker threads for the boundary scan inside one trial (0 = one per
  /// hardware thread). The result is byte-identical at every value — the
  /// scan partitions the frontier into fixed-size chunks and merges in
  /// chunk order — so this is purely a wall-clock knob; >1 only pays off
  /// once frontiers reach ~10^5 nodes.
  std::uint32_t intra_threads = 1;
};

/// Outcome of one flooding run.
struct FloodTrace {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// |I_t| after flooding step t (index 0 = the source round, value 1).
  std::vector<std::uint64_t> informed_per_step;
  /// |N_t| at the same instants.
  std::vector<std::uint64_t> alive_per_step;

  std::uint64_t steps = 0;
  /// Completion per the paper: every node alive at both ends of a step is
  /// informed (streaming Def. 3.3) / all alive nodes informed (Def. 4.3).
  bool completed = false;
  std::uint64_t completion_step = kNever;
  /// The informed set became empty (every informed node died).
  bool died_out = false;
  std::uint64_t die_out_step = kNever;
  std::uint64_t peak_informed = 0;
  /// informed/alive when the run stopped.
  double final_fraction = 0.0;

  /// First step with informed >= fraction * alive; kNever if never reached.
  /// Requires record_series.
  std::uint64_t step_reaching_fraction(double fraction) const;
};

/// An out-edge created while the driver was watching (via hooks).
struct CreatedEdge {
  NodeId owner;
  NodeId target;
};

/// Reusable per-run state for the generic drivers. Membership sets (the
/// informed set, the per-step candidate set, the per-interval death set)
/// are slot-indexed Bitset64s: one bit per slot, trial reset = O(words)
/// clear, no epoch counters. Membership is keyed by slot alone — exactly
/// the stamp-array semantics this replaced: the drivers unmark on death
/// before a slot can be recycled, so a set bit always describes the slot's
/// current occupant.
///
/// Two candidate representations coexist. The protocol driver records
/// (sender, receiver) NodeId pairs in `candidates` (propose order is
/// load-bearing: commit order, stats, and on_informed indices follow it),
/// with `mark_candidate` bits deduplicating receivers on the flood fast
/// path. The flood driver skips the pair list entirely: receivers are
/// candidate *bits* only, and commit_candidates() turns them into the next
/// frontier with one fused AND-NOT word scan.
class FloodScratch {
 public:
  using Word = Bitset64::Word;

  /// Prepares for a new flood over a graph whose slots are < slot_bound.
  void begin_trial(std::uint32_t slot_bound) {
    ensure(slot_bound);
    informed_.clear_all();
    candidate_.clear_all();
    death_.clear_all();
    informed_count_ = 0;
    frontier.clear();
    frontier_slots.clear();
    created.clear();
    candidates.clear();
    deaths_.clear();
  }

  /// Pre-grows the membership sets (a serial point before a parallel scan:
  /// no worker may trigger a resize).
  void ensure_slots(std::uint32_t slot_bound) { ensure(slot_bound); }

  // ---- informed set ----------------------------------------------------

  bool is_informed(NodeId node) const { return informed_.test(node.slot); }
  bool is_informed_slot(std::uint32_t slot) const {
    return informed_.test(slot);
  }
  /// Marks `node` informed; returns true if it was not already.
  bool mark_informed(NodeId node) {
    ensure(node.slot + 1);
    if (!informed_.test_and_set(node.slot)) return false;
    ++informed_count_;
    return true;
  }
  /// Slot variant for the flood fast path; the slot must be in range
  /// (ensure_slots ran this step).
  bool mark_informed_slot(std::uint32_t slot) {
    if (!informed_.test_and_set(slot)) return false;
    ++informed_count_;
    return true;
  }
  /// Un-marks `node` if informed (death of an informed node).
  void unmark_informed(NodeId node) {
    if (!informed_.test(node.slot)) return;
    informed_.reset(node.slot);
    CHURNET_ASSERT(informed_count_ > 0);
    --informed_count_;
  }
  std::uint64_t informed_count() const { return informed_count_; }

  // ---- per-step candidate dedup (streaming semantics) ------------------

  /// Starts a new proposal step for the protocol driver: clears the
  /// previous step's candidate marks (walking the recorded pairs — O(step
  /// candidates), not O(slots)) and the pair list itself.
  void begin_step() {
    for (const auto& [sender, receiver] : candidates) {
      candidate_.reset(receiver.slot);
    }
    candidates.clear();
  }
  /// Returns true the first time `node` is proposed this step.
  bool mark_candidate(NodeId node) {
    ensure(node.slot + 1);
    return candidate_.test_and_set(node.slot);
  }
  /// Flood fast path: membership-only candidate mark (in-range slot —
  /// ensure_slots ran this step). The atomic variant is for workers of a
  /// sharded scan marking concurrently: bitwise OR commutes, so the
  /// resulting set is exact for every interleaving.
  void mark_candidate_slot(std::uint32_t slot) { candidate_.set(slot); }
  void mark_candidate_slot_atomic(std::uint32_t slot) {
    candidate_.set_atomic(slot);
  }

  /// Flood fast path commit: I_t gains (candidates AND NOT deaths) in one
  /// word scan; newly informed slots are appended to `frontier_out` in
  /// slot order and the candidate set is consumed (left empty).
  void commit_candidates(std::vector<std::uint32_t>& frontier_out) {
    Word* cand = candidate_.words();
    const Word* dead = death_.words();
    Word* informed = informed_.words();
    const std::uint64_t words = candidate_.word_count();
    for (std::uint64_t w = 0; w < words; ++w) {
      const Word add = cand[w] & ~dead[w];
      cand[w] = 0;
      if (add == 0) continue;
      // Candidates were uninformed at scan time and nothing else informs.
      CHURNET_ASSERT((informed[w] & add) == 0);
      informed[w] |= add;
      informed_count_ += std::popcount(add);
      Word bits = add;
      while (bits != 0) {
        frontier_out.push_back(static_cast<std::uint32_t>(
            w * Bitset64::kWordBits + std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }

  // ---- deaths during the current churn interval ------------------------

  void clear_deaths() {
    for (const NodeId dead : deaths_) death_.reset(dead.slot);
    deaths_.clear();
  }
  void note_death(NodeId node) {
    ensure(node.slot + 1);
    death_.set(node.slot);
    deaths_.push_back(node);
  }
  bool died_this_step(NodeId node) const { return death_.test(node.slot); }
  bool died_this_step_slot(std::uint32_t slot) const {
    return death_.test(slot);
  }
  const std::vector<NodeId>& deaths() const { return deaths_; }

  // ---- plain reusable buffers ------------------------------------------

  std::vector<NodeId> frontier;
  std::vector<NodeId> neighbors;
  std::vector<CreatedEdge> created;
  std::vector<std::pair<NodeId, NodeId>> candidates;  // (sender, receiver)

  // Flood fast-path buffers (slot-only mirrors of the above).
  std::vector<std::uint32_t> frontier_slots;
  std::vector<std::uint32_t> neighbor_slots;
  // (sender, receiver) slots under pair-survival semantics.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cand_pairs;
  // Sharded-scan buffers: per-chunk pair outputs (merged in chunk order)
  // and per-worker neighbor staging.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      shard_pairs;
  std::vector<std::vector<std::uint32_t>> shard_neighbors;

 private:
  void ensure(std::uint32_t slot_bound) {
    if (slot_bound <= informed_.size()) return;
    const std::uint64_t size = std::max<std::uint64_t>(
        slot_bound, informed_.size() + informed_.size() / 2);
    informed_.resize(size);
    candidate_.resize(size);
    death_.resize(size);
  }

  // All three are kept the same size by ensure(), so fused word scans
  // never bounds-check.
  Bitset64 informed_;
  Bitset64 candidate_;
  Bitset64 death_;
  std::vector<NodeId> deaths_;
  std::uint64_t informed_count_ = 0;
};

/// Synchronous flooding on a streaming network (paper Def. 3.3).
struct StreamingFloodSemantics {
  /// Only the receiver must survive the round.
  static constexpr bool kPairCandidates = false;
  /// The source is the node born at the first advanced round.
  static constexpr bool kSourceIsNewborn = true;
  /// Churn keeps creating edges, so an empty frontier can revive.
  static constexpr bool kChurnFree = false;
  /// The round's newborn is never informed at the check, so exactly one
  /// uninformed alive node means I_t ⊇ N_{t-1} ∩ N_t.
  static bool completed(std::uint64_t informed, std::uint64_t alive) {
    return informed + 1 >= alive && alive >= 2;
  }
  template <typename Net>
  static void advance(Net& net) {
    net.step();
  }
};

/// Discretized flooding on a continuous-time network (paper Def. 4.3).
struct DiscretizedFloodSemantics {
  /// Both endpoints of the carrying edge must survive the interval.
  static constexpr bool kPairCandidates = true;
  static constexpr bool kSourceIsNewborn = true;
  static constexpr bool kChurnFree = false;
  static bool completed(std::uint64_t informed, std::uint64_t alive) {
    return informed == alive && alive > 0;
  }
  template <typename Net>
  static void advance(Net& net) {
    net.run_until(net.now() + 1.0);
  }
};

/// Synchronous flooding on a churn-free network: BFS rounds.
struct StaticFloodSemantics {
  static constexpr bool kPairCandidates = false;
  /// Nobody is born, so the source is a uniform random alive node.
  static constexpr bool kSourceIsNewborn = false;
  /// No churn: an exhausted frontier is a fixed point (BFS termination).
  static constexpr bool kChurnFree = true;
  static bool completed(std::uint64_t informed, std::uint64_t alive) {
    return informed == alive && alive > 0;
  }
  template <typename Net>
  static void advance(Net& net) {
    net.step();
  }
};

namespace detail_flood {

inline void record_step(FloodTrace& trace, const FloodOptions& options,
                        std::uint64_t informed, std::uint64_t alive) {
  if (!options.record_series) return;
  trace.informed_per_step.push_back(informed);
  trace.alive_per_step.push_back(alive);
}

/// Frontier chunk size for the sharded boundary scan. Fixed — never a
/// function of the thread count — so chunk boundaries, per-chunk outputs,
/// and the chunk-order merge are identical at every intra_threads value.
constexpr std::size_t kScanChunk = 4096;

/// Scans the boundary of I_{t-1}: every uninformed neighbor of a frontier
/// node becomes a candidate — a candidate bit under receiver-survival
/// semantics, a (sender, receiver) slot pair under pair survival. Reads
/// the graph and the informed set only; with intra > 1 the frontier is
/// sharded over a worker pool (candidate bits commute; pairs are merged
/// in chunk order, reproducing the sequential append order exactly).
template <typename Semantics>
void scan_boundary(const DynamicGraph& graph, FloodScratch& scratch,
                   unsigned intra) {
  const std::vector<std::uint32_t>& frontier = scratch.frontier_slots;
  const std::size_t chunk_count =
      (frontier.size() + kScanChunk - 1) / kScanChunk;
  if (intra <= 1 || chunk_count < 2) {
    auto& neighbors = scratch.neighbor_slots;
    for (const std::uint32_t u : frontier) {
      // Frontier members were alive and informed at last step's commit and
      // nothing has advanced since; the bit doubles as a liveness check.
      if (!scratch.is_informed_slot(u)) continue;
      neighbors.clear();
      graph.append_neighbor_slots(u, neighbors);
      for (const std::uint32_t v : neighbors) {
        if (scratch.is_informed_slot(v)) continue;
        if constexpr (Semantics::kPairCandidates) {
          scratch.cand_pairs.emplace_back(u, v);
        } else {
          scratch.mark_candidate_slot(v);
        }
      }
    }
    return;
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(intra, chunk_count));
  if (scratch.shard_neighbors.size() < workers) {
    scratch.shard_neighbors.resize(workers);
  }
  if constexpr (Semantics::kPairCandidates) {
    if (scratch.shard_pairs.size() < chunk_count) {
      scratch.shard_pairs.resize(chunk_count);
    }
  }
  for_each_chunk(intra, chunk_count, [&](std::size_t c, unsigned worker) {
    auto& neighbors = scratch.shard_neighbors[worker];
    std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs = nullptr;
    if constexpr (Semantics::kPairCandidates) {
      pairs = &scratch.shard_pairs[c];
      pairs->clear();
    }
    const std::size_t begin = c * kScanChunk;
    const std::size_t end = std::min(frontier.size(), begin + kScanChunk);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t u = frontier[i];
      if (!scratch.is_informed_slot(u)) continue;
      neighbors.clear();
      graph.append_neighbor_slots(u, neighbors);
      for (const std::uint32_t v : neighbors) {
        if (scratch.is_informed_slot(v)) continue;
        if constexpr (Semantics::kPairCandidates) {
          pairs->emplace_back(u, v);
        } else {
          scratch.mark_candidate_slot_atomic(v);
        }
      }
    }
  });
  if constexpr (Semantics::kPairCandidates) {
    for (std::size_t c = 0; c < chunk_count; ++c) {
      const auto& pairs = scratch.shard_pairs[c];
      scratch.cand_pairs.insert(scratch.cand_pairs.end(), pairs.begin(),
                                pairs.end());
    }
  }
}

}  // namespace detail_flood

/// Runs one flooding process on `net` under its declared flood semantics
/// (`Net::flood_semantics`). The network should be warmed up; it is advanced
/// by one semantic step per flooding step. All allocations are reused across
/// calls through `scratch`.
template <typename Net>
FloodTrace flood_dynamic(Net& net, const FloodOptions& options,
                         FloodScratch& scratch) {
  using Semantics = typename Net::flood_semantics;
  const telemetry::PhaseTimer phase_span(telemetry::Phase::kDissemination);
  FloodTrace trace;
  scratch.begin_trial(net.graph().slot_upper_bound());
  const unsigned intra = effective_intra_threads(options.intra_threads);

  NodeId source = kInvalidNode;
  NetworkHooks hooks;
  hooks.on_birth = [&source](NodeId node, double) {
    if (!source.valid()) source = node;
  };
  hooks.on_edge_created = [&scratch](NodeId owner, std::uint32_t,
                                     NodeId target, bool, double) {
    scratch.created.push_back({owner, target});
  };
  hooks.on_death = [&scratch](NodeId node, double) {
    scratch.note_death(node);
  };
  net.set_hooks(std::move(hooks));

  if constexpr (Semantics::kSourceIsNewborn) {
    // Advance to the next birth: that newborn is the source (the paper's
    // convention: flooding starts from the node joining at time t0).
    while (!source.valid()) net.step();
  } else {
    CHURNET_EXPECTS(net.graph().alive_count() > 0);
    source = net.graph().random_alive(net.rng());
  }
  // The source's own birth edges are covered by the frontier.
  scratch.created.clear();
  scratch.clear_deaths();
  scratch.mark_informed(source);
  scratch.frontier_slots.push_back(source.slot);

  trace.peak_informed = 1;
  detail_flood::record_step(trace, options, 1, net.graph().alive_count());

  for (std::uint64_t step = 1; step <= options.max_steps; ++step) {
    const DynamicGraph& graph = net.graph();
    // Serial point: no resize may happen inside the sharded scan.
    scratch.ensure_slots(graph.slot_upper_bound());

    // Boundary of I_{t-1} in G_{t-1}, examined incrementally. Under
    // pair-candidate semantics every (sender, receiver) pair is kept (any
    // surviving sender suffices); otherwise receivers are deduplicated as
    // candidate bits.
    if constexpr (Semantics::kPairCandidates) scratch.cand_pairs.clear();
    detail_flood::scan_boundary<Semantics>(graph, scratch, intra);
    for (const CreatedEdge& edge : scratch.created) {
      // An edge created in the previous interval counts from now on,
      // provided it still exists (both endpoints alive).
      if (!graph.is_alive(edge.owner) || !graph.is_alive(edge.target)) {
        continue;
      }
      const bool owner_informed = scratch.is_informed_slot(edge.owner.slot);
      const bool target_informed =
          scratch.is_informed_slot(edge.target.slot);
      std::uint32_t sender = 0;
      std::uint32_t receiver = 0;
      if (owner_informed && !target_informed) {
        sender = edge.owner.slot;
        receiver = edge.target.slot;
      } else if (target_informed && !owner_informed) {
        sender = edge.target.slot;
        receiver = edge.owner.slot;
      } else {
        continue;
      }
      if constexpr (Semantics::kPairCandidates) {
        scratch.cand_pairs.emplace_back(sender, receiver);
      } else {
        scratch.mark_candidate_slot(receiver);
      }
    }
    scratch.created.clear();
    scratch.clear_deaths();

    // One semantic step of churn; hooks record deaths and new edges.
    Semantics::advance(net);

    for (const NodeId dead : scratch.deaths()) {
      scratch.unmark_informed(dead);
    }

    // I_t = (I_{t-1} ∪ ∂(I_{t-1})) ∩ N_t.
    scratch.frontier_slots.clear();
    if constexpr (Semantics::kPairCandidates) {
      for (const auto& [u, v] : scratch.cand_pairs) {
        if (scratch.died_this_step_slot(u) ||
            scratch.died_this_step_slot(v)) {
          continue;
        }
        CHURNET_ASSERT(net.graph().slot_alive(v));
        if (scratch.mark_informed_slot(v)) scratch.frontier_slots.push_back(v);
      }
    } else {
      // The interval's deaths are subtracted word-wise: a newborn reusing
      // a victim's slot is filtered exactly like the stamp path filtered
      // it via the generation mismatch.
      scratch.commit_candidates(scratch.frontier_slots);
    }

    trace.steps = step;
    const std::uint64_t informed_count = scratch.informed_count();
    const std::uint64_t alive_count = net.graph().alive_count();
    trace.peak_informed = std::max(trace.peak_informed, informed_count);
    detail_flood::record_step(trace, options, informed_count, alive_count);
    trace.final_fraction = alive_count == 0
                               ? 0.0
                               : static_cast<double>(informed_count) /
                                     static_cast<double>(alive_count);

    if (Semantics::completed(informed_count, alive_count)) {
      trace.completed = true;
      trace.completion_step = step;
      break;
    }
    if (informed_count == 0) {
      trace.died_out = true;
      trace.die_out_step = step;
      if (options.stop_on_die_out) break;
    }
    if (options.stop_at_fraction < 1.0 &&
        trace.final_fraction >= options.stop_at_fraction) {
      break;
    }
    if constexpr (Semantics::kChurnFree) {
      // No churn can ever create a new boundary edge: an empty frontier is
      // a fixed point (the graph's reachable set is exhausted, BFS-style).
      if (scratch.frontier_slots.empty()) break;
    }
  }

  net.set_hooks({});
  return trace;
}

/// Convenience overload with a private (per-call) scratch.
template <typename Net>
FloodTrace flood_dynamic(Net& net, const FloodOptions& options = {}) {
  FloodScratch scratch;
  return flood_dynamic(net, options, scratch);
}

}  // namespace churnet
