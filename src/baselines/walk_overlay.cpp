#include "baselines/walk_overlay.hpp"

#include "common/assertx.hpp"

namespace churnet {

WalkOverlay::WalkOverlay(WalkOverlayConfig config)
    : config_(config), churn_(config.n), rng_(config.seed) {
  CHURNET_EXPECTS(config.m >= 1);
  CHURNET_EXPECTS(config.walk_length >= 1);
  graph_.reserve(config.n, config.m);
}

NodeId WalkOverlay::sample_by_walk(NodeId start, NodeId avoid) {
  NodeId position = start;
  for (std::uint32_t step = 0; step < config_.walk_length; ++step) {
    neighbor_scratch_.clear();
    graph_.append_neighbors(position, neighbor_scratch_);
    if (neighbor_scratch_.empty()) break;  // stuck: stay (lazy at leaves)
    position = neighbor_scratch_[static_cast<std::size_t>(
        rng_.below(neighbor_scratch_.size()))];
  }
  if (position == avoid) return kInvalidNode;
  return position;
}

void WalkOverlay::wire_by_walk(NodeId owner, std::uint32_t index,
                               NodeId start, bool regenerated) {
  const NodeId endpoint = sample_by_walk(start, owner);
  if (!endpoint.valid()) {
    ++failed_walks_;
    return;  // slot stays dangling
  }
  graph_.set_out_edge(owner, index, endpoint);
  if (hooks_.on_edge_created) {
    hooks_.on_edge_created(owner, index, endpoint, regenerated, now());
  }
}

WalkOverlay::RoundReport WalkOverlay::step() {
  RoundReport report;
  const std::optional<NodeId> victim = churn_.begin_round();
  const double time_of_round = static_cast<double>(churn_.round());

  if (victim.has_value()) {
    report.died = victim;
    if (hooks_.on_death) hooks_.on_death(*victim, time_of_round);
    graph_.remove_node(*victim, removal_scratch_);
    if (config_.regenerate) {
      for (const OutSlotRef& orphan : removal_scratch_.orphans) {
        // Decentralized regeneration: restart the walk from a surviving
        // neighbor of the owner; with no neighbors left, from the owner
        // itself (the walk then fails unless an edge arrives later).
        neighbor_scratch_.clear();
        graph_.append_neighbors(orphan.owner, neighbor_scratch_);
        const NodeId start =
            neighbor_scratch_.empty()
                ? orphan.owner
                : neighbor_scratch_[static_cast<std::size_t>(
                      rng_.below(neighbor_scratch_.size()))];
        wire_by_walk(orphan.owner, orphan.index, start, true);
      }
    }
  }

  const NodeId born = graph_.add_node(config_.m, time_of_round);
  // One oracle bootstrap contact (the DNS-seed analogue), then sampling
  // walks started from it.
  const NodeId contact = graph_.random_alive_other(rng_, born);
  if (contact.valid()) {
    for (std::uint32_t i = 0; i < config_.m; ++i) {
      wire_by_walk(born, i, contact, false);
    }
  }
  churn_.record_birth(born);
  if (hooks_.on_birth) hooks_.on_birth(born, time_of_round);

  report.round = churn_.round();
  report.born = born;
  return report;
}

void WalkOverlay::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
}

void WalkOverlay::warm_up() {
  CHURNET_EXPECTS(churn_.round() == 0);
  run_rounds(2ull * config_.n);
  CHURNET_ENSURES(graph_.alive_count() == config_.n);
}

}  // namespace churnet
