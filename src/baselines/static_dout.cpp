#include "baselines/static_dout.hpp"

#include <utility>
#include <vector>

#include "common/assertx.hpp"
#include "graph/algorithms.hpp"

namespace churnet {

Snapshot static_dout_snapshot(std::uint32_t n, std::uint32_t d, Rng& rng) {
  CHURNET_EXPECTS(n >= 2);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(n) * d);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t k = 0; k < d; ++k) {
      // Uniform over the other n-1 nodes.
      auto v = static_cast<std::uint32_t>(rng.below(n - 1));
      if (v >= u) ++v;
      edges.emplace_back(u, v);
    }
  }
  return Snapshot::from_edges(n, edges);
}

StaticFloodResult static_flood(const Snapshot& snapshot,
                               std::uint32_t source) {
  const auto distances = bfs_distances(snapshot, source);
  StaticFloodResult result;
  for (const std::int32_t dist : distances) {
    if (dist < 0) continue;
    ++result.informed;
    result.rounds =
        std::max(result.rounds, static_cast<std::uint64_t>(dist));
  }
  result.completed = result.informed == snapshot.node_count();
  return result;
}

}  // namespace churnet
