#include "baselines/erdos_renyi.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/assertx.hpp"

namespace churnet {

Snapshot erdos_renyi_snapshot(std::uint32_t n, double p, Rng& rng) {
  CHURNET_EXPECTS(n >= 2);
  CHURNET_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  if (p > 0.0) {
    // Enumerate the n(n-1)/2 pairs in lexicographic order, skipping a
    // Geometric(p) gap between successive present edges (Batagelj-Brandes).
    const double log_q = std::log1p(-p);
    const std::uint64_t total_pairs =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t position = 0;
    if (p >= 1.0) {
      for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
      }
      return Snapshot::from_edges(n, edges);
    }
    while (true) {
      const double gap = std::floor(std::log1p(-rng.real01()) / log_q);
      position += static_cast<std::uint64_t>(gap) + 1;
      if (position > total_pairs) break;
      // Decode pair index (1-based) -> (u, v) with u < v.
      const std::uint64_t index = position - 1;
      // Row u holds (n-1-u) pairs; find u by solving the triangular sum.
      const double nd = static_cast<double>(n);
      const double disc = (2.0 * nd - 1.0) * (2.0 * nd - 1.0) -
                          8.0 * static_cast<double>(index);
      auto u = static_cast<std::uint32_t>(
          std::floor(((2.0 * nd - 1.0) - std::sqrt(disc)) / 2.0));
      // Guard float rounding at row boundaries.
      auto row_start = [&](std::uint32_t row) {
        return static_cast<std::uint64_t>(row) * (2 * n - row - 1) / 2;
      };
      while (u > 0 && row_start(u) > index) --u;
      while (row_start(u + 1) <= index) ++u;
      const auto v = static_cast<std::uint32_t>(u + 1 + (index - row_start(u)));
      CHURNET_ASSERT(u < v && v < n);
      edges.emplace_back(u, v);
    }
  }
  return Snapshot::from_edges(n, edges);
}

}  // namespace churnet
