// Static d-out random graph baseline (paper Lemma B.1).
//
// Each of n nodes picks d uniform random other nodes (independently, with
// replacement). Lemma B.1: this static graph is a Θ(1)-expander w.h.p. for
// d >= 3 — the reference point "what the topology achieves without churn"
// used by the expansion and flooding-time benches.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/snapshot.hpp"

namespace churnet {

/// Builds one static d-out sample as a Snapshot.
Snapshot static_dout_snapshot(std::uint32_t n, std::uint32_t d, Rng& rng);

/// Synchronous flooding rounds on a static graph = BFS eccentricity of the
/// source. Returns FloodTrace-compatible semantics: the number of rounds to
/// inform every reachable node, and whether that covered the whole graph.
struct StaticFloodResult {
  std::uint64_t rounds = 0;      // eccentricity of the source
  std::uint64_t informed = 0;    // reachable nodes (including the source)
  bool completed = false;        // informed == n
};
StaticFloodResult static_flood(const Snapshot& snapshot, std::uint32_t source);

}  // namespace churnet
