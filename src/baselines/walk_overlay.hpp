// Random-walk sampling overlay: the decentralized alternative to the
// paper's uniform-oracle dialing, modelled on the token / random-walk
// protocols of the related work (paper Section 2: Cooper-Dyer-Greenhill
// and the ID-random-walk approach).
//
// The paper's models assume a node can dial a UNIFORMLY random live node
// -- an oracle. The classic decentralized substitute samples peers by
// random walk: a joining node gets one bootstrap contact, then connects to
// the endpoints of m independent random walks of length L. For L beyond
// the mixing time the endpoint distribution is the walk's stationary
// distribution, which is DEGREE-BIASED (pi ~ deg), not uniform -- the
// interesting deviation this baseline quantifies. Under churn, a node that
// loses an edge regenerates it with a fresh walk started from a surviving
// neighbor (fully decentralized; no oracle after bootstrap).
//
// Node churn is the paper's streaming model (Definition 3.2), which is
// also exactly the churn model of Cooper et al. [8].
#pragma once

#include <cstdint>

#include "churn/streaming_churn.hpp"
#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

struct WalkOverlayConfig {
  std::uint32_t n = 1000;        // streaming size / lifetime
  std::uint32_t m = 8;           // connections per node (walk endpoints)
  std::uint32_t walk_length = 32;  // steps per sampling walk
  bool regenerate = true;        // redial lost edges via fresh walks
  std::uint64_t seed = 1;
};

class WalkOverlay {
 public:
  explicit WalkOverlay(WalkOverlayConfig config);

  struct RoundReport {
    std::uint64_t round = 0;
    NodeId born;
    std::optional<NodeId> died;
  };

  /// One streaming round: death of the oldest (past fill), regeneration of
  /// orphaned edges by random walks, birth + m sampling walks.
  RoundReport step();

  void run_rounds(std::uint64_t rounds);

  /// Two generations, as for StreamingNetwork.
  void warm_up();

  Snapshot snapshot() const { return Snapshot::capture(graph_, now()); }
  const DynamicGraph& graph() const { return graph_; }
  std::uint64_t round() const { return churn_.round(); }
  double now() const { return static_cast<double>(churn_.round()); }
  const WalkOverlayConfig& config() const { return config_; }
  Rng& rng() { return rng_; }
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

  /// Attaches a caller-owned change feed to the underlying graph so every
  /// churn mutation records a GraphDelta (graph/change_feed.hpp);
  /// nullptr detaches.
  void attach_change_feed(ChangeFeed* feed) {
    graph_.attach_change_feed(feed);
  }

  /// Sampling walks that ended on the walker itself or found no usable
  /// endpoint (request left dangling).
  std::uint64_t failed_walks() const { return failed_walks_; }

 private:
  /// Random walk of walk_length steps from `start`; returns the endpoint
  /// (which may equal `avoid`, in which case sampling failed).
  NodeId sample_by_walk(NodeId start, NodeId avoid);
  /// Wires out-slot `index` of `owner` to a walk endpoint started at
  /// `start`; counts a failed walk if unusable.
  void wire_by_walk(NodeId owner, std::uint32_t index, NodeId start,
                    bool regenerated);

  WalkOverlayConfig config_;
  StreamingChurn churn_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
  std::uint64_t failed_walks_ = 0;
  std::vector<NodeId> neighbor_scratch_;
  RemovalScratch removal_scratch_;  // reused across rounds; zero-alloc deaths
};

}  // namespace churnet
