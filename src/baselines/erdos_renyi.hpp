// Erdős–Rényi G(n, p) baseline, sampled in O(n + m) expected time with
// geometric edge skipping. Used as a second static reference topology in
// tests and the expansion benches.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/snapshot.hpp"

namespace churnet {

/// One G(n, p) sample as a Snapshot (undirected, no self-loops, no
/// parallel edges).
Snapshot erdos_renyi_snapshot(std::uint32_t n, double p, Rng& rng);

}  // namespace churnet
