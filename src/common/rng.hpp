// Deterministic, portable random number generation.
//
// The standard <random> distributions are not bit-reproducible across
// standard-library implementations, so every sampler here is a fixed
// algorithm: results depend only on the 64-bit seed. The engine is
// xoshiro256++ seeded through splitmix64.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assertx.hpp"

namespace churnet {

/// xoshiro256++ pseudo-random engine with convenience samplers.
///
/// Not thread-safe; create one instance per logical stream. Distinct streams
/// should use distinct seeds (any two seeds give independent-looking
/// streams thanks to the splitmix64 seeding stage).
class Rng {
 public:
  /// Seeds the engine; every state word is derived via splitmix64 so even
  /// adjacent integer seeds produce decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word. Inline: this is the innermost call of every
  /// churn/wiring hot loop (a dozen-plus draws per round), so it must not
  /// cost a cross-TU function call.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl_(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    CHURNET_EXPECTS(bound > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) [[unlikely]] {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double real01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Pareto variate with tail index alpha and minimum xmin (both > 0):
  /// P(X > x) = (xmin/x)^alpha for x >= xmin. Mean alpha*xmin/(alpha-1)
  /// when alpha > 1, infinite otherwise.
  double pareto(double alpha, double xmin);

  /// Weibull variate with the given shape and scale (both > 0). Mean is
  /// scale * Gamma(1 + 1/shape); shape < 1 gives a heavy (subexponential)
  /// tail, shape == 1 is Exp(1/scale).
  double weibull(double shape, double scale);

  /// Poisson variate with the given mean (>= 0). Exact inversion for small
  /// means, PTRS transformed rejection for large means.
  std::uint64_t poisson(double mean);

  /// Standard normal variate (Box-Muller, cached spare).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Binomial variate: number of successes in n Bernoulli(p) trials.
  /// Exact (waiting-time method) for small n*p; normal-tail-safe inversion
  /// by symmetry otherwise.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, population).
  /// Requires k <= population. O(k) expected time (hash-free partial
  /// Fisher-Yates for dense draws, rejection for sparse draws).
  std::vector<std::uint64_t> sample_distinct(std::uint64_t population,
                                             std::uint64_t k);

  /// Forks an independent child stream (seeded from this stream's output).
  Rng split();

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Derives a per-replication seed from a base seed and stream/replication
/// indices, decorrelated through splitmix-style mixing. This is the one
/// seeding path for replicated experiments: every (stream, replication)
/// pair gets an independent-looking stream regardless of the base seed, so
/// parallel trials are decorrelated by construction.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                          std::uint64_t replication);

}  // namespace churnet
