// Minimal JSON reader for declarative config files (the sweep grid specs).
//
// Full JSON value model — null, bool, number (double), string, array,
// object — parsed by recursive descent with offset-annotated error
// messages. Objects preserve insertion order and are looked up linearly
// (configs are tiny). No dependencies, no exceptions: parse() returns
// nullopt and a reason string, matching the CLI error style elsewhere.
//
// This is a reader for trusted local config files, not a streaming parser
// for untrusted network input: the depth limit guards the stack and
// malformed documents fail with a position, but there is no incremental
// API and numbers are always doubles (53-bit integer precision — plenty
// for seeds and grid sizes written by hand).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace churnet {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; aborting on a type mismatch (callers check first).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;     // array elements
  const std::vector<Member>& members() const;      // object members

  /// Object member lookup (exact key); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  /// Parses a complete JSON document (trailing garbage is an error). On
  /// failure returns nullopt and, when `error` is non-null, a one-line
  /// reason with the byte offset.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  // Construction helpers (used by the parser and tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace churnet
