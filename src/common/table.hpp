// Aligned-column table printing for bench output, plus CSV export.
//
// Bench binaries print rows in the same shape as the paper's claims
// (expected vs measured); Table keeps the formatting concerns out of the
// experiment code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace churnet {

/// Fixed-precision formatting helpers used for table cells.
std::string fmt_fixed(double x, int precision = 3);
std::string fmt_sci(double x, int precision = 2);
std::string fmt_int(std::int64_t x);
std::string fmt_percent(double fraction, int precision = 1);

/// A simple column-aligned text table. Columns are declared once; rows are
/// appended as strings (use the fmt_* helpers) and printed right-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header underline.
  std::string render() const;

  /// Prints render() to the stream.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (no alignment padding).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace churnet
