// Minimal command-line parsing for bench and example binaries.
//
// Supported syntax: --key value, --key=value and boolean --flag.
// Unknown arguments abort with a message listing the known options, so typos
// in experiment sweeps fail loudly instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace churnet {

/// Declarative CLI: declare options with defaults, then parse(argc, argv).
class Cli {
 public:
  /// `program_doc` is printed by --help.
  explicit Cli(std::string program_doc);

  /// Declares an integer option with a default.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& doc);
  /// Declares a floating-point option with a default.
  void add_double(const std::string& name, double default_value,
                  const std::string& doc);
  /// Declares a string option with a default.
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& doc);
  /// Declares a boolean flag (default false).
  void add_flag(const std::string& name, const std::string& doc);

  /// Parses argv. On --help prints usage and returns false (caller should
  /// exit 0). On malformed/unknown arguments prints usage and aborts.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string doc;
    std::string value;  // textual; parsed on get
  };

  const Option& find(const std::string& name, Kind kind) const;
  std::string usage() const;

  std::string program_doc_;
  std::string program_name_;
  std::map<std::string, Option> options_;
};

}  // namespace churnet
