// Fixed-width-bin histogram with ASCII rendering, used by benches and
// examples to show degree and latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace churnet {

/// Histogram over [lo, hi) with `bins` equal-width bins plus underflow and
/// overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(double x, std::uint64_t weight);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Multi-line ASCII bar rendering, `width` characters for the largest bar.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram over the non-negative integers 0..max_value (one bin each),
/// convenient for degree distributions.
class IntHistogram {
 public:
  explicit IntHistogram(std::uint64_t max_value);

  void add(std::uint64_t value);

  std::uint64_t count(std::uint64_t value) const;
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t max_value() const { return counts_.size() - 1; }
  double mean() const;

  /// Fraction of observations equal to `value`.
  double pmf(std::uint64_t value) const;

  std::string render(std::size_t width = 50) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace churnet
