#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assertx.hpp"

namespace churnet {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CHURNET_EXPECTS(lo < hi);
  CHURNET_EXPECTS(bins > 0);
}

void Histogram::add(double x) { add(x, 1); }

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);  // guard float edge rounding
  counts_[idx] += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  CHURNET_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  CHURNET_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.3g, %10.3g) %10llu ", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

IntHistogram::IntHistogram(std::uint64_t max_value)
    : counts_(static_cast<std::size_t>(max_value) + 1, 0) {}

void IntHistogram::add(std::uint64_t value) {
  ++total_;
  sum_ += static_cast<double>(value);
  if (value >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(value)];
}

std::uint64_t IntHistogram::count(std::uint64_t value) const {
  if (value >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(value)];
}

double IntHistogram::mean() const {
  if (total_ == 0) return 0.0;
  return sum_ / static_cast<double>(total_);
}

double IntHistogram::pmf(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::string IntHistogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "%6zu %10llu ", i,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof line, "  >%zu %10llu\n", counts_.size() - 1,
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace churnet
