// Shared grammar machinery for textual "name(args)" spec calls — the shape
// both the churn-spec ("pareto(2.5)") and protocol-spec ("push(3)")
// grammars are built from. One splitter keeps the diagnostics (missing
// ')', empty argument, bad number) identical across spec families.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace churnet {

/// One parsed "name(args)" call: a lowercased name plus numeric arguments.
struct SpecCall {
  std::string name;
  std::vector<double> args;
};

/// Strips leading/trailing whitespace.
std::string_view trim_spec(std::string_view text);

/// Lowercases a copy (ASCII).
std::string lowercase_spec(std::string_view text);

/// Stores `message` into `*error` when non-null; always returns false, so
/// parsers can `return spec_fail(error, ...)`.
bool spec_fail(std::string* error, std::string message);

/// Splits "name(a,b)" into a lowercased name and numeric args; "name" and
/// "name()" both yield zero args. On syntax errors ('(' without ')', empty
/// or non-numeric argument) returns false and stores a one-line reason
/// prefixed with `what` (e.g. "churn spec 'x': bad number 'y'").
bool split_spec_call(std::string_view text, const char* what, SpecCall* call,
                     std::string* error);

/// The call's name alone ("push" for "push(3)"), lowercased and trimmed —
/// for dispatching a segment to the right spec family before a full parse.
std::string spec_call_name(std::string_view text);

/// Splits a composite spec on top-level '+' into trimmed segments; '+'
/// inside '(...)' stays within its segment.
std::vector<std::string_view> split_spec_segments(std::string_view text);

/// Splits a comma-separated list of specs into entries, dropping all
/// whitespace; commas inside '(...)' belong to an entry's arguments
/// ("PDGR+bursty(4,0.5)" is one entry). Empty entries are skipped.
std::vector<std::string> split_spec_list(std::string_view text);

}  // namespace churnet
