#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assertx.hpp"

namespace churnet {

Cli::Cli(std::string program_doc) : program_doc_(std::move(program_doc)) {}

void Cli::add_int(const std::string& name, std::int64_t default_value,
                  const std::string& doc) {
  options_[name] = {Kind::kInt, doc, std::to_string(default_value)};
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& doc) {
  options_[name] = {Kind::kDouble, doc, std::to_string(default_value)};
}

void Cli::add_string(const std::string& name, const std::string& default_value,
                     const std::string& doc) {
  options_[name] = {Kind::kString, doc, default_value};
}

void Cli::add_flag(const std::string& name, const std::string& doc) {
  options_[name] = {Kind::kFlag, doc, "0"};
}

bool Cli::parse(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option '--%s'\n%s", arg.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    if (it->second.kind == Kind::kFlag) {
      if (has_value) {
        std::fprintf(stderr, "flag '--%s' does not take a value\n",
                     arg.c_str());
        std::exit(2);
      }
      it->second.value = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option '--%s' needs a value\n", arg.c_str());
        std::exit(2);
      }
      value = argv[++i];
    }
    it->second.value = value;
  }
  return true;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool Cli::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "1";
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
  const auto it = options_.find(name);
  CHURNET_EXPECTS(it != options_.end());
  CHURNET_EXPECTS(it->second.kind == kind);
  return it->second;
}

std::string Cli::usage() const {
  std::string out = program_doc_ + "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (opt.kind != Kind::kFlag) out += " <" + opt.value + ">";
    out += "\n      " + opt.doc + "\n";
  }
  return out;
}

}  // namespace churnet
