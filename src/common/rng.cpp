#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace churnet {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                          std::uint64_t replication) {
  std::uint64_t x = base ^ (stream * 0x9E3779B97F4A7C15ULL) ^
                    (replication * 0xC2B2AE3D27D4EB4FULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // A state of all zeros would lock the engine at zero; splitmix64 cannot
  // produce four zero words from any seed, but guard regardless.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CHURNET_EXPECTS(lo <= hi);
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(below(range));
}

double Rng::uniform_real(double lo, double hi) {
  CHURNET_EXPECTS(lo <= hi);
  return lo + (hi - lo) * real01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real01() < p;
}

double Rng::exponential(double rate) {
  CHURNET_EXPECTS(rate > 0.0);
  // real01() < 1 strictly, so log argument is > 0.
  return -std::log1p(-real01()) / rate;
}

double Rng::pareto(double alpha, double xmin) {
  CHURNET_EXPECTS(alpha > 0.0);
  CHURNET_EXPECTS(xmin > 0.0);
  // Inversion: X = xmin * U^{-1/alpha} with U in (0, 1]; real01() < 1
  // strictly, so 1 - real01() > 0 and the power is finite.
  return xmin * std::pow(1.0 - real01(), -1.0 / alpha);
}

double Rng::weibull(double shape, double scale) {
  CHURNET_EXPECTS(shape > 0.0);
  CHURNET_EXPECTS(scale > 0.0);
  // Inversion: X = scale * (-ln U)^{1/shape} with U in (0, 1].
  return scale * std::pow(-std::log1p(-real01()), 1.0 / shape);
}

std::uint64_t Rng::poisson(double mean) {
  CHURNET_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search on the CDF.
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= real01();
    } while (p > l);
    return k - 1;
  }
  // PTRS ("transformed rejection with squeeze"), Hoermann 1993.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = real01() - 0.5;
    const double v = real01();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    const double log_mean = std::log(mean);
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; real01() can return 0, so flip to (0,1].
  const double u1 = 1.0 - real01();
  const double u2 = real01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  CHURNET_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Work with q = min(p, 1-p) and mirror at the end.
  const bool mirrored = p > 0.5;
  const double q = mirrored ? 1.0 - p : p;
  std::uint64_t successes = 0;
  if (static_cast<double>(n) * q < 64.0) {
    // Waiting-time (geometric skip) method: O(n*q) expected.
    const double log1mq = std::log1p(-q);
    double skipped = 0.0;
    for (;;) {
      const double gap = std::floor(std::log1p(-real01()) / log1mq);
      skipped += gap + 1.0;
      if (skipped > static_cast<double>(n)) break;
      ++successes;
    }
  } else {
    // Exact Bernoulli loop in blocks; n*q >= 64 keeps this rare in hot paths.
    for (std::uint64_t i = 0; i < n; ++i) successes += bernoulli(q) ? 1 : 0;
  }
  return mirrored ? n - successes : successes;
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t population,
                                                std::uint64_t k) {
  CHURNET_EXPECTS(k <= population);
  std::vector<std::uint64_t> picked;
  picked.reserve(k);
  if (k == 0) return picked;
  if (k * 3 >= population) {
    // Dense draw: partial Fisher-Yates over an explicit index array.
    std::vector<std::uint64_t> indices(population);
    for (std::uint64_t i = 0; i < population; ++i) indices[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + below(population - i);
      std::swap(indices[i], indices[j]);
      picked.push_back(indices[i]);
    }
    return picked;
  }
  // Sparse draw: rejection against a hash set, O(k) expected.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(k) * 2);
  while (picked.size() < k) {
    const std::uint64_t candidate = below(population);
    if (seen.insert(candidate).second) picked.push_back(candidate);
  }
  return picked;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace churnet
