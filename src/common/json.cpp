#include "common/json.hpp"

#include <cctype>
#include <cstdlib>

#include "common/assertx.hpp"

namespace churnet {
namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(std::string message) {
    if (error.empty()) {
      error = std::move(message) + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_whitespace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char expected) {
    if (pos < text.size() && text[pos] == expected) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return fail("unterminated escape");
      const char escape = text[pos++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as-is — config files are ASCII in practice).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(double* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string number(text.substr(start, pos - start));
    if (number.empty()) return fail("expected number");
    char* end = nullptr;
    *out = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size()) {
      pos = start;
      return fail("malformed number '" + number + "'");
    }
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return false;
      *out = JsonValue::make_null();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      *out = JsonValue::make_bool(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      *out = JsonValue::make_bool(false);
      return true;
    }
    if (c == '"') {
      std::string value;
      if (!parse_string(&value)) return false;
      *out = JsonValue::make_string(std::move(value));
      return true;
    }
    if (c == '[') {
      ++pos;
      std::vector<JsonValue> items;
      skip_whitespace();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
      } else {
        for (;;) {
          JsonValue item;
          if (!parse_value(&item, depth + 1)) return false;
          items.push_back(std::move(item));
          skip_whitespace();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume(']')) return false;
          break;
        }
      }
      *out = JsonValue::make_array(std::move(items));
      return true;
    }
    if (c == '{') {
      ++pos;
      std::vector<JsonValue::Member> members;
      skip_whitespace();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
      } else {
        for (;;) {
          skip_whitespace();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_whitespace();
          if (!consume(':')) return false;
          JsonValue value;
          if (!parse_value(&value, depth + 1)) return false;
          members.emplace_back(std::move(key), std::move(value));
          skip_whitespace();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume('}')) return false;
          break;
        }
      }
      *out = JsonValue::make_object(std::move(members));
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      double number = 0.0;
      if (!parse_number(&number)) return false;
      *out = JsonValue::make_number(number);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool JsonValue::as_bool() const {
  CHURNET_EXPECTS(is_bool());
  return bool_;
}

double JsonValue::as_number() const {
  CHURNET_EXPECTS(is_number());
  return number_;
}

const std::string& JsonValue::as_string() const {
  CHURNET_EXPECTS(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  CHURNET_EXPECTS(is_array());
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  CHURNET_EXPECTS(is_object());
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue value;
  if (!parser.parse_value(&value, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_whitespace();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(parser.pos);
    }
    return std::nullopt;
  }
  return value;
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

}  // namespace churnet
