// Online statistics, confidence intervals and quantiles used by the
// experiment harness and the statistical test suites.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace churnet {

/// Welford online accumulator for mean/variance plus extremes.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel-combine rule).
  void merge(const OnlineStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Standard error of the mean; 0 when fewer than two observations.
  double stderr_mean() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const { return lo <= x && x <= hi; }
};

/// Wilson score interval for a binomial proportion.
/// successes <= trials; z is the normal quantile (1.96 ~ 95%, 3.29 ~ 99.9%).
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96);

/// Normal-approximation confidence interval for the mean of a sample.
Interval mean_interval(const OnlineStats& stats, double z = 1.96);

/// q-th quantile (0 <= q <= 1) by linear interpolation; sorts a copy.
double quantile(std::span<const double> values, double q);

/// Median convenience wrapper over quantile().
double median(std::span<const double> values);

/// Result of an ordinary least-squares fit y ~ a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

/// Least-squares line through (xs[i], ys[i]). Requires sizes equal, >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace churnet
