#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assertx.hpp"

namespace churnet {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  CHURNET_EXPECTS(count_ > 0);
  return min_;
}

double OnlineStats::max() const {
  CHURNET_EXPECTS(count_ > 0);
  return max_;
}

double OnlineStats::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  CHURNET_EXPECTS(successes <= trials);
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval mean_interval(const OnlineStats& stats, double z) {
  const double half = z * stats.stderr_mean();
  return {stats.mean() - half, stats.mean() + half};
}

double quantile(std::span<const double> values, double q) {
  CHURNET_EXPECTS(!values.empty());
  CHURNET_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  CHURNET_EXPECTS(xs.size() == ys.size());
  CHURNET_EXPECTS(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx > 0.0 && syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace churnet
