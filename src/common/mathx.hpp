// Small mathematical helpers shared by analysis code and tests:
// log-binomials, KL divergence (used in the paper's Lemma 4.18 machinery),
// and distribution pmfs used as references in statistical tests.
#pragma once

#include <cstdint>
#include <span>

namespace churnet {

/// Natural log of n! via lgamma.
double log_factorial(std::uint64_t n);

/// Natural log of C(n, k). Requires k <= n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Poisson(mean) probability mass at k.
double poisson_pmf(std::uint64_t k, double mean);

/// Binomial(n, p) probability mass at k.
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// Kullback-Leibler divergence D(p || q) in nats over two discrete
/// distributions given as aligned spans. Terms with p[i] == 0 contribute 0;
/// requires q[i] > 0 wherever p[i] > 0. Theorem A.3 of the paper states
/// D(p||q) >= 0, which the test suite checks on random distributions.
double kl_divergence(std::span<const double> p, std::span<const double> q);

/// Shannon entropy in nats of a discrete distribution.
double entropy(std::span<const double> p);

/// Normalizes a non-negative vector in place to sum to 1. Requires a
/// positive sum.
void normalize(std::span<double> weights);

}  // namespace churnet
