#include "common/mathx.hpp"

#include <cmath>

#include "common/assertx.hpp"

namespace churnet {

double log_factorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  CHURNET_EXPECTS(k <= n);
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double poisson_pmf(std::uint64_t k, double mean) {
  CHURNET_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(static_cast<double>(k) * std::log(mean) - mean -
                  log_factorial(k));
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  CHURNET_EXPECTS(k <= n);
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_p = log_binomial(n, k) +
                       static_cast<double>(k) * std::log(p) +
                       static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_p);
}

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  CHURNET_EXPECTS(p.size() == q.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    CHURNET_EXPECTS(q[i] > 0.0);
    sum += p[i] * std::log(p[i] / q[i]);
  }
  return sum;
}

double entropy(std::span<const double> p) {
  double sum = 0.0;
  for (const double x : p) {
    if (x > 0.0) sum -= x * std::log(x);
  }
  return sum;
}

void normalize(std::span<double> weights) {
  double sum = 0.0;
  for (const double w : weights) {
    CHURNET_EXPECTS(w >= 0.0);
    sum += w;
  }
  CHURNET_EXPECTS(sum > 0.0);
  for (double& w : weights) w /= sum;
}

}  // namespace churnet
