// Lightweight contract-checking macros.
//
// CHURNET_EXPECTS / CHURNET_ENSURES document pre/post-conditions on public
// API boundaries; CHURNET_ASSERT guards internal invariants. All three abort
// with a source location; they stay active in release builds because the
// simulator is a measurement instrument and silent corruption would
// invalidate experiments. The cost is negligible at event granularity.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace churnet::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "churnet: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace churnet::detail

#define CHURNET_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::churnet::detail::contract_failure("precondition", #cond,     \
                                                __FILE__, __LINE__))

#define CHURNET_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::churnet::detail::contract_failure("postcondition", #cond,    \
                                                __FILE__, __LINE__))

#define CHURNET_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                           \
          : ::churnet::detail::contract_failure("invariant", #cond,        \
                                                __FILE__, __LINE__))
