#include "common/specgram.hpp"

#include <cctype>
#include <cstdlib>

namespace churnet {

std::string_view trim_spec(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string lowercase_spec(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool spec_fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool split_spec_call(std::string_view text, const char* what, SpecCall* call,
                     std::string* error) {
  text = trim_spec(text);
  call->name.clear();
  call->args.clear();
  if (text.empty()) return spec_fail(error, std::string("empty ") + what);
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos) {
    call->name = lowercase_spec(text);
    return true;
  }
  if (text.back() != ')') {
    return spec_fail(error, std::string(what) + " '" + std::string(text) +
                                "': missing closing ')'");
  }
  call->name = lowercase_spec(trim_spec(text.substr(0, open)));
  std::string_view body = text.substr(open + 1, text.size() - open - 2);
  body = trim_spec(body);
  if (body.empty()) return true;  // "name()" == "name"
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view piece = trim_spec(
        comma == std::string_view::npos ? body : body.substr(0, comma));
    if (piece.empty()) {
      return spec_fail(error, std::string(what) + " '" + std::string(text) +
                                  "': empty argument");
    }
    const std::string number(piece);
    char* end = nullptr;
    const double value = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size()) {
      return spec_fail(error, std::string(what) + " '" + std::string(text) +
                                  "': bad number '" + number + "'");
    }
    call->args.push_back(value);
    if (comma == std::string_view::npos) break;
    body = body.substr(comma + 1);
  }
  return true;
}

std::string spec_call_name(std::string_view text) {
  text = trim_spec(text);
  const std::size_t open = text.find('(');
  if (open != std::string_view::npos) text = text.substr(0, open);
  return lowercase_spec(trim_spec(text));
}

std::vector<std::string> split_spec_list(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

std::vector<std::string_view> split_spec_segments(std::string_view text) {
  std::vector<std::string_view> segments;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && depth > 0) --depth;
    if (text[i] == '+' && depth == 0) {
      segments.push_back(trim_spec(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  segments.push_back(trim_spec(text.substr(start)));
  return segments;
}

}  // namespace churnet
