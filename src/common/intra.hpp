// Intra-trial fork-join: run a fixed partition of work across a small
// worker pool such that the result is byte-identical at every thread
// count.
//
// The determinism recipe (DESIGN.md, "Intra-trial parallelism"): split the
// work into chunks whose boundaries depend only on the input size — never
// on the thread count — have each chunk write only its own output buffer,
// and merge the buffers serially in chunk-index order. Workers may execute
// chunks in any order (they pull indices from a shared atomic counter), but
// since chunk outputs are disjoint and the merge order is fixed, the final
// result at intra_threads=k is the sequential result for every k. That
// property is what the CI determinism smoke and the equivalence tests pin.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace churnet {

/// Resolves an intra_threads knob: 0 = one worker per hardware thread,
/// otherwise the requested count. Always >= 1.
inline unsigned effective_intra_threads(std::uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(chunk_index, worker_index) for every chunk in [0, chunk_count).
/// With threads <= 1 (or a single chunk) this is a plain serial loop on
/// worker 0 — no thread is ever spawned, so the sequential path stays the
/// oracle. Otherwise min(threads, chunk_count) workers pull chunk indices
/// from an atomic counter; worker_index selects per-worker scratch buffers
/// and is in [0, workers).
template <typename Fn>
void for_each_chunk(unsigned threads, std::size_t chunk_count, Fn&& fn) {
  if (threads <= 1 || chunk_count <= 1) {
    for (std::size_t c = 0; c < chunk_count; ++c) fn(c, 0u);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, chunk_count));
  std::atomic<std::size_t> next{0};
  auto run = [&](unsigned worker) {
    for (std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
         c < chunk_count;
         c = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(c, worker);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(run, w);
  run(0);
  for (std::thread& worker : pool) worker.join();
}

}  // namespace churnet
