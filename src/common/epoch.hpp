// Checked epoch bumping for stamp-array membership sets.
//
// An epoch-stamped set treats stamp==epoch as "member" and relies on the
// epoch never revisiting an old value: on wraparound every stale stamp from
// 2^64 (or 2^32) trials ago silently reads as a member again. The core
// flood sets now use Bitset64 (no epochs at all); the remaining epoch users
// (TTL flood's per-run stamps, and any future ones) must bump through this
// helper so a wrap aborts loudly instead of corrupting membership.
#pragma once

#include <cstdint>

#include "common/assertx.hpp"

namespace churnet {

/// Increments `epoch` and returns the new value, aborting on wraparound
/// (the counter would revisit 0 and stale stamps of 0 would alias as
/// current members).
template <typename UInt>
inline UInt bump_epoch(UInt& epoch) {
  static_assert(static_cast<UInt>(-1) > 0, "epoch counters are unsigned");
  ++epoch;
  CHURNET_EXPECTS(epoch != 0);
  return epoch;
}

}  // namespace churnet
