// Shared helpers for the CSV/JSON result sinks (TrialRunner, SweepRunner,
// benchutil's --csv/--json log): round-trip float precision, JSON-safe
// numbers and strings, RFC-4180 CSV field quoting. One implementation so
// escaping rules can never drift between sinks.
#pragma once

#include <cmath>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>

namespace churnet {

/// Round-trip double precision for a sink stream, restored on scope exit:
/// emitted samples must reproduce the in-memory values exactly.
class PrecisionGuard {
 public:
  explicit PrecisionGuard(std::ostream& os)
      : os_(os),
        previous_(os.precision(std::numeric_limits<double>::max_digits10)) {}
  ~PrecisionGuard() { os_.precision(previous_); }

  PrecisionGuard(const PrecisionGuard&) = delete;
  PrecisionGuard& operator=(const PrecisionGuard&) = delete;

 private:
  std::ostream& os_;
  std::streamsize previous_;
};

/// NaN and infinities have no JSON representation; emit null so the
/// output always parses.
inline void write_json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
  } else {
    os << value;
  }
}

/// Writes `text` as a JSON string literal (quotes, backslashes and
/// control characters escaped).
inline void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// One CSV field under RFC-4180: quoted (with doubled inner quotes) iff it
/// contains a comma, quote or newline — churn specs like "bursty(4,0.5)"
/// must not add columns.
inline std::string csv_field(std::string_view text) {
  const bool needs_quoting =
      text.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(text);
  std::string quoted;
  quoted.reserve(text.size() + 2);
  quoted.push_back('"');
  for (const char c : text) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace churnet
