#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/assertx.hpp"

namespace churnet {

std::string fmt_fixed(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

std::string fmt_sci(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, x);
  return buf;
}

std::string fmt_int(std::int64_t x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(x));
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CHURNET_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CHURNET_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += "  ";
      // Right-align: pad on the left.
      out.append(widths[c] - cells[c].size(), ' ');
      out += cells[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print(std::ostream& os) const { os << render(); }

void Table::write_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace churnet
