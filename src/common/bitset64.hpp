// Word-packed bitset for dense slot-indexed membership sets.
//
// The flooding/dissemination drivers track three per-slot memberships
// (informed, per-step candidate, per-interval death). At n=10M an epoch
// stamp array costs 80 MB per set and every query is a 64-bit load from a
// cold cache line; one bit per slot is 1.25 MB — the whole set fits in L2 —
// and set algebra (frontier commit = candidates AND-NOT deaths) becomes a
// streaming word scan with `std::popcount`/`std::countr_zero`. Clearing is
// O(words) per trial instead of an epoch bump, which is both cheaper than
// it sounds (memset bandwidth over 1.25 MB) and removes the wrap hazard of
// epoch counters entirely.
//
// Invariant: bits at positions >= size() inside the last word are always
// zero, so count() and word-level scans never need a tail mask.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/assertx.hpp"

namespace churnet {

class Bitset64 {
 public:
  using Word = std::uint64_t;
  static constexpr std::uint64_t kWordBits = 64;

  Bitset64() = default;
  explicit Bitset64(std::uint64_t bits) { resize(bits); }

  std::uint64_t size() const { return bit_size_; }
  std::uint64_t word_count() const { return words_.size(); }

  /// Grows or shrinks to `bits`, preserving the retained prefix. New bits
  /// are zero; on shrink, the dropped tail of the last kept word is zeroed
  /// to maintain the tail invariant.
  void resize(std::uint64_t bits) {
    words_.resize((bits + kWordBits - 1) / kWordBits, 0);
    bit_size_ = bits;
    const std::uint64_t tail = bits % kWordBits;
    if (tail != 0) words_.back() &= (Word{1} << tail) - 1;
  }

  /// Zeroes every bit; O(words), the per-trial reset.
  void clear_all() { std::fill(words_.begin(), words_.end(), Word{0}); }

  /// True iff `bit` is set. Out-of-range probes return false (a graph can
  /// grow past the last ensure() between queries; absent means unset).
  bool test(std::uint64_t bit) const {
    if (bit >= bit_size_) return false;
    return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1;
  }

  void set(std::uint64_t bit) {
    CHURNET_ASSERT(bit < bit_size_);
    words_[bit / kWordBits] |= Word{1} << (bit % kWordBits);
  }

  /// Clears `bit`; out-of-range is a no-op (mirrors test()).
  void reset(std::uint64_t bit) {
    if (bit >= bit_size_) return;
    words_[bit / kWordBits] &= ~(Word{1} << (bit % kWordBits));
  }

  /// Sets `bit` with a relaxed atomic OR, for concurrent marking by a
  /// sharded scan: OR commutes, so the final set is identical for every
  /// interleaving. Not ordered with non-atomic writes to the same word.
  void set_atomic(std::uint64_t bit) {
    CHURNET_ASSERT(bit < bit_size_);
    std::atomic_ref<Word>(words_[bit / kWordBits])
        .fetch_or(Word{1} << (bit % kWordBits), std::memory_order_relaxed);
  }

  /// Sets `bit`; returns true iff it was previously clear.
  bool test_and_set(std::uint64_t bit) {
    CHURNET_ASSERT(bit < bit_size_);
    Word& word = words_[bit / kWordBits];
    const Word mask = Word{1} << (bit % kWordBits);
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  /// Total set bits; O(words) popcount scan.
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const Word word : words_) total += std::popcount(word);
    return total;
  }

  /// Calls fn(bit) for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::uint64_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        fn(w * kWordBits + std::countr_zero(word));
        word &= word - 1;
      }
    }
  }

  /// this &= ~other over the common word prefix (frontier subtraction:
  /// candidates minus deaths). Bits of `this` beyond other's size are kept.
  void and_not(const Bitset64& other) {
    const std::uint64_t words =
        std::min<std::uint64_t>(words_.size(), other.words_.size());
    for (std::uint64_t w = 0; w < words; ++w) words_[w] &= ~other.words_[w];
  }

  /// Raw word access for fused multi-set scans (the driver's commit).
  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }

 private:
  std::vector<Word> words_;
  std::uint64_t bit_size_ = 0;
};

}  // namespace churnet
