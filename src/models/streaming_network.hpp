// Streaming dynamic graphs: SDG (paper Definition 3.4) and SDGR
// (Definition 3.13), selected by EdgePolicy.
//
// Round structure (Definition 3.2, clarified in DESIGN.md):
//   1. if the network holds n nodes, the oldest node dies; all its incident
//      edges disappear;
//   2. under EdgePolicy::kRegenerate, every surviving node that lost an
//      out-edge redraws it uniformly among the current nodes;
//   3. one node is born and issues d requests, each to a uniform random
//      node already in the network.
//
// Demography comes from the churn layer: the round schedule is a
// StreamingChurn driven exclusively through the ChurnProcess interface
// (churn/churn_process.hpp); this class only realizes births and deaths on
// the graph and owns the wiring RNG.
#pragma once

#include <cstdint>
#include <optional>

#include "churn/churn_spec.hpp"
#include "churn/streaming_churn.hpp"
#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

struct StreamingFloodSemantics;  // defined in flooding/flood_driver.hpp

struct StreamingConfig {
  std::uint32_t n = 1000;  // steady-state size == exact lifetime in rounds
  std::uint32_t d = 8;     // requests per node
  EdgePolicy policy = EdgePolicy::kNone;
  std::uint64_t seed = 1;
  /// Bounded-degree extension (paper Section 5 open question): cap on
  /// in-degrees, enforced by redrawing requests. 0 = unlimited (the paper's
  /// models). See WiringLimits in models/wiring.hpp.
  std::uint32_t max_in_degree = 0;
  /// Worker threads for the bulk genesis wiring inside run_growth_phase
  /// (0 = one per hardware thread). Purely a wall-clock knob: results are
  /// byte-identical at every value.
  std::uint32_t intra_threads = 1;
  /// Churn regime: kStream (the paper's schedule) or an adversarial spec
  /// (maxdeg/mindeg/cutset/eclipse), which keeps the round schedule but
  /// redirects budgeted deaths through AdversaryPolicy victim selection.
  ChurnSpec churn{ChurnSpec::Kind::kStream};
};

class StreamingNetwork {
 public:
  /// Flooding semantics under the generic driver (paper Def. 3.3).
  using flood_semantics = StreamingFloodSemantics;

  explicit StreamingNetwork(StreamingConfig config);

  /// What happened in one round.
  struct RoundReport {
    std::uint64_t round = 0;
    NodeId born;
    std::optional<NodeId> died;
  };

  /// Executes one round (death, regeneration, birth). O(d) amortized.
  RoundReport step();

  /// Executes `rounds` rounds.
  void run_rounds(std::uint64_t rounds);

  /// Runs whole rounds until now() >= time (the DynamicNetwork
  /// run-to-time primitive; streaming time is the integer round count).
  void run_until(double time);

  /// Runs rounds 1..n — the pure-growth phase in which every round is a
  /// birth and nobody dies. Produces a graph (and RNG/churn state)
  /// identical to run_rounds(n) from round 0, but in the paper's unbounded
  /// models with no hooks installed it records the n·d wiring draws
  /// serially and installs them through DynamicGraph::bulk_wire_genesis —
  /// a cache-blocked streaming pass (optionally sharded over
  /// config.intra_threads workers) instead of n·d random-access inserts.
  /// Callable only from round 0.
  void run_growth_phase();

  /// Runs the initial 2n rounds: after n rounds the network reaches its
  /// pinned size n, and after another n rounds every founder that joined a
  /// smaller-than-n network (with correspondingly skewed wiring) has died.
  /// From round 2n on, every alive node issued its d requests into a
  /// full-size network -- the regime all of the paper's analyses assume.
  /// Callable only from round 0. The first n rounds go through
  /// run_growth_phase (same state, bulk-wired when eligible).
  void warm_up();

  /// Age in rounds of an alive node: 0 for this round's newborn, up to n-1.
  std::uint64_t age(NodeId node) const;

  /// Captures the current topology (time == round()).
  Snapshot snapshot() const { return Snapshot::capture(graph_, now()); }

  const DynamicGraph& graph() const { return graph_; }
  std::uint64_t round() const { return churn_.round(); }
  double now() const { return static_cast<double>(churn_.round()); }
  const StreamingConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  /// Installs observer hooks (replacing any previous ones).
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

  /// Attaches a caller-owned change feed to the underlying graph so every
  /// churn mutation records a GraphDelta (graph/change_feed.hpp);
  /// nullptr detaches.
  void attach_change_feed(ChangeFeed* feed) {
    graph_.attach_change_feed(feed);
  }

 private:
  StreamingConfig config_;
  StreamingChurn churn_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
  RemovalScratch removal_scratch_;  // reused across rounds; zero-alloc deaths
};

}  // namespace churnet
