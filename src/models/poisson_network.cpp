#include "models/poisson_network.hpp"

#include "models/graph_view.hpp"
#include "models/wiring.hpp"

namespace churnet {

PoissonConfig PoissonConfig::with_n(std::uint32_t n, std::uint32_t d,
                                    EdgePolicy policy, std::uint64_t seed) {
  CHURNET_EXPECTS(n >= 1);
  PoissonConfig config;
  config.lambda = 1.0;
  config.mu = 1.0 / static_cast<double>(n);
  config.d = d;
  config.policy = policy;
  config.seed = seed;
  return config;
}

PoissonNetwork::PoissonNetwork(PoissonConfig config)
    : config_(config),
      churn_(make_churn_process(config.churn, config.lambda, config.mu,
                                config.seed)),
      rng_(config.seed + 0x51ED270B9F9B42A5ULL) {
  CHURNET_EXPECTS(config.lambda > 0.0);
  CHURNET_EXPECTS(config.mu > 0.0);
  // A streaming spec names the size-coupled round schedule, which only
  // StreamingNetwork can drive.
  CHURNET_EXPECTS(churn_ != nullptr &&
                  "continuous churn spec required (not 'stream')");
  graph_.reserve(stationary_reserve_hint(config.lambda, config.mu), config.d);
}

void PoissonNetwork::sample_pending() {
  pending_ = churn_->next(graph_.alive_count());
  pending_valid_ = true;
  ++events_;
}

PoissonNetwork::EventReport PoissonNetwork::step() {
  if (!pending_valid_) sample_pending();
  pending_valid_ = false;
  return apply(pending_);
}

PoissonNetwork::EventReport PoissonNetwork::apply(
    const ChurnProcess::Step& event) {
  now_ = event.time;
  EventReport report;
  report.kind =
      event.is_birth ? ChurnEvent::Kind::kBirth : ChurnEvent::Kind::kDeath;
  report.time = event.time;

  const WiringLimits limits{config_.max_in_degree, 8};
  if (event.is_birth) {
    const NodeId born = graph_.add_node(config_.d, event.time);
    detail::issue_initial_requests(graph_, rng_, born, hooks_, event.time,
                                   limits);
    churn_->on_birth(born, event.time);
    if (hooks_.on_birth) hooks_.on_birth(born, event.time);
    report.node = born;
    return report;
  }

  // Death: memoryless regimes emit kUniform (every alive node is equally
  // likely, rate N*mu, zero on an empty network); lifetime regimes schedule
  // the exact victim at its birth; adversarial regimes pick theirs against
  // a read view of the live graph (DESIGN.md decision 18).
  CHURNET_ASSERT(graph_.alive_count() > 0);
  NodeId victim;
  if (event.victim == ChurnProcess::Victim::kScheduled) {
    victim = event.victim_id;
  } else if (event.victim == ChurnProcess::Victim::kAdversarial) {
    const DynamicGraphView view(graph_);
    victim = churn_->select_victim(view);
  } else {
    victim = graph_.random_alive(rng_);
  }
  CHURNET_ASSERT(graph_.is_alive(victim));
  if (hooks_.on_death) hooks_.on_death(victim, event.time);
  graph_.remove_node(victim, removal_scratch_);
  if (config_.policy == EdgePolicy::kRegenerate) {
    detail::regenerate_requests(graph_, rng_, removal_scratch_.orphans,
                                hooks_, event.time, limits);
  }
  churn_->on_death(victim, event.time);
  report.node = victim;
  return report;
}

void PoissonNetwork::run_events(std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i) step();
}

double PoissonNetwork::peek_next_event_time() {
  if (!pending_valid_) sample_pending();
  return pending_.time;
}

void PoissonNetwork::run_until(double time) {
  CHURNET_EXPECTS(time >= now_);
  for (;;) {
    if (!pending_valid_) sample_pending();
    if (pending_.time > time) break;
    pending_valid_ = false;
    apply(pending_);
  }
  now_ = time;  // park the clock at the barrier; pending event stays queued
}

void PoissonNetwork::warm_up(double multiple) {
  CHURNET_EXPECTS(multiple > 0.0);
  run_until(now_ + churn_->warm_up_time(multiple));
}

double PoissonNetwork::age(NodeId node) const {
  CHURNET_EXPECTS(graph_.is_alive(node));
  return now_ - graph_.birth_time(node);
}

}  // namespace churnet
