#include "models/poisson_network.hpp"

#include "models/wiring.hpp"

namespace churnet {

PoissonConfig PoissonConfig::with_n(std::uint32_t n, std::uint32_t d,
                                    EdgePolicy policy, std::uint64_t seed) {
  CHURNET_EXPECTS(n >= 1);
  PoissonConfig config;
  config.lambda = 1.0;
  config.mu = 1.0 / static_cast<double>(n);
  config.d = d;
  config.policy = policy;
  config.seed = seed;
  return config;
}

PoissonNetwork::PoissonNetwork(PoissonConfig config)
    : config_(config),
      churn_(config.lambda, config.mu, Rng(config.seed).next_u64()),
      rng_(config.seed + 0x51ED270B9F9B42A5ULL) {}

PoissonNetwork::EventReport PoissonNetwork::step() {
  ChurnEvent event;
  if (pending_valid_) {
    event = pending_;
    pending_valid_ = false;
  } else {
    event = churn_.next(graph_.alive_count());
  }
  return apply(event);
}

PoissonNetwork::EventReport PoissonNetwork::apply(const ChurnEvent& event) {
  now_ = event.time;
  EventReport report;
  report.kind = event.kind;
  report.time = event.time;

  const WiringLimits limits{config_.max_in_degree, 8};
  if (event.kind == ChurnEvent::Kind::kBirth) {
    const NodeId born = graph_.add_node(config_.d, event.time);
    detail::issue_initial_requests(graph_, rng_, born, hooks_, event.time,
                                   limits);
    if (hooks_.on_birth) hooks_.on_birth(born, event.time);
    report.node = born;
    return report;
  }

  // Death: the jump chain guarantees alive_count() > 0 here (the death rate
  // is N*mu, which is zero for an empty network).
  CHURNET_ASSERT(graph_.alive_count() > 0);
  const NodeId victim = graph_.random_alive(rng_);
  if (hooks_.on_death) hooks_.on_death(victim, event.time);
  const std::vector<OutSlotRef> orphans = graph_.remove_node(victim);
  if (config_.policy == EdgePolicy::kRegenerate) {
    detail::regenerate_requests(graph_, rng_, orphans, hooks_, event.time,
                                limits);
  }
  report.node = victim;
  return report;
}

void PoissonNetwork::run_events(std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i) step();
}

double PoissonNetwork::peek_next_event_time() {
  if (!pending_valid_) {
    pending_ = churn_.next(graph_.alive_count());
    pending_valid_ = true;
  }
  return pending_.time;
}

void PoissonNetwork::run_until(double time) {
  CHURNET_EXPECTS(time >= now_);
  for (;;) {
    if (!pending_valid_) {
      pending_ = churn_.next(graph_.alive_count());
      pending_valid_ = true;
    }
    if (pending_.time > time) break;
    pending_valid_ = false;
    apply(pending_);
  }
  now_ = time;  // park the clock at the barrier; pending event stays queued
}

void PoissonNetwork::warm_up(double multiple) {
  CHURNET_EXPECTS(multiple > 0.0);
  run_until(now_ + multiple / config_.mu);
}

double PoissonNetwork::age(NodeId node) const {
  CHURNET_EXPECTS(graph_.is_alive(node));
  return now_ - graph_.birth_time(node);
}

}  // namespace churnet
