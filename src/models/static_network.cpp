#include "models/static_network.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/assertx.hpp"

namespace churnet {
namespace {

void wire_dout(DynamicGraph& graph, Rng& rng, std::uint32_t n,
               std::uint32_t d) {
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(graph.add_node(d, /*birth_time=*/0.0));
  }
  for (const NodeId owner : nodes) {
    for (std::uint32_t slot = 0; slot < d; ++slot) {
      const NodeId target = graph.random_alive_other(rng, owner);
      if (!target.valid()) continue;  // n == 1: slot stays dangling
      graph.set_out_edge(owner, slot, target);
    }
  }
}

void wire_erdos_renyi(DynamicGraph& graph, Rng& rng, std::uint32_t n,
                      double p) {
  CHURNET_EXPECTS(p >= 0.0 && p <= 1.0);
  // Sample the pair list first (geometric skipping, O(n + m) expected),
  // because DynamicGraph wants each node's out-slot count at add_node time.
  // Each sampled pair {i, j} with i < j becomes an out-edge owned by i.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::uint32_t> out_counts(n, 0);
  if (p > 0.0 && n >= 2) {
    const double log1mp = std::log1p(-p);
    if (p >= 1.0 || log1mp == 0.0) {
      for (std::uint32_t i = 0; i + 1 < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
          edges.emplace_back(i, j);
          ++out_counts[i];
        }
      }
    } else {
      // Batagelj–Brandes skip enumeration over pairs (w, v), w < v.
      std::int64_t v = 1;
      std::int64_t w = -1;
      while (v < static_cast<std::int64_t>(n)) {
        const double u = rng.real01();
        w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-u) /
                                                      log1mp));
        while (w >= v && v < static_cast<std::int64_t>(n)) {
          w -= v;
          ++v;
        }
        if (v < static_cast<std::int64_t>(n)) {
          const auto i = static_cast<std::uint32_t>(w);
          const auto j = static_cast<std::uint32_t>(v);
          edges.emplace_back(i, j);
          ++out_counts[i];
        }
      }
    }
  }

  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes.push_back(graph.add_node(out_counts[i], /*birth_time=*/0.0));
  }
  std::vector<std::uint32_t> next_slot(n, 0);
  for (const auto& [i, j] : edges) {
    graph.set_out_edge(nodes[i], next_slot[i]++, nodes[j]);
  }
}

}  // namespace

StaticNetwork::StaticNetwork(StaticConfig config)
    : config_(config), rng_(config.seed) {
  CHURNET_EXPECTS(config.n >= 1);
  switch (config_.topology) {
    case StaticConfig::Topology::kDOut:
      graph_.reserve(config_.n, config_.d);
      wire_dout(graph_, rng_, config_.n, config_.d);
      break;
    case StaticConfig::Topology::kErdosRenyi: {
      double p = config_.p;
      if (p <= 0.0) {
        p = std::min(1.0, 2.0 * static_cast<double>(config_.d) /
                              static_cast<double>(config_.n));
      }
      wire_erdos_renyi(graph_, rng_, config_.n, p);
      break;
    }
  }
}

}  // namespace churnet
