#include "models/streaming_network.hpp"

#include <vector>

#include "common/intra.hpp"
#include "models/graph_view.hpp"
#include "models/wiring.hpp"
#include "telemetry/telemetry.hpp"

namespace churnet {

StreamingNetwork::StreamingNetwork(StreamingConfig config)
    : config_(config), churn_(config.n), rng_(config.seed) {
  CHURNET_EXPECTS(config.n >= 1);
  if (config.churn.adversarial()) {
    // The schedule (and its budget-0 byte-identity to plain kStream) is
    // unchanged; only victim selection is redirected. The policy draws
    // from its own derived stream, disjoint from the wiring RNG.
    churn_.set_adversary(config.churn.adversary_config(),
                         adversary_seed(config.seed),
                         config.churn.canonical());
  } else {
    CHURNET_EXPECTS(config.churn.kind == ChurnSpec::Kind::kStream);
  }
  // The population is pinned at n, so warm-up fills every arena once and
  // the steady-state round loop never grows a pool.
  graph_.reserve(config.n, config.d);
}

StreamingNetwork::RoundReport StreamingNetwork::step() {
  // One round = the churn layer's event stream up to and including the
  // round's birth: an optional kScheduled death (the FIFO head, once the
  // network is full), then the birth. All churn decisions come through the
  // ChurnProcess interface; this function only realizes them on the graph.
  RoundReport report;
  ChurnProcess& churn = churn_;
  const WiringLimits limits{config_.max_in_degree, 8};

  ChurnProcess::Step event = churn.next(graph_.alive_count());
  if (!event.is_birth) {
    NodeId victim;
    if (event.victim == ChurnProcess::Victim::kAdversarial) {
      const DynamicGraphView view(graph_);
      victim = churn.select_victim(view);
      CHURNET_ASSERT(graph_.is_alive(victim));
    } else {
      CHURNET_ASSERT(event.victim == ChurnProcess::Victim::kScheduled);
      victim = event.victim_id;
    }
    report.died = victim;
    if (hooks_.on_death) hooks_.on_death(victim, event.time);
    graph_.remove_node(victim, removal_scratch_);
    if (config_.policy == EdgePolicy::kRegenerate) {
      detail::regenerate_requests(graph_, rng_, removal_scratch_.orphans,
                                  hooks_, event.time, limits);
    }
    churn.on_death(victim, event.time);
    event = churn.next(graph_.alive_count());
  }
  CHURNET_ASSERT(event.is_birth);

  const NodeId born = graph_.add_node(config_.d, event.time);
  detail::issue_initial_requests(graph_, rng_, born, hooks_, event.time,
                                 limits);
  churn.on_birth(born, event.time);
  if (hooks_.on_birth) hooks_.on_birth(born, event.time);

  report.round = churn_.round();
  report.born = born;
  return report;
}

void StreamingNetwork::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
}

void StreamingNetwork::run_until(double time) {
  CHURNET_EXPECTS(time >= now());
  while (now() < time) step();
}

void StreamingNetwork::run_growth_phase() {
  // Depth-guarded: records only when not already inside a make_warmed span.
  const telemetry::PhaseTimer span(telemetry::Phase::kGenesis);
  CHURNET_EXPECTS(churn_.round() == 0 && graph_.alive_count() == 0);
  const bool hooked = static_cast<bool>(hooks_.on_birth) ||
                      static_cast<bool>(hooks_.on_death) ||
                      static_cast<bool>(hooks_.on_edge_created);
  if (config_.max_in_degree != 0 || hooked ||
      graph_.change_feed() != nullptr) {
    // Bounded wiring interleaves draws with in-degree reads, hooks observe
    // per-edge order within the round, and an attached change feed records
    // per-edge deltas the bulk path cannot emit: all three need the exact
    // sequential round loop.
    run_rounds(config_.n);
    return;
  }

  // Phase 1 (serial): replay rounds 1..n exactly — churn bookkeeping,
  // births, and the wiring RNG draws — but only *record* each draw. During
  // pure growth round r the newborn takes slot r-1 (appended last in the
  // alive list, alive_slots_[i] == i), so random_alive_other over the r-1
  // other nodes is exactly rng.below(r-1) naming the target slot, never
  // entering the skip-the-owner branch; round 1 has no other node and
  // consumes no draw (the requests dangle). Tiling in wire_uniform_tiled
  // does not reorder draws, so the RNG stream here is byte-identical to
  // the sequential path's.
  const std::uint32_t n = config_.n;
  const std::uint32_t d = config_.d;
  std::vector<std::uint32_t> targets(static_cast<std::size_t>(n) * d,
                                     NodeId::kInvalidSlot);
  for (std::uint32_t r = 1; r <= n; ++r) {
    const ChurnProcess::Step event = churn_.next(graph_.alive_count());
    CHURNET_ASSERT(event.is_birth);  // pure growth: deaths need a full ring
    const NodeId born = graph_.add_node(d, event.time);
    CHURNET_ASSERT(born.slot == r - 1 && born.generation == 0);
    const std::uint32_t others = r - 1;
    if (others > 0 && d > 0) {
      std::uint32_t* row = targets.data() + static_cast<std::size_t>(r - 1) * d;
      for (std::uint32_t t = 0; t < d; ++t) {
        row[t] = static_cast<std::uint32_t>(rng_.below(others));
      }
    }
    churn_.on_birth(born, event.time);
  }

  // Phase 2: install the recorded edge list in cache-blocked bulk.
  graph_.bulk_wire_genesis(d, targets,
                           effective_intra_threads(config_.intra_threads));
  CHURNET_ENSURES(graph_.alive_count() == config_.n);
}

void StreamingNetwork::warm_up() {
  CHURNET_EXPECTS(churn_.round() == 0);
  run_growth_phase();
  run_rounds(config_.n);
  CHURNET_ENSURES(graph_.alive_count() == config_.n);
}

std::uint64_t StreamingNetwork::age(NodeId node) const {
  CHURNET_EXPECTS(graph_.is_alive(node));
  // The birth round is read back as an integer, not recovered from the
  // double timestamp: the streaming schedule births exactly one node per
  // round and round() counts births, so the node with global birth sequence
  // s was born in round s + 1. This stays exact past 2^53 rounds (where the
  // double birth_time would truncate) and is independent of the time model.
  return churn_.round() - (graph_.birth_seq(node) + 1);
}

}  // namespace churnet
