#include "models/streaming_network.hpp"

#include "models/wiring.hpp"

namespace churnet {

StreamingNetwork::StreamingNetwork(StreamingConfig config)
    : config_(config), churn_(config.n), rng_(config.seed) {
  CHURNET_EXPECTS(config.n >= 1);
  // The population is pinned at n, so warm-up fills every arena once and
  // the steady-state round loop never grows a pool.
  graph_.reserve(config.n, config.d);
}

StreamingNetwork::RoundReport StreamingNetwork::step() {
  // One round = the churn layer's event stream up to and including the
  // round's birth: an optional kScheduled death (the FIFO head, once the
  // network is full), then the birth. All churn decisions come through the
  // ChurnProcess interface; this function only realizes them on the graph.
  RoundReport report;
  ChurnProcess& churn = churn_;
  const WiringLimits limits{config_.max_in_degree, 8};

  ChurnProcess::Step event = churn.next(graph_.alive_count());
  if (!event.is_birth) {
    CHURNET_ASSERT(event.victim == ChurnProcess::Victim::kScheduled);
    const NodeId victim = event.victim_id;
    report.died = victim;
    if (hooks_.on_death) hooks_.on_death(victim, event.time);
    graph_.remove_node(victim, removal_scratch_);
    if (config_.policy == EdgePolicy::kRegenerate) {
      detail::regenerate_requests(graph_, rng_, removal_scratch_.orphans,
                                  hooks_, event.time, limits);
    }
    churn.on_death(victim, event.time);
    event = churn.next(graph_.alive_count());
  }
  CHURNET_ASSERT(event.is_birth);

  const NodeId born = graph_.add_node(config_.d, event.time);
  detail::issue_initial_requests(graph_, rng_, born, hooks_, event.time,
                                 limits);
  churn.on_birth(born, event.time);
  if (hooks_.on_birth) hooks_.on_birth(born, event.time);

  report.round = churn_.round();
  report.born = born;
  return report;
}

void StreamingNetwork::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
}

void StreamingNetwork::run_until(double time) {
  CHURNET_EXPECTS(time >= now());
  while (now() < time) step();
}

void StreamingNetwork::warm_up() {
  CHURNET_EXPECTS(churn_.round() == 0);
  run_rounds(2ull * config_.n);
  CHURNET_ENSURES(graph_.alive_count() == config_.n);
}

std::uint64_t StreamingNetwork::age(NodeId node) const {
  CHURNET_EXPECTS(graph_.is_alive(node));
  // The birth round is read back as an integer, not recovered from the
  // double timestamp: the streaming schedule births exactly one node per
  // round and round() counts births, so the node with global birth sequence
  // s was born in round s + 1. This stays exact past 2^53 rounds (where the
  // double birth_time would truncate) and is independent of the time model.
  return churn_.round() - (graph_.birth_seq(node) + 1);
}

}  // namespace churnet
