#include "models/streaming_network.hpp"

#include "models/wiring.hpp"

namespace churnet {

StreamingNetwork::StreamingNetwork(StreamingConfig config)
    : config_(config), churn_(config.n), rng_(config.seed) {
  CHURNET_EXPECTS(config.n >= 1);
}

StreamingNetwork::RoundReport StreamingNetwork::step() {
  RoundReport report;
  const std::optional<NodeId> victim = churn_.begin_round();
  const double time_of_round = static_cast<double>(churn_.round());

  const WiringLimits limits{config_.max_in_degree, 8};
  if (victim.has_value()) {
    report.died = victim;
    if (hooks_.on_death) hooks_.on_death(*victim, time_of_round);
    const std::vector<OutSlotRef> orphans = graph_.remove_node(*victim);
    if (config_.policy == EdgePolicy::kRegenerate) {
      detail::regenerate_requests(graph_, rng_, orphans, hooks_,
                                  time_of_round, limits);
    }
  }

  const NodeId born = graph_.add_node(config_.d, time_of_round);
  detail::issue_initial_requests(graph_, rng_, born, hooks_, time_of_round,
                                 limits);
  churn_.record_birth(born);
  if (hooks_.on_birth) hooks_.on_birth(born, time_of_round);

  report.round = churn_.round();
  report.born = born;
  return report;
}

void StreamingNetwork::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) step();
}

void StreamingNetwork::run_until(double time) {
  CHURNET_EXPECTS(time >= now());
  while (now() < time) step();
}

void StreamingNetwork::warm_up() {
  CHURNET_EXPECTS(churn_.round() == 0);
  run_rounds(2ull * config_.n);
  CHURNET_ENSURES(graph_.alive_count() == config_.n);
}

std::uint64_t StreamingNetwork::age(NodeId node) const {
  CHURNET_EXPECTS(graph_.is_alive(node));
  return churn_.round() - static_cast<std::uint64_t>(graph_.birth_time(node));
}

}  // namespace churnet
