// Edge-dynamics policy shared by the streaming and Poisson models, and the
// observer hooks through which processes (flooding, instrumentation)
// subscribe to topology changes.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/node_id.hpp"

namespace churnet {

/// Paper Definitions 3.4/4.9 (kNone) vs 3.13/4.14 (kRegenerate).
enum class EdgePolicy : std::uint8_t {
  kNone,        // edges are created only at birth and die with endpoints
  kRegenerate,  // an out-edge whose target dies is instantly redrawn
};

/// Observer callbacks invoked by the network models. All hooks are optional.
/// Hooks must not mutate the network from inside a callback.
struct NetworkHooks {
  /// After a node was born and its initial requests were wired.
  std::function<void(NodeId node, double time)> on_birth;
  /// Just before a dying node is detached from the graph.
  std::function<void(NodeId node, double time)> on_death;
  /// After an out-edge (owner's request `index`) was pointed at `target`.
  /// `regenerated` distinguishes birth-time wiring from regeneration.
  std::function<void(NodeId owner, std::uint32_t index, NodeId target,
                     bool regenerated, double time)>
      on_edge_created;
};

}  // namespace churnet
