// Shared request-wiring helpers used by both network models.
//
// A "request" is one of a node's d out-edge slots (paper terminology). A
// request picks its destination uniformly at random among the other alive
// nodes; if no other node is alive the slot stays dangling (documented in
// DESIGN.md, "Dangling requests").
#pragma once

#include <span>

#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

/// Bounded-degree extension (paper Section 5 open question): when
/// max_in_degree > 0, a request redraws its uniform target up to
/// `attempts` times while the candidate's in-degree is at the cap; if all
/// attempts hit full nodes the request stays dangling (retried at the next
/// regeneration trigger). max_in_degree == 0 reproduces the paper's
/// unbounded models exactly.
struct WiringLimits {
  std::uint32_t max_in_degree = 0;  // 0 = unlimited (paper models)
  std::uint32_t attempts = 8;      // redraws before giving up
};

}  // namespace churnet

namespace churnet::detail {

/// Draws a uniform random other node satisfying the in-degree cap;
/// invalid id if no acceptable target was found within the attempt budget.
inline NodeId draw_target(const DynamicGraph& graph, Rng& rng, NodeId owner,
                          const WiringLimits& limits) {
  if (limits.max_in_degree == 0) {
    return graph.random_alive_other(rng, owner);
  }
  for (std::uint32_t attempt = 0; attempt < limits.attempts; ++attempt) {
    const NodeId candidate = graph.random_alive_other(rng, owner);
    if (!candidate.valid()) return kInvalidNode;
    if (graph.in_degree(candidate) < limits.max_in_degree) return candidate;
  }
  return kInvalidNode;
}

/// Wires every dangling out-slot of `owner` to a uniform random other node.
inline void issue_initial_requests(DynamicGraph& graph, Rng& rng, NodeId owner,
                                   const NetworkHooks& hooks, double now,
                                   const WiringLimits& limits = {}) {
  const std::uint32_t slots = graph.out_slot_count(owner);
  for (std::uint32_t i = 0; i < slots; ++i) {
    const NodeId target = draw_target(graph, rng, owner, limits);
    if (!target.valid()) continue;  // no acceptable target: stays dangling
    graph.set_out_edge(owner, i, target);
    if (hooks.on_edge_created) {
      hooks.on_edge_created(owner, i, target, /*regenerated=*/false, now);
    }
  }
}

/// Redraws the orphaned out-slots reported by DynamicGraph::remove_node.
/// Under regeneration this also retries any other dangling slots of the
/// same owners (they can only exist in the bounded-degree extension).
inline void regenerate_requests(DynamicGraph& graph, Rng& rng,
                                std::span<const OutSlotRef> orphans,
                                const NetworkHooks& hooks, double now,
                                const WiringLimits& limits = {}) {
  for (const OutSlotRef& orphan : orphans) {
    const NodeId target = draw_target(graph, rng, orphan.owner, limits);
    if (!target.valid()) continue;
    graph.set_out_edge(orphan.owner, orphan.index, target);
    if (hooks.on_edge_created) {
      hooks.on_edge_created(orphan.owner, orphan.index, target,
                            /*regenerated=*/true, now);
    }
  }
  if (limits.max_in_degree == 0) return;
  for (const OutSlotRef& orphan : orphans) {
    const std::uint32_t slots = graph.out_slot_count(orphan.owner);
    for (std::uint32_t i = 0; i < slots; ++i) {
      if (graph.out_target(orphan.owner, i).valid()) continue;
      const NodeId target = draw_target(graph, rng, orphan.owner, limits);
      if (!target.valid()) break;
      graph.set_out_edge(orphan.owner, i, target);
      if (hooks.on_edge_created) {
        hooks.on_edge_created(orphan.owner, i, target,
                              /*regenerated=*/true, now);
      }
    }
  }
}

}  // namespace churnet::detail
