// Shared request-wiring helpers used by both network models.
//
// A "request" is one of a node's d out-edge slots (paper terminology). A
// request picks its destination uniformly at random among the other alive
// nodes; if no other node is alive the slot stays dangling (documented in
// DESIGN.md, "Dangling requests").
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

/// Bounded-degree extension (paper Section 5 open question): when
/// max_in_degree > 0, a request redraws its uniform target up to
/// `attempts` times while the candidate's in-degree is at the cap; if all
/// attempts hit full nodes the request stays dangling (retried at the next
/// regeneration trigger). max_in_degree == 0 reproduces the paper's
/// unbounded models exactly.
struct WiringLimits {
  std::uint32_t max_in_degree = 0;  // 0 = unlimited (paper models)
  std::uint32_t attempts = 8;      // redraws before giving up
};

/// Arena reservation hint for continuous-churn models: the stationary
/// population lambda/mu plus four standard deviations of headroom (the
/// M/G/inf stationary size is Poisson(lambda/mu)), so steady-state pool
/// growth is a rare tail event.
inline std::uint32_t stationary_reserve_hint(double lambda, double mu) {
  const double expected = lambda / mu;
  return static_cast<std::uint32_t>(expected + 4.0 * std::sqrt(expected) +
                                    8.0);
}

}  // namespace churnet

namespace churnet::detail {

/// Draws a uniform random other node satisfying the in-degree cap;
/// invalid id if no acceptable target was found within the attempt budget.
inline NodeId draw_target(const DynamicGraph& graph, Rng& rng, NodeId owner,
                          const WiringLimits& limits) {
  if (limits.max_in_degree == 0) {
    return graph.random_alive_other(rng, owner);
  }
  for (std::uint32_t attempt = 0; attempt < limits.attempts; ++attempt) {
    const NodeId candidate = graph.random_alive_other(rng, owner);
    if (!candidate.valid()) return kInvalidNode;
    if (graph.in_degree(candidate) < limits.max_in_degree) return candidate;
  }
  return kInvalidNode;
}

/// Tile width for the unbounded-mode wiring fast path below: draws are
/// issued a tile at a time so the per-target cache misses overlap. 16 slots
/// of stack scratch cover the common d in one tile.
inline constexpr std::uint32_t kWiringTile = 16;

/// Unbounded-mode wiring core shared by initial requests and regeneration:
/// wires slot_at(0..count-1) to uniform random other nodes, a tile at a
/// time. In unbounded mode a request's target depends only on the alive set
/// and the RNG stream, and wiring earlier requests changes neither, so a
/// tile's draws can all be issued (prefetching each target's in-list insert
/// position) before its edges are written: draw order, edge order and hook
/// order are identical to the one-at-a-time loop, batching only overlaps
/// the misses. `slot_at(i)` names the i-th out-slot to fill.
template <typename SlotAt>
inline void wire_uniform_tiled(DynamicGraph& graph, Rng& rng,
                               std::size_t count, const SlotAt& slot_at,
                               bool regenerated, const NetworkHooks& hooks,
                               double now) {
  NodeId targets[kWiringTile];
  for (std::size_t base = 0; base < count; base += kWiringTile) {
    const auto tile = static_cast<std::uint32_t>(
        std::min<std::size_t>(kWiringTile, count - base));
    for (std::uint32_t t = 0; t < tile; ++t) {
      targets[t] = graph.random_alive_other(rng, slot_at(base + t).owner);
      graph.prefetch_in_insert(targets[t]);
    }
    for (std::uint32_t t = 0; t < tile; ++t) {
      if (!targets[t].valid()) continue;  // no other node alive
      const OutSlotRef slot = slot_at(base + t);
      graph.set_out_edge(slot.owner, slot.index, targets[t]);
      if (hooks.on_edge_created) {
        hooks.on_edge_created(slot.owner, slot.index, targets[t],
                              regenerated, now);
      }
    }
  }
}

/// Wires every dangling out-slot of `owner` to a uniform random other node.
inline void issue_initial_requests(DynamicGraph& graph, Rng& rng, NodeId owner,
                                   const NetworkHooks& hooks, double now,
                                   const WiringLimits& limits = {}) {
  const std::uint32_t slots = graph.out_slot_count(owner);
  if (limits.max_in_degree == 0) {
    wire_uniform_tiled(
        graph, rng, slots,
        [owner](std::size_t i) {
          return OutSlotRef{owner, static_cast<std::uint32_t>(i)};
        },
        /*regenerated=*/false, hooks, now);
    return;
  }
  for (std::uint32_t i = 0; i < slots; ++i) {
    const NodeId target = draw_target(graph, rng, owner, limits);
    if (!target.valid()) continue;  // no acceptable target: stays dangling
    graph.set_out_edge(owner, i, target);
    if (hooks.on_edge_created) {
      hooks.on_edge_created(owner, i, target, /*regenerated=*/false, now);
    }
  }
}

/// Redraws the orphaned out-slots reported by DynamicGraph::remove_node
/// (callers pass their RemovalScratch's orphan buffer as the span).
/// Under regeneration this also retries any other dangling slots of the
/// same owners (they can only exist in the bounded-degree extension).
inline void regenerate_requests(DynamicGraph& graph, Rng& rng,
                                std::span<const OutSlotRef> orphans,
                                const NetworkHooks& hooks, double now,
                                const WiringLimits& limits = {}) {
  if (limits.max_in_degree == 0) {
    wire_uniform_tiled(
        graph, rng, orphans.size(),
        [orphans](std::size_t i) { return orphans[i]; },
        /*regenerated=*/true, hooks, now);
    return;
  }
  for (const OutSlotRef& orphan : orphans) {
    const NodeId target = draw_target(graph, rng, orphan.owner, limits);
    if (!target.valid()) continue;
    graph.set_out_edge(orphan.owner, orphan.index, target);
    if (hooks.on_edge_created) {
      hooks.on_edge_created(orphan.owner, orphan.index, target,
                            /*regenerated=*/true, now);
    }
  }
  for (const OutSlotRef& orphan : orphans) {
    const std::uint32_t slots = graph.out_slot_count(orphan.owner);
    for (std::uint32_t i = 0; i < slots; ++i) {
      if (graph.out_target(orphan.owner, i).valid()) continue;
      const NodeId target = draw_target(graph, rng, orphan.owner, limits);
      if (!target.valid()) break;
      graph.set_out_edge(orphan.owner, i, target);
      if (hooks.on_edge_created) {
        hooks.on_edge_created(orphan.owner, i, target,
                              /*regenerated=*/true, now);
      }
    }
  }
}

}  // namespace churnet::detail
