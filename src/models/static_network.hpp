// Churn-free baseline networks behind the DynamicNetwork interface.
//
// The paper's reference points — the static d-out graph (Lemma B.1) and
// Erdős–Rényi G(n, p) — wrapped as degenerate dynamic networks: the wiring
// is sampled once at construction and step()/run_until() only advance the
// clock. This lets the scenario engine and the generic flooding driver
// treat "no churn" as just another model instead of a special code path
// (flooding a StaticNetwork is synchronous flooding = BFS rounds).
#pragma once

#include <cstdint>

#include "common/assertx.hpp"
#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

struct StaticFloodSemantics;  // defined in flooding/flood_driver.hpp

struct StaticConfig {
  enum class Topology : std::uint8_t {
    kDOut,        // each node draws d uniform random other nodes (Lemma B.1)
    kErdosRenyi,  // G(n, p), each unordered pair independently with prob p
  };

  std::uint32_t n = 1000;
  std::uint32_t d = 8;  // out-requests per node (kDOut)
  Topology topology = Topology::kDOut;
  /// Edge probability for kErdosRenyi; 0 means "match the dynamic models'
  /// mean degree": p = 2d / n (a d-out node has expected total degree 2d).
  double p = 0.0;
  std::uint64_t seed = 1;
};

class StaticNetwork {
 public:
  /// Flooding on a frozen graph: BFS rounds, uniform random source.
  using flood_semantics = StaticFloodSemantics;

  explicit StaticNetwork(StaticConfig config);

  /// Advances the clock by one round. No churn: the topology is immutable.
  void step() { now_ += 1.0; }

  /// Advances the clock in whole rounds until now() >= time.
  void run_until(double time) {
    CHURNET_EXPECTS(time >= now_);
    while (now_ < time) step();
  }

  /// No-op: a static graph is born stationary.
  void warm_up() {}

  Snapshot snapshot() const { return Snapshot::capture(graph_, now_); }

  const DynamicGraph& graph() const { return graph_; }
  double now() const { return now_; }
  const StaticConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  /// Hooks are accepted for interface parity but never fire (no churn).
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

  /// Attaches a caller-owned change feed to the underlying graph so every
  /// churn mutation records a GraphDelta (graph/change_feed.hpp);
  /// nullptr detaches.
  void attach_change_feed(ChangeFeed* feed) {
    graph_.attach_change_feed(feed);
  }

 private:
  StaticConfig config_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
  double now_ = 0.0;
};

}  // namespace churnet
