// The unified dynamic-network model interface (DESIGN.md, decision 7).
//
// Every network model — streaming (SDG/SDGR), Poisson (PDG/PDGR), the
// churn-free static baselines — exposes the same surface, captured by the
// DynamicNetwork concept: advance one churn step, run to a model time,
// warm up to stationarity, observe the alive graph, capture snapshots,
// install hooks, and access the model's RNG. Processes and the experiment
// engine are written once against this concept instead of per model.
//
// AnyNetwork type-erases the concept for runtime scenario selection (the
// ScenarioRegistry hands out AnyNetwork instances chosen by name). It also
// carries the model's flooding semantics, so `AnyNetwork::flood` runs the
// generic frontier driver on whatever model is inside. The observation
// pipeline (observe/pipeline.hpp) drives this same surface — step() for
// window rounds, snapshot() for the shared snapshot, flood()/disseminate()
// for coverage observers — so metric observers attach to every model,
// current and future, without per-model code.
#pragma once

#include <concepts>
#include <memory>
#include <utility>

#include "common/assertx.hpp"
#include "common/rng.hpp"
#include "flooding/flood_driver.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/edge_policy.hpp"
#include "protocols/dissemination.hpp"

namespace churnet {

/// A dynamic network model: churn steps, run-to-time, warm-up, alive-graph
/// access, snapshots, observer hooks, and a per-model RNG stream.
///
/// `step()` executes the model's smallest churn unit (a streaming round, a
/// Poisson event); its return value is model-specific and not part of the
/// concept. `run_until(t)` advances model time to (at least) t; for
/// discrete models, t is a round count.
template <typename Net>
concept DynamicNetwork = requires(Net& net, const Net& cnet, double time,
                                  NetworkHooks hooks, ChangeFeed* feed) {
  net.step();
  net.run_until(time);
  net.warm_up();
  net.set_hooks(std::move(hooks));
  net.attach_change_feed(feed);
  { net.rng() } -> std::same_as<Rng&>;
  { cnet.graph() } -> std::same_as<const DynamicGraph&>;
  { cnet.now() } -> std::convertible_to<double>;
  { cnet.snapshot() } -> std::same_as<Snapshot>;
};

/// A DynamicNetwork that additionally declares flooding semantics for the
/// generic driver (flooding/flood_driver.hpp) — what AnyNetwork can wrap.
template <typename Net>
concept FloodableNetwork =
    DynamicNetwork<Net> && requires { typename Net::flood_semantics; };

/// Type-erased dynamic network for runtime scenario selection.
///
/// Owns the wrapped model. Satisfies DynamicNetwork itself, so generic code
/// written against the concept runs unchanged on an AnyNetwork; flooding
/// goes through `flood()`, which dispatches to the generic driver under the
/// wrapped model's semantics.
class AnyNetwork {
 public:
  AnyNetwork() = default;

  template <FloodableNetwork Net>
  explicit AnyNetwork(Net net)
      : impl_(std::make_unique<Model<Net>>(std::move(net))) {}

  /// True when a model is wrapped (default-constructed is empty).
  bool valid() const { return impl_ != nullptr; }

  void step() { checked().step(); }
  void run_until(double time) { checked().run_until(time); }
  void warm_up() { checked().warm_up(); }
  void set_hooks(NetworkHooks hooks) { checked().set_hooks(std::move(hooks)); }
  void attach_change_feed(ChangeFeed* feed) {
    checked().attach_change_feed(feed);
  }
  Rng& rng() { return checked().rng(); }
  const DynamicGraph& graph() const { return checked().graph(); }
  double now() const { return checked().now(); }
  Snapshot snapshot() const { return checked().snapshot(); }

  /// Runs the wrapped model's flooding process via the generic driver.
  FloodTrace flood(const FloodOptions& options, FloodScratch& scratch) {
    return checked().flood(options, scratch);
  }
  FloodTrace flood(const FloodOptions& options = {}) {
    FloodScratch scratch;
    return flood(options, scratch);
  }

  /// Runs `protocol` on the wrapped model via the generic dissemination
  /// driver, under the model's own flood semantics (protocols/).
  ProtocolResult disseminate(DisseminationProtocol& protocol,
                             const ProtocolOptions& options,
                             ProtocolScratch& scratch) {
    return checked().disseminate(protocol, options, scratch);
  }
  ProtocolResult disseminate(DisseminationProtocol& protocol,
                             const ProtocolOptions& options = {}) {
    ProtocolScratch scratch;
    return disseminate(protocol, options, scratch);
  }

  /// Typed access to the wrapped model; nullptr on a type mismatch.
  template <typename Net>
  Net* get_if() {
    auto* model = dynamic_cast<Model<Net>*>(impl_.get());
    return model != nullptr ? &model->net : nullptr;
  }
  template <typename Net>
  const Net* get_if() const {
    const auto* model = dynamic_cast<const Model<Net>*>(impl_.get());
    return model != nullptr ? &model->net : nullptr;
  }

 private:
  struct Interface {
    virtual ~Interface() = default;
    virtual void step() = 0;
    virtual void run_until(double time) = 0;
    virtual void warm_up() = 0;
    virtual void set_hooks(NetworkHooks hooks) = 0;
    virtual void attach_change_feed(ChangeFeed* feed) = 0;
    virtual Rng& rng() = 0;
    virtual const DynamicGraph& graph() const = 0;
    virtual double now() const = 0;
    virtual Snapshot snapshot() const = 0;
    virtual FloodTrace flood(const FloodOptions& options,
                             FloodScratch& scratch) = 0;
    virtual ProtocolResult disseminate(DisseminationProtocol& protocol,
                                       const ProtocolOptions& options,
                                       ProtocolScratch& scratch) = 0;
  };

  template <typename Net>
  struct Model final : Interface {
    explicit Model(Net model) : net(std::move(model)) {}
    void step() override { net.step(); }
    void run_until(double time) override { net.run_until(time); }
    void warm_up() override { net.warm_up(); }
    void set_hooks(NetworkHooks hooks) override {
      net.set_hooks(std::move(hooks));
    }
    void attach_change_feed(ChangeFeed* feed) override {
      net.attach_change_feed(feed);
    }
    Rng& rng() override { return net.rng(); }
    const DynamicGraph& graph() const override { return net.graph(); }
    double now() const override { return net.now(); }
    Snapshot snapshot() const override { return net.snapshot(); }
    FloodTrace flood(const FloodOptions& options,
                     FloodScratch& scratch) override {
      return flood_dynamic(net, options, scratch);
    }
    ProtocolResult disseminate(DisseminationProtocol& protocol,
                               const ProtocolOptions& options,
                               ProtocolScratch& scratch) override {
      return disseminate_dynamic(net, protocol, options, scratch);
    }

    Net net;
  };

  Interface& checked() {
    CHURNET_EXPECTS(impl_ != nullptr);
    return *impl_;
  }
  const Interface& checked() const {
    CHURNET_EXPECTS(impl_ != nullptr);
    return *impl_;
  }

  std::unique_ptr<Interface> impl_;
};

static_assert(DynamicNetwork<AnyNetwork>,
              "AnyNetwork must itself satisfy the concept it erases");

}  // namespace churnet
