// Continuous-time dynamic graphs: PDG (paper Definition 4.9) and PDGR
// (Definition 4.14), selected by EdgePolicy — plus every continuous churn
// regime of the pluggable churn layer (heavy-tailed lifetimes, bursty
// on/off phases, growth/decline drifts).
//
// Demography is a ChurnProcess (churn/churn_process.hpp) named by the
// config's ChurnSpec; the default "poisson" spec is the exact jump chain of
// Lemma 4.6 (see churn/poisson_churn.hpp) and reproduces the paper's models
// bit-for-bit. On a birth the newborn issues d requests to uniform random
// existing nodes; on a death the victim is either drawn uniformly among the
// alive nodes (kUniform events — the memoryless regimes) or named by the
// process (kScheduled events — lifetime-expiry regimes), and, under
// EdgePolicy::kRegenerate, every surviving node that lost an out-edge
// instantly redraws it.
#pragma once

#include <cstdint>
#include <memory>

#include "churn/churn_process.hpp"
#include "churn/churn_spec.hpp"
#include "churn/poisson_churn.hpp"
#include "common/rng.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/edge_policy.hpp"

namespace churnet {

struct DiscretizedFloodSemantics;  // defined in flooding/flood_driver.hpp

struct PoissonConfig {
  double lambda = 1.0;  // birth rate (paper convention: 1)
  double mu = 1e-3;     // per-node death rate (paper convention: 1/n)
  std::uint32_t d = 8;  // requests per node
  EdgePolicy policy = EdgePolicy::kNone;
  std::uint64_t seed = 1;
  /// Bounded-degree extension (paper Section 5 open question): cap on
  /// in-degrees, enforced by redrawing requests. 0 = unlimited (the paper's
  /// models). See WiringLimits in models/wiring.hpp.
  std::uint32_t max_in_degree = 0;
  /// Which continuous churn regime drives demography; the default
  /// (Kind::kJumpChain, spec "poisson") is the paper's exact process.
  /// lambda and mu parameterize whichever regime is named.
  ChurnSpec churn{};

  /// Paper parameterization: lambda = 1, mu = 1/n.
  static PoissonConfig with_n(std::uint32_t n, std::uint32_t d,
                              EdgePolicy policy, std::uint64_t seed);

  /// Expected stationary size lambda/mu.
  double expected_size() const { return lambda / mu; }
};

class PoissonNetwork {
 public:
  /// Flooding semantics under the generic driver (paper Def. 4.3).
  using flood_semantics = DiscretizedFloodSemantics;

  explicit PoissonNetwork(PoissonConfig config);

  /// One churn event (paper Definition 4.5: one "round" T_r).
  struct EventReport {
    ChurnEvent::Kind kind = ChurnEvent::Kind::kBirth;
    double time = 0.0;
    NodeId node;  // the node born or died
  };

  /// Executes the next churn event.
  EventReport step();

  /// Executes `events` churn events.
  void run_events(std::uint64_t events);

  /// Absolute time of the next churn event without executing it (the event
  /// is sampled once and cached; the following step() executes exactly it).
  double peek_next_event_time();

  /// Runs until continuous time strictly exceeds `time` (the event that
  /// crosses `time` is NOT executed; the clock parks exactly at `time`).
  void run_until(double time);

  /// Runs for `multiple` expected lifetimes (default 10/mu), enough for the
  /// size and age profile to reach stationarity (Lemma 4.4 uses t >= 3n).
  void warm_up(double multiple = 10.0);

  /// Age (continuous) of an alive node at the current clock.
  double age(NodeId node) const;

  Snapshot snapshot() const { return Snapshot::capture(graph_, now()); }

  const DynamicGraph& graph() const { return graph_; }
  /// Current clock: time of the last executed event, or the `run_until`
  /// barrier if that is later.
  double now() const { return now_; }
  /// Churn events sampled so far (paper: "rounds" T_r, Definition 4.5).
  std::uint64_t event_count() const { return events_; }
  const PoissonConfig& config() const { return config_; }
  /// The demography driving this network.
  const ChurnProcess& churn() const { return *churn_; }
  Rng& rng() { return rng_; }

  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

  /// Attaches a caller-owned change feed to the underlying graph so every
  /// churn mutation records a GraphDelta (graph/change_feed.hpp);
  /// nullptr detaches.
  void attach_change_feed(ChangeFeed* feed) {
    graph_.attach_change_feed(feed);
  }

 private:
  EventReport apply(const ChurnProcess::Step& event);
  /// Samples (and counts) the next event into pending_.
  void sample_pending();

  PoissonConfig config_;
  std::unique_ptr<ChurnProcess> churn_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
  RemovalScratch removal_scratch_;  // reused across events; zero-alloc deaths
  double now_ = 0.0;
  std::uint64_t events_ = 0;
  bool pending_valid_ = false;
  ChurnProcess::Step pending_{};  // sampled but not yet executed
};

}  // namespace churnet
