// GraphReadView adapter over the live DynamicGraph: the read-only window
// the network drivers hand to adversarial churn processes at
// victim-selection time (churn/churn_process.hpp documents the contract;
// DESIGN.md decision 18 the layering: graph < churn < models, so the
// adapter lives model-side to keep the churn layer graph-agnostic).
//
// Construction is free (a reference wrap); drivers build one on the stack
// per adversarial death.
#pragma once

#include <cstdint>
#include <vector>

#include "churn/churn_process.hpp"
#include "graph/dynamic_graph.hpp"

namespace churnet {

class DynamicGraphView final : public GraphReadView {
 public:
  explicit DynamicGraphView(const DynamicGraph& graph) : graph_(graph) {}

  std::uint64_t alive_count() const override { return graph_.alive_count(); }

  std::uint32_t slot_upper_bound() const override {
    return graph_.slot_upper_bound();
  }

  NodeId alive_at(std::uint32_t slot) const override {
    return graph_.slot_alive(slot) ? graph_.alive_id_at(slot) : kInvalidNode;
  }

  std::uint32_t degree(NodeId node) const override {
    return graph_.degree(node);
  }

  void append_neighbors(NodeId node, std::vector<NodeId>& out) const override {
    graph_.append_neighbors(node, out);
  }

 private:
  const DynamicGraph& graph_;
};

}  // namespace churnet
