// Umbrella header for the churnet library.
//
// churnet reproduces "Expansion and Flooding in Dynamic Random Networks
// with Node Churn" (Becchetti, Clementi, Pasquale, Trevisan, Ziccardi;
// ICDCS 2021): the four dynamic random graph models (streaming / Poisson
// churn, with / without edge regeneration), the flooding processes studied
// on them, vertex-expansion measurement, the static baselines, and a
// Bitcoin-like P2P overlay grounding the paper's motivation.
//
// Subsystem headers can also be included individually; see DESIGN.md for
// the architecture map.
#pragma once

#include "baselines/erdos_renyi.hpp"       // IWYU pragma: export
#include "baselines/static_dout.hpp"       // IWYU pragma: export
#include "baselines/walk_overlay.hpp"      // IWYU pragma: export
#include "benchutil/coverage_curve.hpp"    // IWYU pragma: export
#include "benchutil/experiment.hpp"        // IWYU pragma: export
#include "churn/churn_process.hpp"         // IWYU pragma: export
#include "churn/churn_spec.hpp"            // IWYU pragma: export
#include "churn/lifetime_churn.hpp"        // IWYU pragma: export
#include "churn/phased_churn.hpp"          // IWYU pragma: export
#include "churn/poisson_churn.hpp"         // IWYU pragma: export
#include "churn/streaming_churn.hpp"       // IWYU pragma: export
#include "common/cli.hpp"                  // IWYU pragma: export
#include "common/histogram.hpp"            // IWYU pragma: export
#include "common/json.hpp"                 // IWYU pragma: export
#include "common/mathx.hpp"                // IWYU pragma: export
#include "common/rng.hpp"                  // IWYU pragma: export
#include "common/specgram.hpp"             // IWYU pragma: export
#include "common/stats.hpp"                // IWYU pragma: export
#include "common/table.hpp"                // IWYU pragma: export
#include "engine/result_stream.hpp"        // IWYU pragma: export
#include "engine/scenario.hpp"             // IWYU pragma: export
#include "engine/spec_catalog.hpp"         // IWYU pragma: export
#include "engine/sweep_journal.hpp"        // IWYU pragma: export
#include "engine/sweep_runner.hpp"         // IWYU pragma: export
#include "engine/sweep_service.hpp"        // IWYU pragma: export
#include "engine/trial_runner.hpp"         // IWYU pragma: export
#include "expansion/expansion.hpp"         // IWYU pragma: export
#include "expansion/isolated.hpp"          // IWYU pragma: export
#include "expansion/spectral.hpp"          // IWYU pragma: export
#include "flooding/async_flooding.hpp"     // IWYU pragma: export
#include "flooding/flood_driver.hpp"       // IWYU pragma: export
#include "flooding/flooding.hpp"           // IWYU pragma: export
#include "flooding/onion_skin.hpp"         // IWYU pragma: export
#include "graph/algorithms.hpp"            // IWYU pragma: export
#include "graph/dynamic_graph.hpp"         // IWYU pragma: export
#include "graph/snapshot.hpp"              // IWYU pragma: export
#include "models/network.hpp"              // IWYU pragma: export
#include "models/poisson_network.hpp"      // IWYU pragma: export
#include "models/static_network.hpp"       // IWYU pragma: export
#include "models/streaming_network.hpp"    // IWYU pragma: export
#include "observe/observer.hpp"            // IWYU pragma: export
#include "observe/observer_spec.hpp"       // IWYU pragma: export
#include "observe/observers.hpp"           // IWYU pragma: export
#include "observe/pipeline.hpp"            // IWYU pragma: export
#include "p2p/p2p_network.hpp"             // IWYU pragma: export
#include "protocols/dissemination.hpp"     // IWYU pragma: export
#include "protocols/gossip.hpp"            // IWYU pragma: export
#include "protocols/protocol.hpp"          // IWYU pragma: export
#include "protocols/protocol_spec.hpp"     // IWYU pragma: export
#include "telemetry/telemetry.hpp"         // IWYU pragma: export
#include "telemetry/trace_sink.hpp"        // IWYU pragma: export
