// Expansion explorer: measure vertex-expansion probes across all four
// paper models and the static baselines, at a configurable scale.
//
//   ./expansion_explorer [--n 8000] [--d 8] [--seed 31]
//
// Prints, per topology: isolated nodes, largest-component coverage, the
// minimum boundary/|S| ratio found by the adversarial probe families, and
// which family found it. This makes the paper's Table-1 expansion column
// tangible: SDG/PDG fail expansion outright (isolated nodes -> ratio 0)
// while SDGR/PDGR look like static random graphs.
#include <cstdio>
#include <iostream>

#include "churnet/churnet.hpp"

namespace {

struct Row {
  std::string name;
  churnet::Snapshot snapshot;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace churnet;

  Cli cli("expansion_explorer: expansion probes across models");
  cli.add_int("n", 8000, "network size / expected size");
  cli.add_int("d", 8, "out-requests per node");
  cli.add_int("seed", 31, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto d = static_cast<std::uint32_t>(cli.get_int("d"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::vector<Row> rows;

  {
    StreamingConfig config{n, d, EdgePolicy::kNone, seed};
    StreamingNetwork net(config);
    net.warm_up();
    net.run_rounds(n);
    rows.push_back({"SDG  (streaming, no regen)", net.snapshot()});
  }
  {
    StreamingConfig config{n, d, EdgePolicy::kRegenerate, seed + 1};
    StreamingNetwork net(config);
    net.warm_up();
    net.run_rounds(n);
    rows.push_back({"SDGR (streaming, regen)", net.snapshot()});
  }
  {
    PoissonNetwork net(
        PoissonConfig::with_n(n, d, EdgePolicy::kNone, seed + 2));
    net.warm_up();
    rows.push_back({"PDG  (poisson, no regen)", net.snapshot()});
  }
  {
    PoissonNetwork net(
        PoissonConfig::with_n(n, d, EdgePolicy::kRegenerate, seed + 3));
    net.warm_up();
    rows.push_back({"PDGR (poisson, regen)", net.snapshot()});
  }
  {
    Rng rng(seed + 4);
    rows.push_back({"static d-out (Lemma B.1)",
                    static_dout_snapshot(n, d, rng)});
  }
  {
    Rng rng(seed + 5);
    rows.push_back({"Erdos-Renyi (same mean degree)",
                    erdos_renyi_snapshot(
                        n, 2.0 * d / static_cast<double>(n), rng)});
  }

  Table table({"model", "nodes", "isolated", "giant comp", "min ratio",
               "worst family", "worst |S|"});
  Rng probe_rng(seed + 100);
  for (const Row& row : rows) {
    const IsolatedCensus census = isolated_census(row.snapshot);
    const Components comps = connected_components(row.snapshot);
    const ProbeResult probe = probe_expansion(row.snapshot, probe_rng, {});
    table.add_row(
        {row.name, fmt_int(row.snapshot.node_count()),
         fmt_int(static_cast<std::int64_t>(census.isolated_nodes)),
         fmt_percent(static_cast<double>(comps.largest_size) /
                     static_cast<double>(row.snapshot.node_count())),
         fmt_fixed(probe.min_ratio, 3), probe.argmin_family,
         fmt_int(probe.argmin_size)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: 'min ratio' is an upper bound on h_out from adversarial\n"
      "probes (random sets, BFS balls, age prefixes, greedy growth). The\n"
      "regenerating models clear the paper's epsilon = 0.1 line; the\n"
      "non-regenerating ones are pinned at 0 by isolated old nodes.\n");
  return 0;
}
