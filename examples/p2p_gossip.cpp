// Block propagation in a Bitcoin-like overlay vs the paper's idealized
// PDGR model.
//
//   ./p2p_gossip [--n 5000] [--blocks 20] [--seed 11]
//
// The paper motivates the PDGR model as an idealization of unstructured
// P2P networks (Sections 1.1, 5): real nodes cannot dial "a uniform random
// live node" — they dial addresses from a gossip-maintained local table
// that may be stale. This example quantifies the gap: it builds both
// networks at the same scale and degree budget, "mines" a series of blocks
// at random nodes, and compares propagation latency and reach.
#include <cstdio>
#include <iostream>
#include <vector>

#include "churnet/churnet.hpp"

int main(int argc, char** argv) {
  using namespace churnet;

  Cli cli("p2p_gossip: block propagation, engineered overlay vs PDGR ideal");
  cli.add_int("n", 5000, "expected network size");
  cli.add_int("blocks", 20, "blocks to propagate");
  cli.add_int("seed", 11, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto blocks = static_cast<int>(cli.get_int("blocks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // The engineered overlay: DNS-seed bootstrap, address gossip, redial on
  // neighbor loss, bounded in-degree.
  P2pConfig p2p_config = P2pConfig::with_n(n, seed);
  P2pNetwork overlay(p2p_config);
  std::printf("warming up the P2P overlay (n=%u, target_out=%u)...\n", n,
              p2p_config.target_out);
  overlay.warm_up();

  // The idealized PDGR at the same degree budget.
  PoissonNetwork ideal(PoissonConfig::with_n(
      n, p2p_config.target_out, EdgePolicy::kRegenerate, seed + 1));
  std::printf("warming up the idealized PDGR...\n");
  ideal.warm_up();

  std::printf("\noverlay health: %llu successful dials, %llu failed "
              "(stale/full), %.1f%% of table entries stale, %llu dangling "
              "slots\n\n",
              static_cast<unsigned long long>(overlay.successful_dials()),
              static_cast<unsigned long long>(overlay.failed_dials()),
              100.0 * overlay.mean_table_staleness(),
              static_cast<unsigned long long>(overlay.dangling_out_slots()));

  Table table({"block", "overlay time", "overlay reach", "ideal time",
               "ideal reach"});
  OnlineStats overlay_times;
  OnlineStats ideal_times;
  AsyncFloodOptions options;
  options.max_time = 200.0;
  options.stop_at_fraction = 0.99;  // "effectively everyone has the block"

  for (int block = 0; block < blocks; ++block) {
    // A miner is a random live node; measure time to reach 99% of nodes.
    const NodeId overlay_miner = overlay.graph().random_alive(overlay.rng());
    const AsyncFloodResult overlay_result =
        flood_async_from(overlay, overlay_miner, options);
    const bool overlay_reached = overlay_result.final_fraction >= 0.99;

    const NodeId ideal_miner = ideal.graph().random_alive(ideal.rng());
    const AsyncFloodResult ideal_result =
        flood_async_from(ideal, ideal_miner, options);
    const bool ideal_reached = ideal_result.final_fraction >= 0.99;

    table.add_row({fmt_int(block),
                   overlay_reached ? fmt_fixed(overlay_result.elapsed, 2)
                                   : ">" + fmt_fixed(options.max_time, 0),
                   fmt_percent(overlay_result.final_fraction),
                   ideal_reached ? fmt_fixed(ideal_result.elapsed, 2)
                                 : ">" + fmt_fixed(options.max_time, 0),
                   fmt_percent(ideal_result.final_fraction)});
    if (overlay_reached) overlay_times.add(overlay_result.elapsed);
    if (ideal_reached) ideal_times.add(ideal_result.elapsed);
    // Let the networks churn between blocks (~inter-block spacing).
    overlay.run_until(overlay.now() + 50.0);
    ideal.run_until(ideal.now() + 50.0);
  }
  table.print(std::cout);

  if (overlay_times.count() > 0 && ideal_times.count() > 0) {
    std::printf("\nmean time to 99%% reach: overlay %.2f vs ideal %.2f "
                "(x%.2f overhead from table staleness and bounded "
                "in-degree)\n",
                overlay_times.mean(), ideal_times.mean(),
                overlay_times.mean() / ideal_times.mean());
  }
  return 0;
}
