// Churn resilience: how small can the degree budget d be before gossip
// stops surviving churn?
//
//   ./churn_resilience [--n 4000] [--reps 8] [--seed 23]
//
// The paper's answer (Table 1): without edge regeneration a flood dies
// early with probability Omega_d(1) and a constant fraction of nodes is
// permanently isolated, so coverage saturates at 1 - exp(-Omega(d));
// with regeneration the network is an expander at any fixed d >= O(1) and
// every flood completes. This example sweeps d for both Poisson policies
// and reports die-out rate, coverage, and completions within an O(log n)
// budget -- the paper's qualitative table as one printed sweep.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "churnet/churnet.hpp"

int main(int argc, char** argv) {
  using namespace churnet;

  Cli cli("churn_resilience: flood survival vs degree budget d");
  cli.add_int("n", 4000, "expected network size");
  cli.add_int("reps", 8, "replications per configuration");
  cli.add_int("seed", 23, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto reps = static_cast<std::uint64_t>(cli.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::uint32_t degrees[] = {1, 2, 3, 4, 6, 8, 12};

  Table table({"d", "policy", "die-out", "coverage", "isolated",
               "completed"});
  for (const std::uint32_t d : degrees) {
    for (const EdgePolicy policy :
         {EdgePolicy::kNone, EdgePolicy::kRegenerate}) {
      OnlineStats coverage;
      OnlineStats isolated;
      int die_outs = 0;
      int completions = 0;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        PoissonNetwork net(PoissonConfig::with_n(
            n, d, policy,
            derive_seed(seed,
                        d * 2 + (policy == EdgePolicy::kRegenerate ? 1 : 0),
                        rep)));
        net.warm_up(8.0);
        isolated.add(isolated_census(net.snapshot()).fraction);
        FloodOptions options;
        options.max_steps = static_cast<std::uint64_t>(
            8.0 * std::log2(static_cast<double>(n)));
        const FloodTrace trace = flood_poisson_discretized(net, options);
        coverage.add(trace.final_fraction);
        die_outs += trace.died_out ? 1 : 0;
        completions += trace.completed ? 1 : 0;
      }
      table.add_row({fmt_int(d),
                     policy == EdgePolicy::kRegenerate ? "regen" : "none",
                     fmt_int(die_outs) + "/" +
                         fmt_int(static_cast<std::int64_t>(reps)),
                     fmt_percent(coverage.mean()),
                     fmt_percent(isolated.mean(), 2),
                     fmt_int(completions) + "/" +
                         fmt_int(static_cast<std::int64_t>(reps))});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nreading: at d = 1..2 the no-regeneration flood regularly dies out\n"
      "(Theorem 4.12) and a visible fraction of nodes sits isolated\n"
      "(Lemma 4.10); coverage climbs toward 1 like 1 - exp(-Omega(d))\n"
      "(Theorem 4.13) but completion stays rare. With regeneration the\n"
      "isolated fraction is zero and floods complete once d clears a small\n"
      "constant (Theorem 4.20).\n");
  return 0;
}
