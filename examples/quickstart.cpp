// Quickstart: pick a paper model from the scenario registry by name, flood
// a message from a newborn node, and replicate the experiment across a
// thread pool — the five-minute tour of the engine-era public API.
//
//   ./quickstart [--scenario PDGR] [--n 10000] [--d 8] [--seed 7]
//                [--reps 8] [--threads 2]
//
// Flow: select a Scenario, build a warmed AnyNetwork, snapshot it, run a
// process, then hand the whole experiment to the TrialRunner for
// replicated, seed-decorrelated, parallel statistics.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "churnet/churnet.hpp"

int main(int argc, char** argv) {
  using namespace churnet;

  Cli cli("quickstart: flood a message through a churning random network");
  cli.add_string("scenario",
                 "PDGR", "model to run: SDG, SDGR, PDG, PDGR, static-dout, "
                 "erdos-renyi");
  cli.add_int("n", 10000, "target network size");
  cli.add_int("d", 8, "out-requests per node");
  cli.add_int("seed", 7, "random seed");
  cli.add_int("reps", 8, "replications for the summary table");
  cli.add_int("threads", 2, "worker threads for the replications");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto d = static_cast<std::uint32_t>(cli.get_int("d"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // 1. Runtime model selection: every (model x edge-policy) configuration
  // the paper studies is one named Scenario in the registry.
  const Scenario& scenario =
      ScenarioRegistry::paper().at(cli.get_string("scenario"));
  std::printf("scenario %s: %s\n", scenario.name().c_str(),
              scenario.description().c_str());

  ScenarioParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  std::printf("warming up (n=%u, d=%u)...\n", n, d);
  AnyNetwork net = scenario.make_warmed(params);

  // 2. Inspect a snapshot: sizes, degrees, connectivity.
  const Snapshot snap = net.snapshot();
  const DegreeStats degrees = degree_stats(snap);
  const Components components = connected_components(snap);
  std::printf("snapshot: %u nodes, %llu edges, mean degree %.2f "
              "(min %u, max %u), %u isolated\n",
              snap.node_count(),
              static_cast<unsigned long long>(snap.edge_count()),
              degrees.mean, degrees.min, degrees.max, degrees.isolated);
  std::printf("largest component: %u of %u nodes\n", components.largest_size,
              snap.node_count());

  // Probe the vertex expansion (upper bound; Theorem 4.16 says >= 0.1).
  Rng probe_rng(seed + 1);
  const ProbeResult probe = probe_expansion(snap, probe_rng, {});
  std::printf("expansion probe: min |bd(S)|/|S| = %.3f over %llu candidate "
              "sets (worst: %s, |S|=%u)\n",
              probe.min_ratio,
              static_cast<unsigned long long>(probe.sets_probed),
              probe.argmin_family.c_str(), probe.argmin_size);

  // 3. Flood from the next newborn under the model's own semantics
  // (synchronous Def. 3.3, discretized Def. 4.3, or BFS on a baseline).
  const FloodTrace trace = net.flood();
  if (trace.completed) {
    std::printf("flooding completed in %llu steps (alive: %llu)\n",
                static_cast<unsigned long long>(trace.completion_step),
                static_cast<unsigned long long>(trace.alive_per_step.back()));
  } else {
    std::printf("flooding stopped after %llu steps at %.1f%% coverage\n",
                static_cast<unsigned long long>(trace.steps),
                100.0 * trace.final_fraction);
  }
  std::printf("per-step informed counts:");
  for (const std::uint64_t count : trace.informed_per_step) {
    std::printf(" %llu", static_cast<unsigned long long>(count));
  }
  std::printf("\n");

  // 4. Replicate: the TrialRunner reruns the experiment under decorrelated
  // seeds (derive_seed(base, stream, replication)) across a thread pool;
  // the statistics are identical at any --threads.
  TrialRunnerOptions options;
  options.replications = static_cast<std::uint64_t>(cli.get_int("reps"));
  options.threads = static_cast<unsigned>(cli.get_int("threads"));
  options.base_seed = seed;
  options.stream = 1;
  const TrialResult result = TrialRunner(options).run(
      {"completion_step", "final_fraction"},
      [&scenario, &params](const TrialContext& ctx) {
        ScenarioParams rep_params = params;
        rep_params.seed = ctx.seed;  // the only seed a replication uses
        AnyNetwork rep_net = scenario.make_warmed(rep_params);
        thread_local FloodScratch scratch;  // zero allocation after trial 1
        const FloodTrace rep_trace = rep_net.flood({}, scratch);
        return std::vector<double>{
            rep_trace.completed
                ? static_cast<double>(rep_trace.completion_step)
                : std::nan(""),
            rep_trace.final_fraction};
      });
  std::printf("\n%llu replications on %u thread(s) in %.2fs:\n",
              static_cast<unsigned long long>(result.replications()),
              result.threads_used(), result.wall_seconds());
  result.to_table().print(std::cout);
  return 0;
}
