// Quickstart: build a Poisson dynamic graph with edge regeneration (the
// paper's most realistic model), flood a message from a newborn node, and
// print what happened.
//
//   ./quickstart [--n 10000] [--d 8] [--seed 7]
//
// This is the five-minute tour of the public API: configure a model, warm
// it up, snapshot it, run a process, read the results.
#include <cstdio>

#include "churnet/churnet.hpp"

int main(int argc, char** argv) {
  using namespace churnet;

  Cli cli("quickstart: flood a message through a churning random network");
  cli.add_int("n", 10000, "expected network size (lambda=1, mu=1/n)");
  cli.add_int("d", 8, "out-requests per node");
  cli.add_int("seed", 7, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto d = static_cast<std::uint32_t>(cli.get_int("d"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // A Poisson dynamic graph with edge regeneration (PDGR, paper Def. 4.14):
  // nodes arrive at rate 1, live Exp(1/n), keep out-degree d by redialing
  // whenever a neighbor departs.
  PoissonNetwork net(
      PoissonConfig::with_n(n, d, EdgePolicy::kRegenerate, seed));
  std::printf("warming up a PDGR network (n=%u, d=%u)...\n", n, d);
  net.warm_up();  // ~10 expected lifetimes

  // Inspect a snapshot: sizes, degrees, connectivity.
  const Snapshot snap = net.snapshot();
  const DegreeStats degrees = degree_stats(snap);
  const Components components = connected_components(snap);
  std::printf("snapshot: %u nodes, %llu edges, mean degree %.2f "
              "(min %u, max %u), %u isolated\n",
              snap.node_count(),
              static_cast<unsigned long long>(snap.edge_count()),
              degrees.mean, degrees.min, degrees.max, degrees.isolated);
  std::printf("largest component: %u of %u nodes\n", components.largest_size,
              snap.node_count());

  // Probe the vertex expansion (upper bound; Theorem 4.16 says >= 0.1).
  Rng probe_rng(seed + 1);
  const ProbeResult probe = probe_expansion(snap, probe_rng, {});
  std::printf("expansion probe: min |bd(S)|/|S| = %.3f over %llu candidate "
              "sets (worst: %s, |S|=%u)\n",
              probe.min_ratio,
              static_cast<unsigned long long>(probe.sets_probed),
              probe.argmin_family.c_str(), probe.argmin_size);

  // Flood from the next newborn (discretized process, paper Def. 4.3).
  const FloodTrace trace = flood_poisson_discretized(net);
  if (trace.completed) {
    std::printf("flooding completed in %llu steps (alive: %llu)\n",
                static_cast<unsigned long long>(trace.completion_step),
                static_cast<unsigned long long>(trace.alive_per_step.back()));
  } else {
    std::printf("flooding stopped after %llu steps at %.1f%% coverage\n",
                static_cast<unsigned long long>(trace.steps),
                100.0 * trace.final_fraction);
  }
  std::printf("per-step informed counts:");
  for (const std::uint64_t count : trace.informed_per_step) {
    std::printf(" %llu", static_cast<unsigned long long>(count));
  }
  std::printf("\n");

  // The asynchronous process (Def. 4.2) is faster than its discretized
  // worst-case cousin; compare.
  const AsyncFloodResult async_result = flood_poisson_async(net);
  if (async_result.completed) {
    std::printf("asynchronous flooding completed in %.2f time units "
                "(%llu messages delivered, %llu dropped mid-flight)\n",
                async_result.completion_time,
                static_cast<unsigned long long>(
                    async_result.messages_delivered),
                static_cast<unsigned long long>(
                    async_result.messages_dropped));
  }
  return 0;
}
