// Tests for the bounded-degree extension (paper Section 5 open question):
// an in-degree cap enforced by redrawing requests, available in both
// models via config.max_in_degree.
#include <gtest/gtest.h>

#include <cmath>

#include "benchutil/experiment.hpp"
#include "churnet/churnet.hpp"

namespace churnet {
namespace {

TEST(BoundedDegree, StreamingInDegreeNeverExceedsCap) {
  StreamingConfig config;
  config.n = 300;
  config.d = 6;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 1;
  config.max_in_degree = 10;
  StreamingNetwork net(config);
  net.warm_up();
  for (int i = 0; i < 200; ++i) {
    net.step();
    for (const NodeId node : net.graph().alive_nodes()) {
      ASSERT_LE(net.graph().in_degree(node), 10u);
    }
  }
}

TEST(BoundedDegree, PoissonInDegreeNeverExceedsCap) {
  PoissonConfig config = PoissonConfig::with_n(300, 6,
                                               EdgePolicy::kRegenerate, 2);
  config.max_in_degree = 12;
  PoissonNetwork net(config);
  net.warm_up(8.0);
  for (const NodeId node : net.graph().alive_nodes()) {
    ASSERT_LE(net.graph().in_degree(node), 12u);
  }
  net.run_events(3000);
  for (const NodeId node : net.graph().alive_nodes()) {
    ASSERT_LE(net.graph().in_degree(node), 12u);
  }
}

TEST(BoundedDegree, TotalDegreeIsBounded) {
  // Total degree <= d + cap: the bounded-degree snapshots the paper's
  // Section 5 asks for.
  StreamingConfig config;
  config.n = 400;
  config.d = 4;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 3;
  config.max_in_degree = 8;
  StreamingNetwork net(config);
  net.warm_up();
  net.run_rounds(100);
  const DegreeStats stats = degree_stats(net.snapshot());
  EXPECT_LE(stats.max, 4u + 8u);
}

TEST(BoundedDegree, ZeroCapReproducesPaperModel) {
  // max_in_degree = 0 must leave the request stream identical to the
  // unbounded model (same seed, same topology).
  StreamingConfig with_zero;
  with_zero.n = 200;
  with_zero.d = 5;
  with_zero.policy = EdgePolicy::kRegenerate;
  with_zero.seed = 4;
  with_zero.max_in_degree = 0;
  StreamingConfig plain = with_zero;
  StreamingNetwork a(with_zero);
  StreamingNetwork b(plain);
  a.warm_up();
  b.warm_up();
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  // Spot-check identical wiring on a sample of nodes.
  const auto nodes_a = a.graph().alive_nodes();
  const auto nodes_b = b.graph().alive_nodes();
  ASSERT_EQ(nodes_a.size(), nodes_b.size());
  for (std::size_t i = 0; i < nodes_a.size(); i += 17) {
    for (std::uint32_t k = 0; k < 5; ++k) {
      EXPECT_EQ(a.graph().out_target(nodes_a[i], k),
                b.graph().out_target(nodes_b[i], k));
    }
  }
}

TEST(BoundedDegree, OutDegreeStaysNearlyFullWithLooseCap) {
  // With cap = 3d the redraws almost never fail: out-degrees stay full.
  PoissonConfig config = PoissonConfig::with_n(500, 5,
                                               EdgePolicy::kRegenerate, 5);
  config.max_in_degree = 15;
  PoissonNetwork net(config);
  net.warm_up(10.0);
  std::uint64_t deficient = 0;
  for (const NodeId node : net.graph().alive_nodes()) {
    deficient += net.graph().out_degree(node) < 5 ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(deficient),
            0.02 * static_cast<double>(net.graph().alive_count()) + 1.0);
}

TEST(BoundedDegree, TightCapLeavesSomeRequestsDangling) {
  // cap == d is tight: the mean in-degree equals d, so full nodes are
  // common and some requests cannot be placed. The network must stay
  // consistent regardless.
  PoissonConfig config = PoissonConfig::with_n(400, 6,
                                               EdgePolicy::kRegenerate, 6);
  config.max_in_degree = 6;
  PoissonNetwork net(config);
  net.warm_up(8.0);
  EXPECT_TRUE(net.graph().check_consistency());
  std::uint64_t dangling = 0;
  for (const NodeId node : net.graph().alive_nodes()) {
    dangling += 6 - net.graph().out_degree(node);
  }
  EXPECT_GT(dangling, 0u);
}

TEST(BoundedDegree, ExpansionSurvivesModerateCap) {
  // The empirical answer to the paper's Section 5 question at test scale:
  // capping in-degrees at 2d keeps the regenerating snapshot an expander.
  StreamingConfig config;
  config.n = 2000;
  config.d = 8;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 7;
  config.max_in_degree = 16;
  StreamingNetwork net(config);
  net.warm_up();
  net.run_rounds(500);
  Rng probe_rng(8);
  const ProbeResult probe = probe_expansion(net.snapshot(), probe_rng, {});
  EXPECT_GT(probe.min_ratio, 0.1);
}

TEST(BoundedDegree, FloodingStillCompletes) {
  int completions = 0;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    StreamingConfig config;
    config.n = 400;
    config.d = 21;
    config.policy = EdgePolicy::kRegenerate;
    config.seed = derive_seed(9, 0, rep);
    config.max_in_degree = 42;
    StreamingNetwork net(config);
    net.warm_up();
    FloodOptions options;
    options.max_steps = static_cast<std::uint64_t>(
        12.0 * std::log2(400.0));
    completions += flood_streaming(net, options).completed ? 1 : 0;
  }
  EXPECT_EQ(completions, 5);
}

TEST(BoundedDegree, MaxDegreeContrastAgainstUnbounded) {
  // The unbounded SDGR grows Theta(log n) maximum degree; the capped model
  // pins it at d + cap.
  StreamingConfig config;
  config.n = 3000;
  config.d = 8;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 10;
  StreamingNetwork unbounded(config);
  unbounded.warm_up();
  config.max_in_degree = 16;
  config.seed = 11;
  StreamingNetwork capped(config);
  capped.warm_up();
  const DegreeStats unbounded_stats = degree_stats(unbounded.snapshot());
  const DegreeStats capped_stats = degree_stats(capped.snapshot());
  EXPECT_LE(capped_stats.max, 24u);
  EXPECT_GT(unbounded_stats.max, capped_stats.max);
}

}  // namespace
}  // namespace churnet
