// Tests for expansion/expansion.hpp: incremental boundary tracking, exact
// expansion on known graphs, probe sanity (upper bound property).
#include "expansion/expansion.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "baselines/static_dout.hpp"
#include "common/rng.hpp"

namespace churnet {
namespace {

using Edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

Snapshot path_graph(std::uint32_t n) {
  Edges edges;
  for (std::uint32_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Snapshot::from_edges(n, edges);
}

Snapshot cycle_graph(std::uint32_t n) {
  Edges edges;
  for (std::uint32_t v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Snapshot::from_edges(n, edges);
}

Snapshot complete_graph(std::uint32_t n) {
  Edges edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Snapshot::from_edges(n, edges);
}

TEST(IncrementalSet, TracksBoundaryOnPath) {
  const Snapshot snap = path_graph(5);  // 0-1-2-3-4
  IncrementalSet set(snap);
  set.add(2);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.boundary_size(), 2u);  // {1, 3}
  set.add(1);
  EXPECT_EQ(set.boundary_size(), 2u);  // {0, 3}
  set.add(0);
  EXPECT_EQ(set.boundary_size(), 1u);  // {3}
  set.add(3);
  EXPECT_EQ(set.boundary_size(), 1u);  // {4}
  set.add(4);
  EXPECT_EQ(set.boundary_size(), 0u);
  EXPECT_EQ(set.size(), 5u);
}

TEST(IncrementalSet, ClearResets) {
  const Snapshot snap = cycle_graph(6);
  IncrementalSet set(snap);
  set.add(0);
  set.add(1);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.boundary_size(), 0u);
  set.add(3);
  EXPECT_EQ(set.boundary_size(), 2u);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(0));
}

TEST(IncrementalSet, RatioMatchesDefinition) {
  const Snapshot snap = cycle_graph(8);
  IncrementalSet set(snap);
  set.add(0);
  set.add(1);
  set.add(2);
  EXPECT_DOUBLE_EQ(set.ratio(), 2.0 / 3.0);
}

TEST(BoundarySize, MatchesManualCount) {
  const Snapshot snap =
      Snapshot::from_edges(6, Edges{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4},
                                    {4, 5}});
  const std::vector<std::uint32_t> set{0, 1, 2};
  EXPECT_EQ(boundary_size(snap, set), 1u);  // only node 3
  EXPECT_DOUBLE_EQ(expansion_ratio(snap, set), 1.0 / 3.0);
}

TEST(BoundarySize, DuplicateNeighborsCountedOnce) {
  // Parallel edges must not double-count boundary nodes.
  const Snapshot snap = Snapshot::from_edges(3, Edges{{0, 1}, {0, 1}, {1, 2}});
  const std::vector<std::uint32_t> set{0};
  EXPECT_EQ(boundary_size(snap, set), 1u);
}

TEST(ExactExpansion, CompleteGraph) {
  // K_n: any S has boundary n - |S|; min over |S| <= n/2 is at |S| = n/2.
  const Snapshot snap = complete_graph(8);
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(snap), 1.0);  // (8-4)/4
}

TEST(ExactExpansion, CompleteGraphOdd) {
  const Snapshot snap = complete_graph(7);
  // |S| = 3 (max <= 3.5): boundary 4, ratio 4/3.
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(snap), 4.0 / 3.0);
}

TEST(ExactExpansion, CycleGraph) {
  // C_n: worst set is a contiguous arc of n/2 nodes: boundary 2.
  const Snapshot snap = cycle_graph(12);
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(snap), 2.0 / 6.0);
}

TEST(ExactExpansion, PathGraph) {
  // P_n: the end-arc of n/2 nodes has boundary 1.
  const Snapshot snap = path_graph(10);
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(snap), 1.0 / 5.0);
}

TEST(ExactExpansion, DisconnectedGraphIsZero) {
  const Snapshot snap = Snapshot::from_edges(6, Edges{{0, 1}, {2, 3}, {4, 5}});
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(snap), 0.0);
}

TEST(ExactExpansion, StarGraph) {
  // Star K_{1,5}: a single leaf has boundary 1 (ratio 1); two leaves have
  // boundary 1 (the hub), ratio 1/2; three leaves: 1/3 (|S|=3 <= 3).
  const Snapshot snap =
      Snapshot::from_edges(6, Edges{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(snap), 1.0 / 3.0);
}

TEST(ProbeExpansion, UpperBoundsExactOnSmallGraphs) {
  Rng rng(1);
  for (const std::uint32_t n : {8u, 12u, 16u}) {
    const Snapshot snap = cycle_graph(n);
    const double exact = exact_vertex_expansion(snap);
    ProbeOptions options;
    options.random_sets_per_size = 16;
    const ProbeResult probe = probe_expansion(snap, rng, options);
    EXPECT_GE(probe.min_ratio, exact - 1e-12) << "n=" << n;
  }
}

TEST(ProbeExpansion, FindsTheCycleWorstCase) {
  // BFS balls on a cycle are contiguous arcs = the exact minimizers, so the
  // probe should achieve the exact value.
  Rng rng(2);
  const Snapshot snap = cycle_graph(16);
  const ProbeResult probe = probe_expansion(snap, rng, {});
  EXPECT_DOUBLE_EQ(probe.min_ratio, exact_vertex_expansion(snap));
}

TEST(ProbeExpansion, DetectsIsolatedVertex) {
  Rng rng(3);
  const Snapshot snap = Snapshot::from_edges(8, Edges{{0, 1}, {1, 2}, {2, 3},
                                                      {3, 0}, {4, 5}, {5, 6},
                                                      {6, 4}});
  // Node 7 is isolated: min ratio must be 0.
  const ProbeResult probe = probe_expansion(snap, rng, {});
  EXPECT_DOUBLE_EQ(probe.min_ratio, 0.0);
}

TEST(ProbeExpansion, RespectsSizeWindow) {
  Rng rng(4);
  const Snapshot snap = path_graph(40);
  ProbeOptions options;
  options.min_size = 10;
  options.max_size = 20;
  const ProbeResult probe = probe_expansion(snap, rng, options);
  EXPECT_GE(probe.argmin_size, 10u);
  EXPECT_LE(probe.argmin_size, 20u);
}

TEST(ProbeExpansion, StaticDoutGraphIsExpander) {
  // Lemma B.1: static d-out graphs with d >= 3 are Θ(1)-expanders w.h.p.
  Rng rng(5);
  const Snapshot snap = static_dout_snapshot(2000, 5, rng);
  ProbeOptions options;
  options.random_sets_per_size = 8;
  options.bfs_seeds = 8;
  options.greedy_seeds = 4;
  const ProbeResult probe = probe_expansion(snap, rng, options);
  EXPECT_GT(probe.min_ratio, 0.15);
  EXPECT_GT(probe.sets_probed, 1000u);
}

TEST(ProbeExpansion, ReportsArgminFamily) {
  Rng rng(6);
  const Snapshot snap = cycle_graph(20);
  const ProbeResult probe = probe_expansion(snap, rng, {});
  EXPECT_FALSE(probe.argmin_family.empty());
  EXPECT_GT(probe.argmin_size, 0u);
}

TEST(ProbeResult, ObserveTracksMinimum) {
  ProbeResult result;
  result.observe(0.5, 10, "a");
  result.observe(0.3, 20, "b");
  result.observe(0.7, 5, "c");
  EXPECT_DOUBLE_EQ(result.min_ratio, 0.3);
  EXPECT_EQ(result.argmin_size, 20u);
  EXPECT_EQ(result.argmin_family, "b");
  EXPECT_EQ(result.sets_probed, 3u);
}

}  // namespace
}  // namespace churnet
