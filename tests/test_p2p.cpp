// Tests for the P2P overlay substrate (p2p/address_table.hpp,
// p2p/p2p_network.hpp) and block propagation over it.
#include "p2p/p2p_network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchutil/experiment.hpp"
#include "flooding/async_flooding.hpp"
#include "graph/algorithms.hpp"
#include "p2p/address_table.hpp"

namespace churnet {
namespace {

TEST(AddressTable, InsertAndContains) {
  AddressTable table(8);
  Rng rng(1);
  const NodeId a{1, 0};
  const NodeId b{2, 0};
  table.insert(a, rng);
  EXPECT_TRUE(table.contains(a));
  EXPECT_FALSE(table.contains(b));
  EXPECT_EQ(table.size(), 1u);
}

TEST(AddressTable, InsertDeduplicates) {
  AddressTable table(8);
  Rng rng(2);
  const NodeId a{1, 0};
  table.insert(a, rng);
  table.insert(a, rng);
  EXPECT_EQ(table.size(), 1u);
}

TEST(AddressTable, GenerationsDistinguishEntries) {
  AddressTable table(8);
  Rng rng(3);
  table.insert(NodeId{1, 0}, rng);
  table.insert(NodeId{1, 1}, rng);  // same slot, later generation
  EXPECT_EQ(table.size(), 2u);
}

TEST(AddressTable, CapacityEviction) {
  AddressTable table(4);
  Rng rng(4);
  for (std::uint32_t i = 0; i < 20; ++i) table.insert(NodeId{i, 0}, rng);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.capacity(), 4u);
}

TEST(AddressTable, EraseRemoves) {
  AddressTable table(8);
  Rng rng(5);
  const NodeId a{1, 0};
  const NodeId b{2, 0};
  table.insert(a, rng);
  table.insert(b, rng);
  table.erase(a);
  EXPECT_FALSE(table.contains(a));
  EXPECT_TRUE(table.contains(b));
  table.erase(a);  // erasing a missing entry is a no-op
  EXPECT_EQ(table.size(), 1u);
}

TEST(AddressTable, SampleFromEmptyIsInvalid) {
  AddressTable table(8);
  Rng rng(6);
  EXPECT_EQ(table.sample(rng), kInvalidNode);
  EXPECT_TRUE(table.sample_many(5, rng).empty());
}

TEST(AddressTable, SampleReturnsStoredEntries) {
  AddressTable table(16);
  Rng rng(7);
  for (std::uint32_t i = 0; i < 10; ++i) table.insert(NodeId{i, 0}, rng);
  for (int trial = 0; trial < 200; ++trial) {
    EXPECT_TRUE(table.contains(table.sample(rng)));
  }
}

TEST(AddressTable, SampleManyDistinct) {
  AddressTable table(16);
  Rng rng(8);
  for (std::uint32_t i = 0; i < 10; ++i) table.insert(NodeId{i, 0}, rng);
  const auto picked = table.sample_many(6, rng);
  EXPECT_EQ(picked.size(), 6u);
  std::set<NodeId> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 6u);
  const auto more_than_stored = table.sample_many(50, rng);
  EXPECT_EQ(more_than_stored.size(), 10u);
}

P2pConfig test_config(std::uint32_t n, std::uint64_t seed) {
  P2pConfig config = P2pConfig::with_n(n, seed);
  config.target_out = 8;
  config.max_in = 64;
  return config;
}

TEST(P2pNetwork, WarmUpReachesExpectedScale) {
  P2pNetwork net(test_config(500, 1));
  net.warm_up(5.0);
  const double size = net.graph().alive_count();
  EXPECT_GT(size, 0.7 * 500);
  EXPECT_LT(size, 1.3 * 500);
}

TEST(P2pNetwork, GraphStaysConsistent) {
  P2pNetwork net(test_config(300, 2));
  net.warm_up(5.0);
  EXPECT_TRUE(net.graph().check_consistency());
  net.run_events(5000);
  EXPECT_TRUE(net.graph().check_consistency());
}

TEST(P2pNetwork, MostOutSlotsAreFilled) {
  P2pNetwork net(test_config(500, 3));
  net.warm_up(8.0);
  const double dangling = static_cast<double>(net.dangling_out_slots());
  const double total = 8.0 * static_cast<double>(net.graph().alive_count());
  EXPECT_LT(dangling / total, 0.05);
}

TEST(P2pNetwork, InDegreeRespectsCap) {
  P2pConfig config = test_config(400, 4);
  config.max_in = 16;
  P2pNetwork net(config);
  net.warm_up(8.0);
  for (const NodeId node : net.graph().alive_nodes()) {
    EXPECT_LE(net.graph().in_degree(node), 16u);
  }
}

TEST(P2pNetwork, NoDuplicateOutPeers) {
  P2pNetwork net(test_config(300, 5));
  net.warm_up(6.0);
  for (const NodeId node : net.graph().alive_nodes()) {
    std::set<NodeId> peers;
    for (std::uint32_t i = 0; i < net.graph().out_slot_count(node); ++i) {
      const NodeId target = net.graph().out_target(node, i);
      if (!target.valid()) continue;
      EXPECT_TRUE(peers.insert(target).second)
          << "duplicate out-peer connection";
    }
  }
}

TEST(P2pNetwork, TablesStayMostlyFresh) {
  P2pNetwork net(test_config(400, 6));
  net.warm_up(10.0);
  // Gossip keeps staleness bounded; with lifetime n and steady gossip the
  // stale fraction should be well below a half.
  EXPECT_LT(net.mean_table_staleness(), 0.5);
}

TEST(P2pNetwork, DialAccountingAccumulates) {
  P2pNetwork net(test_config(300, 7));
  net.warm_up(8.0);
  EXPECT_GT(net.successful_dials(), 0u);
  // Failed dials happen (stale addresses) but should not dominate.
  EXPECT_LT(net.failed_dials(), net.successful_dials());
}

TEST(P2pNetwork, OverlayIsWellConnected) {
  P2pNetwork net(test_config(600, 8));
  net.warm_up(8.0);
  const Snapshot snap = net.snapshot();
  const Components comps = connected_components(snap);
  EXPECT_GT(static_cast<double>(comps.largest_size),
            0.99 * static_cast<double>(snap.node_count()));
}

TEST(P2pNetwork, BlockPropagationReachesAlmostEveryone) {
  P2pNetwork net(test_config(500, 9));
  net.warm_up(8.0);
  // Miner: a random current node.
  const NodeId miner = net.graph().random_alive(net.rng());
  AsyncFloodOptions options;
  options.max_time = 100.0;
  options.stop_at_fraction = 0.99;
  const AsyncFloodResult result = flood_async_from(net, miner, options);
  EXPECT_GE(result.final_fraction, 0.99);
}

TEST(P2pNetwork, DeterministicForSeed) {
  P2pNetwork a(test_config(200, 10));
  P2pNetwork b(test_config(200, 10));
  a.run_events(3000);
  b.run_events(3000);
  EXPECT_EQ(a.graph().alive_count(), b.graph().alive_count());
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  EXPECT_EQ(a.successful_dials(), b.successful_dials());
}

TEST(P2pNetwork, HooksFireOnBirthAndDeath) {
  P2pNetwork net(test_config(150, 11));
  std::uint64_t births = 0;
  std::uint64_t deaths = 0;
  NetworkHooks hooks;
  hooks.on_birth = [&](NodeId, double) { ++births; };
  hooks.on_death = [&](NodeId, double) { ++deaths; };
  net.set_hooks(std::move(hooks));
  net.run_events(2000);
  EXPECT_EQ(births + deaths, 2000u);
  EXPECT_GT(births, 0u);
  EXPECT_GT(deaths, 0u);
}

TEST(P2pNetwork, PeekMatchesStep) {
  P2pNetwork net(test_config(100, 12));
  net.warm_up(2.0);
  for (int i = 0; i < 100; ++i) {
    const double peeked = net.peek_next_event_time();
    EXPECT_DOUBLE_EQ(net.step().time, peeked);
  }
}

}  // namespace
}  // namespace churnet
