// Tests for churn/streaming_churn.hpp (paper Definition 3.2).
#include "churn/streaming_churn.hpp"

#include <gtest/gtest.h>

namespace churnet {
namespace {

NodeId make_id(std::uint32_t slot) { return NodeId{slot, 0}; }

TEST(StreamingChurn, NoDeathDuringFill) {
  StreamingChurn churn(5);
  for (std::uint32_t t = 1; t <= 5; ++t) {
    const auto victim = churn.begin_round();
    EXPECT_FALSE(victim.has_value()) << "round " << t;
    churn.record_birth(make_id(t));
    EXPECT_EQ(churn.round(), t);
    EXPECT_EQ(churn.alive(), t);
  }
}

TEST(StreamingChurn, OldestDiesAfterFill) {
  StreamingChurn churn(3);
  for (std::uint32_t t = 1; t <= 3; ++t) {
    churn.begin_round();
    churn.record_birth(make_id(t));
  }
  // Round 4: the node born at round 1 dies (lived rounds 1..3).
  auto victim = churn.begin_round();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, make_id(1));
  churn.record_birth(make_id(4));
  // Round 5: node born at round 2 dies.
  victim = churn.begin_round();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, make_id(2));
  churn.record_birth(make_id(5));
  EXPECT_EQ(churn.alive(), 3u);
}

TEST(StreamingChurn, LifetimeIsExactlyN) {
  constexpr std::uint32_t kN = 7;
  StreamingChurn churn(kN);
  // Every node born at round t must die at round t + n.
  for (std::uint32_t t = 1; t <= 40; ++t) {
    const auto victim = churn.begin_round();
    if (t <= kN) {
      EXPECT_FALSE(victim.has_value());
    } else {
      ASSERT_TRUE(victim.has_value());
      EXPECT_EQ(victim->slot, t - kN);
    }
    churn.record_birth(make_id(t));
  }
}

TEST(StreamingChurn, SizeIsPinnedAtN) {
  constexpr std::uint32_t kN = 4;
  StreamingChurn churn(kN);
  for (std::uint32_t t = 1; t <= 50; ++t) {
    churn.begin_round();
    churn.record_birth(make_id(t));
    EXPECT_EQ(churn.alive(), std::min(t, kN));
  }
}

TEST(StreamingChurn, NEqualsOneReplacesEveryRound) {
  StreamingChurn churn(1);
  churn.begin_round();
  churn.record_birth(make_id(1));
  const auto victim = churn.begin_round();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, make_id(1));
  churn.record_birth(make_id(2));
  EXPECT_EQ(churn.alive(), 1u);
}

TEST(StreamingChurn, RoundCounterMatchesBirths) {
  StreamingChurn churn(3);
  EXPECT_EQ(churn.round(), 0u);
  churn.begin_round();
  churn.record_birth(make_id(1));
  EXPECT_EQ(churn.round(), 1u);
}

TEST(StreamingChurn, RingBufferSurvivesLongWraparound) {
  // The FIFO is a fixed-capacity ring; exercise thousands of wraparounds
  // at a small capacity and check exact oldest-first order throughout.
  constexpr std::uint32_t kN = 3;
  StreamingChurn churn(kN);
  for (std::uint32_t t = 1; t <= 10000; ++t) {
    const auto victim = churn.begin_round();
    if (t <= kN) {
      EXPECT_FALSE(victim.has_value());
    } else {
      ASSERT_TRUE(victim.has_value());
      ASSERT_EQ(victim->slot, t - kN) << "round " << t;
    }
    churn.record_birth(make_id(t));
    EXPECT_EQ(churn.alive(), std::min(t, kN));
  }
}

TEST(StreamingChurn, ChurnProcessEventViewMatchesRoundApi) {
  // Drive one instance through the event API and a twin through the
  // round-structured API; the schedules must match exactly.
  constexpr std::uint32_t kN = 4;
  StreamingChurn events(kN);
  StreamingChurn rounds(kN);
  ChurnProcess& process = events;
  std::uint32_t alive = 0;
  for (std::uint32_t t = 1; t <= 50; ++t) {
    const auto expected_victim = rounds.begin_round();
    ChurnProcess::Step step = process.next(alive);
    EXPECT_DOUBLE_EQ(step.time, static_cast<double>(t));
    if (expected_victim.has_value()) {
      ASSERT_FALSE(step.is_birth) << "round " << t;
      ASSERT_EQ(step.victim, ChurnProcess::Victim::kScheduled);
      EXPECT_EQ(step.victim_id, *expected_victim);
      --alive;
      process.on_death(step.victim_id, step.time);
      step = process.next(alive);
      EXPECT_DOUBLE_EQ(step.time, static_cast<double>(t));
    }
    ASSERT_TRUE(step.is_birth) << "round " << t;
    process.on_birth(make_id(t), step.time);
    rounds.record_birth(make_id(t));
    ++alive;
    EXPECT_EQ(events.alive(), rounds.alive());
    EXPECT_EQ(events.round(), rounds.round());
  }
}

TEST(StreamingChurn, ReportsChurnProcessMetadata) {
  StreamingChurn churn(7);
  EXPECT_EQ(churn.name(), "stream");
  EXPECT_DOUBLE_EQ(churn.mean_lifetime(), 7.0);
  EXPECT_DOUBLE_EQ(churn.warm_up_time(10.0), 70.0);
}

}  // namespace
}  // namespace churnet
