// Tests for churn/streaming_churn.hpp (paper Definition 3.2).
#include "churn/streaming_churn.hpp"

#include <gtest/gtest.h>

namespace churnet {
namespace {

NodeId make_id(std::uint32_t slot) { return NodeId{slot, 0}; }

TEST(StreamingChurn, NoDeathDuringFill) {
  StreamingChurn churn(5);
  for (std::uint32_t t = 1; t <= 5; ++t) {
    const auto victim = churn.begin_round();
    EXPECT_FALSE(victim.has_value()) << "round " << t;
    churn.record_birth(make_id(t));
    EXPECT_EQ(churn.round(), t);
    EXPECT_EQ(churn.alive(), t);
  }
}

TEST(StreamingChurn, OldestDiesAfterFill) {
  StreamingChurn churn(3);
  for (std::uint32_t t = 1; t <= 3; ++t) {
    churn.begin_round();
    churn.record_birth(make_id(t));
  }
  // Round 4: the node born at round 1 dies (lived rounds 1..3).
  auto victim = churn.begin_round();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, make_id(1));
  churn.record_birth(make_id(4));
  // Round 5: node born at round 2 dies.
  victim = churn.begin_round();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, make_id(2));
  churn.record_birth(make_id(5));
  EXPECT_EQ(churn.alive(), 3u);
}

TEST(StreamingChurn, LifetimeIsExactlyN) {
  constexpr std::uint32_t kN = 7;
  StreamingChurn churn(kN);
  // Every node born at round t must die at round t + n.
  for (std::uint32_t t = 1; t <= 40; ++t) {
    const auto victim = churn.begin_round();
    if (t <= kN) {
      EXPECT_FALSE(victim.has_value());
    } else {
      ASSERT_TRUE(victim.has_value());
      EXPECT_EQ(victim->slot, t - kN);
    }
    churn.record_birth(make_id(t));
  }
}

TEST(StreamingChurn, SizeIsPinnedAtN) {
  constexpr std::uint32_t kN = 4;
  StreamingChurn churn(kN);
  for (std::uint32_t t = 1; t <= 50; ++t) {
    churn.begin_round();
    churn.record_birth(make_id(t));
    EXPECT_EQ(churn.alive(), std::min(t, kN));
  }
}

TEST(StreamingChurn, NEqualsOneReplacesEveryRound) {
  StreamingChurn churn(1);
  churn.begin_round();
  churn.record_birth(make_id(1));
  const auto victim = churn.begin_round();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, make_id(1));
  churn.record_birth(make_id(2));
  EXPECT_EQ(churn.alive(), 1u);
}

TEST(StreamingChurn, RoundCounterMatchesBirths) {
  StreamingChurn churn(3);
  EXPECT_EQ(churn.round(), 0u);
  churn.begin_round();
  churn.record_birth(make_id(1));
  EXPECT_EQ(churn.round(), 1u);
}

}  // namespace
}  // namespace churnet
