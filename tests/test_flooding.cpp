// Tests for flooding/flooding.hpp: synchronous streaming flooding
// (Def. 3.3) and discretized Poisson flooding (Def. 4.3).
#include "flooding/flooding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "benchutil/experiment.hpp"
#include "graph/algorithms.hpp"

namespace churnet {
namespace {

StreamingConfig streaming_config(std::uint32_t n, std::uint32_t d,
                                 EdgePolicy policy, std::uint64_t seed) {
  StreamingConfig config;
  config.n = n;
  config.d = d;
  config.policy = policy;
  config.seed = seed;
  return config;
}

TEST(FloodTrace, StepReachingFraction) {
  FloodTrace trace;
  trace.informed_per_step = {1, 5, 40, 90};
  trace.alive_per_step = {100, 100, 100, 100};
  EXPECT_EQ(trace.step_reaching_fraction(0.01), 0u);
  EXPECT_EQ(trace.step_reaching_fraction(0.05), 1u);
  EXPECT_EQ(trace.step_reaching_fraction(0.4), 2u);
  EXPECT_EQ(trace.step_reaching_fraction(0.9), 3u);
  EXPECT_EQ(trace.step_reaching_fraction(0.95), FloodTrace::kNever);
}

TEST(FloodStreaming, StartsWithSingleInformedSource) {
  StreamingNetwork net(
      streaming_config(50, 4, EdgePolicy::kRegenerate, 1));
  net.warm_up();
  FloodOptions options;
  options.max_steps = 0;  // no flooding steps: only the source round
  const FloodTrace trace = flood_streaming(net, options);
  ASSERT_GE(trace.informed_per_step.size(), 1u);
  EXPECT_EQ(trace.informed_per_step[0], 1u);
  EXPECT_EQ(trace.alive_per_step[0], 50u);
}

TEST(FloodStreaming, InformedCountsAreMonotoneUntilCompletionSdgr) {
  // With regeneration the graph is an expander: |I_t| should be strictly
  // growing until completion (modulo the odd death).
  StreamingNetwork net(
      streaming_config(200, 8, EdgePolicy::kRegenerate, 2));
  net.warm_up();
  net.run_rounds(210);
  const FloodTrace trace = flood_streaming(net);
  ASSERT_TRUE(trace.completed);
  for (std::size_t t = 1; t < trace.informed_per_step.size(); ++t) {
    EXPECT_GE(trace.informed_per_step[t] + 1, trace.informed_per_step[t - 1]);
  }
}

TEST(FloodStreaming, SdgrCompletesInLogarithmicTime) {
  // Theorem 3.16: O(log n) completion w.h.p. for d >= 21. Use a generous
  // cap of 12*log2(n) steps.
  constexpr std::uint32_t kN = 500;
  int completions = 0;
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    StreamingNetwork net(streaming_config(kN, 21, EdgePolicy::kRegenerate,
                                          derive_seed(3, 0, rep)));
    net.warm_up();
    net.run_rounds(kN);
    const FloodTrace trace = flood_streaming(net);
    if (!trace.completed) continue;
    ++completions;
    EXPECT_LE(trace.completion_step,
              static_cast<std::uint64_t>(12.0 * std::log2(kN)));
  }
  EXPECT_EQ(completions, 10);
}

TEST(FloodStreaming, SdgInformsMostNodesQuickly) {
  // Theorem 3.8 shape: for sizeable d the flood reaches a large fraction
  // within << n rounds. (At d = 12 isolated nodes are essentially absent,
  // so full completion may also happen; the claim under test is speed.)
  constexpr std::uint32_t kN = 600;
  constexpr std::uint32_t kD = 12;
  StreamingNetwork net(streaming_config(kN, kD, EdgePolicy::kNone, 4));
  net.warm_up();
  net.run_rounds(kN);
  FloodOptions options;
  options.max_steps = 60;  // >> log(n), << n
  options.stop_on_die_out = true;
  const FloodTrace trace = flood_streaming(net, options);
  EXPECT_GT(trace.final_fraction, 0.80);
}

TEST(FloodStreaming, SdgCannotCompleteWhileIsolatedNodesExist) {
  // Theorem 3.7 mechanism: isolated nodes are unreachable, so as long as
  // the snapshot holds one the flood cannot complete within o(n) steps.
  constexpr std::uint32_t kN = 2000;
  constexpr std::uint32_t kD = 2;
  int instances_with_isolated = 0;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    StreamingNetwork net(
        streaming_config(kN, kD, EdgePolicy::kNone, derive_seed(40, 0, rep)));
    net.warm_up();
    net.run_rounds(kN);
    const DegreeStats stats = degree_stats(net.snapshot());
    if (stats.isolated == 0) continue;
    ++instances_with_isolated;
    FloodOptions options;
    options.max_steps = 100;  // >> log n, << n
    options.stop_on_die_out = false;
    const FloodTrace trace = flood_streaming(net, options);
    EXPECT_FALSE(trace.completed);
  }
  // At d = 2 nearly every instance carries isolated nodes (Lemma 3.5).
  EXPECT_GE(instances_with_isolated, 3);
}

TEST(FloodStreaming, RespectsMaxSteps) {
  StreamingNetwork net(streaming_config(100, 2, EdgePolicy::kNone, 5));
  net.warm_up();
  FloodOptions options;
  options.max_steps = 7;
  const FloodTrace trace = flood_streaming(net, options);
  EXPECT_LE(trace.steps, 7u);
}

TEST(FloodStreaming, StopAtFractionStopsEarly) {
  // With a fast-growing flood the final step may overshoot all the way to
  // completion; the contract is "stop at the FIRST step reaching the
  // fraction", which we verify via the recorded series.
  StreamingNetwork net(
      streaming_config(300, 10, EdgePolicy::kRegenerate, 6));
  net.warm_up();
  FloodOptions options;
  options.stop_at_fraction = 0.5;
  const FloodTrace trace = flood_streaming(net, options);
  EXPECT_GE(trace.final_fraction, 0.5);
  ASSERT_GE(trace.informed_per_step.size(), 2u);
  const std::size_t last = trace.informed_per_step.size() - 1;
  const double previous_fraction =
      static_cast<double>(trace.informed_per_step[last - 1]) /
      static_cast<double>(trace.alive_per_step[last - 1]);
  EXPECT_LT(previous_fraction, 0.5);
}

TEST(FloodStreaming, SeriesRecordingCanBeDisabled) {
  StreamingNetwork net(
      streaming_config(100, 8, EdgePolicy::kRegenerate, 7));
  net.warm_up();
  FloodOptions options;
  options.record_series = false;
  const FloodTrace trace = flood_streaming(net, options);
  EXPECT_TRUE(trace.informed_per_step.empty());
  EXPECT_TRUE(trace.completed);
}

TEST(FloodStreaming, AliveCountStaysN) {
  StreamingNetwork net(
      streaming_config(150, 6, EdgePolicy::kRegenerate, 8));
  net.warm_up();
  const FloodTrace trace = flood_streaming(net);
  for (const std::uint64_t alive : trace.alive_per_step) {
    EXPECT_EQ(alive, 150u);
  }
}

TEST(FloodStreaming, HooksAreClearedAfterRun) {
  StreamingNetwork net(
      streaming_config(100, 6, EdgePolicy::kRegenerate, 9));
  net.warm_up();
  flood_streaming(net);
  // If the driver leaked its hooks, this would touch freed captures.
  net.run_rounds(50);
  EXPECT_TRUE(net.graph().check_consistency());
}

TEST(FloodPoisson, DiscretizedCompletesOnPdgr) {
  // Theorem 4.20: O(log n) completion w.h.p. for d >= 35.
  constexpr std::uint32_t kN = 400;
  int completions = 0;
  std::uint64_t worst = 0;
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    PoissonNetwork net(PoissonConfig::with_n(kN, 35, EdgePolicy::kRegenerate,
                                             derive_seed(10, 0, rep)));
    net.warm_up(8.0);
    FloodOptions options;
    options.max_steps = 200;
    const FloodTrace trace = flood_poisson_discretized(net, options);
    if (trace.completed) {
      ++completions;
      worst = std::max(worst, trace.completion_step);
    }
  }
  EXPECT_GE(completions, 7);
  EXPECT_LE(worst, static_cast<std::uint64_t>(15.0 * std::log2(kN)));
}

TEST(FloodPoisson, InformedNeverExceedsAlive) {
  PoissonNetwork net(
      PoissonConfig::with_n(300, 20, EdgePolicy::kRegenerate, 11));
  net.warm_up(5.0);
  const FloodTrace trace = flood_poisson_discretized(net);
  ASSERT_FALSE(trace.informed_per_step.empty());
  for (std::size_t t = 0; t < trace.informed_per_step.size(); ++t) {
    EXPECT_LE(trace.informed_per_step[t], trace.alive_per_step[t]);
  }
}

TEST(FloodPoisson, PdgReachesLargeFraction) {
  // Theorem 4.13 shape: most nodes informed in O(log n) steps even without
  // regeneration, for large d.
  PoissonNetwork net(PoissonConfig::with_n(500, 20, EdgePolicy::kNone, 12));
  net.warm_up(8.0);
  FloodOptions options;
  options.max_steps = 80;
  const FloodTrace trace = flood_poisson_discretized(net, options);
  EXPECT_GT(trace.final_fraction, 0.7);
}

TEST(FloodPoisson, RespectsMaxSteps) {
  PoissonNetwork net(PoissonConfig::with_n(200, 2, EdgePolicy::kNone, 13));
  net.warm_up(3.0);
  FloodOptions options;
  options.max_steps = 5;
  const FloodTrace trace = flood_poisson_discretized(net, options);
  EXPECT_LE(trace.steps, 5u);
}

TEST(FloodPoisson, SourceWithIsolatedNeighborsCanDieOut) {
  // With d = 1 and no regeneration, floods frequently die out when the
  // source's only neighbor (and its chain) dies before passing the message
  // on. Just assert the die-out bookkeeping is coherent when it happens.
  int die_outs = 0;
  for (std::uint64_t rep = 0; rep < 30; ++rep) {
    PoissonNetwork net(PoissonConfig::with_n(60, 1, EdgePolicy::kNone,
                                             derive_seed(14, 0, rep)));
    net.warm_up(5.0);
    FloodOptions options;
    options.max_steps = 400;
    const FloodTrace trace = flood_poisson_discretized(net, options);
    if (trace.died_out) {
      ++die_outs;
      EXPECT_NE(trace.die_out_step, FloodTrace::kNever);
      EXPECT_FALSE(trace.completed);
    }
  }
  EXPECT_GT(die_outs, 0);
}

TEST(FloodPoisson, ClockAdvancesOneUnitPerStep) {
  PoissonNetwork net(
      PoissonConfig::with_n(150, 10, EdgePolicy::kRegenerate, 15));
  net.warm_up(3.0);
  const double before = net.now();
  FloodOptions options;
  options.max_steps = 12;
  options.stop_at_fraction = 2.0;  // never stop early on fraction
  options.stop_on_die_out = false;
  const FloodTrace trace = flood_poisson_discretized(net, options);
  // now() - t0 == steps, where t0 >= before (source birth waits for an
  // arrival event).
  EXPECT_GE(net.now(), before + static_cast<double>(trace.steps));
}

}  // namespace
}  // namespace churnet
