// The incremental-observation equivalence suite (DESIGN.md §6, decision
// 15): every delta-fed path is pinned against its from-scratch oracle.
//
//   * change-feed replay reconstructs the adjacency exactly, and
//     Snapshot::update is bit-identical to Snapshot::capture, across all
//     four paper scenarios and both static baselines;
//   * the census observers (isolated, degrees, ages) produce exactly the
//     from-scratch values at every observation of a multi-window trial;
//   * the expansion observer's first observation is bit-identical to the
//     from-scratch probe, and its persistent-set re-measurements match the
//     direct expansion_ratio oracle;
//   * warm-started spectral probes are cold-identical on first use,
//     deterministic, and pinned under a fixed iteration budget (the PR-6
//     convention: the serial/from-scratch path is the oracle);
//   * sweeps with incremental observers emit byte-identical CSV to the
//     from-scratch sweep, at 1 and at 8 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "expansion/expansion.hpp"
#include "expansion/spectral.hpp"
#include "graph/change_feed.hpp"
#include "graph/snapshot.hpp"
#include "observe/observer_spec.hpp"
#include "observe/observers.hpp"
#include "observe/pipeline.hpp"

namespace churnet {
namespace {

// The equivalence surface: every paper scenario plus both static baselines.
const char* const kAllScenarios[] = {"SDG",  "SDGR",        "PDG",
                                     "PDGR", "static-dout", "erdos-renyi"};

AnyNetwork warmed(const std::string& scenario, std::uint32_t n,
                  std::uint32_t d, std::uint64_t seed) {
  ScenarioParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  return ScenarioRegistry::extended().resolve(scenario).make_warmed(params);
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b,
                            const std::string& context) {
  ASSERT_EQ(a.node_count(), b.node_count()) << context;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << context;
  EXPECT_EQ(a.time(), b.time()) << context;
  for (std::uint32_t i = 0; i < a.node_count(); ++i) {
    ASSERT_EQ(a.node_id(i), b.node_id(i)) << context << " index " << i;
    EXPECT_EQ(a.birth_seq(i), b.birth_seq(i)) << context << " index " << i;
    // Bit-exact, including the double-valued ages.
    EXPECT_EQ(a.age(i), b.age(i)) << context << " index " << i;
    const std::span<const std::uint32_t> na = a.neighbors(i);
    const std::span<const std::uint32_t> nb = b.neighbors(i);
    ASSERT_EQ(na.size(), nb.size()) << context << " index " << i;
    for (std::size_t j = 0; j < na.size(); ++j) {
      EXPECT_EQ(na[j], nb[j]) << context << " index " << i << " edge " << j;
    }
    EXPECT_EQ(a.index_of(a.node_id(i)), b.index_of(a.node_id(i)))
        << context << " index " << i;
  }
}

// ---- change-feed replay + snapshot reuse -----------------------------------

// A shadow adjacency built only from the delta stream: the replay oracle
// for the feed contract (graph/change_feed.hpp). Out-slot vectors mirror
// each alive node's out-edge array, kInvalidNode = dangling.
class FeedMirror {
 public:
  explicit FeedMirror(const DynamicGraph& graph) {
    for (const NodeId id : graph.alive_nodes()) {
      std::vector<NodeId>& slots = out_[id];
      slots.resize(graph.out_slot_count(id), kInvalidNode);
      for (std::uint32_t i = 0; i < slots.size(); ++i) {
        slots[i] = graph.out_target(id, i);
      }
    }
  }

  void replay(std::span<const GraphDelta> deltas) {
    for (const GraphDelta& delta : deltas) {
      switch (delta.kind) {
        case GraphDelta::Kind::kBirth: {
          ASSERT_EQ(out_.count(delta.node), 0u);
          out_[delta.node].assign(delta.index, kInvalidNode);
          break;
        }
        case GraphDelta::Kind::kDeath: {
          const auto it = out_.find(delta.node);
          ASSERT_NE(it, out_.end());
          // Contract: a dying node's edge clears precede its kDeath.
          for (const NodeId target : it->second) {
            ASSERT_EQ(target, kInvalidNode);
          }
          out_.erase(it);
          break;
        }
        case GraphDelta::Kind::kEdgeSet: {
          std::vector<NodeId>& slots = out_.at(delta.node);
          ASSERT_LT(delta.index, slots.size());
          ASSERT_EQ(slots[delta.index], kInvalidNode);
          slots[delta.index] = delta.target;
          break;
        }
        case GraphDelta::Kind::kEdgeClear: {
          std::vector<NodeId>& slots = out_.at(delta.node);
          ASSERT_LT(delta.index, slots.size());
          ASSERT_EQ(slots[delta.index], delta.target);
          slots[delta.index] = kInvalidNode;
          break;
        }
      }
    }
  }

  void expect_matches(const DynamicGraph& graph,
                      const std::string& context) const {
    ASSERT_EQ(out_.size(), graph.alive_count()) << context;
    for (const auto& [id, slots] : out_) {
      ASSERT_TRUE(graph.is_alive(id)) << context;
      ASSERT_EQ(slots.size(), graph.out_slot_count(id)) << context;
      for (std::uint32_t i = 0; i < slots.size(); ++i) {
        EXPECT_EQ(slots[i], graph.out_target(id, i))
            << context << " slot " << i;
      }
    }
  }

 private:
  std::unordered_map<NodeId, std::vector<NodeId>> out_;
};

TEST(IncrementalObserve, FeedReplayAndSnapshotUpdateMatchEveryScenario) {
  for (const char* scenario : kAllScenarios) {
    AnyNetwork net = warmed(scenario, 300, 4, 90125);
    ChangeFeed feed;
    net.attach_change_feed(&feed);

    FeedMirror mirror(net.graph());
    Snapshot incremental = Snapshot::capture(net.graph(), net.now());
    SnapshotScratch scratch;

    for (int round = 0; round < 24; ++round) {
      feed.clear();
      net.step();
      const std::string context =
          std::string(scenario) + " round " + std::to_string(round);
      mirror.replay(feed.deltas());
      mirror.expect_matches(net.graph(), context);
      // Updating from the whole feed (not just births) must be fine — the
      // contract says non-birth entries are ignored by Snapshot::update.
      Snapshot::update(net.graph(), feed.deltas(), net.now(), incremental,
                       scratch);
      expect_snapshots_equal(incremental,
                             Snapshot::capture(net.graph(), net.now()),
                             context);
    }
    net.attach_change_feed(nullptr);
  }
}

TEST(IncrementalObserve, SnapshotUpdateAcceptsMultiRoundDeltaWindows) {
  // ObserverSet banks several rounds of births between observations; the
  // update must land on capture's exact state for multi-round windows too.
  AnyNetwork net = warmed("PDGR", 400, 6, 777001);
  ChangeFeed feed;
  net.attach_change_feed(&feed);
  Snapshot incremental = Snapshot::capture(net.graph(), net.now());
  SnapshotScratch scratch;
  for (int window = 0; window < 6; ++window) {
    feed.clear();
    for (int round = 0; round < 7; ++round) net.step();
    Snapshot::update(net.graph(), feed.deltas(), net.now(), incremental,
                     scratch);
    expect_snapshots_equal(incremental,
                           Snapshot::capture(net.graph(), net.now()),
                           "window " + std::to_string(window));
  }
  net.attach_change_feed(nullptr);
}

// ---- census observers: incremental == from-scratch, exactly ----------------

TEST(IncrementalObserve, CensusObserversMatchFromScratchEveryWindow) {
  for (const char* scenario : {"SDG", "SDGR", "PDG", "PDGR"}) {
    AnyNetwork net = warmed(scenario, 350, 3, 424242);
    ChangeFeed feed;
    net.attach_change_feed(&feed);

    const auto spec = ObserverSpec::parse("isolated+degrees+ages");
    ASSERT_TRUE(spec.has_value());
    ObserverSet incremental = make_observer_set(*spec);
    ObserverSet reference = make_observer_set(*spec);

    incremental.begin_incremental_trial(1234, net.graph(), net.now());
    for (int window = 0; window < 8; ++window) {
      for (int round = 0; round < 4; ++round) {
        feed.clear();
        net.step();
        incremental.on_deltas(net.graph(), feed.deltas(), net.now());
      }
      // All three observers are delta-fed: no dense snapshot is built.
      EXPECT_EQ(incremental.observe(net.graph(), net.now()), nullptr);
      // The oracle measures the same instant from scratch.
      reference.begin_trial(1234);
      reference.observe(net.graph(), net.now());

      std::vector<double> got, want;
      incremental.append_values(got);
      reference.append_values(want);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        // Exact equality, doubles included: integer counters, nearest-rank
        // quantiles off the histogram, and an age mean summed in the
        // oracle's own accumulation order.
        EXPECT_EQ(got[i], want[i])
            << scenario << " window " << window << " metric " << i;
      }
    }
    net.attach_change_feed(nullptr);
  }
}

// ---- expansion: first observation identity + persistent-set oracle ---------

TEST(IncrementalObserve, ExpansionFirstObservationIsBitIdentical) {
  AnyNetwork net = warmed("SDGR", 250, 4, 5150);
  const Snapshot snap = Snapshot::capture(net.graph(), net.now());

  ProbeOptions options;
  options.random_sets_per_size = 4;
  ExpansionObserver scratch_probe(options);
  scratch_probe.begin_trial(808);
  scratch_probe.on_snapshot(snap);

  ExpansionObserver incremental(options);
  incremental.begin_trial(808);
  incremental.on_trial_start(net.graph(), net.now());
  incremental.on_snapshot(snap);

  EXPECT_EQ(incremental.last().min_ratio, scratch_probe.last().min_ratio);
  EXPECT_EQ(incremental.last().argmin_size, scratch_probe.last().argmin_size);
  EXPECT_EQ(incremental.last().argmin_family,
            scratch_probe.last().argmin_family);
  EXPECT_EQ(incremental.last().sets_probed, scratch_probe.last().sets_probed);
  EXPECT_FALSE(incremental.persistent_sets().empty());
  EXPECT_LE(incremental.persistent_sets().size(),
            static_cast<std::size_t>(ExpansionObserver::kMaxPersistentSets));
}

TEST(IncrementalObserve, PersistentSetsMatchExpansionRatioOracle) {
  AnyNetwork net = warmed("SDGR", 250, 4, 6789);
  ChangeFeed feed;
  net.attach_change_feed(&feed);

  ProbeOptions options;
  options.random_sets_per_size = 4;
  ExpansionObserver observer(options);
  observer.begin_trial(31415);
  observer.on_trial_start(net.graph(), net.now());
  observer.on_snapshot(Snapshot::capture(net.graph(), net.now()));

  for (int window = 0; window < 4; ++window) {
    for (int round = 0; round < 6; ++round) {
      feed.clear();
      net.step();
      observer.on_deltas(net.graph(), feed.deltas(), net.now());
    }
    const Snapshot snap = Snapshot::capture(net.graph(), net.now());
    observer.on_snapshot(snap);

    // Oracle: re-measure every maintained set directly. Repair-on-death
    // must have kept each member alive and present in the snapshot.
    double min_ratio = std::numeric_limits<double>::infinity();
    std::uint32_t probed = 0;
    std::vector<std::uint32_t> indices;
    for (const std::vector<NodeId>& set : observer.persistent_sets()) {
      if (set.empty()) continue;
      indices.clear();
      for (const NodeId id : set) {
        ASSERT_TRUE(net.graph().is_alive(id)) << "window " << window;
        const auto index = snap.index_of(id);
        ASSERT_TRUE(index.has_value()) << "window " << window;
        indices.push_back(*index);
      }
      min_ratio = std::min(min_ratio, expansion_ratio(snap, indices));
      ++probed;
    }
    EXPECT_EQ(observer.last().min_ratio, min_ratio) << "window " << window;
    EXPECT_EQ(observer.last().sets_probed, probed) << "window " << window;
    EXPECT_EQ(observer.last().argmin_family, "persistent")
        << "window " << window;
  }
  net.attach_change_feed(nullptr);
}

// ---- spectral warm start ---------------------------------------------------

std::vector<Snapshot> snapshot_sequence(std::uint64_t seed) {
  AnyNetwork net = warmed("SDGR", 400, 6, seed);
  std::vector<Snapshot> snaps;
  snaps.push_back(Snapshot::capture(net.graph(), net.now()));
  for (int window = 0; window < 3; ++window) {
    for (int round = 0; round < 5; ++round) net.step();
    snaps.push_back(Snapshot::capture(net.graph(), net.now()));
  }
  return snaps;
}

TEST(IncrementalObserve, SpectralWarmStartIsColdIdenticalOnFirstUse) {
  const std::vector<Snapshot> snaps = snapshot_sequence(2718);
  Rng cold_rng(99);
  const SpectralResult cold = spectral_gap(snaps[0], cold_rng, 400, 1e-9);

  Rng warm_rng(99);
  SpectralWarmState state;
  const SpectralResult warm =
      spectral_gap_warm(snaps[0], warm_rng, state, 400, 1e-9);
  EXPECT_EQ(warm.lambda2, cold.lambda2);
  EXPECT_EQ(warm.spectral_gap, cold.spectral_gap);
  EXPECT_EQ(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.converged, cold.converged);
  EXPECT_TRUE(state.valid);
  EXPECT_EQ(state.nodes.size(), snaps[0].node_count());
}

TEST(IncrementalObserve, SpectralWarmStartIsDeterministicAndNoSlower) {
  const std::vector<Snapshot> snaps = snapshot_sequence(3141);

  const auto run_warm = [&snaps] {
    Rng rng(7);
    SpectralWarmState state;
    std::vector<SpectralResult> results;
    for (const Snapshot& snap : snaps) {
      results.push_back(spectral_gap_warm(snap, rng, state, 500, 1e-9));
    }
    return results;
  };
  const std::vector<SpectralResult> a = run_warm();
  const std::vector<SpectralResult> b = run_warm();
  ASSERT_EQ(a.size(), b.size());
  std::uint64_t warm_total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lambda2, b[i].lambda2) << i;
    EXPECT_EQ(a[i].iterations, b[i].iterations) << i;
    EXPECT_EQ(a[i].converged, b[i].converged) << i;
    if (i > 0) warm_total += a[i].iterations;
  }

  // The warm seed starts near the lambda_2 eigenspace: across the
  // post-first probes it must not need more iterations than cold restarts
  // on the same snapshots (deterministic under the pinned seeds).
  std::uint64_t cold_total = 0;
  Rng cold_rng(7);
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    cold_total += spectral_gap(snaps[i], cold_rng, 500, 1e-9).iterations;
  }
  EXPECT_LE(warm_total, cold_total);
  EXPECT_GT(cold_total, 0u);
}

TEST(IncrementalObserve, SpectralWarmStartPinnedUnderFixedBudget) {
  // The PR-6 convention for paths that are deterministic but not equal to
  // the serial oracle: pin a fixed-iteration-budget run against itself
  // across repeats (and leave the value itself to the golden benches).
  const std::vector<Snapshot> snaps = snapshot_sequence(1618);
  const auto run_budget = [&snaps](std::uint32_t budget) {
    Rng rng(11);
    SpectralWarmState state;
    std::vector<double> lambdas;
    for (const Snapshot& snap : snaps) {
      lambdas.push_back(
          spectral_gap_warm(snap, rng, state, budget, 0.0).lambda2);
    }
    return lambdas;
  };
  const std::vector<double> a = run_budget(40);
  const std::vector<double> b = run_budget(40);
  EXPECT_EQ(a, b);
  // A zero-tolerance fixed budget runs exactly `budget` iterations, so the
  // warm and cold paths are distinguishable only through the seed vector —
  // and both stay within [0, 1] spectra.
  for (const double lambda : a) {
    EXPECT_GE(lambda, 0.0);
    EXPECT_LE(lambda, 1.0 + 1e-12);
  }
}

// ---- whole-pipeline and sweep equivalence ----------------------------------

TEST(IncrementalObserve, PipelineIncrementalMatchesFromScratch) {
  const auto spec =
      ObserverSpec::parse("expansion(4)+spectral+isolated+demography(16)");
  ASSERT_TRUE(spec.has_value());
  for (const char* scenario : {"SDGR", "PDG"}) {
    AnyNetwork scratch_net = warmed(scenario, 200, 4, 555);
    ObserverSet scratch_set = make_observer_set(*spec);
    const std::vector<double> want =
        observe_network(scratch_net, scratch_set, 777, /*incremental=*/false);

    AnyNetwork inc_net = warmed(scenario, 200, 4, 555);
    ObserverSet inc_set = make_observer_set(*spec);
    const std::vector<double> got =
        observe_network(inc_net, inc_set, 777, /*incremental=*/true);

    ASSERT_EQ(got.size(), want.size()) << scenario;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i] == want[i] ||
                  (std::isnan(got[i]) && std::isnan(want[i])))
          << scenario << " metric " << i << ": " << got[i]
          << " != " << want[i];
    }
  }
}

TEST(IncrementalObserve, SweepIncrementalIsByteIdenticalAtAnyThreadCount) {
  SweepSpec spec;
  spec.scenarios = {"SDG",  "SDGR",        "PDG",
                    "PDGR", "static-dout", "erdos-renyi"};
  spec.n_values = {200};
  spec.d_values = {3};
  spec.metrics = {"alive", "mean_degree", "isolated",
                  "largest_component_frac"};
  spec.observers = "expansion(4)+spectral+isolated+degrees+ages";
  spec.replications = 2;
  spec.base_seed = 60601;

  const auto csv_of = [](const SweepResult& result) {
    std::ostringstream os;
    result.write_csv(os);
    return os.str();
  };

  const std::string scratch_csv = csv_of(SweepRunner(spec).run(1));
  spec.incremental_observers = true;
  const std::string inc_t1 = csv_of(SweepRunner(spec).run(1));
  const std::string inc_t8 = csv_of(SweepRunner(spec).run(8));
  EXPECT_EQ(inc_t1, scratch_csv);
  EXPECT_EQ(inc_t1, inc_t8);
}

}  // namespace
}  // namespace churnet
