// Tests for the observation layer (src/observe/): observer-spec
// parse/error cases, golden metric values on tiny pinned-seed graphs
// cross-checked against the pre-refactor bench measurement loops (direct
// probe_expansion / spectral_gap / isolated_census calls with the same
// seeds), pipeline wiring, and sweep-with-observers determinism across
// thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "churn/churn_spec.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "expansion/expansion.hpp"
#include "expansion/isolated.hpp"
#include "expansion/spectral.hpp"
#include "graph/algorithms.hpp"
#include "models/streaming_network.hpp"
#include "observe/observer_spec.hpp"
#include "observe/observers.hpp"
#include "observe/pipeline.hpp"
#include "protocols/protocol_spec.hpp"

namespace churnet {
namespace {

// ---- spec parsing ----------------------------------------------------------

TEST(ObserverSpec, ParsesCompositesAndDefaults) {
  std::string error;
  const auto spec =
      ObserverSpec::parse("expansion(64)+spectral+isolated", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->calls.size(), 3u);
  EXPECT_EQ(spec->calls[0].kind, ObserverSpec::Kind::kExpansion);
  EXPECT_EQ(spec->calls[0].a, 64.0);
  EXPECT_EQ(spec->calls[1].kind, ObserverSpec::Kind::kSpectral);
  EXPECT_EQ(spec->calls[1].a, 500.0);  // default iterations
  EXPECT_EQ(spec->calls[2].kind, ObserverSpec::Kind::kIsolated);
  EXPECT_EQ(spec->canonical(), "expansion(64)+spectral+isolated");

  // Bare names take their documented defaults.
  const auto defaults =
      ObserverSpec::parse("expansion+coverage+demography", &error);
  ASSERT_TRUE(defaults.has_value()) << error;
  EXPECT_EQ(defaults->calls[0].a, 8.0);
  EXPECT_EQ(defaults->calls[1].a, CoverageObserver::kDefaultTarget);
  EXPECT_EQ(defaults->calls[2].a,
            static_cast<double>(DemographyObserver::kDefaultWindow));
  EXPECT_EQ(defaults->canonical(),
            "expansion(8)+coverage(0.50)+demography(64)");

  // Case/whitespace-insensitive, like the churn and protocol families.
  const auto spaced = ObserverSpec::parse("  Spectral + ISOLATED ", &error);
  ASSERT_TRUE(spaced.has_value()) << error;
  EXPECT_EQ(spaced->canonical(), "spectral+isolated");
}

TEST(ObserverSpec, EmptyTextIsTheEmptySet) {
  std::string error;
  const auto empty = ObserverSpec::parse("", &error);
  ASSERT_TRUE(empty.has_value()) << error;
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(empty->canonical(), "");
  EXPECT_TRUE(make_observer_set(*empty).empty());

  const auto blank = ObserverSpec::parse("   ", &error);
  ASSERT_TRUE(blank.has_value()) << error;
  EXPECT_TRUE(blank->empty());
}

TEST(ObserverSpec, RejectsMalformedSpecsWithReasons) {
  const auto error_of = [](std::string_view text) {
    std::string error;
    EXPECT_FALSE(ObserverSpec::parse(text, &error).has_value()) << text;
    return error;
  };
  EXPECT_NE(error_of("carrier-pigeon").find("unknown observer"),
            std::string::npos);
  // Unknown names cite the catalog.
  EXPECT_NE(error_of("carrier-pigeon").find("expansion(k)"),
            std::string::npos);
  EXPECT_NE(error_of("isolated(3)").find("at most 0 argument"),
            std::string::npos);
  EXPECT_NE(error_of("expansion(2,3)").find("at most 1 argument"),
            std::string::npos);
  EXPECT_NE(error_of("expansion(0)").find("integer >= 1"),
            std::string::npos);
  EXPECT_NE(error_of("expansion(2.5)").find("integer >= 1"),
            std::string::npos);
  EXPECT_NE(error_of("coverage(0)").find("(0, 1]"), std::string::npos);
  EXPECT_NE(error_of("coverage(1.5)").find("(0, 1]"), std::string::npos);
  EXPECT_NE(error_of("demography(0)").find("integer >= 1"),
            std::string::npos);
  EXPECT_NE(error_of("spectral(").find("missing"), std::string::npos);
  EXPECT_NE(error_of("isolated+isolated").find("appears twice"),
            std::string::npos);
}

TEST(ObserverSpec, KnownNameDispatchAndMetricColumns) {
  EXPECT_TRUE(ObserverSpec::is_known_name("expansion"));
  EXPECT_TRUE(ObserverSpec::is_known_name("DEMOGRAPHY"));
  EXPECT_FALSE(ObserverSpec::is_known_name("pareto"));
  EXPECT_FALSE(ObserverSpec::is_known_name("push"));
  // Disjoint from the churn and protocol families (required for composite
  // segment dispatch to stay unambiguous, should the grammars ever meet).
  for (const auto& [spelling, description] : ObserverSpec::catalog()) {
    const std::string name = spelling.substr(0, spelling.find('('));
    EXPECT_FALSE(ChurnSpec::is_known_name(name)) << name;
    EXPECT_FALSE(ProtocolSpec::is_known_name(name)) << name;
  }

  const auto spec = ObserverSpec::parse("spectral+isolated+degrees");
  ASSERT_TRUE(spec.has_value());
  ObserverSet set = make_observer_set(*spec);
  EXPECT_EQ(set.metric_names(),
            (std::vector<std::string>{
                "spectral_gap", "spectral_lambda2", "spectral_converged",
                "isolated_count", "isolated_fraction", "degree_mean",
                "degree_min", "degree_max", "degree_p50", "degree_p90",
                "degree_p99"}));
  EXPECT_TRUE(set.wants_snapshot());
  EXPECT_FALSE(set.wants_dissemination());
  EXPECT_EQ(set.observation_rounds(), 0u);

  ObserverSet window_set =
      make_observer_set(*ObserverSpec::parse("demography(48)+coverage"));
  EXPECT_FALSE(window_set.wants_snapshot());
  EXPECT_TRUE(window_set.wants_dissemination());
  EXPECT_EQ(window_set.observation_rounds(), 48u);
}

// ---- golden values vs the pre-refactor measurement loops -------------------

Snapshot tiny_snapshot(std::uint32_t n, std::uint32_t d, EdgePolicy policy,
                       std::uint64_t seed) {
  StreamingConfig config;
  config.n = n;
  config.d = d;
  config.policy = policy;
  config.seed = seed;
  StreamingNetwork net(config);
  net.warm_up();
  net.run_rounds(n);
  return net.snapshot();
}

TEST(Observers, ExpansionMatchesDirectProbeUnderSameSeed) {
  const Snapshot snap = tiny_snapshot(80, 3, EdgePolicy::kRegenerate, 4242);
  const std::uint64_t probe_seed = 99001;

  // The pre-port bench loop: a fresh Rng(seed) straight into the probe.
  Rng direct_rng(probe_seed);
  ProbeOptions options;
  options.random_sets_per_size = 16;
  const ProbeResult direct = probe_expansion(snap, direct_rng, options);

  ExpansionObserver observer(options);
  observer.begin_trial(probe_seed);
  observer.on_snapshot(snap);
  EXPECT_EQ(observer.last().min_ratio, direct.min_ratio);
  EXPECT_EQ(observer.last().argmin_size, direct.argmin_size);
  EXPECT_EQ(observer.last().argmin_family, direct.argmin_family);
  EXPECT_EQ(observer.last().sets_probed, direct.sets_probed);
  EXPECT_EQ(observer.name(), "expansion(16)");

  std::vector<double> values;
  observer.append_values(values);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], direct.min_ratio);
  EXPECT_EQ(values[1], static_cast<double>(direct.argmin_size));
  EXPECT_EQ(values[2], static_cast<double>(direct.sets_probed));

  // begin_trial fully resets: a second trial under the same seed is
  // bit-identical (instances are reused across replications).
  observer.begin_trial(probe_seed);
  observer.on_snapshot(snap);
  EXPECT_EQ(observer.last().min_ratio, direct.min_ratio);
  EXPECT_EQ(observer.last().sets_probed, direct.sets_probed);
}

TEST(Observers, SpectralMatchesDirectCallUnderSameSeed) {
  const Snapshot snap = tiny_snapshot(60, 4, EdgePolicy::kRegenerate, 777);
  const std::uint64_t power_seed = 55007;

  Rng direct_rng(power_seed);
  const SpectralResult direct = spectral_gap(snap, direct_rng, 300, 1e-6);

  SpectralObserver observer(300, 1e-6);
  observer.begin_trial(power_seed);
  observer.on_snapshot(snap);
  EXPECT_EQ(observer.last().lambda2, direct.lambda2);
  EXPECT_EQ(observer.last().spectral_gap, direct.spectral_gap);
  EXPECT_EQ(observer.last().iterations, direct.iterations);
  EXPECT_EQ(observer.last().converged, direct.converged);
  EXPECT_EQ(observer.name(), "spectral(300)");
  EXPECT_EQ(SpectralObserver().name(), "spectral");
}

TEST(Observers, IsolatedAndDegreesMatchDirectScans) {
  // d = 1 without regeneration: isolated nodes exist (Lemma 3.5 regime).
  const Snapshot snap = tiny_snapshot(120, 1, EdgePolicy::kNone, 2024);
  const IsolatedCensus census = isolated_census(snap);
  const DegreeStats degrees = degree_stats(snap);
  ASSERT_GT(census.isolated_nodes, 0u);

  IsolatedObserver isolated;
  isolated.begin_trial(0);
  isolated.on_snapshot(snap);
  std::vector<double> values;
  isolated.append_values(values);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], static_cast<double>(census.isolated_nodes));
  EXPECT_EQ(values[1], census.fraction);

  DegreeHistogramObserver histogram;
  histogram.begin_trial(0);
  histogram.on_snapshot(snap);
  values.clear();
  histogram.append_values(values);
  ASSERT_EQ(values.size(), 6u);
  EXPECT_NEAR(values[0], degrees.mean, 1e-12);       // degree_mean
  EXPECT_EQ(values[1], static_cast<double>(degrees.min));
  EXPECT_EQ(values[2], static_cast<double>(degrees.max));
  EXPECT_LE(values[3], values[4]);                   // p50 <= p90
  EXPECT_LE(values[4], values[5]);                   // p90 <= p99
  EXPECT_LE(values[5], values[2]);                   // p99 <= max

  AgeHistogramObserver ages;
  ages.begin_trial(0);
  ages.on_snapshot(snap);
  values.clear();
  ages.append_values(values);
  ASSERT_EQ(values.size(), 4u);
  // Streaming ages after n rounds span (0, n]; the median of a FIFO
  // population of n nodes is ~n/2.
  EXPECT_GT(values[0], 0.0);
  EXPECT_LE(values[1], values[3]);  // p50 <= max
}

TEST(Observers, UnobservedMetricsAreNaN) {
  CoverageObserver coverage;
  coverage.begin_trial(1);
  std::vector<double> values;
  coverage.append_values(values);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_TRUE(std::isnan(values[0]));
  EXPECT_TRUE(std::isnan(values[1]));
  EXPECT_TRUE(std::isnan(values[2]));

  ExpansionObserver expansion;
  expansion.begin_trial(1);
  values.clear();
  expansion.append_values(values);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_TRUE(std::isnan(values[0]));
}

// ---- the pipeline driver ---------------------------------------------------

TEST(Pipeline, ObserveNetworkRunsWindowSnapshotAndFlood) {
  const Scenario& scenario = ScenarioRegistry::paper().at("SDGR");
  ScenarioParams params;
  params.n = 150;
  params.d = 4;
  params.seed = 31337;
  AnyNetwork net = scenario.make_warmed(params);

  ObserverSet set = make_observer_set(
      *ObserverSpec::parse("isolated+demography(32)+coverage(0.5)"));
  FloodScratch scratch;
  const std::vector<double> values =
      observe_flood(net, set, /*seed=*/555, FloodOptions{}, scratch);
  ASSERT_EQ(values.size(), set.metric_names().size());
  // isolated_count/fraction observed (SDGR: no isolation).
  EXPECT_EQ(values[0], 0.0);
  EXPECT_EQ(values[1], 0.0);
  // demography saw exactly its 32-round window on a size-n FIFO network.
  EXPECT_EQ(values[2], 150.0);  // alive_mean
  EXPECT_EQ(values[3], 150.0);  // alive_min
  EXPECT_EQ(values[4], 150.0);  // alive_max
  // coverage columns observed: SDGR floods complete, so the 50% step
  // exists and the final fraction is ~1.
  EXPECT_FALSE(std::isnan(values[5]));
  EXPECT_GT(values[6], 0.9);
  EXPECT_GT(values[7], 0.0);

  // observe_network (no dissemination): coverage columns are NaN, the
  // snapshot columns are unchanged.
  AnyNetwork net2 = scenario.make_warmed(params);
  const std::vector<double> plain = observe_network(net2, set, 555);
  ASSERT_EQ(plain.size(), values.size());
  EXPECT_EQ(plain[0], 0.0);
  EXPECT_TRUE(std::isnan(plain[5]));
  EXPECT_TRUE(std::isnan(plain[6]));
}

// ---- sweeps with observers -------------------------------------------------

SweepSpec observer_sweep_spec() {
  SweepSpec spec;
  spec.scenarios = {"SDGR", "PDG"};
  spec.n_values = {150};
  spec.d_values = {3};
  spec.metrics = {"alive", "final_fraction"};
  spec.observers = "isolated+degrees+coverage(0.5)+demography(24)";
  spec.replications = 3;
  spec.base_seed = 90210;
  return spec;
}

TEST(SweepWithObservers, AppendsObserverColumnsAfterSpecMetrics) {
  const SweepResult result = SweepRunner(observer_sweep_spec()).run(1);
  const std::vector<std::string>& metrics = result.metrics();
  ASSERT_EQ(metrics.size(), 2u + 2u + 6u + 3u + 3u);
  EXPECT_EQ(metrics[0], "alive");
  EXPECT_EQ(metrics[1], "final_fraction");
  EXPECT_EQ(metrics[2], "isolated_count");
  EXPECT_EQ(metrics.back(), "alive_max");
  for (std::size_t c = 0; c < result.cells().size(); ++c) {
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      EXPECT_GT(result.stats(c, m).count(), 0u)
          << result.cells()[c].scenario << " " << metrics[m];
    }
  }
}

TEST(SweepWithObservers, BitIdenticalAcrossThreadCounts) {
  const SweepSpec spec = observer_sweep_spec();
  const SweepResult t1 = SweepRunner(spec).run(1);
  const SweepResult t8 = SweepRunner(spec).run(8);

  std::ostringstream csv1, csv8, json1, json8;
  t1.write_csv(csv1);
  t8.write_csv(csv8);
  t1.write_json(json1);
  t8.write_json(json8);
  EXPECT_EQ(csv1.str(), csv8.str());
  // The JSON sink carries no wall-clock or thread-count fields, so it is
  // byte-identical across thread counts too.
  EXPECT_EQ(json1.str(), json8.str());
  ASSERT_EQ(t1.samples().size(), t8.samples().size());
  for (std::size_t c = 0; c < t1.samples().size(); ++c) {
    for (std::size_t r = 0; r < t1.samples()[c].size(); ++r) {
      for (std::size_t m = 0; m < t1.samples()[c][r].size(); ++m) {
        const double a = t1.samples()[c][r][m];
        const double b = t8.samples()[c][r][m];
        EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)))
            << c << "/" << r << "/" << m;
      }
    }
  }
}

TEST(SweepWithObservers, ObserversNeverPerturbExistingMetrics) {
  // The RNG-isolation rule, observable: attaching observers must not
  // change any previously measured sweep metric (observers draw from
  // their own streams and the observation window is 0 when no round
  // observer is attached).
  SweepSpec with = observer_sweep_spec();
  with.observers = "isolated+coverage(0.5)";  // no observation window
  SweepSpec without = with;
  without.observers.clear();

  const SweepResult a = SweepRunner(with).run(2);
  const SweepResult b = SweepRunner(without).run(2);
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t c = 0; c < a.cells().size(); ++c) {
    for (std::size_t r = 0; r < a.spec().replications; ++r) {
      for (std::size_t m = 0; m < b.metrics().size(); ++m) {
        const double va = a.samples()[c][r][m];
        const double vb = b.samples()[c][r][m];
        EXPECT_TRUE(va == vb || (std::isnan(va) && std::isnan(vb)))
            << a.cells()[c].scenario << " " << b.metrics()[m];
      }
    }
  }
}

TEST(SweepWithObservers, JsonConfigRoundTripsObservers) {
  std::string error;
  const auto spec = SweepSpec::from_json_text(
      R"({"scenarios": ["PDGR"], "n": [200], "d": [4],
          "observers": "expansion(4)+isolated"})",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->observers, "expansion(4)+isolated");

  const auto bad = SweepSpec::from_json_text(
      R"({"scenarios": ["PDGR"], "n": [200], "d": [4],
          "observers": "carrier-pigeon"})",
      &error);
  EXPECT_FALSE(bad.has_value());
  EXPECT_NE(error.find("unknown observer"), std::string::npos);

  const auto wrong_type = SweepSpec::from_json_text(
      R"({"scenarios": ["PDGR"], "n": [200], "d": [4],
          "observers": ["isolated"]})",
      &error);
  EXPECT_FALSE(wrong_type.has_value());
  EXPECT_NE(error.find("spec string"), std::string::npos);
}

}  // namespace
}  // namespace churnet
