// Cross-module integration tests: churn -> models -> snapshots ->
// flooding/expansion pipelines for all four paper models, plus the P2P
// overlay, exercised end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "churnet/churnet.hpp"

namespace churnet {
namespace {

TEST(Integration, SdgFullPipeline) {
  StreamingConfig config;
  config.n = 400;
  config.d = 8;
  config.policy = EdgePolicy::kNone;
  config.seed = 1;
  StreamingNetwork net(config);
  net.warm_up();
  net.run_rounds(400);

  const Snapshot snap = net.snapshot();
  EXPECT_EQ(snap.node_count(), 400u);
  const DegreeStats degrees = degree_stats(snap);
  EXPECT_NEAR(degrees.mean, 8.0, 1.0);

  // The flood reaches most of the largest component quickly.
  FloodOptions options;
  options.max_steps = 50;
  const FloodTrace trace = flood_streaming(net, options);
  EXPECT_GT(trace.final_fraction, 0.5);
  EXPECT_TRUE(net.graph().check_consistency());
}

TEST(Integration, SdgrFullPipeline) {
  StreamingConfig config;
  config.n = 400;
  config.d = 21;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 2;
  StreamingNetwork net(config);
  net.warm_up();
  net.run_rounds(450);

  // Expansion probe on the snapshot (Theorem 3.15 shape).
  Rng probe_rng(3);
  const Snapshot snap = net.snapshot();
  const ProbeResult probe = probe_expansion(snap, probe_rng, {});
  EXPECT_GT(probe.min_ratio, 0.1);

  const FloodTrace trace = flood_streaming(net);
  EXPECT_TRUE(trace.completed);
  EXPECT_LE(trace.completion_step,
            static_cast<std::uint64_t>(12.0 * std::log2(400.0)));
}

TEST(Integration, PdgFullPipeline) {
  PoissonNetwork net(PoissonConfig::with_n(400, 8, EdgePolicy::kNone, 4));
  net.warm_up(8.0);
  const Snapshot snap = net.snapshot();
  EXPECT_NEAR(static_cast<double>(snap.node_count()), 400.0, 100.0);

  FloodOptions options;
  options.max_steps = 60;
  const FloodTrace trace = flood_poisson_discretized(net, options);
  EXPECT_GT(trace.final_fraction, 0.4);
  EXPECT_TRUE(net.graph().check_consistency());
}

TEST(Integration, PdgrFullPipeline) {
  PoissonNetwork net(
      PoissonConfig::with_n(400, 35, EdgePolicy::kRegenerate, 5));
  net.warm_up(8.0);

  Rng probe_rng(6);
  const ProbeResult probe = probe_expansion(net.snapshot(), probe_rng, {});
  EXPECT_GT(probe.min_ratio, 0.1);

  const FloodTrace discretized = flood_poisson_discretized(net);
  EXPECT_TRUE(discretized.completed);

  const AsyncFloodResult async_result = flood_poisson_async(net);
  EXPECT_TRUE(async_result.completed);
  // Asynchronous flooding is at least as fast as discretized (Def. 4.3 is a
  // worst-case version of Def. 4.2) up to the randomness of separate runs;
  // both must be logarithmic-scale.
  EXPECT_LE(async_result.completion_time, 8.0 * std::log2(400.0));
}

TEST(Integration, ModelsShareAnalysisToolchain) {
  // The same snapshot/expansion/census code must serve all four models and
  // both baselines.
  Rng rng(7);
  std::vector<Snapshot> snapshots;

  StreamingConfig streaming;
  streaming.n = 150;
  streaming.d = 4;
  streaming.seed = 8;
  for (const EdgePolicy policy :
       {EdgePolicy::kNone, EdgePolicy::kRegenerate}) {
    streaming.policy = policy;
    StreamingNetwork net(streaming);
    net.warm_up();
    snapshots.push_back(net.snapshot());
  }
  for (const EdgePolicy policy :
       {EdgePolicy::kNone, EdgePolicy::kRegenerate}) {
    PoissonNetwork net(PoissonConfig::with_n(150, 4, policy, 9));
    net.warm_up(5.0);
    snapshots.push_back(net.snapshot());
  }
  snapshots.push_back(static_dout_snapshot(150, 4, rng));
  snapshots.push_back(erdos_renyi_snapshot(150, 8.0 / 150.0, rng));

  for (const Snapshot& snap : snapshots) {
    ASSERT_GT(snap.node_count(), 50u);
    const IsolatedCensus census = isolated_census(snap);
    EXPECT_LE(census.fraction, 0.2);
    const Components comps = connected_components(snap);
    EXPECT_GE(comps.largest_size, snap.node_count() / 2);
    const ProbeResult probe = probe_expansion(snap, rng, {});
    EXPECT_GE(probe.min_ratio, 0.0);
  }
}

TEST(Integration, P2pOverlayVersusPdgrIdealization) {
  // The engineered overlay should achieve comparable connectivity to the
  // idealized PDGR at the same scale and degree budget.
  P2pConfig p2p_config = P2pConfig::with_n(400, 10);
  p2p_config.target_out = 8;
  P2pNetwork overlay(p2p_config);
  overlay.warm_up(8.0);

  PoissonNetwork ideal(
      PoissonConfig::with_n(400, 8, EdgePolicy::kRegenerate, 11));
  ideal.warm_up(8.0);

  const Components overlay_comps = connected_components(overlay.snapshot());
  const Components ideal_comps = connected_components(ideal.snapshot());
  const double overlay_frac =
      static_cast<double>(overlay_comps.largest_size) /
      static_cast<double>(overlay.graph().alive_count());
  const double ideal_frac = static_cast<double>(ideal_comps.largest_size) /
                            static_cast<double>(ideal.graph().alive_count());
  EXPECT_GT(overlay_frac, 0.98);
  EXPECT_GT(ideal_frac, 0.98);
}

TEST(Integration, RepeatedFloodsOnSameNetworkAreIndependent) {
  // Driver hooks must compose: several floods in sequence on one network.
  StreamingConfig config;
  config.n = 200;
  config.d = 21;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 12;
  StreamingNetwork net(config);
  net.warm_up();
  for (int i = 0; i < 5; ++i) {
    const FloodTrace trace = flood_streaming(net);
    EXPECT_TRUE(trace.completed);
  }
  EXPECT_TRUE(net.graph().check_consistency());
}

TEST(Integration, LongHorizonStabilityAllModels) {
  // Many churn events without structural drift: sizes stay sane, graphs
  // stay consistent, no slot-reuse aliasing.
  StreamingConfig streaming;
  streaming.n = 100;
  streaming.d = 5;
  streaming.policy = EdgePolicy::kRegenerate;
  streaming.seed = 13;
  StreamingNetwork snet(streaming);
  snet.warm_up();
  snet.run_rounds(5000);
  EXPECT_EQ(snet.graph().alive_count(), 100u);
  EXPECT_TRUE(snet.graph().check_consistency());

  PoissonNetwork pnet(
      PoissonConfig::with_n(100, 5, EdgePolicy::kRegenerate, 14));
  pnet.warm_up(50.0);
  EXPECT_GT(pnet.graph().alive_count(), 40u);
  EXPECT_LT(pnet.graph().alive_count(), 180u);
  EXPECT_TRUE(pnet.graph().check_consistency());
}

}  // namespace
}  // namespace churnet
