// Tests for graph/snapshot.hpp: capture correctness, age ordering,
// from_edges factory, index mapping.
#include "graph/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace churnet {
namespace {

TEST(Snapshot, EmptyGraph) {
  DynamicGraph graph;
  const Snapshot snap = Snapshot::capture(graph, 0.0);
  EXPECT_EQ(snap.node_count(), 0u);
  EXPECT_EQ(snap.edge_count(), 0u);
}

TEST(Snapshot, SingleNode) {
  DynamicGraph graph;
  const NodeId a = graph.add_node(2, 1.0);
  const Snapshot snap = Snapshot::capture(graph, 5.0);
  ASSERT_EQ(snap.node_count(), 1u);
  EXPECT_EQ(snap.degree(0), 0u);
  EXPECT_EQ(snap.node_id(0), a);
  EXPECT_DOUBLE_EQ(snap.age(0), 4.0);
  EXPECT_DOUBLE_EQ(snap.time(), 5.0);
}

TEST(Snapshot, UndirectedDegrees) {
  DynamicGraph graph;
  const NodeId a = graph.add_node(2, 0.0);
  const NodeId b = graph.add_node(2, 1.0);
  const NodeId c = graph.add_node(2, 2.0);
  graph.set_out_edge(b, 0, a);
  graph.set_out_edge(c, 0, a);
  graph.set_out_edge(c, 1, b);
  const Snapshot snap = Snapshot::capture(graph, 3.0);
  ASSERT_EQ(snap.node_count(), 3u);
  // Index 0 is the oldest (a).
  EXPECT_EQ(snap.node_id(0), a);
  EXPECT_EQ(snap.node_id(1), b);
  EXPECT_EQ(snap.node_id(2), c);
  EXPECT_EQ(snap.degree(0), 2u);  // a: from b, from c
  EXPECT_EQ(snap.degree(1), 2u);  // b: to a, from c
  EXPECT_EQ(snap.degree(2), 2u);  // c: to a, to b
  EXPECT_EQ(snap.edge_count(), 3u);
}

TEST(Snapshot, NeighborListsAreSymmetric) {
  DynamicGraph graph;
  Rng rng(7);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(graph.add_node(3, i));
  for (const NodeId node : nodes) {
    for (std::uint32_t k = 0; k < 3; ++k) {
      const NodeId target = graph.random_alive_other(rng, node);
      if (target.valid()) graph.set_out_edge(node, k, target);
    }
  }
  const Snapshot snap = Snapshot::capture(graph, 30.0);
  // Count occurrences in both directions; multiset symmetry must hold.
  std::vector<std::vector<std::uint32_t>> sorted_neighbors(snap.node_count());
  for (std::uint32_t v = 0; v < snap.node_count(); ++v) {
    const auto list = snap.neighbors(v);
    sorted_neighbors[v].assign(list.begin(), list.end());
    std::sort(sorted_neighbors[v].begin(), sorted_neighbors[v].end());
  }
  for (std::uint32_t v = 0; v < snap.node_count(); ++v) {
    for (const std::uint32_t w : sorted_neighbors[v]) {
      const auto count_vw = static_cast<std::size_t>(
          std::count(sorted_neighbors[v].begin(), sorted_neighbors[v].end(),
                     w));
      const auto count_wv = static_cast<std::size_t>(
          std::count(sorted_neighbors[w].begin(), sorted_neighbors[w].end(),
                     v));
      EXPECT_EQ(count_vw, count_wv);
    }
  }
}

TEST(Snapshot, AgesSortedAscendingWithIndex) {
  DynamicGraph graph;
  for (int i = 0; i < 10; ++i) graph.add_node(0, i);
  const Snapshot snap = Snapshot::capture(graph, 10.0);
  for (std::uint32_t v = 0; v + 1 < snap.node_count(); ++v) {
    EXPECT_GE(snap.age(v), snap.age(v + 1));
    EXPECT_LT(snap.birth_seq(v), snap.birth_seq(v + 1));
  }
}

TEST(Snapshot, IndexOfRoundTrips) {
  DynamicGraph graph;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 12; ++i) nodes.push_back(graph.add_node(0, i));
  graph.remove_node(nodes[4]);
  const Snapshot snap = Snapshot::capture(graph, 12.0);
  EXPECT_EQ(snap.node_count(), 11u);
  for (const NodeId node : nodes) {
    const auto index = snap.index_of(node);
    if (node == nodes[4]) {
      EXPECT_FALSE(index.has_value());
    } else {
      ASSERT_TRUE(index.has_value());
      EXPECT_EQ(snap.node_id(*index), node);
    }
  }
}

TEST(Snapshot, CaptureIsImmutableUnderLaterChurn) {
  DynamicGraph graph;
  const NodeId a = graph.add_node(1, 0.0);
  const NodeId b = graph.add_node(1, 1.0);
  graph.set_out_edge(a, 0, b);
  const Snapshot snap = Snapshot::capture(graph, 2.0);
  graph.remove_node(b);
  EXPECT_EQ(snap.node_count(), 2u);
  EXPECT_EQ(snap.edge_count(), 1u);
  EXPECT_EQ(snap.degree(0), 1u);
}

TEST(SnapshotFromEdges, BuildsExpectedTopology) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {2, 0}};
  const Snapshot snap = Snapshot::from_edges(3, edges);
  EXPECT_EQ(snap.node_count(), 3u);
  EXPECT_EQ(snap.edge_count(), 3u);
  for (std::uint32_t v = 0; v < 3; ++v) EXPECT_EQ(snap.degree(v), 2u);
}

TEST(SnapshotFromEdges, IsolatedNodesHaveZeroDegree) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}};
  const Snapshot snap = Snapshot::from_edges(4, edges);
  EXPECT_EQ(snap.degree(0), 1u);
  EXPECT_EQ(snap.degree(1), 1u);
  EXPECT_EQ(snap.degree(2), 0u);
  EXPECT_EQ(snap.degree(3), 0u);
}

TEST(SnapshotFromEdges, ParallelEdgesKeepMultiplicity) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1},
                                                                   {0, 1}};
  const Snapshot snap = Snapshot::from_edges(2, edges);
  EXPECT_EQ(snap.degree(0), 2u);
  EXPECT_EQ(snap.degree(1), 2u);
  EXPECT_EQ(snap.edge_count(), 2u);
}

TEST(SnapshotFromEdges, NoEdges) {
  const Snapshot snap = Snapshot::from_edges(5, {});
  EXPECT_EQ(snap.node_count(), 5u);
  EXPECT_EQ(snap.edge_count(), 0u);
}

}  // namespace
}  // namespace churnet
