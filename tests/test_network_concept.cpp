// Tests for the unified DynamicNetwork model layer: concept satisfaction,
// the type-erased AnyNetwork wrapper, StreamingNetwork::run_until, and the
// StaticNetwork baselines.
#include <gtest/gtest.h>

#include "churnet/churnet.hpp"

namespace churnet {
namespace {

// The concept is the contract every model layer builds on: check it at
// compile time for all models and the erased wrapper.
static_assert(DynamicNetwork<StreamingNetwork>);
static_assert(DynamicNetwork<PoissonNetwork>);
static_assert(DynamicNetwork<StaticNetwork>);
static_assert(DynamicNetwork<AnyNetwork>);
static_assert(FloodableNetwork<StreamingNetwork>);
static_assert(FloodableNetwork<PoissonNetwork>);
static_assert(FloodableNetwork<StaticNetwork>);

TEST(StreamingRunUntil, AdvancesWholeRoundsToTheBarrier) {
  StreamingConfig config;
  config.n = 50;
  config.d = 4;
  config.seed = 3;
  StreamingNetwork net(config);
  net.run_until(5.0);
  EXPECT_EQ(net.round(), 5u);
  net.run_until(5.0);  // idempotent at the barrier
  EXPECT_EQ(net.round(), 5u);
  net.run_until(7.5);  // partial rounds round up
  EXPECT_EQ(net.round(), 8u);
}

TEST(AnyNetwork, ForwardsToWrappedModelIdentically) {
  StreamingConfig config;
  config.n = 100;
  config.d = 6;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 11;

  StreamingNetwork typed(config);
  AnyNetwork erased{StreamingNetwork(config)};
  ASSERT_TRUE(erased.valid());

  typed.warm_up();
  erased.warm_up();
  EXPECT_EQ(erased.graph().alive_count(), typed.graph().alive_count());
  EXPECT_DOUBLE_EQ(erased.now(), typed.now());

  typed.run_until(typed.now() + 10.0);
  erased.run_until(erased.now() + 10.0);
  EXPECT_DOUBLE_EQ(erased.now(), typed.now());
  EXPECT_EQ(erased.graph().edge_count(), typed.graph().edge_count());

  const Snapshot st = typed.snapshot();
  const Snapshot se = erased.snapshot();
  EXPECT_EQ(se.node_count(), st.node_count());
  EXPECT_EQ(se.edge_count(), st.edge_count());

  // Hooks pass through the erasure.
  int births = 0;
  NetworkHooks hooks;
  hooks.on_birth = [&births](NodeId, double) { ++births; };
  erased.set_hooks(std::move(hooks));
  erased.step();
  EXPECT_EQ(births, 1);
  erased.set_hooks({});

  // Typed access recovers the model; wrong types yield nullptr.
  EXPECT_NE(erased.get_if<StreamingNetwork>(), nullptr);
  EXPECT_EQ(erased.get_if<PoissonNetwork>(), nullptr);
}

TEST(AnyNetwork, FloodMatchesTypedDriver) {
  const auto config = PoissonConfig::with_n(250, 35, EdgePolicy::kRegenerate,
                                            21);
  PoissonNetwork typed(config);
  typed.warm_up(5.0);
  const FloodTrace expected = flood_poisson_discretized(typed, {});

  // Advance the erased network exactly like `typed` (warm_up(5.0) via
  // typed access; the erased warm_up() would run 10 expected lifetimes).
  AnyNetwork fresh{PoissonNetwork(config)};
  fresh.get_if<PoissonNetwork>()->warm_up(5.0);
  const FloodTrace actual = fresh.flood();

  EXPECT_EQ(actual.informed_per_step, expected.informed_per_step);
  EXPECT_EQ(actual.alive_per_step, expected.alive_per_step);
  EXPECT_EQ(actual.completed, expected.completed);
  EXPECT_EQ(actual.completion_step, expected.completion_step);
}

TEST(StaticNetwork, DOutTopologyIsFrozen) {
  StaticConfig config;
  config.n = 500;
  config.d = 8;
  config.seed = 5;
  StaticNetwork net(config);
  EXPECT_EQ(net.graph().alive_count(), 500u);
  EXPECT_EQ(net.graph().edge_count(), 500u * 8u);
  const std::uint64_t edges_before = net.graph().edge_count();
  net.warm_up();  // no-op
  net.run_until(25.0);
  EXPECT_EQ(net.graph().alive_count(), 500u);
  EXPECT_EQ(net.graph().edge_count(), edges_before);
  EXPECT_DOUBLE_EQ(net.now(), 25.0);
}

TEST(StaticNetwork, FloodIsBfsRounds) {
  StaticConfig config;
  config.n = 400;
  config.d = 8;
  config.seed = 17;
  StaticNetwork net(config);
  FloodScratch scratch;
  const FloodTrace trace = flood_dynamic(net, {}, scratch);
  // d-out with d = 8 is connected w.h.p.; flooding must complete in a few
  // rounds and the series must be monotone on a frozen graph.
  EXPECT_TRUE(trace.completed);
  EXPECT_LT(trace.completion_step, 20u);
  EXPECT_EQ(trace.informed_per_step.front(), 1u);
  EXPECT_EQ(trace.informed_per_step.back(), 400u);
  for (std::size_t i = 1; i < trace.informed_per_step.size(); ++i) {
    EXPECT_GE(trace.informed_per_step[i], trace.informed_per_step[i - 1]);
    EXPECT_EQ(trace.alive_per_step[i], 400u);
  }
}

TEST(StaticNetwork, ErdosRenyiMatchesTargetDensity) {
  StaticConfig config;
  config.n = 2000;
  config.d = 8;
  config.topology = StaticConfig::Topology::kErdosRenyi;
  config.seed = 23;
  StaticNetwork net(config);
  EXPECT_EQ(net.graph().alive_count(), 2000u);
  // p = 2d/n -> expected n*d = 16000 edges; 6 sigma is ~ +-760.
  const double edges = static_cast<double>(net.graph().edge_count());
  EXPECT_GT(edges, 16000.0 - 800.0);
  EXPECT_LT(edges, 16000.0 + 800.0);
  // Well above the connectivity threshold: flooding completes.
  FloodScratch scratch;
  const FloodTrace trace = flood_dynamic(net, {}, scratch);
  EXPECT_TRUE(trace.completed);
}

TEST(StaticNetwork, FloodStopsAtFrontierExhaustionWhenDisconnected) {
  // d = 1 ER on 2000 nodes is far below the connectivity threshold: the
  // flood must stop when its component is exhausted (BFS fixed point),
  // not spin to the default 1,000,000-step cap.
  StaticConfig config;
  config.n = 2000;
  config.d = 1;
  config.topology = StaticConfig::Topology::kErdosRenyi;
  config.seed = 7;
  StaticNetwork net(config);
  FloodScratch scratch;
  const FloodTrace trace = flood_dynamic(net, {}, scratch);
  EXPECT_FALSE(trace.completed);
  EXPECT_LT(trace.steps, 200u);  // component diameter, not max_steps
  EXPECT_LT(trace.final_fraction, 1.0);
  EXPECT_GT(trace.final_fraction, 0.0);
}

TEST(StaticNetwork, DeterministicForSameSeed) {
  StaticConfig config;
  config.n = 300;
  config.d = 5;
  config.topology = StaticConfig::Topology::kErdosRenyi;
  config.seed = 99;
  StaticNetwork a(config);
  StaticNetwork b(config);
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  FloodScratch sa, sb;
  const FloodTrace ta = flood_dynamic(a, {}, sa);
  const FloodTrace tb = flood_dynamic(b, {}, sb);
  EXPECT_EQ(ta.informed_per_step, tb.informed_per_step);
}

}  // namespace
}  // namespace churnet
