// Tests for common/stats.hpp: Welford accumulation, merging, intervals,
// quantiles and least-squares fitting.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace churnet {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStats, KnownSmallSample) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squares = 32, 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
  Rng rng(1);
  std::vector<double> values;
  OnlineStats stats;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    values.push_back(x);
    stats.add(x);
  }
  double mean = 0.0;
  for (const double x : values) mean += x;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double x : values) var += (x - mean) * (x - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-6);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  Rng rng(2);
  OnlineStats combined;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.real01() * 10.0;
    combined.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(WilsonInterval, ContainsTrueProportionTypically) {
  // 300/1000 successes: interval should contain 0.3 comfortably.
  const Interval interval = wilson_interval(300, 1000);
  EXPECT_LT(interval.lo, 0.3);
  EXPECT_GT(interval.hi, 0.3);
  EXPECT_GT(interval.lo, 0.25);
  EXPECT_LT(interval.hi, 0.35);
}

TEST(WilsonInterval, EdgeCases) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.08);
  const Interval all = wilson_interval(100, 100);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_GT(all.lo, 0.92);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const Interval empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(WilsonInterval, WiderForHigherConfidence) {
  const Interval narrow = wilson_interval(50, 100, 1.96);
  const Interval wide = wilson_interval(50, 100, 3.29);
  EXPECT_LT(wide.lo, narrow.lo);
  EXPECT_GT(wide.hi, narrow.hi);
}

TEST(WilsonInterval, CoverageSimulation) {
  // Empirical coverage of the 95% interval should be >= ~90% at p=0.2.
  Rng rng(3);
  int covered = 0;
  constexpr int kTrials = 2000;
  constexpr int kSamples = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t successes = 0;
    for (int i = 0; i < kSamples; ++i) successes += rng.bernoulli(0.2) ? 1 : 0;
    if (wilson_interval(successes, kSamples).contains(0.2)) ++covered;
  }
  EXPECT_GT(static_cast<double>(covered) / kTrials, 0.90);
}

TEST(MeanInterval, ShrinksWithSamples) {
  OnlineStats small;
  OnlineStats large;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) small.add(rng.normal());
  for (int i = 0; i < 2000; ++i) large.add(rng.normal());
  const Interval si = mean_interval(small);
  const Interval li = mean_interval(large);
  EXPECT_LT(li.hi - li.lo, si.hi - si.lo);
}

TEST(Quantile, KnownValues) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(median(values), 3.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.5);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(values), 3.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> values{7.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 7.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHighR2) {
  Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(4.0 - 0.5 * x + rng.normal(0.0, 1.0));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, -0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 4.0, 0.6);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, FlatDataZeroSlope) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

TEST(LinearFit, LogarithmicScalingDetection) {
  // The shape check used by the flooding-time bench: times that scale like
  // c*log(n) fit ln(n) with high R^2.
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double n : {1e3, 2e3, 4e3, 8e3, 16e3, 32e3}) {
    xs.push_back(std::log(n));
    ys.push_back(3.0 * std::log(n) + 2.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_GT(fit.r_squared, 0.999);
}

}  // namespace
}  // namespace churnet
