// Tests for common/mathx.hpp: log-binomials, pmfs, KL divergence
// (Theorem A.3 of the paper: D(p||q) >= 0), entropy, normalization.
#include "common/mathx.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace churnet {
namespace {

TEST(Mathx, LogFactorialSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(Mathx, LogBinomialMatchesPascal) {
  EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(log_binomial(10, 5), std::log(252.0), 1e-9);
  EXPECT_NEAR(log_binomial(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(7, 7), 0.0, 1e-12);
}

TEST(Mathx, LogBinomialSymmetry) {
  for (std::uint64_t n = 1; n <= 30; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-9);
    }
  }
}

TEST(Mathx, LogBinomialUpperBound) {
  // The bound C(n,k) <= (n*e/k)^k used throughout the paper's proofs.
  for (std::uint64_t n : {10ull, 100ull, 1000ull}) {
    for (std::uint64_t k = 1; k <= n / 2; k += std::max<std::uint64_t>(1, n / 7)) {
      const double bound = static_cast<double>(k) *
                           (std::log(static_cast<double>(n) / k) + 1.0);
      EXPECT_LE(log_binomial(n, k), bound + 1e-9);
    }
  }
}

TEST(Mathx, PoissonPmfSumsToOne) {
  for (const double mean : {0.5, 1.0, 4.0, 20.0}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k < 200; ++k) total += poisson_pmf(k, mean);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Mathx, PoissonPmfKnownValues) {
  EXPECT_NEAR(poisson_pmf(0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(1, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(2, 1.0), std::exp(-1.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

TEST(Mathx, BinomialPmfSumsToOne) {
  for (const double p : {0.1, 0.5, 0.9}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 50; ++k) total += binomial_pmf(50, k, p);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Mathx, BinomialPmfDegenerate) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(Mathx, BinomialPmfMatchesDirectComputation) {
  // C(6,2) 0.3^2 0.7^4 = 15 * 0.09 * 0.2401
  EXPECT_NEAR(binomial_pmf(6, 2, 0.3), 15.0 * 0.09 * 0.2401, 1e-12);
}

TEST(Mathx, KlDivergenceOfIdenticalIsZero) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(Mathx, KlDivergenceNonNegativeOnRandomDistributions) {
  // Theorem A.3 (the paper uses this to bound the union bound in
  // Lemma 4.18): D(p||q) >= 0 for all distributions.
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(10);
    std::vector<double> q(10);
    for (int i = 0; i < 10; ++i) {
      p[i] = rng.real01() + 1e-6;
      q[i] = rng.real01() + 1e-6;
    }
    normalize(p);
    normalize(q);
    EXPECT_GE(kl_divergence(p, q), -1e-12);
  }
}

TEST(Mathx, KlDivergenceKnownValue) {
  // D({1,0} || {0.5,0.5}) = log 2.
  const std::vector<double> p{1.0, 0.0};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NEAR(kl_divergence(p, q), std::log(2.0), 1e-12);
}

TEST(Mathx, KlDivergenceAsymmetric) {
  const std::vector<double> p{0.9, 0.1};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_GT(std::abs(kl_divergence(p, q) - kl_divergence(q, p)), 1e-3);
}

TEST(Mathx, EntropyUniformIsLogN) {
  const std::vector<double> p(8, 1.0 / 8.0);
  EXPECT_NEAR(entropy(p), std::log(8.0), 1e-12);
}

TEST(Mathx, EntropyDegenerateIsZero) {
  const std::vector<double> p{1.0, 0.0, 0.0};
  EXPECT_NEAR(entropy(p), 0.0, 1e-12);
}

TEST(Mathx, EntropyBounds) {
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> p(16);
    for (auto& x : p) x = rng.real01() + 1e-9;
    normalize(p);
    const double h = entropy(p);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, std::log(16.0) + 1e-12);
  }
}

TEST(Mathx, NormalizeSumsToOne) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  normalize(w);
  double total = 0.0;
  for (const double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(w[3], 0.4, 1e-12);
}

}  // namespace
}  // namespace churnet
