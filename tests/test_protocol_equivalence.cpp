// The tentpole proof for the protocol layer: full flooding expressed
// through the DisseminationProtocol path (protocols/dissemination.hpp +
// FloodProtocol) must be bit-identical to the pre-existing flood driver
// (flooding/flood_driver.hpp) — same event sequence (per-step informed and
// alive counts), same terminal state, and the same informed set — on all
// four paper scenarios (streaming Def. 3.3 and discretized Def. 4.3
// semantics) and on the churn-free baselines (BFS semantics).
//
// The comparison is exact equality, never tolerance: the two drivers run
// on two networks built from the same seed, which evolve identically
// because neither driver consumes network randomness (and FloodProtocol
// consumes no protocol randomness either).
#include <gtest/gtest.h>

#include <string>

#include "churnet/churnet.hpp"

namespace churnet {
namespace {

struct EquivalenceParam {
  const char* scenario;
  std::uint32_t n;
  std::uint32_t d;
  std::uint64_t seed;
};

std::string param_name(
    const ::testing::TestParamInfo<EquivalenceParam>& info) {
  std::string scenario = info.param.scenario;
  for (char& c : scenario) {
    if (c == '-') c = '_';
  }
  return scenario + "_n" + std::to_string(info.param.n) + "_d" +
         std::to_string(info.param.d) + "_s" +
         std::to_string(info.param.seed);
}

class ProtocolFloodEquivalence
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(ProtocolFloodEquivalence, FloodProtocolMatchesFloodDriverBitForBit) {
  const EquivalenceParam param = GetParam();
  const Scenario scenario =
      ScenarioRegistry::paper().resolve(param.scenario);
  ScenarioParams params;
  params.n = param.n;
  params.d = param.d;
  params.seed = param.seed;

  FloodOptions flood_options;
  flood_options.max_steps = 80;
  flood_options.stop_on_die_out = true;

  AnyNetwork reference_net = scenario.make_warmed(params);
  FloodScratch reference_scratch;
  const FloodTrace reference =
      reference_net.flood(flood_options, reference_scratch);

  AnyNetwork protocol_net = scenario.make_warmed(params);
  FloodProtocol protocol;
  ProtocolOptions options;
  options.flood = flood_options;
  ProtocolScratch protocol_scratch;
  const ProtocolResult result =
      protocol_net.disseminate(protocol, options, protocol_scratch);
  const FloodTrace& trace = result.trace;

  // Event sequence: the full per-step series, not just the endpoints.
  ASSERT_EQ(trace.informed_per_step, reference.informed_per_step);
  ASSERT_EQ(trace.alive_per_step, reference.alive_per_step);
  EXPECT_EQ(trace.steps, reference.steps);
  EXPECT_EQ(trace.completed, reference.completed);
  EXPECT_EQ(trace.completion_step, reference.completion_step);
  EXPECT_EQ(trace.died_out, reference.died_out);
  EXPECT_EQ(trace.die_out_step, reference.die_out_step);
  EXPECT_EQ(trace.peak_informed, reference.peak_informed);
  EXPECT_DOUBLE_EQ(trace.final_fraction, reference.final_fraction);

  // Informed sets: slot-for-slot identical terminal membership.
  const std::uint32_t bound = std::max(
      reference_net.graph().slot_upper_bound(),
      protocol_net.graph().slot_upper_bound());
  for (std::uint32_t slot = 0; slot < bound; ++slot) {
    const NodeId id{slot, 0};  // membership stamps are slot-indexed
    ASSERT_EQ(protocol_scratch.flood.is_informed(id),
              reference_scratch.is_informed(id))
        << "slot " << slot;
  }

  // The networks themselves evolved identically: neither driver consumed
  // network randomness beyond the shared source-selection path.
  EXPECT_EQ(protocol_net.graph().alive_count(),
            reference_net.graph().alive_count());
  EXPECT_EQ(protocol_net.graph().total_births(),
            reference_net.graph().total_births());

  // Flood-path accounting invariants: every node informed after the
  // source cost exactly one useful delivery, and nothing was lost.
  EXPECT_EQ(result.stats.useful_deliveries,
            protocol_scratch.informed.size() - 1);
  EXPECT_EQ(result.stats.lost_messages, 0u);
  EXPECT_EQ(result.stats.rounds, trace.steps);
  EXPECT_EQ(result.stats.completed, trace.completed);
  EXPECT_DOUBLE_EQ(result.stats.final_coverage, trace.final_fraction);
}

TEST_P(ProtocolFloodEquivalence, ScratchAndProtocolReuseStaysIdentical) {
  // One (protocol, scratch) pair across replications must behave exactly
  // like fresh objects: the epoch-stamped reset is complete.
  const EquivalenceParam param = GetParam();
  const Scenario scenario =
      ScenarioRegistry::paper().resolve(param.scenario);
  ScenarioParams params;
  params.n = param.n;
  params.d = param.d;
  params.seed = param.seed;

  ProtocolOptions options;
  options.flood.max_steps = 40;

  FloodProtocol reused_protocol;
  ProtocolScratch reused_scratch;
  for (int warm = 0; warm < 2; ++warm) {  // dirty the reused state
    AnyNetwork net = scenario.make_warmed(params);
    net.disseminate(reused_protocol, options, reused_scratch);
  }
  AnyNetwork reused_net = scenario.make_warmed(params);
  const ProtocolResult reused =
      reused_net.disseminate(reused_protocol, options, reused_scratch);

  AnyNetwork fresh_net = scenario.make_warmed(params);
  FloodProtocol fresh_protocol;
  const ProtocolResult fresh = fresh_net.disseminate(fresh_protocol, options);

  EXPECT_EQ(reused.trace.informed_per_step, fresh.trace.informed_per_step);
  EXPECT_EQ(reused.stats.messages_sent, fresh.stats.messages_sent);
  EXPECT_EQ(reused.stats.useful_deliveries, fresh.stats.useful_deliveries);
  EXPECT_EQ(reused.stats.duplicate_deliveries,
            fresh.stats.duplicate_deliveries);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolFloodEquivalence,
    ::testing::Values(
        // The four paper scenarios: streaming + discretized semantics.
        EquivalenceParam{"SDG", 60, 2, 1},
        EquivalenceParam{"SDG", 250, 4, 2},
        EquivalenceParam{"SDGR", 120, 3, 3},
        EquivalenceParam{"SDGR", 500, 8, 4},
        EquivalenceParam{"PDG", 60, 2, 5},
        EquivalenceParam{"PDG", 250, 6, 6},
        EquivalenceParam{"PDGR", 120, 4, 7},
        EquivalenceParam{"PDGR", 500, 8, 8},
        // Churn-free BFS semantics (uniform source via the network RNG).
        EquivalenceParam{"static-dout", 300, 4, 9},
        EquivalenceParam{"erdos-renyi", 300, 6, 10}),
    param_name);

TEST(ProtocolEquivalence, LosslessLossyWrapperIsBitIdenticalToFlood) {
  // lossy(1.0) never draws a coin and keeps the dedup fast path, so the
  // wrapper at q=1 is exactly the bare protocol.
  ScenarioParams params;
  params.n = 250;
  params.d = 4;
  params.seed = 11;
  const Scenario& scenario = ScenarioRegistry::paper().at("SDGR");

  AnyNetwork bare_net = scenario.make_warmed(params);
  FloodProtocol bare;
  const ProtocolResult bare_result = bare_net.disseminate(bare);

  AnyNetwork wrapped_net = scenario.make_warmed(params);
  LossyProtocol wrapped(std::make_unique<FloodProtocol>(), 1.0);
  const ProtocolResult wrapped_result = wrapped_net.disseminate(wrapped);

  EXPECT_EQ(wrapped_result.trace.informed_per_step,
            bare_result.trace.informed_per_step);
  EXPECT_EQ(wrapped_result.stats.messages_sent,
            bare_result.stats.messages_sent);
  EXPECT_EQ(wrapped_result.stats.lost_messages, 0u);
}

TEST(ProtocolEquivalence, UnboundedTtlIsBitIdenticalToFlood) {
  // A TTL no run can exhaust degenerates to full flooding.
  ScenarioParams params;
  params.n = 250;
  params.d = 4;
  params.seed = 12;
  for (const char* name : {"SDGR", "PDGR"}) {
    const Scenario& scenario = ScenarioRegistry::paper().at(name);

    AnyNetwork flood_net = scenario.make_warmed(params);
    FloodProtocol flood;
    const ProtocolResult flood_result = flood_net.disseminate(flood);

    AnyNetwork ttl_net = scenario.make_warmed(params);
    TtlFloodProtocol ttl(1u << 30);
    const ProtocolResult ttl_result = ttl_net.disseminate(ttl);

    EXPECT_EQ(ttl_result.trace.informed_per_step,
              flood_result.trace.informed_per_step)
        << name;
    EXPECT_EQ(ttl_result.stats.messages_sent,
              flood_result.stats.messages_sent)
        << name;
  }
}

}  // namespace
}  // namespace churnet
