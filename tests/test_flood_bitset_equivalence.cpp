// The tentpole proof for the bitset frontier rewrite: the word-packed
// FloodScratch (common/bitset64.hpp) behind flood_dynamic and the
// dissemination driver must be bit-identical to the epoch-stamped
// stamp-array path it replaced, on all four paper scenarios and both
// static baselines — same event sequence (per-step informed/alive series),
// same terminal informed set — and byte-identical at every
// intra_threads value.
//
// Two independent proofs:
//
//   1. A live oracle: the pre-rewrite stamp-array scratch + driver,
//      embedded verbatim below (LegacyFloodScratch / legacy_flood_dynamic,
//      recovered from the repo history), run side-by-side with the bitset
//      path on identically seeded networks.
//   2. Pinned checksums: FNV-1a digests of the full trace + stats +
//      terminal informed set, captured from the last stamp-array build.
//      These catch any in-tandem drift the live oracle cannot (both
//      drivers changing together), and pin the dissemination path too
//      (gossip protocols share the candidate/commit machinery).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "churnet/churnet.hpp"

namespace churnet {
namespace {

// ---------------------------------------------------------------------------
// The pre-rewrite driver, embedded as a live oracle. This is the exact
// stamp-array FloodScratch and flood_dynamic step loop the bitset path
// replaced (only renamed); it shares FloodTrace/FloodOptions/semantics
// with the current code, which did not change.
// ---------------------------------------------------------------------------

class LegacyFloodScratch {
 public:
  void begin_trial(std::uint32_t slot_bound) {
    ensure(slot_bound);
    ++informed_epoch_;
    informed_count_ = 0;
    frontier.clear();
    created.clear();
    candidates.clear();
    deaths_.clear();
    ++death_epoch_;
  }

  bool is_informed(NodeId node) const {
    return node.slot < informed_stamp_.size() &&
           informed_stamp_[node.slot] == informed_epoch_;
  }
  bool mark_informed(NodeId node) {
    ensure(node.slot + 1);
    if (informed_stamp_[node.slot] == informed_epoch_) return false;
    informed_stamp_[node.slot] = informed_epoch_;
    ++informed_count_;
    return true;
  }
  void unmark_informed(NodeId node) {
    if (!is_informed(node)) return;
    informed_stamp_[node.slot] = 0;
    CHURNET_ASSERT(informed_count_ > 0);
    --informed_count_;
  }
  std::uint64_t informed_count() const { return informed_count_; }

  void begin_step() { ++candidate_epoch_; }
  bool mark_candidate(NodeId node) {
    ensure(node.slot + 1);
    if (candidate_stamp_[node.slot] == candidate_epoch_) return false;
    candidate_stamp_[node.slot] = candidate_epoch_;
    return true;
  }

  void clear_deaths() {
    deaths_.clear();
    ++death_epoch_;
  }
  void note_death(NodeId node) {
    ensure(node.slot + 1);
    death_stamp_[node.slot] = death_epoch_;
    deaths_.push_back(node);
  }
  bool died_this_step(NodeId node) const {
    return node.slot < death_stamp_.size() &&
           death_stamp_[node.slot] == death_epoch_;
  }
  const std::vector<NodeId>& deaths() const { return deaths_; }

  std::vector<NodeId> frontier;
  std::vector<NodeId> neighbors;
  std::vector<CreatedEdge> created;
  std::vector<std::pair<NodeId, NodeId>> candidates;

 private:
  void ensure(std::uint32_t slot_bound) {
    if (slot_bound <= informed_stamp_.size()) return;
    const std::size_t size = std::max<std::size_t>(
        slot_bound, informed_stamp_.size() + informed_stamp_.size() / 2);
    informed_stamp_.resize(size, 0);
    candidate_stamp_.resize(size, 0);
    death_stamp_.resize(size, 0);
  }

  std::vector<std::uint64_t> informed_stamp_;
  std::vector<std::uint64_t> candidate_stamp_;
  std::vector<std::uint64_t> death_stamp_;
  std::vector<NodeId> deaths_;
  std::uint64_t informed_epoch_ = 0;
  std::uint64_t candidate_epoch_ = 0;
  std::uint64_t death_epoch_ = 0;
  std::uint64_t informed_count_ = 0;
};

template <typename Net>
FloodTrace legacy_flood_dynamic(Net& net, const FloodOptions& options,
                                LegacyFloodScratch& scratch) {
  using Semantics = typename Net::flood_semantics;
  FloodTrace trace;
  scratch.begin_trial(net.graph().slot_upper_bound());

  NodeId source = kInvalidNode;
  NetworkHooks hooks;
  hooks.on_birth = [&source](NodeId node, double) {
    if (!source.valid()) source = node;
  };
  hooks.on_edge_created = [&scratch](NodeId owner, std::uint32_t,
                                     NodeId target, bool, double) {
    scratch.created.push_back({owner, target});
  };
  hooks.on_death = [&scratch](NodeId node, double) {
    scratch.note_death(node);
  };
  net.set_hooks(std::move(hooks));

  if constexpr (Semantics::kSourceIsNewborn) {
    while (!source.valid()) net.step();
  } else {
    CHURNET_EXPECTS(net.graph().alive_count() > 0);
    source = net.graph().random_alive(net.rng());
  }
  scratch.created.clear();
  scratch.clear_deaths();
  scratch.mark_informed(source);
  scratch.frontier.push_back(source);

  trace.peak_informed = 1;
  detail_flood::record_step(trace, options, 1, net.graph().alive_count());

  for (std::uint64_t step = 1; step <= options.max_steps; ++step) {
    const DynamicGraph& graph = net.graph();

    scratch.candidates.clear();
    if constexpr (!Semantics::kPairCandidates) scratch.begin_step();
    auto consider = [&scratch](NodeId sender, NodeId receiver) {
      if constexpr (Semantics::kPairCandidates) {
        scratch.candidates.emplace_back(sender, receiver);
      } else {
        if (scratch.mark_candidate(receiver)) {
          scratch.candidates.emplace_back(sender, receiver);
        }
      }
    };
    for (const NodeId u : scratch.frontier) {
      if (!graph.is_alive(u)) continue;
      scratch.neighbors.clear();
      graph.append_neighbors(u, scratch.neighbors);
      for (const NodeId v : scratch.neighbors) {
        if (!scratch.is_informed(v)) consider(u, v);
      }
    }
    for (const CreatedEdge& edge : scratch.created) {
      if (!graph.is_alive(edge.owner) || !graph.is_alive(edge.target)) {
        continue;
      }
      const bool owner_informed = scratch.is_informed(edge.owner);
      const bool target_informed = scratch.is_informed(edge.target);
      if (owner_informed && !target_informed) {
        consider(edge.owner, edge.target);
      } else if (target_informed && !owner_informed) {
        consider(edge.target, edge.owner);
      }
    }
    scratch.created.clear();
    scratch.clear_deaths();

    Semantics::advance(net);

    for (const NodeId dead : scratch.deaths()) {
      scratch.unmark_informed(dead);
    }

    scratch.frontier.clear();
    for (const auto& [u, v] : scratch.candidates) {
      if constexpr (Semantics::kPairCandidates) {
        if (scratch.died_this_step(u) || scratch.died_this_step(v)) continue;
        CHURNET_ASSERT(net.graph().is_alive(v));
      } else {
        if (!net.graph().is_alive(v)) continue;
      }
      if (scratch.mark_informed(v)) scratch.frontier.push_back(v);
    }

    trace.steps = step;
    const std::uint64_t informed_count = scratch.informed_count();
    const std::uint64_t alive_count = net.graph().alive_count();
    trace.peak_informed = std::max(trace.peak_informed, informed_count);
    detail_flood::record_step(trace, options, informed_count, alive_count);
    trace.final_fraction = alive_count == 0
                               ? 0.0
                               : static_cast<double>(informed_count) /
                                     static_cast<double>(alive_count);

    if (Semantics::completed(informed_count, alive_count)) {
      trace.completed = true;
      trace.completion_step = step;
      break;
    }
    if (informed_count == 0) {
      trace.died_out = true;
      trace.die_out_step = step;
      if (options.stop_on_die_out) break;
    }
    if (options.stop_at_fraction < 1.0 &&
        trace.final_fraction >= options.stop_at_fraction) {
      break;
    }
    if constexpr (Semantics::kChurnFree) {
      if (scratch.frontier.empty()) break;
    }
  }

  net.set_hooks({});
  return trace;
}

// ---------------------------------------------------------------------------
// Live-oracle comparison: bitset path vs legacy stamp-array path on
// identically seeded concrete networks.
// ---------------------------------------------------------------------------

void expect_traces_equal(const FloodTrace& bitset, const FloodTrace& legacy) {
  ASSERT_EQ(bitset.informed_per_step, legacy.informed_per_step);
  ASSERT_EQ(bitset.alive_per_step, legacy.alive_per_step);
  EXPECT_EQ(bitset.steps, legacy.steps);
  EXPECT_EQ(bitset.completed, legacy.completed);
  EXPECT_EQ(bitset.completion_step, legacy.completion_step);
  EXPECT_EQ(bitset.died_out, legacy.died_out);
  EXPECT_EQ(bitset.die_out_step, legacy.die_out_step);
  EXPECT_EQ(bitset.peak_informed, legacy.peak_informed);
  EXPECT_DOUBLE_EQ(bitset.final_fraction, legacy.final_fraction);
}

/// Runs both drivers on two networks built by `make_net` (same seed, so
/// they evolve identically: neither driver consumes network randomness
/// beyond the shared source-selection path) and requires equality of the
/// full event sequence and the terminal informed set, slot for slot.
template <typename MakeNet>
void expect_bitset_matches_legacy(const MakeNet& make_net,
                                  std::uint32_t intra_threads) {
  FloodOptions options;
  options.intra_threads = intra_threads;

  auto legacy_net = make_net();
  LegacyFloodScratch legacy_scratch;
  const FloodTrace legacy =
      legacy_flood_dynamic(legacy_net, options, legacy_scratch);

  auto bitset_net = make_net();
  FloodScratch bitset_scratch;
  const FloodTrace bitset =
      flood_dynamic(bitset_net, options, bitset_scratch);

  expect_traces_equal(bitset, legacy);

  const std::uint32_t bound =
      std::max(legacy_net.graph().slot_upper_bound(),
               bitset_net.graph().slot_upper_bound());
  for (std::uint32_t slot = 0; slot < bound; ++slot) {
    const NodeId id{slot, 0};  // both membership sets are slot-indexed
    ASSERT_EQ(bitset_scratch.is_informed(id), legacy_scratch.is_informed(id))
        << "slot " << slot;
  }
  EXPECT_EQ(bitset_scratch.informed_count(),
            legacy_scratch.informed_count());
  EXPECT_EQ(bitset_net.graph().alive_count(),
            legacy_net.graph().alive_count());
}

struct OracleParam {
  const char* name;
  std::uint32_t intra_threads;
};

std::string oracle_param_name(
    const ::testing::TestParamInfo<OracleParam>& info) {
  std::string name = info.param.name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_intra" + std::to_string(info.param.intra_threads);
}

class BitsetFloodOracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(BitsetFloodOracle, MatchesStampArrayPathBitForBit) {
  const OracleParam param = GetParam();
  const std::string name = param.name;
  const std::uint32_t intra = param.intra_threads;
  if (name == "SDG" || name == "SDGR") {
    StreamingConfig config;
    config.n = 600;
    config.d = 4;
    config.policy =
        name == "SDG" ? EdgePolicy::kNone : EdgePolicy::kRegenerate;
    config.seed = 1234;
    expect_bitset_matches_legacy(
        [&config] {
          StreamingNetwork net(config);
          net.warm_up();
          return net;
        },
        intra);
  } else if (name == "PDG" || name == "PDGR") {
    const PoissonConfig config = PoissonConfig::with_n(
        300, 5, name == "PDG" ? EdgePolicy::kNone : EdgePolicy::kRegenerate,
        987);
    expect_bitset_matches_legacy(
        [&config] {
          PoissonNetwork net(config);
          net.warm_up();
          return net;
        },
        intra);
  } else {
    StaticConfig config;
    config.n = 800;
    config.d = 4;
    config.topology = name == "static-dout"
                          ? StaticConfig::Topology::kDOut
                          : StaticConfig::Topology::kErdosRenyi;
    config.seed = 4321;
    expect_bitset_matches_legacy(
        [&config] { return StaticNetwork(config); }, intra);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, BitsetFloodOracle,
    ::testing::Values(OracleParam{"SDG", 1}, OracleParam{"SDGR", 1},
                      OracleParam{"PDG", 1}, OracleParam{"PDGR", 1},
                      OracleParam{"static-dout", 1},
                      OracleParam{"erdos-renyi", 1},
                      // The sharded scan must replay the exact sequential
                      // order: re-run the oracle at worker counts 2 and 4.
                      OracleParam{"SDGR", 2}, OracleParam{"SDGR", 4},
                      OracleParam{"PDGR", 4},
                      OracleParam{"static-dout", 4}),
    oracle_param_name);

// ---------------------------------------------------------------------------
// Pinned checksums, captured from the last stamp-array build. The digest
// covers the full trace (every per-step informed/alive count), the
// message-complexity stats (dissemination pins) and the terminal informed
// set in alive-node order, so any behavioral drift — even one applied to
// oracle and subject in tandem — flips the constant.
// ---------------------------------------------------------------------------

struct Fnv {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  void add(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
  }
  void add_double(double value) {
    if (std::isnan(value)) {
      add(0x7FF8DEADBEEF0000ULL);  // one canonical NaN
      return;
    }
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    add(bits);
  }
};

void add_trace(Fnv& fnv, const FloodTrace& trace) {
  fnv.add(trace.steps);
  fnv.add(trace.completed ? 1 : 0);
  fnv.add(trace.completion_step);
  fnv.add(trace.died_out ? 1 : 0);
  fnv.add(trace.die_out_step);
  fnv.add(trace.peak_informed);
  fnv.add_double(trace.final_fraction);
  for (const std::uint64_t v : trace.informed_per_step) fnv.add(v);
  for (const std::uint64_t v : trace.alive_per_step) fnv.add(v);
}

void add_stats(Fnv& fnv, const ProtocolStats& stats) {
  fnv.add(stats.messages_sent);
  fnv.add(stats.overhead_messages);
  fnv.add(stats.lost_messages);
  fnv.add(stats.useful_deliveries);
  fnv.add(stats.duplicate_deliveries);
}

void add_terminal_informed(Fnv& fnv, const DynamicGraph& graph,
                           const FloodScratch& scratch) {
  for (const NodeId node : graph.alive_nodes()) {
    if (!scratch.is_informed(node)) continue;
    fnv.add((static_cast<std::uint64_t>(node.slot) << 32) | node.generation);
  }
}

std::uint64_t flood_checksum(const char* scenario_name, std::uint32_t n,
                             std::uint32_t d, std::uint64_t seed,
                             std::uint32_t intra_threads) {
  ScenarioParams params;
  params.n = n;
  params.d = d;
  params.seed = seed;
  params.intra_threads = intra_threads;
  AnyNetwork net =
      ScenarioRegistry::paper().at(scenario_name).make_warmed(params);
  FloodScratch scratch;
  FloodOptions options;
  options.intra_threads = intra_threads;
  const FloodTrace trace = net.flood(options, scratch);
  Fnv fnv;
  add_trace(fnv, trace);
  add_terminal_informed(fnv, net.graph(), scratch);
  return fnv.hash;
}

std::uint64_t gossip_checksum(const char* scenario_name,
                              const char* protocol_text, std::uint32_t n,
                              std::uint32_t d, std::uint64_t net_seed,
                              std::uint64_t proto_seed,
                              std::uint32_t intra_threads) {
  ScenarioParams params;
  params.n = n;
  params.d = d;
  params.seed = net_seed;
  params.intra_threads = intra_threads;
  AnyNetwork net =
      ScenarioRegistry::paper().at(scenario_name).make_warmed(params);
  const ProtocolSpec spec = *ProtocolSpec::parse(protocol_text);
  std::unique_ptr<DisseminationProtocol> protocol = make_protocol(spec);
  ProtocolOptions options = protocol_options(spec, proto_seed);
  options.flood.intra_threads = intra_threads;
  ProtocolScratch scratch;
  const ProtocolResult result = net.disseminate(*protocol, options, scratch);
  Fnv fnv;
  add_trace(fnv, result.trace);
  add_stats(fnv, result.stats);
  add_terminal_informed(fnv, net.graph(), scratch.flood);
  return fnv.hash;
}

TEST(BitsetFloodPins, FloodMatchesStampArrayBuildOnAllScenarios) {
  struct Pin {
    const char* scenario;
    std::uint64_t checksum;
  };
  // n=600, d=4, seed=1234 on every scenario; constants captured from the
  // pre-rewrite build.
  const Pin kPins[] = {
      {"SDG", 0xbf10d346a574f7aaULL},
      {"SDGR", 0x513974ac2ced4d0fULL},
      {"PDG", 0xf585014a3d65583eULL},
      {"PDGR", 0xfa3aa17c23690838ULL},
      {"static-dout", 0x174d64f878ea6648ULL},
      {"erdos-renyi", 0xaba951962e3b43d7ULL},
  };
  for (const Pin& pin : kPins) {
    EXPECT_EQ(flood_checksum(pin.scenario, 600, 4, 1234, 1), pin.checksum)
        << pin.scenario;
  }
}

TEST(BitsetFloodPins, DisseminationMatchesStampArrayBuild) {
  struct Pin {
    const char* scenario;
    const char* protocol;
    std::uint32_t n;
    std::uint32_t d;
    std::uint64_t net_seed;
    std::uint64_t proto_seed;
    std::uint64_t checksum;
  };
  const Pin kPins[] = {
      {"SDGR", "flood", 500, 4, 99, 777, 0x287c4b29ab7c50bdULL},
      {"SDGR", "ttl(3)", 500, 4, 99, 777, 0x91ab65c9ddedd027ULL},
      {"SDGR", "push(3)", 500, 4, 99, 777, 0x8bd58d8967d1d51dULL},
      {"SDGR", "pull(2)", 500, 4, 99, 777, 0x5055dac39042aa34ULL},
      {"SDGR", "push-pull(2)", 500, 4, 99, 777, 0xf8f4d6eabd5cb56dULL},
      {"SDGR", "flood+lossy(0.9)", 500, 4, 99, 777, 0x6d25478d32bc6b74ULL},
      {"PDG", "flood", 300, 5, 7, 3, 0x59338870afcd4868ULL},
      {"PDG", "push(2)", 300, 5, 7, 3, 0xf159e7e7a867ab4cULL},
  };
  for (const Pin& pin : kPins) {
    EXPECT_EQ(gossip_checksum(pin.scenario, pin.protocol, pin.n, pin.d,
                              pin.net_seed, pin.proto_seed, 1),
              pin.checksum)
        << pin.scenario << " " << pin.protocol;
  }
}

TEST(BitsetFloodPins, IntraThreadsIsByteIdentical) {
  // intra_threads parallelizes the genesis bulk wiring and the boundary
  // scans; the acceptance bar is byte-identity at k in {2, 4}, checked
  // here as checksum equality against the k=1 run (which the pins above
  // tie to the stamp-array build).
  for (const std::uint32_t k : {2u, 4u}) {
    EXPECT_EQ(flood_checksum("SDG", 600, 4, 1234, k),
              flood_checksum("SDG", 600, 4, 1234, 1))
        << "k=" << k;
    EXPECT_EQ(flood_checksum("SDGR", 600, 4, 1234, k),
              flood_checksum("SDGR", 600, 4, 1234, 1))
        << "k=" << k;
    EXPECT_EQ(flood_checksum("PDGR", 600, 4, 1234, k),
              flood_checksum("PDGR", 600, 4, 1234, 1))
        << "k=" << k;
    EXPECT_EQ(gossip_checksum("SDGR", "ttl(3)", 500, 4, 99, 777, k),
              gossip_checksum("SDGR", "ttl(3)", 500, 4, 99, 777, 1))
        << "k=" << k;
    EXPECT_EQ(gossip_checksum("SDGR", "flood+lossy(0.9)", 500, 4, 99, 777, k),
              gossip_checksum("SDGR", "flood+lossy(0.9)", 500, 4, 99, 777, 1))
        << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Genesis bulk wiring: run_growth_phase must leave the graph (and the
// network RNG) in exactly the state n sequential growth rounds produce —
// same neighbor lists in the same order, same pool layout consequences.
// ---------------------------------------------------------------------------

TEST(BulkGenesisWiring, MatchesSequentialGrowthExactly) {
  StreamingConfig config;
  config.n = 2000;
  config.d = 6;
  config.policy = EdgePolicy::kRegenerate;
  config.seed = 20240815;

  StreamingNetwork sequential(config);
  sequential.run_rounds(config.n);

  StreamingConfig bulk_config = config;
  bulk_config.intra_threads = 4;
  StreamingNetwork bulk(bulk_config);
  bulk.run_growth_phase();

  ASSERT_TRUE(bulk.graph().check_consistency());
  ASSERT_EQ(bulk.graph().alive_count(), sequential.graph().alive_count());
  ASSERT_EQ(bulk.graph().slot_upper_bound(),
            sequential.graph().slot_upper_bound());

  // Neighbor lists in order cover both pools: out-run contents plus
  // in-list insertion order (and with it every in_pos back-pointer).
  std::vector<NodeId> expected;
  std::vector<NodeId> actual;
  for (const NodeId node : sequential.graph().alive_nodes()) {
    ASSERT_TRUE(bulk.graph().is_alive(node));
    expected.clear();
    actual.clear();
    sequential.graph().append_neighbors(node, expected);
    bulk.graph().append_neighbors(node, actual);
    ASSERT_EQ(actual, expected) << "slot " << node.slot;
  }

  // The replay consumed the identical RNG draw sequence, so continuing
  // both networks must keep them in lockstep through real churn.
  sequential.run_rounds(config.n);
  bulk.run_rounds(config.n);
  ASSERT_EQ(bulk.graph().alive_count(), sequential.graph().alive_count());
  for (const NodeId node : sequential.graph().alive_nodes()) {
    ASSERT_TRUE(bulk.graph().is_alive(node));
    expected.clear();
    actual.clear();
    sequential.graph().append_neighbors(node, expected);
    bulk.graph().append_neighbors(node, actual);
    ASSERT_EQ(actual, expected) << "slot " << node.slot;
  }
}

TEST(BulkGenesisWiring, HookedAndBoundedDegreeNetworksFallBackUnchanged) {
  // run_growth_phase must refuse the bulk path whenever it could be
  // observed (hooks) or wrong (bounded in-degree) — warm_up on such a
  // network still matches a from-scratch sequential run.
  StreamingConfig config;
  config.n = 500;
  config.d = 4;
  config.policy = EdgePolicy::kNone;
  config.seed = 77;
  config.max_in_degree = 12;

  StreamingNetwork sequential(config);
  sequential.run_rounds(config.n);

  StreamingNetwork bulk(config);
  bulk.run_growth_phase();

  ASSERT_EQ(bulk.graph().alive_count(), sequential.graph().alive_count());
  std::vector<NodeId> expected;
  std::vector<NodeId> actual;
  for (const NodeId node : sequential.graph().alive_nodes()) {
    expected.clear();
    actual.clear();
    sequential.graph().append_neighbors(node, expected);
    bulk.graph().append_neighbors(node, actual);
    ASSERT_EQ(actual, expected) << "slot " << node.slot;
  }
}

}  // namespace
}  // namespace churnet
