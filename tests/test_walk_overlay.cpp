// Tests for baselines/walk_overlay.hpp: the decentralized random-walk
// sampling overlay (paper Section 2 related-work baseline).
#include "baselines/walk_overlay.hpp"

#include <gtest/gtest.h>

#include "benchutil/experiment.hpp"
#include "expansion/expansion.hpp"
#include "expansion/spectral.hpp"
#include "graph/algorithms.hpp"
#include "models/streaming_network.hpp"

namespace churnet {
namespace {

WalkOverlayConfig make_config(std::uint32_t n, std::uint32_t m,
                              std::uint64_t seed) {
  WalkOverlayConfig config;
  config.n = n;
  config.m = m;
  config.seed = seed;
  return config;
}

TEST(WalkOverlay, WarmUpReachesN) {
  WalkOverlay overlay(make_config(200, 4, 1));
  overlay.warm_up();
  EXPECT_EQ(overlay.graph().alive_count(), 200u);
  EXPECT_EQ(overlay.round(), 400u);
}

TEST(WalkOverlay, SizeStaysPinned) {
  WalkOverlay overlay(make_config(100, 4, 2));
  overlay.warm_up();
  for (int i = 0; i < 150; ++i) {
    overlay.step();
    EXPECT_EQ(overlay.graph().alive_count(), 100u);
  }
}

TEST(WalkOverlay, GraphStaysConsistent) {
  WalkOverlay overlay(make_config(300, 6, 3));
  overlay.warm_up();
  overlay.run_rounds(500);
  EXPECT_TRUE(overlay.graph().check_consistency());
}

TEST(WalkOverlay, OutDegreeAtMostM) {
  WalkOverlay overlay(make_config(200, 5, 4));
  overlay.warm_up();
  for (const NodeId node : overlay.graph().alive_nodes()) {
    EXPECT_LE(overlay.graph().out_degree(node), 5u);
  }
}

TEST(WalkOverlay, StaysConnectedAtModerateM) {
  WalkOverlay overlay(make_config(1000, 6, 5));
  overlay.warm_up();
  const Components comps = connected_components(overlay.snapshot());
  EXPECT_GT(static_cast<double>(comps.largest_size), 0.99 * 1000);
}

TEST(WalkOverlay, IsAnExpanderAtModerateM) {
  WalkOverlay overlay(make_config(2000, 8, 6));
  overlay.warm_up();
  Rng probe_rng(7);
  const ProbeResult probe =
      probe_expansion(overlay.snapshot(), probe_rng, {});
  EXPECT_GT(probe.min_ratio, 0.1);
  Rng power_rng(8);
  const SpectralResult spectral =
      spectral_gap(overlay.snapshot(), power_rng);
  EXPECT_GT(spectral.spectral_gap, 0.05);
}

TEST(WalkOverlay, DegreeBiasExceedsUniformDialing) {
  // Walk endpoints are degree-biased (pi ~ deg), so the maximum degree
  // should exceed the uniform-oracle SDGR at the same (n, d).
  constexpr std::uint32_t kN = 2000;
  constexpr std::uint32_t kM = 8;
  std::uint32_t overlay_max = 0;
  std::uint32_t sdgr_max = 0;
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    WalkOverlay overlay(make_config(kN, kM, derive_seed(9, 0, rep)));
    overlay.warm_up();
    overlay_max =
        std::max(overlay_max, degree_stats(overlay.snapshot()).max);
    StreamingConfig config;
    config.n = kN;
    config.d = kM;
    config.policy = EdgePolicy::kRegenerate;
    config.seed = derive_seed(9, 1, rep);
    StreamingNetwork sdgr(config);
    sdgr.warm_up();
    sdgr_max = std::max(sdgr_max, degree_stats(sdgr.snapshot()).max);
  }
  EXPECT_GT(overlay_max, sdgr_max);
}

TEST(WalkOverlay, RegenerationKeepsDegreesNearlyFull) {
  WalkOverlay overlay(make_config(500, 6, 10));
  overlay.warm_up();
  overlay.run_rounds(500);
  std::uint64_t wired = 0;
  for (const NodeId node : overlay.graph().alive_nodes()) {
    wired += overlay.graph().out_degree(node);
  }
  const double fill =
      static_cast<double>(wired) / (500.0 * 6.0);
  EXPECT_GT(fill, 0.95);
}

TEST(WalkOverlay, NoRegenerationLosesEdges) {
  WalkOverlayConfig config = make_config(500, 6, 11);
  config.regenerate = false;
  WalkOverlay overlay(config);
  overlay.warm_up();
  std::uint64_t wired = 0;
  for (const NodeId node : overlay.graph().alive_nodes()) {
    wired += overlay.graph().out_degree(node);
  }
  const double fill = static_cast<double>(wired) / (500.0 * 6.0);
  EXPECT_LT(fill, 0.90);
}

TEST(WalkOverlay, DeterministicForSeed) {
  WalkOverlay a(make_config(150, 4, 12));
  WalkOverlay b(make_config(150, 4, 12));
  a.warm_up();
  b.warm_up();
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  EXPECT_EQ(a.failed_walks(), b.failed_walks());
}

TEST(WalkOverlay, HooksFire) {
  WalkOverlay overlay(make_config(100, 4, 13));
  std::uint64_t births = 0;
  std::uint64_t edges = 0;
  NetworkHooks hooks;
  hooks.on_birth = [&](NodeId, double) { ++births; };
  hooks.on_edge_created = [&](NodeId, std::uint32_t, NodeId, bool, double) {
    ++edges;
  };
  overlay.set_hooks(std::move(hooks));
  overlay.run_rounds(50);
  EXPECT_EQ(births, 50u);
  EXPECT_GT(edges, 0u);
}

}  // namespace
}  // namespace churnet
