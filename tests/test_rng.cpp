// Unit and statistical tests for common/rng.hpp. All statistical checks use
// fixed seeds and tolerances wide enough (>= 6 sigma) to be deterministic.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace churnet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LE(same, 1);
}

TEST(Rng, AdjacentSeedsDecorrelated) {
  // splitmix64 seeding should decorrelate seeds 0 and 1.
  Rng a(0);
  Rng b(1);
  std::uint64_t agree_bits = 0;
  constexpr int kWords = 256;
  for (int i = 0; i < kWords; ++i) {
    agree_bits += 64 - std::popcount(a.next_u64() ^ b.next_u64());
  }
  const double mean_agree = static_cast<double>(agree_bits) / kWords;
  EXPECT_NEAR(mean_agree, 32.0, 3.0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  // Expected 10000 per bucket; 6-sigma band ~ +-600.
  for (const int c : counts) EXPECT_NEAR(c, kDraws / kBound, 600);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Real01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.real01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Real01MeanAndVariance) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.real01();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BernoulliFrequencyAcrossTheProbabilityRange) {
  // The lossy-link coin runs at arbitrary q: check the hit rate within a
  // 4-sigma binomial band at extreme and midrange probabilities.
  constexpr int kDraws = 200000;
  std::uint64_t stream = 0;
  for (const double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    Rng rng(100 + stream++);
    int hits = 0;
    for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(p) ? 1 : 0;
    const double sigma = std::sqrt(p * (1.0 - p) / kDraws);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 4.0 * sigma) << p;
  }
}

TEST(Rng, BernoulliDrawsAreSeriallyUncorrelated) {
  // Lag-1 correlation of the coin stream: consecutive draws must look
  // independent, or a lossy link would drop messages in bursts.
  Rng rng(29);
  constexpr int kDraws = 200000;
  constexpr double kP = 0.4;
  int hits = 0;
  int consecutive = 0;  // (1,1) pairs at lag 1
  bool previous = rng.bernoulli(kP);
  hits += previous ? 1 : 0;
  for (int i = 1; i < kDraws; ++i) {
    const bool draw = rng.bernoulli(kP);
    hits += draw ? 1 : 0;
    consecutive += (draw && previous) ? 1 : 0;
    previous = draw;
  }
  // P(pair of ones) == p^2 under independence; 4-sigma band.
  const double pair_rate =
      static_cast<double>(consecutive) / (kDraws - 1);
  const double sigma =
      std::sqrt(kP * kP * (1.0 - kP * kP) / (kDraws - 1));
  EXPECT_NEAR(pair_rate, kP * kP, 4.0 * sigma);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, kP, 0.01);
}

TEST(Rng, BernoulliStreamsDecorrelateAcrossSeeds) {
  // Adjacent seeds must give independent coin streams (splitmix64
  // seeding): the agreement rate of two streams at p = 0.5 is 1/2.
  Rng a(1000);
  Rng b(1001);
  constexpr int kDraws = 100000;
  int agree = 0;
  for (int i = 0; i < kDraws; ++i) {
    agree += a.bernoulli(0.5) == b.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(agree) / kDraws, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  for (const double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) sum += rng.exponential(rate);
    EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.05 / rate);
  }
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialMemorylessTail) {
  // P(X > 2) should be e^-2 for rate 1.
  Rng rng(31);
  constexpr int kDraws = 200000;
  int tail = 0;
  for (int i = 0; i < kDraws; ++i) tail += rng.exponential(1.0) > 2.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(tail) / kDraws, std::exp(-2.0), 0.004);
}

TEST(Rng, ParetoSupportMeanAndTail) {
  Rng rng(53);
  constexpr double kAlpha = 2.5;
  constexpr double kXmin = 3.0;
  constexpr int kDraws = 200000;
  double sum = 0.0;
  int tail = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.pareto(kAlpha, kXmin);
    EXPECT_GE(x, kXmin);
    sum += x;
    tail += x > 2.0 * kXmin ? 1 : 0;
  }
  // Mean alpha*xmin/(alpha-1) = 5; tail P(X > 2*xmin) = 2^-alpha.
  EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
  EXPECT_NEAR(static_cast<double>(tail) / kDraws, std::pow(2.0, -kAlpha),
              0.005);
}

TEST(Rng, WeibullMeanAndShapeOneIsExponential) {
  Rng rng(59);
  constexpr int kDraws = 200000;
  // Shape 1 degenerates to Exp(1/scale).
  double sum = 0.0;
  int tail = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.weibull(1.0, 2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
    tail += x > 4.0 ? 1 : 0;
  }
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);
  EXPECT_NEAR(static_cast<double>(tail) / kDraws, std::exp(-2.0), 0.005);
  // General shape: mean = scale * Gamma(1 + 1/k).
  constexpr double kShape = 0.7;
  constexpr double kScale = 5.0;
  sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.weibull(kShape, kScale);
  EXPECT_NEAR(sum / kDraws, kScale * std::tgamma(1.0 + 1.0 / kShape),
              0.2);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(37);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / draws;
  const double sample_var = sum_sq / draws - sample_mean * sample_mean;
  const double sigma = std::sqrt(mean / draws);
  EXPECT_NEAR(sample_mean, mean, 8.0 * sigma + 1e-9);
  EXPECT_NEAR(sample_var, mean, 0.1 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 30.0, 100.0,
                                           1000.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(43);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(47);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

class BinomialTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(BinomialTest, MeanMatches) {
  const auto [n, p] = GetParam();
  Rng rng(53);
  double sum = 0.0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t x = rng.binomial(n, p);
    EXPECT_LE(x, n);
    sum += static_cast<double>(x);
  }
  const double expected = static_cast<double>(n) * p;
  const double sigma =
      std::sqrt(static_cast<double>(n) * p * (1 - p) / draws);
  EXPECT_NEAR(sum / draws, expected, 8.0 * sigma + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Various, BinomialTest,
    ::testing::Values(std::pair<std::uint64_t, double>{10, 0.5},
                      std::pair<std::uint64_t, double>{100, 0.03},
                      std::pair<std::uint64_t, double>{100, 0.97},
                      std::pair<std::uint64_t, double>{1000, 0.5},
                      std::pair<std::uint64_t, double>{5, 0.0},
                      std::pair<std::uint64_t, double>{5, 1.0}));

TEST(Rng, BinomialDegenerateCases) {
  Rng rng(59);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(std::span<int>(values));
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleUniformFirstElement) {
  Rng rng(67);
  constexpr int kSize = 8;
  constexpr int kTrials = 80000;
  std::vector<int> first_counts(kSize, 0);
  std::vector<int> values(kSize);
  for (int t = 0; t < kTrials; ++t) {
    std::iota(values.begin(), values.end(), 0);
    rng.shuffle(std::span<int>(values));
    ++first_counts[static_cast<std::size_t>(values[0])];
  }
  for (const int c : first_counts) EXPECT_NEAR(c, kTrials / kSize, 700);
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(71);
  for (const std::uint64_t population : {10ull, 100ull, 100000ull}) {
    for (const std::uint64_t k :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5},
          population / 2}) {
      const auto picked = rng.sample_distinct(population, k);
      EXPECT_EQ(picked.size(), k);
      std::set<std::uint64_t> unique(picked.begin(), picked.end());
      EXPECT_EQ(unique.size(), k);
      for (const std::uint64_t v : picked) EXPECT_LT(v, population);
    }
  }
}

TEST(Rng, SampleDistinctFullPopulation) {
  Rng rng(73);
  const auto picked = rng.sample_distinct(20, 20);
  std::set<std::uint64_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Rng, SampleDistinctIsUniform) {
  Rng rng(79);
  constexpr std::uint64_t kPopulation = 10;
  std::vector<int> counts(kPopulation, 0);
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    for (const std::uint64_t v : rng.sample_distinct(kPopulation, 3)) {
      ++counts[v];
    }
  }
  // Each element appears with probability 3/10 per trial.
  for (const int c : counts) EXPECT_NEAR(c, kTrials * 3 / 10, 800);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(83);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace churnet
