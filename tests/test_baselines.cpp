// Tests for the static baselines (Lemma B.1 d-out graphs, Erdős–Rényi).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/erdos_renyi.hpp"
#include "baselines/static_dout.hpp"
#include "graph/algorithms.hpp"

namespace churnet {
namespace {

TEST(StaticDout, HasExactlyNDEdges) {
  Rng rng(1);
  const Snapshot snap = static_dout_snapshot(500, 4, rng);
  EXPECT_EQ(snap.node_count(), 500u);
  EXPECT_EQ(snap.edge_count(), 2000u);
}

TEST(StaticDout, NoSelfLoops) {
  Rng rng(2);
  const Snapshot snap = static_dout_snapshot(100, 5, rng);
  for (std::uint32_t v = 0; v < snap.node_count(); ++v) {
    for (const std::uint32_t w : snap.neighbors(v)) EXPECT_NE(w, v);
  }
}

TEST(StaticDout, MinDegreeAtLeastD) {
  // Every node issues d requests, so degree >= d.
  Rng rng(3);
  const Snapshot snap = static_dout_snapshot(300, 4, rng);
  EXPECT_GE(degree_stats(snap).min, 4u);
}

TEST(StaticDout, MeanDegreeIsTwoD) {
  Rng rng(4);
  const Snapshot snap = static_dout_snapshot(1000, 6, rng);
  EXPECT_DOUBLE_EQ(degree_stats(snap).mean, 12.0);
}

TEST(StaticDout, ConnectedForDAtLeastThree) {
  // Lemma B.1 regime: d >= 3 gives an expander (hence connected) w.h.p.
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    Rng rng(seed);
    const Snapshot snap = static_dout_snapshot(2000, 3, rng);
    const Components comps = connected_components(snap);
    EXPECT_EQ(comps.count, 1u) << "seed " << seed;
  }
}

TEST(StaticDout, LogarithmicDiameterShape) {
  Rng rng(5);
  const Snapshot snap = static_dout_snapshot(4000, 4, rng);
  const StaticFloodResult flood = static_flood(snap, 0);
  EXPECT_TRUE(flood.completed);
  EXPECT_LE(flood.rounds, static_cast<std::uint64_t>(
                              4.0 * std::log2(4000.0)));
}

TEST(StaticFlood, PartialReachOnDisconnectedGraph) {
  const Snapshot snap = Snapshot::from_edges(
      5, std::vector<std::pair<std::uint32_t, std::uint32_t>>{{0, 1}, {2, 3}});
  const StaticFloodResult flood = static_flood(snap, 0);
  EXPECT_FALSE(flood.completed);
  EXPECT_EQ(flood.informed, 2u);
  EXPECT_EQ(flood.rounds, 1u);
}

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  Rng rng(6);
  constexpr std::uint32_t kN = 1000;
  const double p = 0.01;
  const Snapshot snap = erdos_renyi_snapshot(kN, p, rng);
  const double expected = p * kN * (kN - 1) / 2.0;
  const double sigma = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(snap.edge_count()), expected,
              8.0 * sigma);
}

TEST(ErdosRenyi, ZeroProbabilityNoEdges) {
  Rng rng(7);
  const Snapshot snap = erdos_renyi_snapshot(50, 0.0, rng);
  EXPECT_EQ(snap.edge_count(), 0u);
}

TEST(ErdosRenyi, FullProbabilityCompleteGraph) {
  Rng rng(8);
  const Snapshot snap = erdos_renyi_snapshot(20, 1.0, rng);
  EXPECT_EQ(snap.edge_count(), 190u);
  for (std::uint32_t v = 0; v < 20; ++v) EXPECT_EQ(snap.degree(v), 19u);
}

TEST(ErdosRenyi, NoSelfLoopsOrDuplicates) {
  Rng rng(9);
  const Snapshot snap = erdos_renyi_snapshot(200, 0.05, rng);
  for (std::uint32_t v = 0; v < snap.node_count(); ++v) {
    std::set<std::uint32_t> seen;
    for (const std::uint32_t w : snap.neighbors(v)) {
      EXPECT_NE(w, v);
      EXPECT_TRUE(seen.insert(w).second) << "duplicate edge " << v << "-" << w;
    }
  }
}

TEST(ErdosRenyi, SupercriticalGiantComponent) {
  // p = 3/n: giant component should cover most nodes.
  Rng rng(10);
  constexpr std::uint32_t kN = 2000;
  const Snapshot snap = erdos_renyi_snapshot(kN, 3.0 / kN, rng);
  const Components comps = connected_components(snap);
  EXPECT_GT(comps.largest_size, kN / 2);
}

TEST(ErdosRenyi, DegreeDistributionMeanMatches) {
  Rng rng(11);
  constexpr std::uint32_t kN = 3000;
  const double p = 2.0 / kN;
  const Snapshot snap = erdos_renyi_snapshot(kN, p, rng);
  EXPECT_NEAR(degree_stats(snap).mean, 2.0, 0.2);
}

}  // namespace
}  // namespace churnet
