// Equivalence proof for the ChurnProcess refactor: the four paper models
// (SDG, SDGR, PDG, PDGR) built through the pluggable churn layer are
// bit-identical to the pre-refactor simulators — same seeds, same churn
// event sequences, same graphs, same flood traces.
//
// The reference implementations below are verbatim copies of the
// pre-refactor StreamingNetwork::step() and PoissonNetwork event loop (the
// simulators owned their churn objects and inlined the round/event
// structure). They drive the same primitives (StreamingChurn's
// round-structured API, PoissonChurn's raw jump chain, the shared wiring
// helpers) in the exact pre-refactor order, so any divergence in the
// refactored paths — an extra RNG draw, a reordered hook, a changed
// timestamp — shows up as a hard mismatch here.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "churn/poisson_churn.hpp"
#include "churn/streaming_churn.hpp"
#include "engine/scenario.hpp"
#include "flooding/flood_driver.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/snapshot.hpp"
#include "models/poisson_network.hpp"
#include "models/streaming_network.hpp"
#include "models/wiring.hpp"

namespace churnet {
namespace {

// ---- pre-refactor reference simulators -------------------------------------

/// The seed repository's StreamingNetwork (PR 1 state): owns a
/// StreamingChurn and drives it through begin_round()/record_birth().
class ReferenceStreamingNetwork {
 public:
  using flood_semantics = StreamingFloodSemantics;

  explicit ReferenceStreamingNetwork(StreamingConfig config)
      : config_(config), churn_(config.n), rng_(config.seed) {}

  struct RoundReport {
    std::uint64_t round = 0;
    NodeId born;
    std::optional<NodeId> died;
  };

  RoundReport step() {
    RoundReport report;
    const std::optional<NodeId> victim = churn_.begin_round();
    const double time_of_round = static_cast<double>(churn_.round());

    const WiringLimits limits{config_.max_in_degree, 8};
    if (victim.has_value()) {
      report.died = victim;
      if (hooks_.on_death) hooks_.on_death(*victim, time_of_round);
      const std::vector<OutSlotRef> orphans = graph_.remove_node(*victim);
      if (config_.policy == EdgePolicy::kRegenerate) {
        detail::regenerate_requests(graph_, rng_, orphans, hooks_,
                                    time_of_round, limits);
      }
    }

    const NodeId born = graph_.add_node(config_.d, time_of_round);
    detail::issue_initial_requests(graph_, rng_, born, hooks_, time_of_round,
                                   limits);
    churn_.record_birth(born);
    if (hooks_.on_birth) hooks_.on_birth(born, time_of_round);

    report.round = churn_.round();
    report.born = born;
    return report;
  }

  void run_rounds(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) step();
  }
  void run_until(double time) {
    while (now() < time) step();
  }
  void warm_up() { run_rounds(2ull * config_.n); }

  Snapshot snapshot() const { return Snapshot::capture(graph_, now()); }
  const DynamicGraph& graph() const { return graph_; }
  double now() const { return static_cast<double>(churn_.round()); }
  Rng& rng() { return rng_; }
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

 private:
  StreamingConfig config_;
  StreamingChurn churn_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
};

/// The seed repository's PoissonNetwork (PR 1 state): owns a PoissonChurn
/// seeded Rng(seed).next_u64() and applies raw ChurnEvents.
class ReferencePoissonNetwork {
 public:
  using flood_semantics = DiscretizedFloodSemantics;

  explicit ReferencePoissonNetwork(PoissonConfig config)
      : config_(config),
        churn_(config.lambda, config.mu, Rng(config.seed).next_u64()),
        rng_(config.seed + 0x51ED270B9F9B42A5ULL) {}

  struct EventReport {
    ChurnEvent::Kind kind = ChurnEvent::Kind::kBirth;
    double time = 0.0;
    NodeId node;
  };

  EventReport step() {
    ChurnEvent event;
    if (pending_valid_) {
      event = pending_;
      pending_valid_ = false;
    } else {
      event = churn_.next(graph_.alive_count());
    }
    return apply(event);
  }

  void run_until(double time) {
    for (;;) {
      if (!pending_valid_) {
        pending_ = churn_.next(graph_.alive_count());
        pending_valid_ = true;
      }
      if (pending_.time > time) break;
      pending_valid_ = false;
      apply(pending_);
    }
    now_ = time;
  }
  void warm_up(double multiple = 10.0) {
    run_until(now_ + multiple / config_.mu);
  }

  Snapshot snapshot() const { return Snapshot::capture(graph_, now_); }
  const DynamicGraph& graph() const { return graph_; }
  double now() const { return now_; }
  Rng& rng() { return rng_; }
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

 private:
  EventReport apply(const ChurnEvent& event) {
    now_ = event.time;
    EventReport report;
    report.kind = event.kind;
    report.time = event.time;

    const WiringLimits limits{config_.max_in_degree, 8};
    if (event.kind == ChurnEvent::Kind::kBirth) {
      const NodeId born = graph_.add_node(config_.d, event.time);
      detail::issue_initial_requests(graph_, rng_, born, hooks_, event.time,
                                     limits);
      if (hooks_.on_birth) hooks_.on_birth(born, event.time);
      report.node = born;
      return report;
    }
    const NodeId victim = graph_.random_alive(rng_);
    if (hooks_.on_death) hooks_.on_death(victim, event.time);
    const std::vector<OutSlotRef> orphans = graph_.remove_node(victim);
    if (config_.policy == EdgePolicy::kRegenerate) {
      detail::regenerate_requests(graph_, rng_, orphans, hooks_, event.time,
                                  limits);
    }
    report.node = victim;
    return report;
  }

  PoissonConfig config_;
  PoissonChurn churn_;
  DynamicGraph graph_;
  Rng rng_;
  NetworkHooks hooks_;
  double now_ = 0.0;
  bool pending_valid_ = false;
  ChurnEvent pending_{};
};

// ---- comparison helpers ----------------------------------------------------

/// Full out-edge table of the alive graph: (owner, slot targets...) for
/// every alive node. Captures topology exactly (including dangling slots
/// and parallel edges), so equality here is graph identity.
std::vector<std::vector<NodeId>> edge_table(const DynamicGraph& graph) {
  std::vector<std::vector<NodeId>> table;
  for (const NodeId node : graph.alive_nodes()) {
    std::vector<NodeId> row{node};
    for (std::uint32_t i = 0; i < graph.out_slot_count(node); ++i) {
      row.push_back(graph.out_target(node, i));
    }
    table.push_back(std::move(row));
  }
  return table;
}

void expect_same_trace(const FloodTrace& a, const FloodTrace& b) {
  EXPECT_EQ(a.informed_per_step, b.informed_per_step);
  EXPECT_EQ(a.alive_per_step, b.alive_per_step);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completion_step, b.completion_step);
  EXPECT_EQ(a.died_out, b.died_out);
  EXPECT_EQ(a.peak_informed, b.peak_informed);
  EXPECT_DOUBLE_EQ(a.final_fraction, b.final_fraction);
}

// ---- streaming equivalence (SDG, SDGR) -------------------------------------

class StreamingEquivalence : public ::testing::TestWithParam<EdgePolicy> {};

TEST_P(StreamingEquivalence, RoundReportsAndGraphsBitIdentical) {
  for (const std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
    StreamingConfig config;
    config.n = 120;
    config.d = 5;
    config.policy = GetParam();
    config.seed = seed;
    StreamingNetwork refactored(config);
    ReferenceStreamingNetwork reference(config);

    for (std::uint64_t round = 1; round <= 4ull * config.n; ++round) {
      const auto a = refactored.step();
      const auto b = reference.step();
      ASSERT_EQ(a.round, b.round) << "seed " << seed;
      ASSERT_EQ(a.born, b.born) << "round " << round;
      ASSERT_EQ(a.died.has_value(), b.died.has_value()) << "round " << round;
      if (a.died.has_value()) ASSERT_EQ(*a.died, *b.died);
    }
    EXPECT_EQ(edge_table(refactored.graph()), edge_table(reference.graph()));
    // The wiring RNG streams stayed in lockstep too.
    EXPECT_EQ(refactored.rng().next_u64(), reference.rng().next_u64());
  }
}

TEST_P(StreamingEquivalence, FloodTracesBitIdentical) {
  for (const std::uint64_t seed : {3ull, 42ull}) {
    StreamingConfig config;
    config.n = 150;
    config.d = 8;
    config.policy = GetParam();
    config.seed = seed;
    StreamingNetwork refactored(config);
    ReferenceStreamingNetwork reference(config);
    refactored.warm_up();
    reference.warm_up();

    const FloodTrace a = flood_dynamic(refactored, {});
    const FloodTrace b = flood_dynamic(reference, {});
    expect_same_trace(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, StreamingEquivalence,
                         ::testing::Values(EdgePolicy::kNone,
                                           EdgePolicy::kRegenerate),
                         [](const auto& info) {
                           return info.param == EdgePolicy::kNone ? "SDG"
                                                                  : "SDGR";
                         });

// ---- Poisson equivalence (PDG, PDGR) ---------------------------------------

class PoissonEquivalence : public ::testing::TestWithParam<EdgePolicy> {};

TEST_P(PoissonEquivalence, EventSequencesAndGraphsBitIdentical) {
  for (const std::uint64_t seed : {1ull, 99ull, 987654321ull}) {
    const PoissonConfig config =
        PoissonConfig::with_n(200, 6, GetParam(), seed);
    PoissonNetwork refactored(config);
    ReferencePoissonNetwork reference(config);

    for (int event = 0; event < 4000; ++event) {
      const auto a = refactored.step();
      const auto b = reference.step();
      ASSERT_EQ(a.kind, b.kind) << "seed " << seed << " event " << event;
      ASSERT_DOUBLE_EQ(a.time, b.time) << "event " << event;
      ASSERT_EQ(a.node, b.node) << "event " << event;
    }
    EXPECT_DOUBLE_EQ(refactored.now(), reference.now());
    EXPECT_EQ(edge_table(refactored.graph()), edge_table(reference.graph()));
    EXPECT_EQ(refactored.rng().next_u64(), reference.rng().next_u64());
  }
}

TEST_P(PoissonEquivalence, WarmUpAndFloodTracesBitIdentical) {
  for (const std::uint64_t seed : {5ull, 77ull}) {
    const PoissonConfig config =
        PoissonConfig::with_n(250, 8, GetParam(), seed);
    PoissonNetwork refactored(config);
    ReferencePoissonNetwork reference(config);
    refactored.warm_up();
    reference.warm_up();
    ASSERT_DOUBLE_EQ(refactored.now(), reference.now());
    EXPECT_EQ(edge_table(refactored.graph()), edge_table(reference.graph()));

    const FloodTrace a = flood_dynamic(refactored, {});
    const FloodTrace b = flood_dynamic(reference, {});
    expect_same_trace(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PoissonEquivalence,
                         ::testing::Values(EdgePolicy::kNone,
                                           EdgePolicy::kRegenerate),
                         [](const auto& info) {
                           return info.param == EdgePolicy::kNone ? "PDG"
                                                                  : "PDGR";
                         });

// ---- scenario-layer equivalence --------------------------------------------

TEST(ScenarioChurnEquivalence, PaperScenariosMatchReferenceSimulators) {
  ScenarioParams params;
  params.n = 180;
  params.d = 7;
  params.seed = 2024;

  {
    AnyNetwork sdgr = ScenarioRegistry::paper().at("SDGR").make_warmed(params);
    StreamingConfig config;
    config.n = params.n;
    config.d = params.d;
    config.policy = EdgePolicy::kRegenerate;
    config.seed = params.seed;
    ReferenceStreamingNetwork reference(config);
    reference.warm_up();
    EXPECT_EQ(edge_table(sdgr.graph()), edge_table(reference.graph()));
    expect_same_trace(sdgr.flood(), flood_dynamic(reference, {}));
  }
  {
    AnyNetwork pdgr = ScenarioRegistry::paper().at("PDGR").make_warmed(params);
    const PoissonConfig config = PoissonConfig::with_n(
        params.n, params.d, EdgePolicy::kRegenerate, params.seed);
    ReferencePoissonNetwork reference(config);
    reference.warm_up();
    EXPECT_EQ(edge_table(pdgr.graph()), edge_table(reference.graph()));
    expect_same_trace(pdgr.flood(), flood_dynamic(reference, {}));
  }
}

}  // namespace
}  // namespace churnet
