// Tests for models/wiring.hpp: request drawing, regeneration and the
// WiringLimits (bounded-degree) mechanics, exercised directly against a
// DynamicGraph.
#include "models/wiring.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace churnet {
namespace {

TEST(Wiring, DrawTargetUnlimitedSamplesOtherNodes) {
  DynamicGraph graph;
  Rng rng(1);
  const NodeId a = graph.add_node(0, 0.0);
  const NodeId b = graph.add_node(0, 0.0);
  for (int i = 0; i < 100; ++i) {
    const NodeId t = detail::draw_target(graph, rng, a, {});
    EXPECT_EQ(t, b);
  }
}

TEST(Wiring, DrawTargetRespectsInCap) {
  DynamicGraph graph;
  Rng rng(2);
  const NodeId a = graph.add_node(2, 0.0);
  const NodeId full = graph.add_node(0, 0.0);
  const NodeId open = graph.add_node(0, 0.0);
  // Fill `full` to the cap.
  graph.set_out_edge(a, 0, full);
  WiringLimits limits{1, 16};
  for (int i = 0; i < 100; ++i) {
    const NodeId t = detail::draw_target(graph, rng, a, limits);
    EXPECT_EQ(t, open) << "must avoid the full node";
  }
}

TEST(Wiring, DrawTargetGivesUpWhenAllFull) {
  DynamicGraph graph;
  Rng rng(3);
  const NodeId a = graph.add_node(2, 0.0);
  const NodeId only = graph.add_node(0, 0.0);
  graph.set_out_edge(a, 0, only);
  WiringLimits limits{1, 8};
  EXPECT_EQ(detail::draw_target(graph, rng, a, limits), kInvalidNode);
}

TEST(Wiring, DrawTargetSingletonReturnsInvalid) {
  DynamicGraph graph;
  Rng rng(4);
  const NodeId only = graph.add_node(1, 0.0);
  EXPECT_EQ(detail::draw_target(graph, rng, only, {}), kInvalidNode);
  EXPECT_EQ(detail::draw_target(graph, rng, only, {4, 8}), kInvalidNode);
}

TEST(Wiring, IssueInitialRequestsFillsAllSlots) {
  DynamicGraph graph;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) graph.add_node(0, 0.0);
  const NodeId owner = graph.add_node(5, 1.0);
  NetworkHooks hooks;
  int created = 0;
  hooks.on_edge_created = [&](NodeId o, std::uint32_t, NodeId t, bool regen,
                              double time) {
    EXPECT_EQ(o, owner);
    EXPECT_NE(t, owner);
    EXPECT_FALSE(regen);
    EXPECT_DOUBLE_EQ(time, 1.0);
    ++created;
  };
  detail::issue_initial_requests(graph, rng, owner, hooks, 1.0);
  EXPECT_EQ(created, 5);
  EXPECT_EQ(graph.out_degree(owner), 5u);
}

TEST(Wiring, RegenerateRefillsOrphans) {
  DynamicGraph graph;
  Rng rng(6);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(graph.add_node(2, 0.0));
  // Wire nodes 0 and 1 to node 5, then kill node 5.
  graph.set_out_edge(nodes[0], 0, nodes[5]);
  graph.set_out_edge(nodes[1], 1, nodes[5]);
  const auto orphans = graph.remove_node(nodes[5]);
  ASSERT_EQ(orphans.size(), 2u);
  NetworkHooks hooks;
  int regenerated = 0;
  hooks.on_edge_created = [&](NodeId, std::uint32_t, NodeId, bool regen,
                              double) { regenerated += regen ? 1 : 0; };
  detail::regenerate_requests(graph, rng, orphans, hooks, 2.0);
  EXPECT_EQ(regenerated, 2);
  EXPECT_EQ(graph.out_degree(nodes[0]), 1u);
  EXPECT_TRUE(graph.out_target(nodes[0], 0).valid());
  EXPECT_TRUE(graph.check_consistency());
}

TEST(Wiring, RegenerateWithCapRetriesOtherDanglingSlots) {
  DynamicGraph graph;
  Rng rng(7);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(graph.add_node(3, 0.0));
  // nodes[0] has one wired slot (to the victim) and two dangling slots.
  graph.set_out_edge(nodes[0], 0, nodes[7]);
  const auto orphans = graph.remove_node(nodes[7]);
  ASSERT_EQ(orphans.size(), 1u);
  WiringLimits limits{10, 8};  // generous cap activates the retry pass
  detail::regenerate_requests(graph, rng, orphans, {}, 1.0, limits);
  // All three slots of nodes[0] should now be wired.
  EXPECT_EQ(graph.out_degree(nodes[0]), 3u);
  EXPECT_TRUE(graph.check_consistency());
}

TEST(Wiring, CapZeroNeverRetriesDanglingSlots) {
  DynamicGraph graph;
  Rng rng(8);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(graph.add_node(3, 0.0));
  graph.set_out_edge(nodes[0], 0, nodes[7]);
  const auto orphans = graph.remove_node(nodes[7]);
  detail::regenerate_requests(graph, rng, orphans, {}, 1.0, {});
  // Only the orphaned slot is refilled; the two never-wired slots stay
  // dangling (paper semantics: regeneration only replaces lost edges).
  EXPECT_EQ(graph.out_degree(nodes[0]), 1u);
}

TEST(Wiring, InitialRequestsWithTightCapLeaveDangling) {
  DynamicGraph graph;
  Rng rng(9);
  const NodeId a = graph.add_node(0, 0.0);
  const NodeId owner = graph.add_node(4, 0.0);
  WiringLimits limits{2, 16};
  detail::issue_initial_requests(graph, rng, owner, {}, 0.0, limits);
  // Only node `a` is available and it accepts at most 2 in-edges.
  EXPECT_EQ(graph.out_degree(owner), 2u);
  EXPECT_EQ(graph.in_degree(a), 2u);
}

}  // namespace
}  // namespace churnet
