// Tests for flooding/onion_skin.hpp (paper Section 3.1.2, Claim 3.10,
// Lemma 3.9).
#include "flooding/onion_skin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "benchutil/experiment.hpp"
#include "common/stats.hpp"

namespace churnet {
namespace {

OnionSkinConfig make_config(std::uint32_t n, std::uint32_t d,
                            std::uint64_t seed) {
  OnionSkinConfig config;
  config.n = n;
  config.d = d;
  config.seed = seed;
  return config;
}

TEST(OnionSkin, Phase0LayerBoundedByD) {
  const OnionSkinResult result = run_onion_skin(make_config(10000, 200, 1));
  ASSERT_FALSE(result.old_layers.empty());
  EXPECT_LE(result.old_layers[0], 200u);
  EXPECT_GT(result.old_layers[0], 0u);
}

TEST(OnionSkin, Claim310Phase0AtLeastDOver20) {
  // Claim 3.10: |O_0| >= d/20 with probability >= 1 - e^{-d/100}. For
  // d = 200 the failure probability is ~13.5%; over 30 seeds the great
  // majority must pass (in fact |O_0| ~ d/2 typically).
  int passes = 0;
  for (std::uint64_t rep = 0; rep < 30; ++rep) {
    const OnionSkinResult result =
        run_onion_skin(make_config(20000, 200, derive_seed(2, 0, rep)));
    passes += result.old_layers[0] >= 200 / 20 ? 1 : 0;
  }
  EXPECT_GE(passes, 27);
}

TEST(OnionSkin, ReachesTargetForLargeD) {
  // Lemma 3.9: with d >= 200, both sides reach n/d informed nodes with
  // probability >= 1 - 4e^{-2} ~ 0.46; empirically it is far higher.
  int reached = 0;
  for (std::uint64_t rep = 0; rep < 20; ++rep) {
    const OnionSkinResult result =
        run_onion_skin(make_config(20000, 200, derive_seed(3, 0, rep)));
    reached += result.reached_target ? 1 : 0;
  }
  EXPECT_GE(reached, 16);
}

TEST(OnionSkin, LayersGrowGeometrically) {
  // Claim 3.10: conditional growth factor ~ d/20 per step while layers are
  // below n/d. Check the realized growth of consecutive old layers.
  const OnionSkinResult result = run_onion_skin(make_config(50000, 200, 4));
  ASSERT_GE(result.old_layers.size(), 2u);
  const std::uint64_t target = 50000 / 200;
  for (std::size_t k = 0; k + 1 < result.old_layers.size(); ++k) {
    if (result.old_layers[k + 1] == 0) break;
    if (result.old_layers[k] >= target) break;  // growth phase over
    EXPECT_GE(result.old_layers[k + 1],
              result.old_layers[k] * (200 / 40))  // half the paper factor
        << "phase " << k;
  }
}

TEST(OnionSkin, PhaseCountIsLogarithmic) {
  // O(log n / log d) phases suffice (Lemma 3.9).
  const OnionSkinResult result = run_onion_skin(make_config(100000, 200, 5));
  EXPECT_TRUE(result.reached_target);
  const double bound =
      4.0 + 3.0 * std::log(100000.0) / std::log(200.0 / 20.0);
  EXPECT_LE(result.phases, static_cast<std::uint32_t>(bound));
}

TEST(OnionSkin, InformedCountsMatchLayerSums) {
  const OnionSkinResult result = run_onion_skin(make_config(30000, 200, 6));
  std::uint64_t old_total = 0;
  for (const std::uint64_t layer : result.old_layers) old_total += layer;
  std::uint64_t young_total = 0;
  for (const std::uint64_t layer : result.young_layers) young_total += layer;
  EXPECT_EQ(result.informed_old, old_total);
  EXPECT_EQ(result.informed_young, young_total);
}

TEST(OnionSkin, SmallDOftenStalls) {
  // With tiny d the process dies out quickly (the flip side of Claim 3.10):
  // most runs should fail to reach the target.
  int reached = 0;
  for (std::uint64_t rep = 0; rep < 30; ++rep) {
    const OnionSkinResult result =
        run_onion_skin(make_config(5000, 4, derive_seed(7, 0, rep)));
    reached += result.reached_target ? 1 : 0;
  }
  EXPECT_LE(reached, 15);
}

TEST(OnionSkin, DeterministicForSeed) {
  const OnionSkinResult a = run_onion_skin(make_config(10000, 200, 42));
  const OnionSkinResult b = run_onion_skin(make_config(10000, 200, 42));
  EXPECT_EQ(a.old_layers, b.old_layers);
  EXPECT_EQ(a.young_layers, b.young_layers);
  EXPECT_EQ(a.reached_target, b.reached_target);
}

TEST(OnionSkin, YoungNodesNeverExceedHalfN) {
  const OnionSkinResult result = run_onion_skin(make_config(8000, 200, 8));
  EXPECT_LE(result.informed_young, 4000u);
  EXPECT_LE(result.informed_old, 4000u);
}

}  // namespace
}  // namespace churnet
