// Tests for engine/sweep_service.hpp (+ sweep_journal / result_stream):
// the byte-identity contract of the campaign service. Service output must
// equal plain SweepRunner output at any thread count, any worker-process
// count, and across SIGKILL/resume cycles; journals must refuse damage
// anywhere but the torn tail and refuse plans they were not written for.
#include "engine/sweep_service.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/sweep_journal.hpp"
#include "engine/sweep_runner.hpp"

namespace churnet {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.scenarios = {"SDGR"};
  spec.n_values = {100};
  spec.d_values = {4};
  spec.metrics = {"alive", "completion_step", "final_fraction"};
  spec.replications = 8;
  spec.base_seed = 777;
  return spec;
}

std::string csv_of(const SweepResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

std::string json_of(const SweepResult& result) {
  std::ostringstream out;
  result.write_json(out);
  return out.str();
}

/// Fresh scratch directory under the system temp dir; callers remove it.
std::filesystem::path make_temp_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("churnet_sweep_service_" + tag + "_" + std::to_string(::getpid()) +
       "_" + std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::filesystem::path& path,
                const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(SweepService, MatchesRunnerByteIdenticalAtAnyThreadCount) {
  const SweepSpec spec = small_spec();
  const SweepResult plain = SweepRunner(spec).run(1);

  for (const unsigned threads : {1u, 4u}) {
    SweepServiceOptions options;
    options.threads = threads;
    const SweepResult service = SweepService(spec, options).run();
    EXPECT_EQ(csv_of(plain), csv_of(service)) << threads << " threads";
    EXPECT_EQ(json_of(plain), json_of(service)) << threads << " threads";
  }
}

TEST(SweepService, WorkerProcessesMatchInProcessByteIdentical) {
  const SweepSpec spec = small_spec();

  SweepServiceOptions in_process;
  in_process.threads = 1;
  const SweepResult one = SweepService(spec, in_process).run();

  SweepServiceOptions forked;
  forked.workers = 4;
  SweepServiceReport report;
  const SweepResult four =
      SweepService(spec, forked).run(ScenarioRegistry::extended(), &report);

  EXPECT_EQ(report.workers_used, 4u);
  EXPECT_EQ(report.jobs_run, 8u);
  EXPECT_EQ(csv_of(one), csv_of(four));
  EXPECT_EQ(json_of(one), json_of(four));
}

TEST(SweepService, StreamsOneRowPerJobBetweenHeaderAndFooter) {
  const SweepSpec spec = small_spec();
  std::ostringstream stream;
  SweepServiceOptions options;
  options.results = &stream;
  const SweepResult result = SweepService(spec, options).run();
  (void)result;

  std::istringstream lines(stream.str());
  std::string line;
  std::vector<std::string> events;
  while (std::getline(lines, line)) events.push_back(line);
  ASSERT_EQ(events.size(), 10u);  // header + 8 rows + footer
  EXPECT_NE(events.front().find("\"ev\":\"sweep_header\""),
            std::string::npos);
  EXPECT_NE(events.front().find("\"jobs\":8"), std::string::npos);
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    EXPECT_NE(events[i].find("\"ev\":\"row\""), std::string::npos) << i;
    EXPECT_NE(events[i].find("\"resumed\":false"), std::string::npos) << i;
    EXPECT_NE(events[i].find("\"scenario\":\"SDGR\""), std::string::npos)
        << i;
  }
  EXPECT_NE(events.back().find("\"ev\":\"sweep_footer\""),
            std::string::npos);
  EXPECT_NE(events.back().find("\"jobs_done\":8"), std::string::npos);
}

TEST(SweepService, SigkillMidRunThenResumeIsByteIdentical) {
  const SweepSpec spec = small_spec();
  const std::filesystem::path dir = make_temp_dir("kill_resume");

  // The crashing run must die in a child process: kill_after raises
  // SIGKILL in whichever process journals the Nth job.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SweepServiceOptions options;
    options.threads = 1;
    options.checkpoint_dir = dir.string();
    options.batch = 1;
    options.kill_after = 3;
    try {
      (void)SweepService(spec, options).run();
    } catch (...) {
    }
    std::_Exit(42);  // only reachable if the kill hook failed to fire
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  SweepServiceOptions resume;
  resume.threads = 1;
  resume.checkpoint_dir = dir.string();
  resume.resume = true;
  SweepServiceReport report;
  const SweepResult resumed =
      SweepService(spec, resume).run(ScenarioRegistry::extended(), &report);

  // batch=1 makes every journaled job durable before the kill fires.
  EXPECT_GE(report.jobs_resumed, 3u);
  EXPECT_LT(report.jobs_resumed, 8u);
  EXPECT_EQ(report.jobs_resumed + report.jobs_run, 8u);

  const SweepResult plain = SweepRunner(spec).run(1);
  EXPECT_EQ(csv_of(plain), csv_of(resumed));
  EXPECT_EQ(json_of(plain), json_of(resumed));
  std::filesystem::remove_all(dir);
}

TEST(SweepService, ResumeOfCompleteCampaignRunsNothingAndTagsRows) {
  const SweepSpec spec = small_spec();
  const std::filesystem::path dir = make_temp_dir("complete");

  SweepServiceOptions first;
  first.checkpoint_dir = dir.string();
  const SweepResult full = SweepService(spec, first).run();

  std::ostringstream stream;
  SweepServiceOptions again;
  again.checkpoint_dir = dir.string();
  again.resume = true;
  again.results = &stream;
  SweepServiceReport report;
  const SweepResult resumed =
      SweepService(spec, again).run(ScenarioRegistry::extended(), &report);

  EXPECT_EQ(report.jobs_resumed, 8u);
  EXPECT_EQ(report.jobs_run, 0u);
  EXPECT_EQ(csv_of(full), csv_of(resumed));
  EXPECT_EQ(json_of(full), json_of(resumed));

  // Restored rows still stream (so a tail -f consumer sees the whole
  // campaign), tagged resumed:true.
  const std::string text = stream.str();
  EXPECT_NE(text.find("\"resumed\":8"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  std::size_t resumed_rows = 0;
  while (std::getline(lines, line)) {
    if (line.find("\"ev\":\"row\"") == std::string::npos) continue;
    EXPECT_NE(line.find("\"resumed\":true"), std::string::npos);
    ++resumed_rows;
  }
  EXPECT_EQ(resumed_rows, 8u);
  std::filesystem::remove_all(dir);
}

TEST(SweepService, FreshRunRefusesExistingJournal) {
  const SweepSpec spec = small_spec();
  const std::filesystem::path dir = make_temp_dir("refuse");

  SweepServiceOptions options;
  options.checkpoint_dir = dir.string();
  (void)SweepService(spec, options).run();

  // Same options, no resume: silently overwriting a checkpoint would
  // destroy it, so this must throw instead.
  EXPECT_THROW((void)SweepService(spec, options).run(), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(SweepService, ResumeRefusesDifferentPlanFingerprint) {
  const SweepSpec spec = small_spec();
  const std::filesystem::path dir = make_temp_dir("fingerprint");

  SweepServiceOptions options;
  options.checkpoint_dir = dir.string();
  (void)SweepService(spec, options).run();

  SweepSpec other = small_spec();
  other.base_seed = 778;
  SweepServiceOptions resume = options;
  resume.resume = true;
  EXPECT_THROW((void)SweepService(other, resume).run(),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(SweepService, TornTailIsDroppedMidFileDamageThrows) {
  const SweepSpec spec = small_spec();
  const std::filesystem::path dir = make_temp_dir("damage");

  SweepServiceOptions options;
  options.checkpoint_dir = dir.string();
  const SweepResult full = SweepService(spec, options).run();

  const std::filesystem::path journal =
      SweepJournal::journal_path(dir.string());
  const std::string intact = read_file(journal);
  ASSERT_FALSE(intact.empty());

  // A crash can tear only the final line (single sequential writer):
  // an incomplete last record is dropped and the job re-runs.
  write_file(journal, intact + R"({"ev":"done","job":3,"se)");
  SweepServiceOptions resume = options;
  resume.resume = true;
  SweepServiceReport report;
  const SweepResult resumed =
      SweepService(spec, resume).run(ScenarioRegistry::extended(), &report);
  EXPECT_EQ(report.jobs_resumed, 8u);
  EXPECT_EQ(csv_of(full), csv_of(resumed));

  // Damage anywhere else means the journal cannot be trusted: hard error.
  std::string corrupt = read_file(journal);
  const std::size_t second_line = corrupt.find('\n') + 1;
  corrupt[second_line] = 'X';
  write_file(journal, corrupt);
  EXPECT_THROW((void)SweepService(spec, resume).run(), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace churnet
